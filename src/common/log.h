// Minimal leveled logger. Defaults to warnings-only so tests and benches
// stay quiet; examples raise the level to show the agent's decisions.
#pragma once

#include <sstream>
#include <string>

namespace sea {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global minimum level; messages below it are dropped.
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// Sink for a fully formatted line (thread-safe; writes to stderr).
void log_line(LogLevel level, const std::string& message);

namespace detail {

class LogStream {
 public:
  explicit LogStream(LogLevel level) noexcept : level_(level) {}
  ~LogStream() { log_line(level_, os_.str()); }

  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& value) {
    os_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};

}  // namespace detail

inline bool log_enabled(LogLevel level) noexcept {
  return static_cast<int>(level) >= static_cast<int>(log_level());
}

#define SEA_LOG(level)                      \
  if (!::sea::log_enabled(level)) {         \
  } else                                    \
    ::sea::detail::LogStream(level)

#define SEA_DEBUG SEA_LOG(::sea::LogLevel::kDebug)
#define SEA_INFO SEA_LOG(::sea::LogLevel::kInfo)
#define SEA_WARN SEA_LOG(::sea::LogLevel::kWarn)
#define SEA_ERROR SEA_LOG(::sea::LogLevel::kError)

}  // namespace sea
