// Streaming statistics and error-metric helpers used across the library:
// by the answer-space models (sea), the AQP baselines (aqp), the cost
// observers (optimizer), and every benchmark harness.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace sea {

/// Numerically stable running mean/variance (Welford) with min/max.
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  double sum() const noexcept { return mean_ * static_cast<double>(n_); }
  /// Sample variance (n-1 denominator); 0 when fewer than two samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Running bivariate statistics: covariance, Pearson correlation, and the
/// simple-linear-regression slope/intercept of y on x.
class RunningCovariance {
 public:
  void add(double x, double y) noexcept;

  std::size_t count() const noexcept { return n_; }
  double mean_x() const noexcept { return mean_x_; }
  double mean_y() const noexcept { return mean_y_; }
  /// Sample covariance (n-1 denominator).
  double covariance() const noexcept;
  /// Pearson correlation coefficient in [-1, 1]; 0 when degenerate.
  double correlation() const noexcept;
  /// OLS slope of y ~ x; 0 when x has no variance.
  double slope() const noexcept;
  double intercept() const noexcept { return mean_y_ - slope() * mean_x_; }

 private:
  std::size_t n_ = 0;
  double mean_x_ = 0.0, mean_y_ = 0.0;
  double m2_x_ = 0.0, m2_y_ = 0.0;
  double c2_ = 0.0;
};

/// Exact quantiles over a buffered sample (sorts on demand).
/// Suitable for per-quantum residual tracking where populations are small.
/// Once at capacity, reservoir-samples (deterministically seeded) so the
/// buffer remains an unbiased sample of the whole stream.
class QuantileBuffer {
 public:
  explicit QuantileBuffer(std::size_t capacity = 4096,
                          std::uint64_t seed = 0x9c0f1e5au)
      : capacity_(capacity), rng_state_(seed) {}

  void add(double x) noexcept;

  std::size_t count() const noexcept { return seen_; }
  bool empty() const noexcept { return buf_.empty(); }

  /// Quantile q in [0,1] by linear interpolation. Requires non-empty buffer.
  double quantile(double q) const;

  void clear() noexcept {
    buf_.clear();
    seen_ = 0;
    sorted_ = true;
  }

 private:
  std::size_t capacity_;
  std::uint64_t rng_state_;
  std::size_t seen_ = 0;
  mutable std::vector<double> buf_;
  mutable bool sorted_ = true;
};

/// Quantiles over a sliding window of the most recent `capacity` values.
/// Used for prequential residual tracking where the underlying model
/// improves over time and stale errors must age out.
class SlidingQuantile {
 public:
  explicit SlidingQuantile(std::size_t capacity = 128)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  void add(double x) noexcept;

  std::size_t count() const noexcept { return seen_; }
  std::size_t window_size() const noexcept { return buf_.size(); }
  bool empty() const noexcept { return buf_.empty(); }

  /// Quantile q in [0,1] over the current window (linear interpolation).
  double quantile(double q) const;

  void clear() noexcept {
    buf_.clear();
    next_ = 0;
    seen_ = 0;
  }

  /// Current window contents (chronology not preserved across the ring
  /// seam; sufficient for quantile state shipping).
  const std::vector<double>& window() const noexcept { return buf_; }

  /// Restores a shipped window (deserialization).
  void restore(std::vector<double> values, std::size_t seen) {
    buf_ = std::move(values);
    if (buf_.size() > capacity_) buf_.resize(capacity_);
    next_ = buf_.size() % capacity_;
    seen_ = seen;
  }

 private:
  std::size_t capacity_;
  std::vector<double> buf_;  ///< ring buffer
  std::size_t next_ = 0;
  std::size_t seen_ = 0;
};

/// Error metrics over paired (truth, estimate) sequences.
struct ErrorMetrics {
  std::size_t n = 0;
  double mae = 0.0;           ///< mean absolute error
  double rmse = 0.0;          ///< root mean squared error
  double mape = 0.0;          ///< mean absolute percentage error (truth != 0 only)
  double max_abs = 0.0;       ///< worst absolute error
  double median_rel = 0.0;    ///< median relative error
};

ErrorMetrics compute_error_metrics(std::span<const double> truth,
                                   std::span<const double> estimate);

/// Relative error with an absolute floor: |est-truth| / max(|truth|, floor).
double relative_error(double truth, double estimate,
                      double floor = 1.0) noexcept;

}  // namespace sea
