#include "common/rng.h"

#include <algorithm>
#include <stdexcept>

namespace sea {

std::uint64_t Rng::uniform_index(std::uint64_t n) noexcept {
  // Lemire's nearly-divisionless bounded sampling.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
  std::uint64_t l = static_cast<std::uint64_t>(m);
  if (l < n) {
    const std::uint64_t t = (0 - n) % n;
    while (l < t) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * factor;
  has_cached_normal_ = true;
  return u * factor;
}

ZipfDistribution::ZipfDistribution(std::size_t n, double s) {
  if (n == 0) throw std::invalid_argument("ZipfDistribution: n must be > 0");
  cdf_.resize(n);
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = acc;
  }
  for (auto& c : cdf_) c /= acc;
}

std::size_t ZipfDistribution::operator()(Rng& rng) const noexcept {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

}  // namespace sea
