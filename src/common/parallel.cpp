#include "common/parallel.h"

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/thread_pool.h"

namespace sea {

namespace {

std::mutex g_mutex;
std::size_t g_threads = 0;  // 0 = not yet resolved
bool g_resolved = false;
std::unique_ptr<ThreadPool> g_pool;

thread_local bool t_in_parallel_region = false;

std::size_t resolve_threads_locked() {
  if (!g_resolved) {
    const char* env = std::getenv("SEA_THREADS");
    if (env && *env) {
      g_threads = static_cast<std::size_t>(std::strtoul(env, nullptr, 10));
      if (g_threads == 0) g_threads = 1;  // SEA_THREADS=0 => serial
    } else {
      g_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
    }
    g_resolved = true;
  }
  return g_threads;
}

ThreadPool* pool_locked() {
  const std::size_t threads = resolve_threads_locked();
  if (threads <= 1) return nullptr;
  if (!g_pool) g_pool = std::make_unique<ThreadPool>(threads);
  return g_pool.get();
}

/// Deterministic contiguous split of [0, n) into at most `parts` chunks.
std::vector<std::pair<std::size_t, std::size_t>> chunks_of(std::size_t n,
                                                           std::size_t parts) {
  std::vector<std::pair<std::size_t, std::size_t>> out;
  parts = std::max<std::size_t>(1, std::min(parts, n));
  out.reserve(parts);
  const std::size_t base = n / parts;
  const std::size_t extra = n % parts;
  std::size_t begin = 0;
  for (std::size_t c = 0; c < parts; ++c) {
    const std::size_t len = base + (c < extra ? 1 : 0);
    out.emplace_back(begin, begin + len);
    begin += len;
  }
  return out;
}

}  // namespace

std::size_t configured_threads() {
  std::lock_guard<std::mutex> lock(g_mutex);
  return resolve_threads_locked();
}

void set_configured_threads(std::size_t threads) {
  std::lock_guard<std::mutex> lock(g_mutex);
  g_pool.reset();  // joins workers; rebuilt lazily at the new size
  g_threads = threads == 0 ? 1 : threads;
  g_resolved = true;
}

ThreadPool* global_thread_pool() {
  std::lock_guard<std::mutex> lock(g_mutex);
  return pool_locked();
}

bool in_parallel_region() noexcept { return t_in_parallel_region; }

void ParallelChunks(std::size_t n,
                    const std::function<void(std::size_t, std::size_t)>& body) {
  if (n == 0) return;
  ThreadPool* pool = nullptr;
  std::size_t threads = 1;
  {
    std::lock_guard<std::mutex> lock(g_mutex);
    threads = resolve_threads_locked();
    // Nested regions run serially: a worker blocking on sub-tasks that
    // only the same (occupied) workers could run would deadlock the pool.
    pool = t_in_parallel_region ? nullptr : pool_locked();
  }
  if (!pool || threads <= 1 || n == 1) {
    body(0, n);
    return;
  }
  // A few chunks per worker smooth out imbalance (e.g. k-d subtrees of
  // different depths) while keeping boundaries a pure function of n and
  // the worker count.
  const auto ranges = chunks_of(n, threads * 4);
  struct RegionGuard {
    RegionGuard() noexcept { t_in_parallel_region = true; }
    ~RegionGuard() { t_in_parallel_region = false; }
  };
  pool->parallel_for(ranges.size(), [&](std::size_t c) {
    RegionGuard guard;
    body(ranges[c].first, ranges[c].second);
  });
}

void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& fn) {
  ParallelChunks(n, [&fn](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
  });
}

}  // namespace sea
