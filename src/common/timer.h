// Wall-clock timing utilities for benchmarks and the cost observers.
#pragma once

#include <chrono>
#include <cstdint>

namespace sea {

/// Monotonic stopwatch with microsecond resolution.
class Timer {
 public:
  Timer() noexcept : start_(clock::now()) {}

  void reset() noexcept { start_ = clock::now(); }

  /// Elapsed time in microseconds since construction or last reset().
  std::int64_t elapsed_us() const noexcept {
    return std::chrono::duration_cast<std::chrono::microseconds>(clock::now() -
                                                                 start_)
        .count();
  }

  double elapsed_ms() const noexcept {
    return static_cast<double>(elapsed_us()) / 1000.0;
  }

  double elapsed_s() const noexcept {
    return static_cast<double>(elapsed_us()) / 1e6;
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace sea
