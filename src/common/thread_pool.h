// Fixed-size thread pool used by the MapReduce engine to run map tasks in
// parallel, mirroring the parallel workers of a real BDAS layer.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace sea {

class ThreadPool {
 public:
  /// Creates `threads` workers (defaults to hardware concurrency, >= 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return workers_.size(); }

  /// Drains already-queued tasks, joins all workers, and rejects further
  /// submits. Idempotent; also called by the destructor.
  void shutdown();

  /// Enqueue a task; the returned future reports its completion/exception.
  template <typename F>
  std::future<void> submit(F&& f) {
    auto task =
        std::make_shared<std::packaged_task<void()>>(std::forward<F>(f));
    std::future<void> fut = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) throw std::runtime_error("ThreadPool: submit after stop");
      queue_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Runs fn(i) for i in [0, n) across the pool and waits for completion.
  /// Exceptions from tasks are rethrown (first one wins).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace sea
