// Deterministic parallel primitives (pbbs-style), shared by every hot path.
//
// The library sits directly on ParallelFor/ParallelChunks and adds the
// missing piece for data-parallel kernels: *fixed* work decomposition.
// ParallelFor's chunk boundaries are a function of the worker count, which
// is fine for bodies that own disjoint output slots but would change
// floating-point combine trees when the thread count changes. Every
// primitive here therefore splits its input by a BlockPlan that depends
// only on the input size (and, for keyed primitives, the bucket count) —
// never on SEA_THREADS — so each result is a pure function of its input:
// bit-identical at SEA_THREADS 1 vs 8 (DESIGN.md "Columnar execution &
// parallel primitives").
//
// Contents (SNIPPETS.md snippet 3, PAM/pbbs time_operations.h, is the
// reference shape):
//  * blocked_reduce / reduce_add / minmax — per-block serial folds combined
//    by a pairwise tree in fixed block order.
//  * scan_exclusive — two-pass blocked prefix sum; exact for integers,
//    thread-count-invariant (not serial-fold-identical) for doubles.
//  * histogram / counting_sort — two-pass per-block counters; the sort is
//    stable (equal keys keep input order) and race-free: each block scatters
//    through its own pre-computed cursor row.
//  * collect_reduce — dense per-block accumulators keyed by small integers,
//    folded across blocks in block order.
//  * sample_sort — deterministic stride-sampled pivots (no RNG), stable
//    counting-sort bucket partition, per-bucket std::sort. With a strict
//    total order the output equals std::sort's; with ties it is still a
//    pure function of the input.
//  * gather — permutation copy with the snippet-3 __builtin_prefetch idiom.
//
// All primitives run serially (identical results) when invoked from inside
// a parallel region or with SEA_THREADS<=1, via ParallelFor's fallback.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <utility>
#include <vector>

#include "common/parallel.h"

#if defined(__GNUC__) || defined(__clang__)
#define SEA_PREFETCH(addr) __builtin_prefetch((addr), 0, 3)
#else
#define SEA_PREFETCH(addr) ((void)0)
#endif

namespace sea::par {

/// Elements per block: big enough to amortize dispatch, small enough that a
/// block's working set stays in L1/L2. Fixed — never derived from the
/// worker count (see file comment).
inline constexpr std::size_t kBlockSize = 2048;

/// Cap on per-block counter storage for keyed primitives: blocks * buckets
/// never exceeds this many cells (32 MiB of u32 counters at the cap).
inline constexpr std::size_t kMaxCounterCells = std::size_t{1} << 22;

/// Even split of [0, n) into `blocks` contiguous ranges; boundaries are a
/// pure function of (n, blocks).
struct BlockPlan {
  std::size_t n = 0;
  std::size_t blocks = 0;
  std::size_t begin(std::size_t b) const noexcept { return b * n / blocks; }
  std::size_t end(std::size_t b) const noexcept {
    return (b + 1) * n / blocks;
  }
};

inline BlockPlan plan(std::size_t n) noexcept {
  BlockPlan p;
  p.n = n;
  p.blocks = n == 0 ? 0 : (n + kBlockSize - 1) / kBlockSize;
  return p;
}

/// Plan for keyed primitives: blocks shrink (i.e. grow in size) as the
/// bucket count rises, keeping per-block counter memory bounded. Depends
/// only on (n, buckets).
inline BlockPlan plan_keyed(std::size_t n, std::size_t buckets) noexcept {
  BlockPlan p = plan(n);
  const std::size_t cap = std::max<std::size_t>(
      1, kMaxCounterCells / std::max<std::size_t>(1, buckets));
  p.blocks = std::min(p.blocks, std::max<std::size_t>(1, cap));
  if (n == 0) p.blocks = 0;
  return p;
}

/// Blocked reduction: fold(begin, end) -> T runs serially per block (in
/// parallel across blocks), then the block partials are combined by a
/// pairwise tree in fixed block order — the combine shape depends only on
/// the block count, so doubles reduce bit-identically at any SEA_THREADS.
template <typename T, typename Fold, typename Combine>
T blocked_reduce(std::size_t n, T identity, Fold&& fold, Combine&& comb) {
  const BlockPlan p = plan(n);
  if (p.blocks == 0) return identity;
  std::vector<T> parts(p.blocks);
  ParallelFor(p.blocks,
              [&](std::size_t b) { parts[b] = fold(p.begin(b), p.end(b)); });
  for (std::size_t stride = 1; stride < p.blocks; stride *= 2)
    for (std::size_t i = 0; i + stride < p.blocks; i += 2 * stride)
      parts[i] = comb(parts[i], parts[i + stride]);
  return parts[0];
}

/// Tree-combined sum of a double span.
inline double reduce_add(std::span<const double> v) {
  return blocked_reduce(
      v.size(), 0.0,
      [&](std::size_t begin, std::size_t end) {
        double s = 0.0;
        for (std::size_t i = begin; i < end; ++i) s += v[i];
        return s;
      },
      [](double a, double b) { return a + b; });
}

/// Parallel (min, max) of a span; {0, 0} when empty. Min/max combine is
/// exact, so the result matches a serial scan regardless of tree shape.
inline std::pair<double, double> minmax(std::span<const double> v) {
  if (v.empty()) return {0.0, 0.0};
  using MM = std::pair<double, double>;
  return blocked_reduce(
      v.size(), MM{v[0], v[0]},
      [&](std::size_t begin, std::size_t end) {
        MM mm{v[begin], v[begin]};
        for (std::size_t i = begin + 1; i < end; ++i) {
          mm.first = std::min(mm.first, v[i]);
          mm.second = std::max(mm.second, v[i]);
        }
        return mm;
      },
      [](const MM& a, const MM& b) {
        return MM{std::min(a.first, b.first), std::max(a.second, b.second)};
      });
}

/// Blocked exclusive prefix sum; returns the total. `out` may alias `in`.
/// The block decomposition depends only on n, so the result is a pure
/// function of the input (bit-identical at any SEA_THREADS). For integer
/// T it equals the naive serial left fold exactly; for doubles the block
/// bases are sums of per-block partials, whose rounding differs from the
/// continuous serial fold's in the low bits — same contract as
/// blocked_reduce, deterministic but not serial-fold-identical.
template <typename T>
T scan_exclusive(std::span<const T> in, std::span<T> out) {
  if (in.size() != out.size())
    throw std::invalid_argument("scan_exclusive: size mismatch");
  const std::size_t n = in.size();
  if (n == 0) return T{};
  const BlockPlan p = plan(n);
  std::vector<T> sums(p.blocks);
  ParallelFor(p.blocks, [&](std::size_t b) {
    T s{};
    const std::size_t end = p.end(b);
    for (std::size_t i = p.begin(b); i < end; ++i) s = s + in[i];
    sums[b] = s;
  });
  T total{};
  for (std::size_t b = 0; b < p.blocks; ++b) {
    const T t = sums[b];
    sums[b] = total;
    total = total + t;
  }
  ParallelFor(p.blocks, [&](std::size_t b) {
    T acc = sums[b];
    const std::size_t end = p.end(b);
    for (std::size_t i = p.begin(b); i < end; ++i) {
      const T v = in[i];  // read before write: in may alias out
      out[i] = acc;
      acc = acc + v;
    }
  });
  return total;
}

/// Two-pass parallel histogram of small-integer keys in [0, buckets).
/// Throws std::out_of_range on a key >= buckets.
inline std::vector<std::uint64_t> histogram(
    std::span<const std::uint32_t> keys, std::size_t buckets) {
  std::vector<std::uint64_t> out(buckets, 0);
  const std::size_t n = keys.size();
  if (n == 0) return out;
  if (buckets == 0) throw std::invalid_argument("histogram: zero buckets");
  const BlockPlan p = plan_keyed(n, buckets);
  std::vector<std::uint32_t> counts(p.blocks * buckets, 0);
  ParallelFor(p.blocks, [&](std::size_t b) {
    std::uint32_t* c = counts.data() + b * buckets;
    const std::size_t end = p.end(b);
    for (std::size_t i = p.begin(b); i < end; ++i) {
      if (keys[i] >= buckets)
        throw std::out_of_range("histogram: key out of range");
      ++c[keys[i]];
    }
  });
  ParallelFor(buckets, [&](std::size_t k) {
    std::uint64_t s = 0;
    for (std::size_t b = 0; b < p.blocks; ++b) s += counts[b * buckets + k];
    out[k] = s;
  });
  return out;
}

/// Stable counting sort of small-integer keys: `order` is the permutation
/// (apply with gather()), `offsets` the bucket boundaries (buckets+1
/// entries). Stability: within a bucket, indices appear in input order —
/// per-block cursor rows are pre-offset by an exclusive scan over (key,
/// block), so the parallel scatter is race-free and order-preserving.
struct CountingSort {
  std::vector<std::uint32_t> order;
  std::vector<std::uint32_t> offsets;
};

inline CountingSort counting_sort(std::span<const std::uint32_t> keys,
                                  std::size_t buckets) {
  CountingSort out;
  const std::size_t n = keys.size();
  if (n > UINT32_MAX)
    throw std::invalid_argument("counting_sort: input too large for u32");
  out.offsets.assign(buckets + 1, 0);
  out.order.resize(n);
  if (n == 0) return out;
  if (buckets == 0) throw std::invalid_argument("counting_sort: zero buckets");
  const BlockPlan p = plan_keyed(n, buckets);
  std::vector<std::uint32_t> counts(p.blocks * buckets, 0);
  ParallelFor(p.blocks, [&](std::size_t b) {
    std::uint32_t* c = counts.data() + b * buckets;
    const std::size_t end = p.end(b);
    for (std::size_t i = p.begin(b); i < end; ++i) {
      if (keys[i] >= buckets)
        throw std::out_of_range("counting_sort: key out of range");
      ++c[keys[i]];
    }
  });
  // Column-major exclusive scan: for key k, block b starts writing at
  // (global start of k) + (k-count of earlier blocks).
  std::uint32_t running = 0;
  for (std::size_t k = 0; k < buckets; ++k) {
    out.offsets[k] = running;
    for (std::size_t b = 0; b < p.blocks; ++b) {
      const std::uint32_t c = counts[b * buckets + k];
      counts[b * buckets + k] = running;
      running += c;
    }
  }
  out.offsets[buckets] = running;
  ParallelFor(p.blocks, [&](std::size_t b) {
    std::uint32_t* cur = counts.data() + b * buckets;
    const std::size_t end = p.end(b);
    for (std::size_t i = p.begin(b); i < end; ++i)
      out.order[cur[keys[i]]++] = static_cast<std::uint32_t>(i);
  });
  return out;
}

/// Dense collect_reduce: combines values sharing a key into out[key], via
/// per-block dense accumulators folded across blocks in block order. The
/// per-key combine order is (block, position) — a pure function of the
/// input — so doubles collect bit-identically at any SEA_THREADS.
template <typename V, typename Combine>
std::vector<V> collect_reduce(std::span<const std::uint32_t> keys,
                              std::span<const V> values, std::size_t buckets,
                              V identity, Combine&& comb) {
  if (keys.size() != values.size())
    throw std::invalid_argument("collect_reduce: size mismatch");
  std::vector<V> out(buckets, identity);
  const std::size_t n = keys.size();
  if (n == 0) return out;
  if (buckets == 0)
    throw std::invalid_argument("collect_reduce: zero buckets");
  const BlockPlan p = plan_keyed(n, buckets);
  std::vector<V> acc(p.blocks * buckets, identity);
  ParallelFor(p.blocks, [&](std::size_t b) {
    V* a = acc.data() + b * buckets;
    const std::size_t end = p.end(b);
    for (std::size_t i = p.begin(b); i < end; ++i) {
      if (keys[i] >= buckets)
        throw std::out_of_range("collect_reduce: key out of range");
      a[keys[i]] = comb(a[keys[i]], values[i]);
    }
  });
  ParallelFor(buckets, [&](std::size_t k) {
    V r = identity;
    for (std::size_t b = 0; b < p.blocks; ++b)
      r = comb(r, acc[b * buckets + k]);
    out[k] = r;
  });
  return out;
}

/// Permutation copy out[i] = src[idx[i]], blocked + prefetched (snippet-3
/// idiom): the random-access read stream is the bottleneck, so each lane
/// prefetches a few indices ahead. Indices must be < src.size().
template <typename T>
void gather(std::span<const T> src, std::span<const std::uint32_t> idx,
            std::span<T> out) {
  if (idx.size() != out.size())
    throw std::invalid_argument("gather: size mismatch");
  constexpr std::size_t kAhead = 8;
  const BlockPlan p = plan(idx.size());
  if (p.blocks == 0) return;
  ParallelFor(p.blocks, [&](std::size_t b) {
    const std::size_t end = p.end(b);
    for (std::size_t i = p.begin(b); i < end; ++i) {
      if (i + kAhead < end) SEA_PREFETCH(&src[idx[i + kAhead]]);
      out[i] = src[idx[i]];
    }
  });
}

/// Deterministic parallel sample sort. Pivots come from a fixed-stride
/// oversample (no RNG), elements are classified into buckets, partitioned
/// stably by counting_sort, and each bucket is std::sort-ed — so the output
/// is a pure function of the input at any SEA_THREADS. With a strict total
/// order (e.g. ScoreIndex's rank order) the result is the unique sorted
/// sequence, identical to std::sort's.
template <typename T, typename Less>
void sample_sort(std::span<T> v, Less less) {
  const std::size_t n = v.size();
  constexpr std::size_t kSerialCutoff = 1 << 14;
  if (n < kSerialCutoff) {
    std::sort(v.begin(), v.end(), less);
    return;
  }
  const std::size_t buckets =
      std::clamp<std::size_t>(n / (2 * kBlockSize), 2, 256);
  constexpr std::size_t kOversample = 8;
  const std::size_t s = buckets * kOversample;
  std::vector<T> sample;
  sample.reserve(s);
  for (std::size_t i = 0; i < s; ++i)
    sample.push_back(v[i * (n - 1) / (s - 1)]);
  std::sort(sample.begin(), sample.end(), less);
  std::vector<T> pivots;
  pivots.reserve(buckets - 1);
  for (std::size_t i = 1; i < buckets; ++i)
    pivots.push_back(sample[i * kOversample]);

  std::vector<std::uint32_t> bucket_of(n);
  const BlockPlan p = plan(n);
  ParallelFor(p.blocks, [&](std::size_t b) {
    const std::size_t end = p.end(b);
    for (std::size_t i = p.begin(b); i < end; ++i)
      bucket_of[i] = static_cast<std::uint32_t>(
          std::upper_bound(pivots.begin(), pivots.end(), v[i], less) -
          pivots.begin());
  });
  const CountingSort cs = counting_sort(bucket_of, buckets);
  std::vector<T> scratch(n);
  gather(std::span<const T>(v.data(), n), cs.order,
         std::span<T>(scratch.data(), n));
  ParallelFor(buckets, [&](std::size_t bk) {
    std::sort(scratch.begin() + cs.offsets[bk],
              scratch.begin() + cs.offsets[bk + 1], less);
  });
  ParallelFor(p.blocks, [&](std::size_t b) {
    std::copy(scratch.begin() + static_cast<std::ptrdiff_t>(p.begin(b)),
              scratch.begin() + static_cast<std::ptrdiff_t>(p.end(b)),
              v.begin() + static_cast<std::ptrdiff_t>(p.begin(b)));
  });
}

template <typename T>
void sample_sort(std::span<T> v) {
  sample_sort(v, std::less<T>());
}

}  // namespace sea::par
