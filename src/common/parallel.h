// Shared deterministic parallel-execution helpers.
//
// All hot-path concurrency in the library (MapReduce map/reduce compute,
// index construction, agent batch refits, batched serving) goes through
// ParallelFor/ParallelChunks so one global knob — SEA_THREADS — controls
// the worker count everywhere, and so the determinism contract (DESIGN.md
// "Concurrency model") is enforced in a single place:
//
//  * Work is split into chunks that are a pure function of (n, worker
//    count); scheduling order never affects which thread computes what.
//  * Bodies may only write state owned by their own index/chunk; anything
//    shared (accounting, RNG draws, fault-injector ticks) stays on the
//    caller's thread, outside the parallel region.
//  * With SEA_THREADS=0 (or 1) every helper degrades to a plain serial
//    loop on the calling thread — the reference behavior parallel runs
//    must reproduce bit-for-bit.
#pragma once

#include <cstddef>
#include <functional>

namespace sea {

class ThreadPool;

/// Worker count in effect: SEA_THREADS env var on first use (0 or 1 =>
/// serial), otherwise std::thread::hardware_concurrency().
std::size_t configured_threads();

/// Overrides the worker count at runtime (tests, benchmark sweeps). The
/// shared pool is torn down and lazily rebuilt at the new size. Not safe
/// to call concurrently with in-flight ParallelFor calls.
void set_configured_threads(std::size_t threads);

/// The process-wide pool (created on demand). nullptr in serial mode.
ThreadPool* global_thread_pool();

/// True while the calling thread is inside a ParallelFor/ParallelChunks
/// body; nested parallel calls run serially to avoid pool deadlock.
bool in_parallel_region() noexcept;

/// Runs fn(i) for every i in [0, n). Indices are processed in contiguous
/// chunks; chunk boundaries depend only on n and the configured worker
/// count. fn must only touch state owned by index i (or chunk-local
/// state); exceptions are rethrown on the caller (first one wins).
void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& fn);

/// Chunk-granular variant: body(begin, end) is invoked once per contiguous
/// chunk, letting the body keep chunk-local scratch state. Chunking is the
/// same deterministic split ParallelFor uses.
void ParallelChunks(std::size_t n,
                    const std::function<void(std::size_t, std::size_t)>& body);

}  // namespace sea
