#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sea {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

void RunningCovariance::add(double x, double y) noexcept {
  ++n_;
  const double n = static_cast<double>(n_);
  const double dx = x - mean_x_;
  mean_x_ += dx / n;
  m2_x_ += dx * (x - mean_x_);
  const double dy = y - mean_y_;
  mean_y_ += dy / n;
  m2_y_ += dy * (y - mean_y_);
  c2_ += dx * (y - mean_y_);
}

double RunningCovariance::covariance() const noexcept {
  return n_ > 1 ? c2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningCovariance::correlation() const noexcept {
  if (n_ < 2) return 0.0;
  const double denom = std::sqrt(m2_x_ * m2_y_);
  return denom > 0.0 ? c2_ / denom : 0.0;
}

double RunningCovariance::slope() const noexcept {
  return m2_x_ > 0.0 ? c2_ / m2_x_ : 0.0;
}

void QuantileBuffer::add(double x) noexcept {
  ++seen_;
  if (buf_.size() < capacity_) {
    buf_.push_back(x);
    sorted_ = false;
    return;
  }
  // Reservoir replacement (Algorithm R) keeps the buffer an unbiased sample.
  std::uint64_t z = (rng_state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  const auto idx = static_cast<std::size_t>(z % seen_);
  if (idx < capacity_) {
    buf_[idx] = x;
    sorted_ = false;
  }
}

double QuantileBuffer::quantile(double q) const {
  if (buf_.empty()) throw std::logic_error("QuantileBuffer::quantile on empty");
  if (!sorted_) {
    std::sort(buf_.begin(), buf_.end());
    sorted_ = true;
  }
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(buf_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, buf_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return buf_[lo] * (1.0 - frac) + buf_[hi] * frac;
}

void SlidingQuantile::add(double x) noexcept {
  ++seen_;
  if (buf_.size() < capacity_) {
    buf_.push_back(x);
    return;
  }
  buf_[next_] = x;
  next_ = (next_ + 1) % capacity_;
}

double SlidingQuantile::quantile(double q) const {
  if (buf_.empty()) throw std::logic_error("SlidingQuantile::quantile empty");
  std::vector<double> sorted = buf_;
  std::sort(sorted.begin(), sorted.end());
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double relative_error(double truth, double estimate, double floor) noexcept {
  const double denom = std::max(std::abs(truth), floor);
  return std::abs(estimate - truth) / denom;
}

ErrorMetrics compute_error_metrics(std::span<const double> truth,
                                   std::span<const double> estimate) {
  if (truth.size() != estimate.size())
    throw std::invalid_argument("compute_error_metrics: size mismatch");
  ErrorMetrics m;
  m.n = truth.size();
  if (m.n == 0) return m;
  double sum_abs = 0.0, sum_sq = 0.0, sum_ape = 0.0;
  std::size_t ape_n = 0;
  std::vector<double> rel;
  rel.reserve(m.n);
  for (std::size_t i = 0; i < m.n; ++i) {
    const double err = estimate[i] - truth[i];
    const double a = std::abs(err);
    sum_abs += a;
    sum_sq += err * err;
    m.max_abs = std::max(m.max_abs, a);
    if (truth[i] != 0.0) {
      sum_ape += a / std::abs(truth[i]);
      ++ape_n;
    }
    rel.push_back(relative_error(truth[i], estimate[i]));
  }
  const double n = static_cast<double>(m.n);
  m.mae = sum_abs / n;
  m.rmse = std::sqrt(sum_sq / n);
  m.mape = ape_n ? sum_ape / static_cast<double>(ape_n) : 0.0;
  std::sort(rel.begin(), rel.end());
  m.median_rel = rel[rel.size() / 2];
  return m;
}

}  // namespace sea
