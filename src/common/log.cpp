#include "common/log.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace sea {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::mutex g_sink_mutex;

const char* level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() noexcept {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void log_line(LogLevel level, const std::string& message) {
  if (!log_enabled(level)) return;
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  std::fprintf(stderr, "[sea:%s] %s\n", level_name(level), message.c_str());
}

}  // namespace sea
