// Deterministic pseudo-random number generation for the SEA library.
//
// All stochastic components (dataset generators, workload generators,
// sampling baselines, model initialization) draw from sea::Rng so that
// every experiment is reproducible from a single seed.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace sea {

/// SplitMix64: used to expand a single user seed into stream seeds.
/// Reference: Steele, Lea, Flood — "Fast splittable pseudorandom number
/// generators" (OOPSLA 2014).
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256** deterministic generator with convenience distributions.
///
/// Satisfies UniformRandomBitGenerator, so it can also be plugged into
/// <random> distributions when needed.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eab412cULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept { return next_u64(); }

  std::uint64_t next_u64() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t uniform_index(std::uint64_t n) noexcept;

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    uniform_index(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Standard normal via Marsaglia polar method.
  double normal() noexcept;

  double normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
  }

  /// Exponential with rate lambda.
  double exponential(double lambda) noexcept {
    return -std::log(1.0 - uniform()) / lambda;
  }

  /// Bernoulli trial.
  bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Derive an independent child stream (for per-node / per-worker RNGs).
  Rng fork() noexcept { return Rng(next_u64()); }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      using std::swap;
      swap(v[i - 1], v[uniform_index(i)]);
    }
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4]{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

/// Zipf distribution over ranks {0, .., n-1} with skew parameter `s`.
/// Precomputes the CDF; sampling is O(log n) via binary search.
class ZipfDistribution {
 public:
  ZipfDistribution(std::size_t n, double s);

  std::size_t operator()(Rng& rng) const noexcept;

  std::size_t size() const noexcept { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace sea
