// Storage-fault modelling: the fate of bytes a node writes to its durable
// medium.
//
// The fault stack so far covers processes (crashes, flaps) and the network
// (drops, spikes, partitions) — failures that make state *unavailable*.
// Storage faults are worse: a torn write, a flipped bit, or a lost flush
// leaves state that is still readable but silently wrong, and a model
// replica that loads it serves silently wrong answers (the paper's
// data-less models ARE the system of record, so corrupt model state is
// corrupt data). This interface is the injection point: the durable store
// (recovery/checkpoint.h) asks it what happens to each frame it persists.
//
// Faults are decided by the FaultInjector from its own seeded storage RNG
// stream (fault.h), so a single seed reproduces the full corruption
// schedule without perturbing the network drop/spike draw sequence.
#pragma once

#include <cstddef>
#include <cstdint>

#include "net/network.h"

namespace sea {

/// What happened to one durable write. At most one of lost/torn/flipped is
/// set (a write that never hit the medium cannot also be torn).
struct WriteFault {
  /// Lost flush: the write was acknowledged but never reached the medium —
  /// the frame simply does not exist on disk.
  bool lost = false;
  /// Torn write: only the first `keep_bytes` of the frame persisted
  /// (always a strict prefix).
  bool torn = false;
  std::size_t keep_bytes = 0;
  /// Bit flip: the byte at `flip_offset` had `flip_mask` XORed into it.
  bool flipped = false;
  std::size_t flip_offset = 0;
  std::uint8_t flip_mask = 0;
  /// Stalled-I/O multiplier on the modelled cost of this write (>= 1;
  /// 1 = no stall window active on the node).
  double stall_multiplier = 1.0;

  bool clean() const noexcept { return !lost && !torn && !flipped; }
};

/// Decides the fate of durable writes. Implemented by FaultInjector; a
/// null model (the default everywhere) means every write is clean.
class StorageFaultModel {
 public:
  virtual ~StorageFaultModel() = default;

  /// Called once per frame persisted by a durable store. `frame_bytes` is
  /// the encoded frame size (offsets in the returned fault are relative to
  /// it). Not const: consumes seeded RNG draws.
  virtual WriteFault on_durable_write(NodeId node,
                                      std::size_t frame_bytes) = 0;

  /// The stalled-I/O multiplier currently active for `node` (>= 1). Reads
  /// the injector's logical clock; consumes no RNG draws.
  virtual double stall_multiplier(NodeId node) const = 0;
};

}  // namespace sea
