// Per-node circuit breakers on the modelled clock.
//
// A node that grey-fails (drops most messages while still "up") turns
// every RPC against it into a retry storm: each caller burns its full
// attempt budget before failing over. The breaker ends the storm: after
// `failure_threshold` consecutive delivery failures the node's breaker
// opens and callers short-circuit immediately — placement (serving_node)
// routes around it, feeding tasks_rerouted — until a modelled cooldown
// elapses, after which a single half-open probe decides between closing
// (success) and re-opening (failure).
//
// Time base: modelled milliseconds, advanced by the same charges the cost
// model makes (network transfer, backoff waits), never wall-clock — so
// breaker traces are bit-identical across runs and SEA_THREADS settings.
// Header-only and dependency-light (like retry.h) so sea_cluster can hold
// a breaker set without linking the fault library.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "net/network.h"
#include "obs/metrics.h"

namespace sea {

struct BreakerConfig {
  bool enabled = false;
  /// Consecutive delivery failures that trip the breaker open.
  std::size_t failure_threshold = 3;
  /// Modelled cooldown before an open breaker admits a half-open probe.
  double cooldown_ms = 64.0;
};

enum class BreakerState { kClosed, kOpen, kHalfOpen };

struct BreakerStats {
  std::uint64_t opens = 0;           ///< closed/half-open -> open transitions
  std::uint64_t closes = 0;          ///< successful recoveries
  std::uint64_t half_open_probes = 0;
  std::uint64_t short_circuits = 0;  ///< calls denied by an open breaker
};

/// One breaker per node, driven by RPC/delivery outcomes.
class CircuitBreakerSet {
 public:
  explicit CircuitBreakerSet(std::size_t num_nodes = 0,
                             BreakerConfig config = {}) {
    configure(num_nodes, config);
  }

  void configure(std::size_t num_nodes, BreakerConfig config) {
    config_ = config;
    nodes_.assign(num_nodes, Node{});
    stats_ = BreakerStats{};
    now_ms_ = 0.0;
  }
  void set_config(BreakerConfig config) noexcept { config_ = config; }
  const BreakerConfig& config() const noexcept { return config_; }

  /// Mirrors BreakerStats transitions into `breaker.*` counters of a
  /// metrics registry (null detaches). Survives configure()/reset() so a
  /// registry attached once keeps counting across reconfiguration.
  void bind_metrics(obs::MetricsRegistry* registry) {
    if (!registry) {
      metrics_ = Metrics{};
      return;
    }
    metrics_.opens = &registry->counter("breaker.opens");
    metrics_.closes = &registry->counter("breaker.closes");
    metrics_.half_open_probes = &registry->counter("breaker.half_open_probes");
    metrics_.short_circuits = &registry->counter("breaker.short_circuits");
  }

  bool enabled() const noexcept { return config_.enabled; }
  double now_ms() const noexcept { return now_ms_; }

  /// Advances the modelled clock. Called with every modelled-time charge
  /// (transfer, backoff) so cooldowns elapse with modelled activity.
  void advance(double ms) noexcept { now_ms_ += ms; }

  /// May a call be issued against `node` right now? An open breaker whose
  /// cooldown has not elapsed denies (short-circuit); one whose cooldown
  /// elapsed transitions to half-open and admits the probe.
  bool allow(NodeId node) {
    if (!config_.enabled || node >= nodes_.size()) return true;
    Node& n = nodes_[node];
    switch (n.state) {
      case BreakerState::kClosed:
        return true;
      case BreakerState::kHalfOpen:
        return true;  // the in-flight probe (serial executors: one caller)
      case BreakerState::kOpen:
        if (now_ms_ < n.open_until_ms) {
          ++stats_.short_circuits;
          if (metrics_.short_circuits) metrics_.short_circuits->inc();
          return false;
        }
        n.state = BreakerState::kHalfOpen;
        ++stats_.half_open_probes;
        if (metrics_.half_open_probes) metrics_.half_open_probes->inc();
        return true;
    }
    return true;
  }

  /// Placement-time check (const): is the breaker open and still cooling?
  /// serving_node treats such nodes like down nodes and routes around
  /// them; a cooled-down open breaker reads as available so the next call
  /// becomes the half-open probe.
  bool open_now(NodeId node) const noexcept {
    if (!config_.enabled || node >= nodes_.size()) return false;
    const Node& n = nodes_[node];
    return n.state == BreakerState::kOpen && now_ms_ < n.open_until_ms;
  }

  void record_failure(NodeId node) {
    if (!config_.enabled || node >= nodes_.size()) return;
    Node& n = nodes_[node];
    ++n.consecutive_failures;
    if (n.state == BreakerState::kHalfOpen ||
        (n.state == BreakerState::kClosed &&
         n.consecutive_failures >= config_.failure_threshold)) {
      n.state = BreakerState::kOpen;
      n.open_until_ms = now_ms_ + config_.cooldown_ms;
      ++stats_.opens;
      if (metrics_.opens) metrics_.opens->inc();
    }
  }

  void record_success(NodeId node) {
    if (!config_.enabled || node >= nodes_.size()) return;
    Node& n = nodes_[node];
    n.consecutive_failures = 0;
    if (n.state != BreakerState::kClosed) {
      n.state = BreakerState::kClosed;
      ++stats_.closes;
      if (metrics_.closes) metrics_.closes->inc();
    }
  }

  BreakerState state(NodeId node) const noexcept {
    if (node >= nodes_.size()) return BreakerState::kClosed;
    return nodes_[node].state;
  }

  const BreakerStats& stats() const noexcept { return stats_; }

  /// Re-closes every breaker and rewinds the modelled clock and stats.
  void reset() {
    for (auto& n : nodes_) n = Node{};
    stats_ = BreakerStats{};
    now_ms_ = 0.0;
  }

 private:
  struct Node {
    BreakerState state = BreakerState::kClosed;
    std::size_t consecutive_failures = 0;
    double open_until_ms = 0.0;
  };

  struct Metrics {
    obs::Counter* opens = nullptr;
    obs::Counter* closes = nullptr;
    obs::Counter* half_open_probes = nullptr;
    obs::Counter* short_circuits = nullptr;
  };

  BreakerConfig config_;
  std::vector<Node> nodes_;
  BreakerStats stats_;
  Metrics metrics_;
  double now_ms_ = 0.0;
};

/// Hedged replica reads (tail-latency defense): when an RPC's modelled
/// request leg exceeds the `quantile` of recently observed round trips
/// (times `multiplier`), the coordinator issues a backup request to the
/// next replica holder and takes the first success. Deterministic: the
/// trigger depends only on modelled latencies, and all draws come from the
/// seeded fault-injector RNG streams.
struct HedgeConfig {
  bool enabled = false;
  double quantile = 0.95;
  /// Threshold = quantile(observed round trips) * multiplier.
  double multiplier = 1.0;
  /// Observations required before hedging arms (cold start guard).
  std::size_t min_samples = 16;
};

}  // namespace sea
