// Retry/backoff policy for fault-tolerant RPC and message delivery.
//
// Header-only and dependent only on sea_common so that lower layers
// (cluster) can carry a policy without linking the fault library. Backoff
// waits are *modelled* time (like network transfer, see DESIGN.md): they
// are charged to ExecReport::modelled_backoff_ms, never slept.
#pragma once

#include <algorithm>
#include <cstddef>

#include "common/rng.h"
#include "fault/outage.h"
#include "obs/metrics.h"

namespace sea {

struct RetryPolicy {
  /// Total delivery attempts per message/RPC (1 = no retries).
  std::size_t max_attempts = 4;
  double base_backoff_ms = 1.0;
  double backoff_multiplier = 2.0;
  double max_backoff_ms = 64.0;
  /// Proportional jitter: each wait is scaled by a uniform factor in
  /// [1 - jitter_fraction, 1 + jitter_fraction].
  double jitter_fraction = 0.2;
  /// An attempt whose modelled one-way transfer exceeds this is treated as
  /// timed out and retried (straggler defense). Effectively off by default.
  double rpc_timeout_ms = 1e12;
  /// Retry-storm guard: a *session-wide* token budget on retries (one token
  /// per retry, across every RPC/delivery the session issues). Correlated
  /// failures — a partition severing half the cohort at once — otherwise
  /// multiply per-call retry costs into a modelled retry storm; once the
  /// budget is spent, further failures throw RpcRetriesExhausted
  /// immediately instead of backing off again. 0 = unlimited (off).
  std::size_t retry_budget = 0;

  /// Modelled wait before retry number `attempt` + 1 (0-based attempt that
  /// just failed). Deterministic given the rng state.
  double backoff_ms(std::size_t attempt, Rng& rng) const noexcept {
    double wait = base_backoff_ms;
    for (std::size_t i = 0; i < attempt && wait < max_backoff_ms; ++i)
      wait *= backoff_multiplier;
    wait = std::min(wait, max_backoff_ms);
    return wait * (1.0 + jitter_fraction * (2.0 * rng.uniform() - 1.0));
  }
};

/// Shared retry/delivery metric handles (coordinator RPC path and the
/// MapReduce delivery loop report into the same series). All handles are
/// resolved once at bind() — the per-event calls are allocation-free and
/// no-ops when unbound, so hot paths can call them unconditionally.
struct RetryMetrics {
  obs::Counter* retries = nullptr;
  obs::Counter* dropped_messages = nullptr;
  obs::Counter* budget_exhausted = nullptr;
  obs::Histogram* backoff_ms = nullptr;

  static RetryMetrics bind(obs::MetricsRegistry* registry) {
    RetryMetrics m;
    if (!registry) return m;
    m.retries = &registry->counter("retry.retries");
    m.dropped_messages = &registry->counter("net.dropped_messages");
    m.budget_exhausted = &registry->counter("retry.budget_exhausted");
    m.backoff_ms = &registry->histogram(
        "retry.backoff_ms", {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0});
    return m;
  }

  void on_drop() const noexcept {
    if (dropped_messages) dropped_messages->inc();
  }
  void on_retry(double wait_ms) const noexcept {
    if (retries) retries->inc();
    if (backoff_ms) backoff_ms->observe(wait_ms);
  }
  void on_budget_exhausted() const noexcept {
    if (budget_exhausted) budget_exhausted->inc();
  }
};

}  // namespace sea
