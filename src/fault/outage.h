// Typed outage exceptions and the per-query deadline budget.
//
// The serving loop's availability contract (paper P4) hinges on telling
// *recoverable infrastructure outages* — which degrade to a model-backed
// answer — apart from genuine logic errors, which must propagate. Every
// outage the execution layers can raise derives from OutageError, so the
// serving layer catches exactly that and nothing broader.
//
// QueryDeadline is the overload-control budget: a modelled-milliseconds
// allowance carried through ExactExecutor / CohortSession::rpc / MapReduce
// delivery. Each modelled transfer, backoff wait, and per-task overhead
// charge decrements it; exhaustion raises DeadlineExceeded instead of
// letting a struggling query retry forever. Only *modelled* time is ever
// charged (never measured wall-clock), so deadline behavior is bit-exact
// across runs and SEA_THREADS settings.
#pragma once

#include <limits>
#include <stdexcept>
#include <string>

namespace sea {

/// Base of every recoverable infrastructure outage. The serving layer
/// degrades these to model-backed answers; anything not derived from this
/// (std::logic_error, std::out_of_range...) is a bug and propagates.
class OutageError : public std::runtime_error {
 public:
  explicit OutageError(const std::string& what) : std::runtime_error(what) {}
};

/// Every holder of a shard is unavailable (down or breaker-open): the
/// exact path cannot reach a live copy and callers must degrade.
class ShardUnavailable : public OutageError {
 public:
  explicit ShardUnavailable(const std::string& what) : OutageError(what) {}
};

/// A message/RPC failed on every allowed attempt (drop storm or persistent
/// timeout). Callers treat this like replica exhaustion: fail over to the
/// degraded (model-backed) path or surface the outage.
class RpcRetriesExhausted : public OutageError {
 public:
  explicit RpcRetriesExhausted(const std::string& what) : OutageError(what) {}
};

/// The query's modelled-time budget ran out mid-execution. Raised by the
/// deadline charge points in CohortSession::rpc and MapReduce delivery so
/// overloaded/straggling executions abort promptly instead of blowing the
/// latency target.
class DeadlineExceeded : public OutageError {
 public:
  explicit DeadlineExceeded(const std::string& what) : OutageError(what) {}
};

/// An operation carried a shard-lease epoch that is no longer current: the
/// caller is a *fenced* ex-holder (typically the minority side of a network
/// partition whose lease expired and was re-granted elsewhere). Serving
/// degrades to a model-backed read-only answer; writes/refits/checkpoints
/// under the stale epoch must not be applied (split-brain prevention, see
/// src/membership).
class StaleEpoch : public OutageError {
 public:
  explicit StaleEpoch(const std::string& what) : OutageError(what) {}
};

/// Durable state failed integrity verification: a checkpoint or WAL frame
/// whose magic/length/checksum no longer matches what was written (torn
/// write, bit flip, lost flush — src/fault/storage.h). Raised by the
/// strict CheckpointStore read paths instead of returning garbage bytes;
/// recovery treats it as data *loss* — truncate at the bad frame, fall
/// back to the previous checkpoint epoch, rebuild via anti-entropy — never
/// as data.
class CorruptedStateError : public OutageError {
 public:
  explicit CorruptedStateError(const std::string& what)
      : OutageError(what) {}
};

/// Per-query modelled-time budget (overload control). Default-constructed
/// deadlines are infinite (disabled); construct with a finite budget_ms to
/// arm. charge() accumulates and throws DeadlineExceeded the moment the
/// budget is exhausted.
struct QueryDeadline {
  double budget_ms = std::numeric_limits<double>::infinity();
  double spent_ms = 0.0;

  QueryDeadline() = default;
  explicit QueryDeadline(double budget) noexcept : budget_ms(budget) {}

  bool armed() const noexcept {
    return budget_ms < std::numeric_limits<double>::infinity();
  }
  double remaining_ms() const noexcept {
    return budget_ms - spent_ms;
  }

  /// Charges `ms` of modelled time against the budget; `what` names the
  /// charge (transfer, backoff, task overhead) for the diagnostic.
  void charge(const char* what, double ms) {
    spent_ms += ms;
    if (spent_ms > budget_ms)
      throw DeadlineExceeded(
          "QueryDeadline: budget of " + std::to_string(budget_ms) +
          " ms exhausted (" + std::to_string(spent_ms) +
          " ms modelled, last charge: " + what + ")");
  }
};

}  // namespace sea
