// Deterministic, seeded fault injection for the simulated BDAS.
//
// The paper's metric list (P4) makes availability a first-class axis; the
// seed only modelled permanent, binary node failure. This subsystem adds
// the transient fault model real deployments face — node flaps, dropped
// messages, latency spikes/stragglers — while keeping every decision
// reproducible from a single seed so benchmark counters are exactly
// repeatable (no wall-clock, no OS entropy).
//
// Time base: a *logical clock* of ticks. Executors tick the injector at
// task/RPC boundaries (the points where a real scheduler would observe
// failures), which advances the flap schedule. Message drops and latency
// spikes are Bernoulli draws from the injector's own Rng, consumed in the
// deterministic order the (single-threaded) executors issue sends.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "common/rng.h"
#include "fault/storage.h"
#include "net/network.h"

namespace sea {

/// One transient node outage: the node goes down at logical tick `down_at`
/// and recovers at tick `up_at` (half-open: down for [down_at, up_at)).
struct NodeFlap {
  NodeId node = 0;
  std::uint64_t down_at = 0;
  std::uint64_t up_at = 0;
};

/// A crash-restart: unlike a flap, the node comes back *empty* — its local
/// shard copies and any model replicas it held are wiped at `crash_at` and
/// must be rebuilt after `restart_at` (half-open window, like flaps).
/// Cluster-side shard re-replication is modelled by Cluster::restart_node;
/// model-state recovery is the business of src/recovery via CrashListener.
struct NodeCrash {
  NodeId node = 0;
  std::uint64_t crash_at = 0;
  std::uint64_t restart_at = 0;
};

/// A grey-failing node: still "up" (it is never marked down) but most
/// messages *to* it are lost. This is the failure mode that turns retry
/// policies into retry storms — and that circuit breakers exist to end.
struct NodeDropRate {
  NodeId node = 0;
  double drop_probability = 0.0;  ///< replaces the plan-wide rate for this node
};

/// A network partition window: while active (half-open [start_at, heal_at),
/// like flaps), every message *crossing the cut* is dropped — both
/// directions, deterministically, without consuming an RNG draw (so adding
/// a partition never shifts the seeded drop/spike sequence of the messages
/// that still flow within each side). Nodes stay up; only connectivity is
/// severed — the failure mode that makes "down" and "unreachable"
/// observably different, and the one membership/leases (src/membership)
/// exist to survive.
struct NetworkPartition {
  /// Node-set cut: `nodes` vs everyone else. Ignored when zone_cut is set.
  std::vector<NodeId> nodes;
  /// Zone cut: sever every link between `zone` and all other zones (the
  /// Network's zone assignment, snapshotted at FaultInjector::attach).
  bool zone_cut = false;
  std::uint32_t zone = 0;
  std::uint64_t start_at = 0;
  std::uint64_t heal_at = 0;
};

/// Per-node silent-storage-fault rates: each durable write on `node` may
/// be torn (prefix-only persistence), bit-flipped, or lost entirely (the
/// flush was acknowledged but never hit the medium). Independent Bernoulli
/// draws per write from the injector's dedicated storage RNG stream, so
/// adding a profile never shifts the seeded network drop/spike sequence.
struct StorageFaultProfile {
  NodeId node = 0;
  double torn_write_probability = 0.0;
  double bit_flip_probability = 0.0;
  double lost_flush_probability = 0.0;
};

/// A stalled-I/O window: while active (half-open [start_at, end_at), like
/// flaps), every durable write on `node` costs `multiplier`x its modelled
/// time — the brown-out disk that slows checkpoints without failing them.
struct StorageStall {
  NodeId node = 0;
  std::uint64_t start_at = 0;
  std::uint64_t end_at = 0;
  double multiplier = 4.0;
};

/// A FaultPlan failed validation (see FaultPlan::validate). Typed so tests
/// and callers can distinguish a malformed plan from other argument errors.
class FaultPlanError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

struct FaultPlan {
  std::uint64_t seed = 1;
  /// Per-message probability that a non-loopback send is lost in flight.
  double drop_probability = 0.0;
  /// Per-message probability of a latency spike (straggler link).
  double spike_probability = 0.0;
  /// Modelled transfer time multiplier applied to spiked messages.
  double spike_multiplier = 8.0;
  /// Transient node outages, driven by the injector's logical clock.
  std::vector<NodeFlap> flaps;
  /// Per-destination drop-rate overrides (grey failures). Exactly one
  /// Bernoulli draw is consumed per should_drop call either way, so adding
  /// an override never shifts the seeded drop/spike sequence structure.
  std::vector<NodeDropRate> node_drops;
  /// Crash-restarts (state wiped), driven by the same logical clock.
  std::vector<NodeCrash> node_crashes;
  /// Network partition windows, driven by the same logical clock.
  std::vector<NetworkPartition> partitions;
  /// Per-node silent storage corruption rates (at most one per node).
  std::vector<StorageFaultProfile> storage_faults;
  /// Stalled-I/O windows, driven by the same logical clock.
  std::vector<StorageStall> storage_stalls;

  /// Rejects malformed plans with FaultPlanError instead of letting them
  /// silently misbehave mid-run: probabilities outside [0, 1], inverted or
  /// empty flap/crash windows, windows starting at tick 0 (the logical
  /// clock starts at 1, so a tick-0 transition would never fire — the
  /// unsigned stand-in for a "negative tick"), and overlapping flap/crash
  /// windows on the same node. Partition windows get the same treatment:
  /// tick-0 starts, inverted/empty windows, node-set cuts with no (or
  /// duplicate) nodes, and *any* time overlap between two partition windows
  /// are rejected (two concurrent cuts compose into a topology the plan
  /// never named). Storage faults too: out-of-range probabilities,
  /// duplicate per-node profiles, stall windows that start at tick 0, are
  /// inverted/empty, overlap on the same node, or carry a multiplier < 1
  /// (a sub-unit stall would *speed up* writes). Called by the
  /// FaultInjector constructor.
  void validate() const;
};

struct FaultStats {
  std::uint64_t ticks = 0;       ///< logical clock
  std::uint64_t drops = 0;       ///< messages dropped (random, non-partition)
  std::uint64_t spikes = 0;      ///< latency spikes injected
  std::uint64_t flap_downs = 0;  ///< node-down transitions applied
  std::uint64_t flap_ups = 0;    ///< node-recovery transitions applied
  std::uint64_t crashes = 0;     ///< crash transitions applied
  std::uint64_t restarts = 0;    ///< restart transitions applied
  std::uint64_t partition_cuts = 0;   ///< partition windows opened
  std::uint64_t partition_heals = 0;  ///< partition windows healed
  std::uint64_t partition_drops = 0;  ///< messages lost to an active cut
  std::uint64_t torn_writes = 0;      ///< durable writes torn to a prefix
  std::uint64_t bit_flips = 0;        ///< durable writes with a flipped bit
  std::uint64_t lost_flushes = 0;     ///< durable writes that never landed
  std::uint64_t stalled_writes = 0;   ///< durable writes inside a stall window
};

/// Observer of crash/restart transitions (src/recovery model replicas):
/// on_crash must wipe whatever the node held in memory; on_restart should
/// begin checkpoint/WAL replay + anti-entropy. Called synchronously from
/// FaultInjector::tick in registration order (deterministic).
class CrashListener {
 public:
  virtual ~CrashListener() = default;
  virtual void on_crash(NodeId node, std::uint64_t tick) = 0;
  virtual void on_restart(NodeId node, std::uint64_t tick) = 0;
};

/// What a single injector tick did, so executors can fold recovery work
/// into the ExecReport they are building (recoveries / restore bytes).
struct TickEffects {
  std::uint64_t crashes = 0;
  std::uint64_t restarts = 0;
  std::uint64_t restore_bytes = 0;  ///< shard bytes re-replicated this tick
};

/// Drives a FaultPlan against a Cluster and its Network. Attach wires the
/// injector into Network (drop/spike decisions on the fallible send path)
/// and Cluster (so executors can tick the flap schedule); detach restores
/// fault-free behavior and heals any nodes this injector downed.
class FaultInjector final : public LinkFaultModel,
                            public StorageFaultModel {
 public:
  explicit FaultInjector(FaultPlan plan);

  void attach(Cluster& cluster);
  void detach(Cluster& cluster);

  /// Advances the logical clock one tick and applies any flap and
  /// crash/restart transitions that fall due (plus retries of shard
  /// rebuilds that found no live donor earlier). Called by executors at
  /// task/RPC boundaries; the returned effects let them account recovery
  /// work to the ExecReport in flight.
  TickEffects tick(Cluster& cluster);

  /// Registers/removes an observer of crash/restart transitions (e.g. a
  /// recovery::ModelReplicaSet). Listeners are notified synchronously, in
  /// registration order; the caller owns the listener and must remove it
  /// before destroying it.
  void add_crash_listener(CrashListener* listener);
  void remove_crash_listener(CrashListener* listener);

  // LinkFaultModel — consulted by Network on the fallible send path.
  bool should_drop(NodeId from, NodeId to) override;
  double latency_multiplier(NodeId from, NodeId to) override;

  // StorageFaultModel — consulted by CheckpointStore per persisted frame.
  // Draws come from a dedicated storage RNG stream derived from the plan
  // seed, so storage faults never perturb the network drop/spike sequence
  // (and vice versa). Exactly three Bernoullis are consumed per write on a
  // profiled node — lost, torn, flip, in that order — regardless of
  // outcome, so the draw structure is stable across fault severities.
  WriteFault on_durable_write(NodeId node, std::size_t frame_bytes) override;
  double stall_multiplier(NodeId node) const override;

  /// True while any partition window is active at the current tick.
  bool partition_active() const noexcept;
  /// True when an active partition cuts the from->to link (deterministic —
  /// no RNG involved; this is what should_drop consults first). Requires a
  /// prior attach() for zone cuts (the zone map is snapshotted there);
  /// unattached zone cuts sever nothing.
  bool link_cut(NodeId from, NodeId to) const noexcept;

  /// The injector's RNG also drives retry-backoff jitter so that a single
  /// seed reproduces the full fault + recovery trace.
  Rng& rng() noexcept { return rng_; }

  std::uint64_t now() const noexcept { return stats_.ticks; }
  const FaultStats& stats() const noexcept { return stats_; }
  const FaultPlan& plan() const noexcept { return plan_; }

  /// Rewinds the clock, reseeds both RNG streams, and zeroes stats (does
  /// not touch cluster node state — detach/attach for that).
  void reset();

 private:
  /// Zone of `node` per the attach-time snapshot (0 when never attached —
  /// single-zone behavior).
  std::uint32_t zone_of(NodeId node) const noexcept {
    return node < node_zone_.size() ? node_zone_[node] : 0;
  }

  FaultPlan plan_;
  Rng rng_;
  /// Dedicated stream for storage-fault draws (seed-derived via SplitMix64
  /// so plans with and without storage faults share the network sequence).
  Rng storage_rng_;
  FaultStats stats_;
  std::vector<CrashListener*> listeners_;
  /// Network zone assignment, snapshotted at attach() so zone-cut
  /// partitions can be evaluated without a Network dependency per call.
  std::vector<std::uint32_t> node_zone_;
};

}  // namespace sea
