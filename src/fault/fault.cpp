#include "fault/fault.h"

namespace sea {

FaultInjector::FaultInjector(FaultPlan plan)
    : plan_(std::move(plan)), rng_(plan_.seed) {}

void FaultInjector::attach(Cluster& cluster) {
  cluster.network().set_fault_model(this);
  cluster.set_fault_injector(this);
}

void FaultInjector::detach(Cluster& cluster) {
  if (cluster.network().fault_model() == this)
    cluster.network().set_fault_model(nullptr);
  if (cluster.fault_injector() == this) cluster.set_fault_injector(nullptr);
  // Heal anything this injector's schedule left down.
  for (const auto& flap : plan_.flaps)
    if (flap.node < cluster.num_nodes())
      cluster.set_node_down(flap.node, false);
}

void FaultInjector::tick(Cluster& cluster) {
  const std::uint64_t t = ++stats_.ticks;
  for (const auto& flap : plan_.flaps) {
    if (flap.node >= cluster.num_nodes()) continue;
    if (t == flap.down_at) {
      cluster.set_node_down(flap.node, true);
      ++stats_.flap_downs;
    }
    if (t == flap.up_at) {
      cluster.set_node_down(flap.node, false);
      ++stats_.flap_ups;
    }
  }
}

bool FaultInjector::should_drop(NodeId from, NodeId to) {
  if (from == to) return false;
  double p = plan_.drop_probability;
  for (const auto& nd : plan_.node_drops)
    if (nd.node == to) p = nd.drop_probability;
  if (p <= 0.0) return false;
  if (!rng_.bernoulli(p)) return false;
  ++stats_.drops;
  return true;
}

double FaultInjector::latency_multiplier(NodeId from, NodeId to) {
  if (from == to || plan_.spike_probability <= 0.0) return 1.0;
  if (!rng_.bernoulli(plan_.spike_probability)) return 1.0;
  ++stats_.spikes;
  return plan_.spike_multiplier;
}

void FaultInjector::reset() {
  rng_.reseed(plan_.seed);
  stats_ = FaultStats{};
}

}  // namespace sea
