#include "fault/fault.h"

#include <algorithm>

namespace sea {

namespace {

/// A half-open [start, end) unavailability window for overlap checking,
/// unifying flaps and crashes.
struct Window {
  NodeId node;
  std::uint64_t start;
  std::uint64_t end;
  const char* kind;
};

std::string window_string(const Window& w) {
  return std::string(w.kind) + " [" + std::to_string(w.start) + ", " +
         std::to_string(w.end) + ") on node " + std::to_string(w.node);
}

}  // namespace

void FaultPlan::validate() const {
  const auto check_probability = [](double p, const std::string& what) {
    if (!(p >= 0.0 && p <= 1.0))
      throw FaultPlanError("FaultPlan: " + what + " = " + std::to_string(p) +
                           " is outside [0, 1]");
  };
  check_probability(drop_probability, "drop_probability");
  check_probability(spike_probability, "spike_probability");
  for (const auto& nd : node_drops)
    check_probability(nd.drop_probability,
                      "node_drops[" + std::to_string(nd.node) +
                          "].drop_probability");
  for (std::size_t i = 0; i < storage_faults.size(); ++i) {
    const StorageFaultProfile& sf = storage_faults[i];
    const std::string which =
        "storage_faults[node " + std::to_string(sf.node) + "]";
    check_probability(sf.torn_write_probability,
                      which + ".torn_write_probability");
    check_probability(sf.bit_flip_probability,
                      which + ".bit_flip_probability");
    check_probability(sf.lost_flush_probability,
                      which + ".lost_flush_probability");
    for (std::size_t j = 0; j < i; ++j)
      if (storage_faults[j].node == sf.node)
        throw FaultPlanError(
            "FaultPlan: node " + std::to_string(sf.node) +
            " has two storage-fault profiles (rates would silently "
            "shadow each other)");
  }

  std::vector<Window> windows;
  windows.reserve(flaps.size() + node_crashes.size());
  for (const auto& f : flaps) {
    // The logical clock starts at 1 (tick() pre-increments), so a tick-0
    // transition would silently never fire.
    if (f.down_at == 0)
      throw FaultPlanError("FaultPlan: flap on node " +
                           std::to_string(f.node) +
                           " has down_at=0, which never fires (the logical "
                           "clock starts at tick 1)");
    if (f.up_at <= f.down_at)
      throw FaultPlanError("FaultPlan: inverted/empty flap window [" +
                           std::to_string(f.down_at) + ", " +
                           std::to_string(f.up_at) + ") on node " +
                           std::to_string(f.node));
    windows.push_back({f.node, f.down_at, f.up_at, "flap"});
  }
  for (const auto& c : node_crashes) {
    if (c.crash_at == 0)
      throw FaultPlanError("FaultPlan: crash on node " +
                           std::to_string(c.node) +
                           " has crash_at=0, which never fires (the logical "
                           "clock starts at tick 1)");
    if (c.restart_at <= c.crash_at)
      throw FaultPlanError("FaultPlan: inverted/empty crash window [" +
                           std::to_string(c.crash_at) + ", " +
                           std::to_string(c.restart_at) + ") on node " +
                           std::to_string(c.node));
    windows.push_back({c.node, c.crash_at, c.restart_at, "crash"});
  }
  // Partition windows: same window rules as flaps/crashes, plus node-set
  // sanity. Overlap is rejected across *all* partition pairs (not per
  // node): two concurrent cuts compose into a topology the plan never
  // named, so the schedule would silently diverge from intent.
  std::vector<Window> cuts;
  cuts.reserve(partitions.size());
  for (std::size_t i = 0; i < partitions.size(); ++i) {
    const NetworkPartition& p = partitions[i];
    const std::string which = "partition[" + std::to_string(i) + "]";
    if (p.start_at == 0)
      throw FaultPlanError("FaultPlan: " + which +
                           " has start_at=0, which never fires (the logical "
                           "clock starts at tick 1)");
    if (p.heal_at <= p.start_at)
      throw FaultPlanError("FaultPlan: inverted/empty partition window [" +
                           std::to_string(p.start_at) + ", " +
                           std::to_string(p.heal_at) + ") in " + which);
    if (!p.zone_cut) {
      if (p.nodes.empty())
        throw FaultPlanError("FaultPlan: " + which +
                             " is a node-set cut with no nodes");
      std::vector<NodeId> sorted = p.nodes;
      std::sort(sorted.begin(), sorted.end());
      if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end())
        throw FaultPlanError("FaultPlan: " + which +
                             " lists a node twice in its cut set");
    }
    cuts.push_back({0, p.start_at, p.heal_at, "partition"});
  }
  std::sort(cuts.begin(), cuts.end(), [](const Window& a, const Window& b) {
    if (a.start != b.start) return a.start < b.start;
    return a.end < b.end;
  });
  const auto cut_string = [](const Window& w) {
    return "[" + std::to_string(w.start) + ", " + std::to_string(w.end) + ")";
  };
  for (std::size_t i = 1; i < cuts.size(); ++i)
    if (cuts[i].start < cuts[i - 1].end)
      throw FaultPlanError("FaultPlan: overlapping partition windows " +
                           cut_string(cuts[i - 1]) + " and " +
                           cut_string(cuts[i]));

  // Stall windows: same tick-0 / inverted-window rules, a multiplier >= 1
  // (a sub-unit stall would *speed up* writes), and no same-node overlap
  // (two active multipliers compose into a slowdown the plan never named).
  // Stalls may freely overlap crash/flap windows on other axes: a brown-out
  // disk on a flapping node is a composition the plan *can* mean.
  std::vector<Window> stalls;
  stalls.reserve(storage_stalls.size());
  for (const auto& s : storage_stalls) {
    if (s.start_at == 0)
      throw FaultPlanError("FaultPlan: storage stall on node " +
                           std::to_string(s.node) +
                           " has start_at=0, which never fires (the logical "
                           "clock starts at tick 1)");
    if (s.end_at <= s.start_at)
      throw FaultPlanError("FaultPlan: inverted/empty storage stall window [" +
                           std::to_string(s.start_at) + ", " +
                           std::to_string(s.end_at) + ") on node " +
                           std::to_string(s.node));
    if (!(s.multiplier >= 1.0))
      throw FaultPlanError("FaultPlan: storage stall on node " +
                           std::to_string(s.node) + " has multiplier " +
                           std::to_string(s.multiplier) +
                           " < 1 (a stall cannot speed writes up)");
    stalls.push_back({s.node, s.start_at, s.end_at, "storage stall"});
  }
  std::sort(stalls.begin(), stalls.end(),
            [](const Window& a, const Window& b) {
              if (a.node != b.node) return a.node < b.node;
              if (a.start != b.start) return a.start < b.start;
              return a.end < b.end;
            });
  for (std::size_t i = 1; i < stalls.size(); ++i)
    if (stalls[i].node == stalls[i - 1].node &&
        stalls[i].start < stalls[i - 1].end)
      throw FaultPlanError("FaultPlan: overlapping windows: " +
                           window_string(stalls[i - 1]) + " and " +
                           window_string(stalls[i]));

  // Two windows on the same node may not overlap: the second down/crash
  // transition would be swallowed (or a restart would "heal" a flap it
  // never owned), producing schedules that silently diverge from the plan.
  // Back-to-back windows (prev.end == next.start) are fine: half-open.
  std::sort(windows.begin(), windows.end(),
            [](const Window& a, const Window& b) {
              if (a.node != b.node) return a.node < b.node;
              if (a.start != b.start) return a.start < b.start;
              return a.end < b.end;
            });
  for (std::size_t i = 1; i < windows.size(); ++i) {
    const Window& prev = windows[i - 1];
    const Window& cur = windows[i];
    if (prev.node == cur.node && cur.start < prev.end)
      throw FaultPlanError("FaultPlan: overlapping windows: " +
                           window_string(prev) + " and " +
                           window_string(cur));
  }
}

namespace {

/// Storage draws come from their own stream so that adding storage faults
/// to a plan never shifts the network drop/spike sequence. SplitMix64 over
/// a domain-separated seed keeps the two streams statistically independent.
std::uint64_t storage_stream_seed(std::uint64_t seed) noexcept {
  return SplitMix64(seed ^ 0x5707A6EFA017ULL).next();
}

}  // namespace

FaultInjector::FaultInjector(FaultPlan plan)
    : plan_(std::move(plan)),
      rng_(plan_.seed),
      storage_rng_(storage_stream_seed(plan_.seed)) {
  plan_.validate();
}

void FaultInjector::attach(Cluster& cluster) {
  cluster.network().set_fault_model(this);
  cluster.set_fault_injector(this);
  // Snapshot the zone map so zone-cut partitions evaluate without touching
  // the network per message.
  node_zone_.resize(cluster.network().num_nodes());
  for (std::size_t n = 0; n < node_zone_.size(); ++n)
    node_zone_[n] = cluster.network().zone_of(static_cast<NodeId>(n));
}

void FaultInjector::detach(Cluster& cluster) {
  if (cluster.network().fault_model() == this)
    cluster.network().set_fault_model(nullptr);
  if (cluster.fault_injector() == this) cluster.set_fault_injector(nullptr);
  // Heal anything this injector's schedule left down.
  for (const auto& flap : plan_.flaps)
    if (flap.node < cluster.num_nodes())
      cluster.set_node_down(flap.node, false);
  // Crashed (or still-placement-lost) nodes are restarted so the cluster is
  // fully serviceable again; restart_node no-ops on healthy nodes.
  for (const auto& crash : plan_.node_crashes) {
    if (crash.node >= cluster.num_nodes()) continue;
    if (cluster.node_is_down(crash.node) ||
        cluster.placement_lost(crash.node)) {
      cluster.restart_node(crash.node);
      for (auto* l : listeners_) l->on_restart(crash.node, stats_.ticks);
    }
  }
}

void FaultInjector::add_crash_listener(CrashListener* listener) {
  if (listener) listeners_.push_back(listener);
}

void FaultInjector::remove_crash_listener(CrashListener* listener) {
  listeners_.erase(
      std::remove(listeners_.begin(), listeners_.end(), listener),
      listeners_.end());
}

TickEffects FaultInjector::tick(Cluster& cluster) {
  TickEffects fx;
  const std::uint64_t t = ++stats_.ticks;
  for (const auto& flap : plan_.flaps) {
    if (flap.node >= cluster.num_nodes()) continue;
    if (t == flap.down_at) {
      cluster.set_node_down(flap.node, true);
      ++stats_.flap_downs;
    }
    if (t == flap.up_at) {
      cluster.set_node_down(flap.node, false);
      ++stats_.flap_ups;
    }
  }
  for (const auto& crash : plan_.node_crashes) {
    if (crash.node >= cluster.num_nodes()) continue;
    if (t == crash.crash_at) {
      cluster.crash_node(crash.node);
      ++stats_.crashes;
      ++fx.crashes;
      for (auto* l : listeners_) l->on_crash(crash.node, t);
    }
    if (t == crash.restart_at) {
      fx.restore_bytes += cluster.restart_node(crash.node);
      ++stats_.restarts;
      ++fx.restarts;
      for (auto* l : listeners_) l->on_restart(crash.node, t);
    }
  }
  for (const auto& p : plan_.partitions) {
    const std::int64_t zone =
        p.zone_cut ? static_cast<std::int64_t>(p.zone) : -1;
    if (t == p.start_at) {
      ++stats_.partition_cuts;
      if (cluster.tracer()) cluster.tracer()->event("partition", "cut", zone);
    }
    if (t == p.heal_at) {
      ++stats_.partition_heals;
      if (cluster.tracer()) cluster.tracer()->event("partition", "heal", zone);
    }
  }
  // Shard rebuilds that found no live donor at restart time retry once per
  // tick until a donor node is back (no-op when nothing is lost).
  fx.restore_bytes += cluster.restore_lost_placements();
  return fx;
}

bool FaultInjector::partition_active() const noexcept {
  const std::uint64_t t = stats_.ticks;
  for (const auto& p : plan_.partitions)
    if (t >= p.start_at && t < p.heal_at) return true;
  return false;
}

bool FaultInjector::link_cut(NodeId from, NodeId to) const noexcept {
  if (from == to) return false;
  const std::uint64_t t = stats_.ticks;
  for (const auto& p : plan_.partitions) {
    if (t < p.start_at || t >= p.heal_at) continue;
    bool from_in, to_in;
    if (p.zone_cut) {
      from_in = zone_of(from) == p.zone;
      to_in = zone_of(to) == p.zone;
    } else {
      from_in = to_in = false;
      for (const NodeId n : p.nodes) {
        from_in = from_in || n == from;
        to_in = to_in || n == to;
      }
    }
    if (from_in != to_in) return true;
  }
  return false;
}

bool FaultInjector::should_drop(NodeId from, NodeId to) {
  if (from == to) return false;
  // Partition cuts are deterministic (no RNG draw): adding a partition to a
  // plan never shifts the seeded drop sequence of intra-side messages.
  if (link_cut(from, to)) {
    ++stats_.partition_drops;
    return true;
  }
  double p = plan_.drop_probability;
  for (const auto& nd : plan_.node_drops)
    if (nd.node == to) p = nd.drop_probability;
  if (p <= 0.0) return false;
  if (!rng_.bernoulli(p)) return false;
  ++stats_.drops;
  return true;
}

double FaultInjector::latency_multiplier(NodeId from, NodeId to) {
  if (from == to || plan_.spike_probability <= 0.0) return 1.0;
  if (!rng_.bernoulli(plan_.spike_probability)) return 1.0;
  ++stats_.spikes;
  return plan_.spike_multiplier;
}

WriteFault FaultInjector::on_durable_write(NodeId node,
                                           std::size_t frame_bytes) {
  WriteFault f;
  f.stall_multiplier = stall_multiplier(node);
  if (f.stall_multiplier > 1.0) ++stats_.stalled_writes;
  const StorageFaultProfile* prof = nullptr;
  for (const auto& p : plan_.storage_faults)
    if (p.node == node) prof = &p;
  if (!prof) return f;
  // Fixed draw structure: three Bernoullis per write on a profiled node,
  // in lost/torn/flip order, regardless of outcome. Precedence lost > torn
  // > flip: a write that never landed cannot also be torn or flipped.
  const bool lost = storage_rng_.bernoulli(prof->lost_flush_probability);
  const bool torn = storage_rng_.bernoulli(prof->torn_write_probability);
  const bool flip = storage_rng_.bernoulli(prof->bit_flip_probability);
  if (lost) {
    f.lost = true;
    ++stats_.lost_flushes;
    return f;
  }
  if (torn && frame_bytes > 0) {
    f.torn = true;
    f.keep_bytes = static_cast<std::size_t>(
        storage_rng_.uniform_index(frame_bytes));  // always a strict prefix
    ++stats_.torn_writes;
    return f;
  }
  if (flip && frame_bytes > 0) {
    f.flipped = true;
    f.flip_offset =
        static_cast<std::size_t>(storage_rng_.uniform_index(frame_bytes));
    f.flip_mask = static_cast<std::uint8_t>(
        1u << storage_rng_.uniform_index(8));
    ++stats_.bit_flips;
  }
  return f;
}

double FaultInjector::stall_multiplier(NodeId node) const {
  const std::uint64_t t = stats_.ticks;
  double m = 1.0;
  for (const auto& s : plan_.storage_stalls)
    if (s.node == node && t >= s.start_at && t < s.end_at)
      m = std::max(m, s.multiplier);
  return m;
}

void FaultInjector::reset() {
  rng_.reseed(plan_.seed);
  storage_rng_.reseed(storage_stream_seed(plan_.seed));
  stats_ = FaultStats{};
}

}  // namespace sea
