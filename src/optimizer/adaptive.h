// AdaptiveExecutor: ExactExecutor wrapped with a learned execution choice:
// the paradigm (RT3.2, MapReduce vs coordinator-cohort) *and* the access
// structure behind the coordinator (RT3.1, k-d tree vs uniform grid vs
// CDF-learned grid) — four alternatives decided on the fly per query
// (experiment E6).
//
// Features fed to the selector are cheap coordinator-side estimates: query
// geometry (normalized volume / radius / k), dimensionality, log data
// size, the estimated selectivity from a per-table ProductHistogram — the
// "statistical structures" P3 keeps at the coordinator — and modelled
// per-structure build/lookup cost priors (index/learned.h), which is how
// the planner learns when *not* to use the learned tier.
#pragma once

#include <memory>
#include <string>

#include "index/histogram.h"
#include "optimizer/selector.h"
#include "sea/exact.h"

namespace sea {

enum class CostMetric {
  kMakespan,   ///< modelled end-to-end latency
  kTotalWork,  ///< total resource consumption (cloud-bill view)
};

struct AdaptiveStats {
  std::uint64_t queries = 0;
  std::uint64_t chose_mapreduce = 0;
  std::uint64_t chose_indexed = 0;      ///< coordinator + k-d tree
  std::uint64_t chose_grid = 0;         ///< coordinator + grid (RT3.1)
  std::uint64_t chose_learned_grid = 0; ///< coordinator + learned grid
  double total_cost = 0.0;
};

class AdaptiveExecutor {
 public:
  AdaptiveExecutor(ExactExecutor& exec, CostMetric metric = CostMetric::kMakespan,
                   SelectorConfig selector_config = {});

  /// Executes with the learned best paradigm and feeds the observed cost
  /// back into the selector.
  ExactResult execute(const AnalyticalQuery& query);

  /// The features the selector sees for a query (exposed for tests).
  std::vector<double> featurize(const AnalyticalQuery& query);

  const MethodSelector& selector() const noexcept { return selector_; }
  const AdaptiveStats& stats() const noexcept { return stats_; }

 private:
  const ProductHistogram& histogram_for(
      const std::vector<std::size_t>& cols);

  ExactExecutor& exec_;
  CostMetric metric_;
  MethodSelector selector_;
  AdaptiveStats stats_;
  std::unordered_map<std::string, ProductHistogram> histograms_;
};

}  // namespace sea
