// Learned execution-method selection (paper P4, RT3, G5/G6).
//
// A MethodSelector learns, online, which of `num_methods` alternatives is
// cheapest for a query described by a numeric feature vector. It explores
// with a decaying epsilon-greedy policy (after a forced round-robin warm-
// up) and exploits per-method gradient-boosted cost models — "training,
// learning, and building optimising modules, which on-the-fly adopt the
// best execution method" (O6).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"
#include "ml/gbm.h"

namespace sea {

struct SelectorConfig {
  /// Observations per method before the cost models are trusted.
  std::size_t min_samples_per_method = 12;
  /// Initial exploration rate; decays as 1/(1 + decay * observations).
  double epsilon = 0.25;
  double epsilon_decay = 0.01;
  std::size_t refit_interval = 16;
  GbmParams gbm;
  std::uint64_t seed = 2024;

  SelectorConfig() {
    gbm.num_trees = 60;
    gbm.max_depth = 3;
    gbm.min_leaf = 3;
  }
};

struct SelectorStats {
  std::uint64_t decisions = 0;
  std::uint64_t explored = 0;   ///< chosen for exploration, not exploitation
  std::vector<std::uint64_t> per_method_chosen;
  double total_observed_cost = 0.0;
};

class MethodSelector {
 public:
  MethodSelector(std::size_t num_methods, SelectorConfig config = {});

  std::size_t num_methods() const noexcept { return models_.size(); }

  /// Chooses a method for the given features (may explore).
  std::size_t choose(std::span<const double> features);

  /// Pure exploitation: argmin of predicted cost (round-robin before the
  /// models are warm).
  std::size_t best(std::span<const double> features) const;

  /// Predicted cost of running `method` on `features`; +inf when cold.
  double predicted_cost(std::span<const double> features,
                        std::size_t method) const;

  /// Feeds back the observed cost of `method` on `features`.
  void observe(std::span<const double> features, std::size_t method,
               double cost);

  const SelectorStats& stats() const noexcept { return stats_; }
  bool warm() const noexcept;

 private:
  struct PerMethod {
    std::vector<std::vector<double>> xs;
    std::vector<double> ys;
    GbmRegressor model;
    std::size_t since_refit = 0;
  };

  void maybe_refit(PerMethod& m);

  SelectorConfig config_;
  std::vector<PerMethod> models_;
  SelectorStats stats_;
  Rng rng_;
};

}  // namespace sea
