#include "optimizer/selector.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace sea {

MethodSelector::MethodSelector(std::size_t num_methods, SelectorConfig config)
    : config_(config), models_(num_methods), rng_(config.seed) {
  if (num_methods < 2)
    throw std::invalid_argument("MethodSelector: need >= 2 methods");
  stats_.per_method_chosen.assign(num_methods, 0);
}

bool MethodSelector::warm() const noexcept {
  for (const auto& m : models_)
    if (m.xs.size() < config_.min_samples_per_method) return false;
  return true;
}

double MethodSelector::predicted_cost(std::span<const double> features,
                                      std::size_t method) const {
  if (method >= models_.size())
    throw std::out_of_range("MethodSelector::predicted_cost");
  const auto& m = models_[method];
  if (!m.model.fitted())
    return std::numeric_limits<double>::infinity();
  return m.model.predict(features);
}

std::size_t MethodSelector::best(std::span<const double> features) const {
  // Cold phase: pick the least-sampled method (round-robin).
  if (!warm()) {
    std::size_t pick = 0;
    for (std::size_t i = 1; i < models_.size(); ++i)
      if (models_[i].xs.size() < models_[pick].xs.size()) pick = i;
    return pick;
  }
  std::size_t pick = 0;
  double best_cost = predicted_cost(features, 0);
  for (std::size_t i = 1; i < models_.size(); ++i) {
    const double c = predicted_cost(features, i);
    if (c < best_cost) {
      best_cost = c;
      pick = i;
    }
  }
  return pick;
}

std::size_t MethodSelector::choose(std::span<const double> features) {
  ++stats_.decisions;
  std::size_t pick;
  if (!warm()) {
    pick = best(features);  // round-robin warm-up
    ++stats_.explored;
  } else {
    const double eps =
        config_.epsilon /
        (1.0 + config_.epsilon_decay * static_cast<double>(stats_.decisions));
    if (rng_.bernoulli(eps)) {
      pick = rng_.uniform_index(models_.size());
      ++stats_.explored;
    } else {
      pick = best(features);
    }
  }
  ++stats_.per_method_chosen[pick];
  return pick;
}

void MethodSelector::maybe_refit(PerMethod& m) {
  if (m.xs.size() < config_.min_samples_per_method) return;
  if (m.model.fitted() && m.since_refit < config_.refit_interval) return;
  m.model = GbmRegressor(config_.gbm);
  m.model.fit(m.xs, m.ys);
  m.since_refit = 0;
}

void MethodSelector::observe(std::span<const double> features,
                             std::size_t method, double cost) {
  if (method >= models_.size())
    throw std::out_of_range("MethodSelector::observe");
  auto& m = models_[method];
  m.xs.emplace_back(features.begin(), features.end());
  m.ys.push_back(cost);
  ++m.since_refit;
  stats_.total_observed_cost += cost;
  maybe_refit(m);
}

}  // namespace sea
