#include "optimizer/adaptive.h"

#include <cmath>
#include <span>
#include <sstream>

namespace sea {

AdaptiveExecutor::AdaptiveExecutor(ExactExecutor& exec, CostMetric metric,
                                   SelectorConfig selector_config)
    : exec_(exec), metric_(metric), selector_(4, selector_config) {}

const ProductHistogram& AdaptiveExecutor::histogram_for(
    const std::vector<std::size_t>& cols) {
  std::ostringstream key;
  for (const auto c : cols) key << c << ',';
  auto it = histograms_.find(key.str());
  if (it != histograms_.end()) return it->second;
  // Built once from the stored partitions (a metadata/synopsis pass that
  // persistent systems would maintain anyway). Concatenate each queried
  // column across partitions and hand the histogram contiguous spans — no
  // row-major Point materialization.
  Cluster& cluster = exec_.cluster();
  std::vector<std::vector<double>> cols_data(cols.size());
  for (std::size_t n = 0; n < cluster.num_nodes(); ++n) {
    const Table& part = cluster.partition(exec_.table_name(),
                                          static_cast<NodeId>(n));
    for (std::size_t c = 0; c < cols.size(); ++c) {
      const auto col = part.column(cols[c]);
      cols_data[c].insert(cols_data[c].end(), col.begin(), col.end());
    }
  }
  std::vector<std::span<const double>> spans(cols_data.begin(),
                                             cols_data.end());
  return histograms_.emplace(key.str(), ProductHistogram(spans, 64))
      .first->second;
}

std::vector<double> AdaptiveExecutor::featurize(const AnalyticalQuery& q) {
  q.validate();
  const Rect& domain = exec_.domain(q.subspace_cols);
  const QueryFeatures f = extract_features(q, domain);
  const auto& hist = histogram_for(q.subspace_cols);
  const double table_rows =
      static_cast<double>(exec_.cluster().table_rows(exec_.table_name()));

  std::vector<double> features;
  features.push_back(static_cast<double>(q.subspace_cols.size()));
  features.push_back(std::log1p(table_rows));
  features.push_back(static_cast<double>(exec_.cluster().num_nodes()));
  // Selection-type one-hot.
  features.push_back(q.selection == SelectionType::kRange ? 1.0 : 0.0);
  features.push_back(q.selection == SelectionType::kRadius ? 1.0 : 0.0);
  features.push_back(
      q.selection == SelectionType::kNearestNeighbors ? 1.0 : 0.0);
  // Extent features (last entries of the model feature vector).
  for (std::size_t i = f.position.size(); i < f.model.size(); ++i)
    features.push_back(f.model[i]);
  while (features.size() < 8) features.push_back(0.0);
  // Estimated selectivity from the synopsis.
  double est_sel = 0.0;
  if (q.selection == SelectionType::kRange) {
    est_sel = hist.estimate_count(q.range) / std::max(1.0, table_rows);
  } else if (q.selection == SelectionType::kRadius) {
    est_sel =
        hist.estimate_count(q.ball.bounding_box()) / std::max(1.0, table_rows);
  } else {
    est_sel = static_cast<double>(q.knn_k) / std::max(1.0, table_rows);
  }
  features.push_back(est_sel);
  // Modelled access-structure cost priors (index/learned.h): the selector's
  // online models correct these from observed cost, but they give the cold
  // models a head start on the build-amortization trade-off.
  const auto rows = static_cast<std::size_t>(table_rows);
  const std::size_t dims = q.subspace_cols.size();
  const IndexCostEstimate kd = modelled_kdtree_cost(rows, dims, est_sel);
  const IndexCostEstimate gr = modelled_grid_cost(rows, dims, est_sel);
  const IndexCostEstimate lg = modelled_learned_grid_cost(rows, dims, est_sel);
  features.push_back(std::log1p(kd.lookup_ms));
  features.push_back(std::log1p(gr.lookup_ms));
  features.push_back(std::log1p(lg.lookup_ms));
  return features;
}

ExactResult AdaptiveExecutor::execute(const AnalyticalQuery& query) {
  const std::vector<double> features = featurize(query);
  const std::size_t method = selector_.choose(features);
  const ExecParadigm paradigm =
      method == 0   ? ExecParadigm::kMapReduce
      : method == 1 ? ExecParadigm::kCoordinatorIndexed
      : method == 2 ? ExecParadigm::kCoordinatorGrid
                    : ExecParadigm::kCoordinatorLearned;
  ExactResult result = exec_.execute(query, paradigm);
  const double cost = metric_ == CostMetric::kMakespan
                          ? result.report.makespan_ms()
                          : result.report.total_work_ms();
  selector_.observe(features, method, cost);
  ++stats_.queries;
  if (method == 0)
    ++stats_.chose_mapreduce;
  else if (method == 1)
    ++stats_.chose_indexed;
  else if (method == 2)
    ++stats_.chose_grid;
  else
    ++stats_.chose_learned_grid;
  stats_.total_cost += cost;
  return result;
}

}  // namespace sea
