#include "raw/raw_store.h"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

namespace sea {

RawStore::RawStore(std::string csv_text) : raw_(std::move(csv_text)) {
  // Header.
  const std::size_t header_end = raw_.find('\n');
  if (header_end == std::string::npos)
    throw std::invalid_argument("RawStore: no header line");
  std::size_t start = 0;
  while (start <= header_end) {
    std::size_t end = raw_.find_first_of(",\n", start);
    if (end == std::string::npos || end > header_end) end = header_end;
    column_names_.push_back(raw_.substr(start, end - start));
    start = end + 1;
    if (end == header_end) break;
  }
  if (column_names_.empty())
    throw std::invalid_argument("RawStore: empty header");

  // Row offsets only — values stay unparsed (the point of RT2.3).
  std::size_t pos = header_end + 1;
  while (pos < raw_.size()) {
    const std::size_t line_end = raw_.find('\n', pos);
    const std::size_t end = line_end == std::string::npos ? raw_.size()
                                                          : line_end;
    if (end > pos) row_offsets_.push_back(pos);
    if (line_end == std::string::npos) break;
    pos = line_end + 1;
  }
  cache_.resize(column_names_.size());
}

const std::string& RawStore::column_name(std::size_t c) const {
  if (c >= column_names_.size())
    throw std::out_of_range("RawStore::column_name");
  return column_names_[c];
}

std::size_t RawStore::column_index(const std::string& name) const {
  for (std::size_t c = 0; c < column_names_.size(); ++c)
    if (column_names_[c] == name) return c;
  throw std::out_of_range("RawStore::column_index: no column " + name);
}

void RawStore::ensure_parsed(std::size_t col, RawQueryCost* cost) {
  ColumnCache& cc = cache_[col];
  if (cc.parsed) return;
  cc.values.reserve(row_offsets_.size());
  for (const std::size_t row_start : row_offsets_) {
    // Tokenize to the requested column only; bytes walked are accounted.
    std::size_t pos = row_start;
    for (std::size_t c = 0; c < col; ++c) {
      const std::size_t comma = raw_.find(',', pos);
      if (comma == std::string::npos)
        throw std::runtime_error("RawStore: short row");
      pos = comma + 1;
    }
    std::size_t end = raw_.find_first_of(",\n", pos);
    if (end == std::string::npos) end = raw_.size();
    cc.values.push_back(std::strtod(raw_.c_str() + pos, nullptr));
    if (cost) cost->bytes_parsed += end - row_start;
  }
  cc.parsed = true;
}

void RawStore::maybe_crack(std::size_t col) {
  ColumnCache& cc = cache_[col];
  if (!cc.sorted_rows.empty() || cc.queries_seen < kCrackAfter) return;
  cc.sorted_rows.resize(cc.values.size());
  for (std::uint32_t i = 0; i < cc.values.size(); ++i) cc.sorted_rows[i] = i;
  std::sort(cc.sorted_rows.begin(), cc.sorted_rows.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              return cc.values[a] < cc.values[b];
            });
}

RawAggregate RawStore::range_aggregate(std::size_t filter_col, double lo,
                                       double hi, std::size_t agg_col,
                                       RawQueryCost* cost) {
  if (filter_col >= column_names_.size() || agg_col >= column_names_.size())
    throw std::out_of_range("RawStore::range_aggregate: bad column");
  if (hi < lo) return RawAggregate{};

  ensure_parsed(filter_col, cost);
  ColumnCache& fc = cache_[filter_col];
  ++fc.queries_seen;
  maybe_crack(filter_col);

  // Qualifying rows, via the cracked piece when available.
  std::vector<std::uint32_t> rows;
  if (!fc.sorted_rows.empty()) {
    if (cost) cost->used_sorted_piece = true;
    const auto cmp_lo = std::lower_bound(
        fc.sorted_rows.begin(), fc.sorted_rows.end(), lo,
        [&](std::uint32_t r, double v) { return fc.values[r] < v; });
    auto it = cmp_lo;
    while (it != fc.sorted_rows.end() && fc.values[*it] <= hi) {
      rows.push_back(*it);
      ++it;
    }
    if (cost) cost->values_scanned += rows.size() + 1;
  } else {
    for (std::uint32_t r = 0; r < fc.values.size(); ++r) {
      if (cost) ++cost->values_scanned;
      if (fc.values[r] >= lo && fc.values[r] <= hi) rows.push_back(r);
    }
  }

  RawAggregate agg;
  if (agg_col == filter_col) {
    for (const auto r : rows) {
      ++agg.count;
      agg.sum += fc.values[r];
    }
    return agg;
  }
  // The aggregate column parses lazily too (only when first needed).
  ensure_parsed(agg_col, cost);
  const ColumnCache& ac = cache_[agg_col];
  for (const auto r : rows) {
    ++agg.count;
    agg.sum += ac.values[r];
  }
  if (cost) cost->values_scanned += rows.size();
  return agg;
}

std::size_t RawStore::aux_bytes() const noexcept {
  std::size_t total = 0;
  for (const auto& cc : cache_) {
    total += cc.values.size() * sizeof(double);
    total += cc.sorted_rows.size() * sizeof(std::uint32_t);
  }
  return total;
}

std::size_t RawStore::columns_cached() const noexcept {
  std::size_t n = 0;
  for (const auto& cc : cache_)
    if (cc.parsed) ++n;
  return n;
}

}  // namespace sea
