// Raw-data analytics (paper RT2.3): adaptive access over un-loaded files.
//
// "This thread will centre its attention on developing adaptive indexing
// and caching techniques that operate on raw data and facilitate efficient
// and scalable raw-data analyses."
//
// RawStore holds the raw CSV bytes of a dataset and answers column-range
// count/sum/avg queries directly against them, getting faster as it is
// queried (in the spirit of NoDB positional maps and database cracking):
//
//   * first touch of a column: one parsing pass builds that column's
//     value cache and positional map (all other columns stay raw);
//   * queried ranges additionally *crack* the column: value ranges that
//     analysts keep hitting get a sorted piece, so later range queries
//     binary-search instead of scanning.
//
// Every query reports how many raw bytes were parsed and how many values
// were scanned, so the adaptive cost decay is measurable (bench E13).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace sea {

struct RawQueryCost {
  std::uint64_t bytes_parsed = 0;    ///< raw bytes tokenized this query
  std::uint64_t values_scanned = 0;  ///< cached values examined
  bool used_sorted_piece = false;    ///< answered via cracked binary search
};

struct RawAggregate {
  std::uint64_t count = 0;
  double sum = 0.0;

  double avg() const noexcept {
    return count ? sum / static_cast<double>(count) : 0.0;
  }
};

class RawStore {
 public:
  /// Takes ownership of the raw CSV text (header + numeric rows, as
  /// produced by write_csv).
  explicit RawStore(std::string csv_text);

  std::size_t num_columns() const noexcept { return column_names_.size(); }
  std::size_t num_rows() const noexcept { return row_offsets_.size(); }
  const std::string& column_name(std::size_t c) const;
  std::size_t column_index(const std::string& name) const;

  /// count/sum of `agg_col` over rows whose `filter_col` value lies in
  /// [lo, hi]. Parsing is lazy and cached per column; repeated queries on
  /// the same filter column get adaptively cheaper.
  RawAggregate range_aggregate(std::size_t filter_col, double lo, double hi,
                               std::size_t agg_col,
                               RawQueryCost* cost = nullptr);

  /// Bytes of auxiliary state built so far (positional caches + sorted
  /// pieces) — the "adaptive index" footprint.
  std::size_t aux_bytes() const noexcept;

  /// Number of columns whose values have been parsed into the cache.
  std::size_t columns_cached() const noexcept;

 private:
  struct ColumnCache {
    bool parsed = false;
    std::vector<double> values;         ///< by row
    /// Cracked piece: row ids sorted by value (built after kCrackAfter
    /// queries on this column).
    std::vector<std::uint32_t> sorted_rows;
    std::size_t queries_seen = 0;
  };

  static constexpr std::size_t kCrackAfter = 3;

  void ensure_parsed(std::size_t col, RawQueryCost* cost);
  void maybe_crack(std::size_t col);

  std::string raw_;
  std::vector<std::string> column_names_;
  std::vector<std::size_t> row_offsets_;  ///< byte offset of each data row
  std::vector<ColumnCache> cache_;
};

}  // namespace sea
