// In-library MapReduce engine over the simulated cluster.
//
// This is the baseline execution paradigm the paper critiques (§II.A):
// every map task reads its *entire* partition through all BDAS layers,
// intermediate key/value pairs are shuffled across the (accounted) network
// to reducers, and reduced results are gathered at a coordinator. The
// engine really executes the user's map and reduce functions on real
// partition data; the network/overhead costs are modelled per DESIGN.md.
//
// Resilience: with a FaultInjector attached to the cluster, the engine
// ticks the flap schedule at task boundaries, re-routes map/reduce tasks
// whose placement node flapped (ExecReport::tasks_rerouted), and delivers
// shuffle/result messages through the fallible send path with the
// cluster's RetryPolicy (retries/dropped_messages/modelled_backoff_ms).
//
// Concurrency (DESIGN.md "Concurrency model"): map tasks, per-reducer
// shuffle bucketing, and reduce groups execute on the shared thread pool
// (SEA_THREADS), but everything that consumes shared mutable state —
// fault-injector ticks, retry RNG draws, cluster/network accounting —
// runs on the calling thread in fixed task-index order, so results and
// fault counters are bit-for-bit identical at any thread count. Span and
// metric updates (when the cluster carries observability, see
// Cluster::set_observability) happen only in those serial sections too:
// phase spans ("map_phase"/"shuffle"/"reduce_phase"), "backoff" leaf
// spans, and "reroute" events are bit-identical at any SEA_THREADS.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cluster/cluster.h"
#include "common/parallel.h"
#include "common/primitives.h"
#include "common/timer.h"
#include "exec/exec_report.h"
#include "fault/fault.h"
#include "fault/outage.h"
#include "fault/retry.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace sea {

/// Collects (key, value) pairs emitted by one map task.
template <typename K, typename V>
class Emitter {
 public:
  void emit(K key, V value) { pairs_.emplace_back(std::move(key), std::move(value)); }
  /// Pre-sizes the pair buffer (the engine reserves by partition row count
  /// so row-granular emitters never rehash/realloc mid-scan).
  void reserve(std::size_t n) { pairs_.reserve(n); }
  std::vector<std::pair<K, V>>& pairs() noexcept { return pairs_; }

 private:
  std::vector<std::pair<K, V>> pairs_;
};

/// A MapReduce job over a single stored table.
///
/// K must be hashable and equality comparable. `kv_bytes` sizes one (K,V)
/// pair for shuffle accounting; `result_bytes` sizes one reduced result for
/// the final gather. Defaults assume fixed-size binary encodings.
///
/// map and reduce run concurrently across shards / reducer groups: they
/// must not touch shared mutable state beyond their own Emitter / value
/// group (the engine's own accounting is handled outside the pool).
template <typename K, typename V, typename R>
struct MapReduceJob {
  std::function<void(NodeId, const Table&, Emitter<K, V>&)> map;
  std::function<R(const K&, std::vector<V>&)> reduce;
  std::size_t kv_bytes = sizeof(K) + sizeof(V);
  std::size_t result_bytes = sizeof(K) + sizeof(R);
  std::size_t num_reducers = 0;  ///< 0 = one per cluster node
};

template <typename K, typename V, typename R>
struct MapReduceResult {
  std::vector<std::pair<K, R>> results;
  ExecReport report;
};

/// Reusable shuffle buffers for run_map_reduce. A caller issuing many runs
/// over the same cluster (ExactExecutor, the sampling engine) passes one of
/// these to keep the emitter pair arenas, route tables, per-(mapper,
/// reducer) counters, and the shuffled-pair arena warm across runs instead
/// of growing each from empty every time. Purely an allocation cache:
/// every field is fully overwritten per run, so reuse never changes
/// results. Requires K and V default-constructible (the shuffled arena is
/// resized, not rebuilt).
template <typename K, typename V>
struct MapReduceScratch {
  std::vector<Emitter<K, V>> emitted;             ///< per-mapper pair arenas
  std::vector<std::vector<std::uint32_t>> route;  ///< per-pair reducer id
  std::vector<std::uint64_t> route_counts;  ///< (mapper, reducer) histogram
  std::vector<std::uint64_t> batch_bytes;   ///< (mapper, reducer) bytes
  std::vector<std::uint64_t> seg_begin;     ///< per-reducer segment bounds
  std::vector<std::pair<K, V>> shuffled;    ///< reducer-partitioned pairs
};

/// Runs the job over every partition of `table_name`, gathering reduced
/// results at `coordinator` (default node 0). Accounts:
///  - one task + full partition scan per storage node (map phase),
///  - shuffle messages mapper->reducer sized by emitted pairs,
///  - one task per active reducer,
///  - result messages reducer->coordinator,
///  - under injected faults: message retries, backoff, and task re-routes.
/// An armed `deadline` budget is charged with every modelled cost (task
/// overheads, transfers, backoff waits) and aborts the run with
/// DeadlineExceeded when exhausted.
template <typename K, typename V, typename R>
MapReduceResult<K, V, R> run_map_reduce(Cluster& cluster,
                                        const std::string& table_name,
                                        const MapReduceJob<K, V, R>& job,
                                        NodeId coordinator = 0,
                                        QueryDeadline* deadline = nullptr,
                                        MapReduceScratch<K, V>* scratch = nullptr) {
  MapReduceResult<K, V, R> out;
  ExecReport& rep = out.report;
  Timer wall;
  MapReduceScratch<K, V> local_scratch;
  MapReduceScratch<K, V>& scr = scratch ? *scratch : local_scratch;
  const std::size_t n = cluster.num_nodes();
  const RetryPolicy& policy = cluster.retry_policy();
  FaultInjector* injector = cluster.fault_injector();
  CircuitBreakerSet& breakers = cluster.breakers();
  Rng fallback_backoff_rng(0x5eab0ffULL);
  Rng& backoff_rng = injector ? injector->rng() : fallback_backoff_rng;
  obs::Tracer* tracer = cluster.tracer();
  const RetryMetrics retry_obs = RetryMetrics::bind(cluster.metrics());
  obs::Counter* m_map_tasks = nullptr;
  obs::Counter* m_reduce_tasks = nullptr;
  obs::Counter* m_rerouted = nullptr;
  if (obs::MetricsRegistry* reg = cluster.metrics()) {
    m_map_tasks = &reg->counter("mr.map_tasks");
    m_reduce_tasks = &reg->counter("mr.reduce_tasks");
    m_rerouted = &reg->counter("mr.tasks_rerouted");
  }

  // Fault-aware message delivery: retries dropped/timed-out messages with
  // backoff per the cluster's RetryPolicy. Returns the modelled time of
  // all attempts plus backoff waits; throws RpcRetriesExhausted when the
  // attempt budget runs out. Every outcome feeds the destination's circuit
  // breaker and every modelled millisecond advances the breaker cooldown
  // clock and decrements the deadline budget. Consumes injector/backoff
  // RNG state — only ever called from the serial sections below.
  // Run-scoped retry token budget (retry-storm guard): shared across every
  // deliver() call this run makes, so a correlated outage (partition) stops
  // amplifying once the budget is spent instead of paying the full per-call
  // retry ladder on each of O(mappers x reducers) messages.
  std::size_t retry_tokens_used = 0;
  const auto deliver = [&](NodeId from, NodeId to,
                           std::uint64_t bytes) -> double {
    double total_ms = 0.0;
    for (std::size_t attempt = 0;; ++attempt) {
      const SendOutcome sent = cluster.network().try_send(
          from, to, static_cast<std::size_t>(bytes));
      total_ms += sent.ms;
      breakers.advance(sent.ms);
      if (tracer) tracer->advance(sent.ms);
      if (deadline) deadline->charge("mapreduce transfer", sent.ms);
      if (sent.delivered && sent.ms <= policy.rpc_timeout_ms) {
        breakers.record_success(to);
        return total_ms;
      }
      if (!sent.delivered) {
        ++rep.dropped_messages;
        retry_obs.on_drop();
      }
      breakers.record_failure(to);
      if (attempt + 1 >= policy.max_attempts)
        throw RpcRetriesExhausted(
            "run_map_reduce: " + std::to_string(policy.max_attempts) +
            " delivery attempts " + std::to_string(from) + "->" +
            std::to_string(to) + " all failed");
      if (policy.retry_budget > 0 && retry_tokens_used >= policy.retry_budget) {
        ++rep.retry_budget_exhausted;
        retry_obs.on_budget_exhausted();
        throw RpcRetriesExhausted(
            "run_map_reduce: run retry budget of " +
            std::to_string(policy.retry_budget) +
            " tokens exhausted (failing delivery " + std::to_string(from) +
            "->" + std::to_string(to) + ")");
      }
      ++retry_tokens_used;
      ++rep.retries;
      const double backoff = policy.backoff_ms(attempt, backoff_rng);
      rep.modelled_backoff_ms += backoff;
      retry_obs.on_retry(backoff);
      if (tracer)
        tracer->span_event("backoff", backoff, "", 0,
                           static_cast<std::int64_t>(to));
      breakers.advance(backoff);
      if (deadline) deadline->charge("mapreduce backoff", backoff);
      total_ms += backoff;
    }
  };

  // Failover-aware placement: each shard's map task runs at its serving
  // node (primary, or a live replica holder when the primary is down);
  // reducers are placed on live nodes only.
  std::vector<NodeId> shard_node(n);
  for (std::size_t shard = 0; shard < n; ++shard)
    shard_node[shard] = cluster.serving_node(table_name, shard);

  // --- map phase: full scans through the stack at every shard ---
  //
  // Serial pre-pass (shard order): the flap schedule advances at task
  // boundaries; a task whose planned node went down since placement is
  // re-routed to the shard's current serving node (a live replica
  // holder), like a real scheduler would. Task launch accounting happens
  // here too, so the injector-visible sequence is identical to a serial
  // run regardless of how the compute below is scheduled.
  std::vector<Emitter<K, V>>& emitted = scr.emitted;
  emitted.resize(n);
  for (auto& e : emitted) e.pairs().clear();  // keeps capacity across runs
  {
    obs::SpanScope map_span(tracer, "map_phase");
    for (std::size_t shard = 0; shard < n; ++shard) {
      if (injector) {
        const TickEffects fx = injector->tick(cluster);
        rep.recoveries += fx.restarts;
        rep.shard_restore_bytes += fx.restore_bytes;
      }
      const NodeId node = cluster.serving_node(table_name, shard);
      if (node != shard_node[shard]) {
        ++rep.tasks_rerouted;
        if (m_rerouted) m_rerouted->inc();
        if (tracer)
          tracer->event("reroute", "map", static_cast<std::int64_t>(node));
        shard_node[shard] = node;
      }
      cluster.account_task(node);
      rep.modelled_overhead_ms += cluster.cost_model().task_overhead_ms();
      if (tracer) tracer->advance(cluster.cost_model().task_overhead_ms());
      if (deadline)
        deadline->charge("map task overhead",
                         cluster.cost_model().task_overhead_ms());
      ++rep.map_tasks;
      if (m_map_tasks) m_map_tasks->inc();
    }
    // Parallel compute: each map task owns its emitter and reads only its
    // (immutable) partition.
    std::vector<double> map_ms(n, 0.0);
    ParallelFor(n, [&](std::size_t shard) {
      const Table& part = cluster.partition(table_name, shard);
      emitted[shard].reserve(part.num_rows());
      Timer t;
      job.map(shard_node[shard], part, emitted[shard]);
      map_ms[shard] = t.elapsed_ms();
    });
    // Serial post-pass: fold timings and charge the scans in shard order.
    for (std::size_t shard = 0; shard < n; ++shard) {
      rep.map_compute_ms_total += map_ms[shard];
      rep.map_compute_ms_max = std::max(rep.map_compute_ms_max, map_ms[shard]);
      const Table& part = cluster.partition(table_name, shard);
      cluster.account_scan(shard_node[shard], part.num_rows(),
                           part.byte_size());
      map_span.add_bytes(part.byte_size());
    }
  }

  // Reducers go on live nodes whose breaker is not open — a grey-failing
  // node that just tripped its breaker is as unusable as a down one.
  std::vector<NodeId> live;
  for (std::size_t node = 0; node < n; ++node)
    if (!cluster.node_is_down(static_cast<NodeId>(node)) &&
        !breakers.open_now(static_cast<NodeId>(node)))
      live.push_back(static_cast<NodeId>(node));
  const std::size_t num_reducers =
      job.num_reducers == 0 ? live.size()
                            : std::min(job.num_reducers, live.size());
  if (num_reducers == 0)
    throw NoLiveReplicaError(
        "run_map_reduce: no live node to place reducers on (down nodes: " +
        cluster.down_nodes_string() + ")");

  // --- shuffle: counting-sort partition by reducer route ---
  //
  // A two-pass counting sort with mappers as the blocks: (1) hash every
  // pair to its reducer and histogram per (mapper, reducer); (2) a
  // column-major exclusive scan turns the histogram into per-mapper write
  // cursors; (3) each mapper scatters its pairs into its pre-assigned
  // slots of one contiguous arena. Reducer r's segment then holds its
  // pairs in (mapper, emit-index) order — exactly the order the old
  // per-reducer scan over all mappers observed — with no per-pair hash-map
  // insertions and no O(reducers x total_pairs) re-scan.
  std::hash<K> hasher;
  std::size_t total_pairs = 0;
  for (std::size_t mapper = 0; mapper < n; ++mapper)
    total_pairs += emitted[mapper].pairs().size();
  std::vector<std::vector<std::uint32_t>>& route = scr.route;
  route.resize(n);
  std::vector<std::uint64_t>& counts = scr.route_counts;
  counts.assign(n * num_reducers, 0);
  ParallelFor(n, [&](std::size_t mapper) {
    auto& pairs = emitted[mapper].pairs();
    route[mapper].resize(pairs.size());
    std::uint64_t* c = counts.data() + mapper * num_reducers;
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      const auto r =
          static_cast<std::uint32_t>(hasher(pairs[i].first) % num_reducers);
      route[mapper][i] = r;
      ++c[r];
    }
  });
  // Batch bytes per (mapper, reducer): one message per batch, as a
  // combiner-enabled framework would send. Snapshotted before the counts
  // become write cursors.
  std::vector<std::uint64_t>& batch_bytes = scr.batch_bytes;
  batch_bytes.assign(n * num_reducers, 0);
  std::vector<std::uint64_t>& seg_begin = scr.seg_begin;
  seg_begin.assign(num_reducers + 1, 0);
  {
    std::uint64_t running = 0;
    for (std::size_t r = 0; r < num_reducers; ++r) {
      seg_begin[r] = running;
      for (std::size_t mapper = 0; mapper < n; ++mapper) {
        const std::uint64_t c = counts[mapper * num_reducers + r];
        batch_bytes[mapper * num_reducers + r] = c * job.kv_bytes;
        counts[mapper * num_reducers + r] = running;
        running += c;
      }
    }
    seg_begin[num_reducers] = running;
  }
  std::vector<std::pair<K, V>>& shuffled = scr.shuffled;
  shuffled.resize(total_pairs);
  ParallelFor(n, [&](std::size_t mapper) {
    auto& pairs = emitted[mapper].pairs();
    std::uint64_t* cur = counts.data() + mapper * num_reducers;
    for (std::size_t i = 0; i < pairs.size(); ++i)
      shuffled[cur[route[mapper][i]]++] = std::move(pairs[i]);
  });

  // Group each reducer's segment by key: ids assigned at first occurrence
  // (segment order), then a stable counting sort over group ids yields
  // each group's value run — collect_reduce for arbitrary hashable keys.
  // Group content *and order* are a pure function of the emitted data: no
  // dependence on unordered_map iteration order (the old bucketing's one
  // stdlib-specific artifact) or on SEA_THREADS.
  struct ReducerGroups {
    std::vector<K> keys;
    std::vector<std::vector<V>> values;
  };
  std::vector<ReducerGroups> groups(num_reducers);
  ParallelFor(num_reducers, [&](std::size_t r) {
    const std::uint64_t lo = seg_begin[r], hi = seg_begin[r + 1];
    if (lo == hi) return;
    ReducerGroups& g = groups[r];
    std::unordered_map<K, std::uint32_t> group_of;
    group_of.reserve(static_cast<std::size_t>(hi - lo));
    std::vector<std::uint32_t> gid(static_cast<std::size_t>(hi - lo));
    for (std::uint64_t i = lo; i < hi; ++i) {
      const auto [it, inserted] = group_of.emplace(
          shuffled[i].first, static_cast<std::uint32_t>(g.keys.size()));
      if (inserted) g.keys.push_back(shuffled[i].first);
      gid[i - lo] = it->second;
    }
    const par::CountingSort cs = par::counting_sort(gid, g.keys.size());
    g.values.resize(g.keys.size());
    for (std::size_t k = 0; k < g.keys.size(); ++k) {
      auto& vals = g.values[k];
      vals.reserve(cs.offsets[k + 1] - cs.offsets[k]);
      for (std::uint32_t j = cs.offsets[k]; j < cs.offsets[k + 1]; ++j)
        vals.push_back(std::move(shuffled[lo + cs.order[j]].second));
    }
  });
  // Serial delivery in (mapper, reducer) order — the same message order a
  // serial engine produces, so drop/spike/backoff draws line up exactly.
  std::vector<double> inbound_ms(num_reducers, 0.0);
  std::vector<std::uint64_t> inbound_bytes(num_reducers, 0);
  {
    obs::SpanScope shuffle_span(tracer, "shuffle");
    for (std::size_t mapper = 0; mapper < n; ++mapper) {
      for (std::size_t r = 0; r < num_reducers; ++r) {
        const std::uint64_t bytes = batch_bytes[mapper * num_reducers + r];
        if (bytes == 0) continue;
        const double ms = deliver(shard_node[mapper], live[r], bytes);
        rep.modelled_network_ms += ms;
        inbound_ms[r] += ms;
        inbound_bytes[r] += bytes;
        rep.shuffle_bytes += bytes;
        shuffle_span.add_bytes(bytes);
      }
    }
  }

  // --- reduce phase ---
  //
  // Serial pre-pass (reducer order): ticks, flap re-routes, task launch
  // accounting, and result-message delivery. The result batch size is a
  // function of the group's key count, so delivery can be charged before
  // the reduce functions actually run.
  obs::SpanScope reduce_span(tracer, "reduce_phase");
  for (std::size_t r = 0; r < num_reducers; ++r) {
    if (seg_begin[r] == seg_begin[r + 1]) continue;
    NodeId rnode = live[r];
    if (injector) {
      const TickEffects fx = injector->tick(cluster);
      rep.recoveries += fx.restarts;
      rep.shard_restore_bytes += fx.restore_bytes;
    }
    if (cluster.node_is_down(rnode) || breakers.open_now(rnode)) {
      // The reducer flapped (or its breaker tripped) after the shuffle:
      // restart the reduce task on another usable node, which bulk
      // re-fetches its inbound partition (one re-sent batch, like a
      // speculative restart).
      NodeId fallback = rnode;
      bool found = false;
      for (std::size_t cand = 0; cand < n; ++cand) {
        if (!cluster.node_is_down(static_cast<NodeId>(cand)) &&
            !breakers.open_now(static_cast<NodeId>(cand))) {
          fallback = static_cast<NodeId>(cand);
          found = true;
          break;
        }
      }
      if (!found)
        throw NoLiveReplicaError(
            "run_map_reduce: reduce task " + std::to_string(r) +
            " has no live node to restart on (down nodes: " +
            cluster.down_nodes_string() + ")");
      ++rep.tasks_rerouted;
      if (m_rerouted) m_rerouted->inc();
      if (tracer)
        tracer->event("reroute", "reduce", static_cast<std::int64_t>(fallback));
      const double refetch_ms = deliver(rnode, fallback, inbound_bytes[r]);
      rep.modelled_network_ms += refetch_ms;
      inbound_ms[r] += refetch_ms;
      rnode = fallback;
    }
    cluster.account_task(rnode);
    rep.modelled_overhead_ms += cluster.cost_model().task_overhead_ms();
    if (tracer) tracer->advance(cluster.cost_model().task_overhead_ms());
    if (deadline)
      deadline->charge("reduce task overhead",
                       cluster.cost_model().task_overhead_ms());
    ++rep.reduce_tasks;
    if (m_reduce_tasks) m_reduce_tasks->inc();
    const std::uint64_t result_batch =
        static_cast<std::uint64_t>(groups[r].keys.size()) * job.result_bytes;
    const double net_ms = deliver(rnode, coordinator, result_batch);
    rep.modelled_network_ms += net_ms;
    rep.result_bytes += result_batch;
    reduce_span.add_bytes(result_batch);
  }
  // Parallel compute: each reducer owns its input group and result buffer.
  std::vector<std::vector<std::pair<K, R>>> reduced(num_reducers);
  std::vector<double> reduce_ms(num_reducers, 0.0);
  ParallelFor(num_reducers, [&](std::size_t r) {
    ReducerGroups& g = groups[r];
    if (g.keys.empty()) return;
    Timer t;
    reduced[r].reserve(g.keys.size());
    for (std::size_t k = 0; k < g.keys.size(); ++k)
      reduced[r].emplace_back(g.keys[k], job.reduce(g.keys[k], g.values[k]));
    reduce_ms[r] = t.elapsed_ms();
  });
  // Serial gather in reducer order.
  for (std::size_t r = 0; r < num_reducers; ++r) {
    if (reduced[r].empty()) continue;
    rep.reduce_compute_ms_total += reduce_ms[r];
    rep.reduce_compute_ms_max =
        std::max(rep.reduce_compute_ms_max, reduce_ms[r]);
    out.results.insert(out.results.end(),
                       std::make_move_iterator(reduced[r].begin()),
                       std::make_move_iterator(reduced[r].end()));
  }
  for (const double ms : inbound_ms)
    rep.modelled_network_ms_critical =
        std::max(rep.modelled_network_ms_critical, ms);
  rep.wall_ms = wall.elapsed_ms();
  return out;
}

}  // namespace sea
