// In-library MapReduce engine over the simulated cluster.
//
// This is the baseline execution paradigm the paper critiques (§II.A):
// every map task reads its *entire* partition through all BDAS layers,
// intermediate key/value pairs are shuffled across the (accounted) network
// to reducers, and reduced results are gathered at a coordinator. The
// engine really executes the user's map and reduce functions on real
// partition data; the network/overhead costs are modelled per DESIGN.md.
//
// Resilience: with a FaultInjector attached to the cluster, the engine
// ticks the flap schedule at task boundaries, re-routes map/reduce tasks
// whose placement node flapped (ExecReport::tasks_rerouted), and delivers
// shuffle/result messages through the fallible send path with the
// cluster's RetryPolicy (retries/dropped_messages/modelled_backoff_ms).
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cluster/cluster.h"
#include "common/timer.h"
#include "exec/exec_report.h"
#include "fault/fault.h"
#include "fault/retry.h"

namespace sea {

/// Collects (key, value) pairs emitted by one map task.
template <typename K, typename V>
class Emitter {
 public:
  void emit(K key, V value) { pairs_.emplace_back(std::move(key), std::move(value)); }
  std::vector<std::pair<K, V>>& pairs() noexcept { return pairs_; }

 private:
  std::vector<std::pair<K, V>> pairs_;
};

/// A MapReduce job over a single stored table.
///
/// K must be hashable and equality comparable. `kv_bytes` sizes one (K,V)
/// pair for shuffle accounting; `result_bytes` sizes one reduced result for
/// the final gather. Defaults assume fixed-size binary encodings.
template <typename K, typename V, typename R>
struct MapReduceJob {
  std::function<void(NodeId, const Table&, Emitter<K, V>&)> map;
  std::function<R(const K&, std::vector<V>&)> reduce;
  std::size_t kv_bytes = sizeof(K) + sizeof(V);
  std::size_t result_bytes = sizeof(K) + sizeof(R);
  std::size_t num_reducers = 0;  ///< 0 = one per cluster node
};

template <typename K, typename V, typename R>
struct MapReduceResult {
  std::vector<std::pair<K, R>> results;
  ExecReport report;
};

/// Runs the job over every partition of `table_name`, gathering reduced
/// results at `coordinator` (default node 0). Accounts:
///  - one task + full partition scan per storage node (map phase),
///  - shuffle messages mapper->reducer sized by emitted pairs,
///  - one task per active reducer,
///  - result messages reducer->coordinator,
///  - under injected faults: message retries, backoff, and task re-routes.
template <typename K, typename V, typename R>
MapReduceResult<K, V, R> run_map_reduce(Cluster& cluster,
                                        const std::string& table_name,
                                        const MapReduceJob<K, V, R>& job,
                                        NodeId coordinator = 0) {
  MapReduceResult<K, V, R> out;
  ExecReport& rep = out.report;
  const std::size_t n = cluster.num_nodes();
  const RetryPolicy& policy = cluster.retry_policy();
  FaultInjector* injector = cluster.fault_injector();
  Rng fallback_backoff_rng(0x5eab0ffULL);
  Rng& backoff_rng = injector ? injector->rng() : fallback_backoff_rng;

  // Fault-aware message delivery: retries dropped/timed-out messages with
  // backoff per the cluster's RetryPolicy. Returns the modelled time of
  // all attempts plus backoff waits; throws RpcRetriesExhausted when the
  // attempt budget runs out.
  const auto deliver = [&](NodeId from, NodeId to,
                           std::uint64_t bytes) -> double {
    double total_ms = 0.0;
    for (std::size_t attempt = 0;; ++attempt) {
      const SendOutcome sent = cluster.network().try_send(
          from, to, static_cast<std::size_t>(bytes));
      total_ms += sent.ms;
      if (sent.delivered && sent.ms <= policy.rpc_timeout_ms) return total_ms;
      if (!sent.delivered) ++rep.dropped_messages;
      if (attempt + 1 >= policy.max_attempts)
        throw RpcRetriesExhausted(
            "run_map_reduce: " + std::to_string(policy.max_attempts) +
            " delivery attempts " + std::to_string(from) + "->" +
            std::to_string(to) + " all failed");
      ++rep.retries;
      const double backoff = policy.backoff_ms(attempt, backoff_rng);
      rep.modelled_backoff_ms += backoff;
      total_ms += backoff;
    }
  };

  // Failover-aware placement: each shard's map task runs at its serving
  // node (primary, or a live replica holder when the primary is down);
  // reducers are placed on live nodes only.
  std::vector<NodeId> shard_node(n);
  for (std::size_t shard = 0; shard < n; ++shard)
    shard_node[shard] = cluster.serving_node(table_name, shard);

  // --- map phase: full scans through the stack at every shard ---
  std::vector<Emitter<K, V>> emitted(n);
  for (std::size_t shard = 0; shard < n; ++shard) {
    // The flap schedule advances at task boundaries; a task whose planned
    // node went down since placement is re-routed to the shard's current
    // serving node (a live replica holder), like a real scheduler would.
    if (injector) injector->tick(cluster);
    const NodeId node = cluster.serving_node(table_name, shard);
    if (node != shard_node[shard]) {
      ++rep.tasks_rerouted;
      shard_node[shard] = node;
    }
    const Table& part = cluster.partition(table_name, shard);
    cluster.account_task(node);
    rep.modelled_overhead_ms += cluster.cost_model().task_overhead_ms();
    ++rep.map_tasks;
    Timer t;
    job.map(node, part, emitted[shard]);
    const double ms = t.elapsed_ms();
    rep.map_compute_ms_total += ms;
    rep.map_compute_ms_max = std::max(rep.map_compute_ms_max, ms);
    cluster.account_scan(node, part.num_rows(), part.byte_size());
  }

  std::vector<NodeId> live;
  for (std::size_t node = 0; node < n; ++node)
    if (!cluster.node_is_down(static_cast<NodeId>(node)))
      live.push_back(static_cast<NodeId>(node));
  const std::size_t num_reducers =
      job.num_reducers == 0 ? live.size()
                            : std::min(job.num_reducers, live.size());
  if (num_reducers == 0)
    throw NoLiveReplicaError(
        "run_map_reduce: no live node to place reducers on (down nodes: " +
        cluster.down_nodes_string() + ")");

  // --- shuffle: route each key to hash(key) % num_reducers ---
  std::vector<std::unordered_map<K, std::vector<V>>> reducer_input(
      num_reducers);
  std::vector<double> inbound_ms(num_reducers, 0.0);
  std::vector<std::uint64_t> inbound_bytes(num_reducers, 0);
  std::hash<K> hasher;
  for (std::size_t mapper = 0; mapper < n; ++mapper) {
    // Batch bytes per (mapper, reducer) pair: one message per pair, as a
    // combiner-enabled framework would send.
    std::vector<std::uint64_t> batch_bytes(num_reducers, 0);
    for (auto& [k, v] : emitted[mapper].pairs()) {
      const std::size_t r = hasher(k) % num_reducers;
      batch_bytes[r] += job.kv_bytes;
      reducer_input[r][k].push_back(std::move(v));
    }
    for (std::size_t r = 0; r < num_reducers; ++r) {
      if (batch_bytes[r] == 0) continue;
      const double ms = deliver(shard_node[mapper], live[r], batch_bytes[r]);
      rep.modelled_network_ms += ms;
      inbound_ms[r] += ms;
      inbound_bytes[r] += batch_bytes[r];
      rep.shuffle_bytes += batch_bytes[r];
    }
  }

  // --- reduce phase ---
  for (std::size_t r = 0; r < num_reducers; ++r) {
    if (reducer_input[r].empty()) continue;
    NodeId rnode = live[r];
    if (injector) injector->tick(cluster);
    if (cluster.node_is_down(rnode)) {
      // The reducer flapped after (or during) the shuffle: restart the
      // reduce task on another live node, which bulk re-fetches its
      // inbound partition (one re-sent batch, like a speculative restart).
      NodeId fallback = rnode;
      bool found = false;
      for (std::size_t cand = 0; cand < n; ++cand) {
        if (!cluster.node_is_down(static_cast<NodeId>(cand))) {
          fallback = static_cast<NodeId>(cand);
          found = true;
          break;
        }
      }
      if (!found)
        throw NoLiveReplicaError(
            "run_map_reduce: reduce task " + std::to_string(r) +
            " has no live node to restart on (down nodes: " +
            cluster.down_nodes_string() + ")");
      ++rep.tasks_rerouted;
      const double refetch_ms = deliver(rnode, fallback, inbound_bytes[r]);
      rep.modelled_network_ms += refetch_ms;
      inbound_ms[r] += refetch_ms;
      rnode = fallback;
    }
    cluster.account_task(rnode);
    rep.modelled_overhead_ms += cluster.cost_model().task_overhead_ms();
    ++rep.reduce_tasks;
    Timer t;
    std::uint64_t result_batch = 0;
    for (auto& [k, vals] : reducer_input[r]) {
      out.results.emplace_back(k, job.reduce(k, vals));
      result_batch += job.result_bytes;
    }
    const double ms = t.elapsed_ms();
    rep.reduce_compute_ms_total += ms;
    rep.reduce_compute_ms_max = std::max(rep.reduce_compute_ms_max, ms);
    const double net_ms = deliver(rnode, coordinator, result_batch);
    rep.modelled_network_ms += net_ms;
    rep.result_bytes += result_batch;
  }
  for (const double ms : inbound_ms)
    rep.modelled_network_ms_critical =
        std::max(rep.modelled_network_ms_critical, ms);
  return out;
}

}  // namespace sea
