// In-library MapReduce engine over the simulated cluster.
//
// This is the baseline execution paradigm the paper critiques (§II.A):
// every map task reads its *entire* partition through all BDAS layers,
// intermediate key/value pairs are shuffled across the (accounted) network
// to reducers, and reduced results are gathered at a coordinator. The
// engine really executes the user's map and reduce functions on real
// partition data; the network/overhead costs are modelled per DESIGN.md.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cluster/cluster.h"
#include "common/timer.h"
#include "exec/exec_report.h"

namespace sea {

/// Collects (key, value) pairs emitted by one map task.
template <typename K, typename V>
class Emitter {
 public:
  void emit(K key, V value) { pairs_.emplace_back(std::move(key), std::move(value)); }
  std::vector<std::pair<K, V>>& pairs() noexcept { return pairs_; }

 private:
  std::vector<std::pair<K, V>> pairs_;
};

/// A MapReduce job over a single stored table.
///
/// K must be hashable and equality comparable. `kv_bytes` sizes one (K,V)
/// pair for shuffle accounting; `result_bytes` sizes one reduced result for
/// the final gather. Defaults assume fixed-size binary encodings.
template <typename K, typename V, typename R>
struct MapReduceJob {
  std::function<void(NodeId, const Table&, Emitter<K, V>&)> map;
  std::function<R(const K&, std::vector<V>&)> reduce;
  std::size_t kv_bytes = sizeof(K) + sizeof(V);
  std::size_t result_bytes = sizeof(K) + sizeof(R);
  std::size_t num_reducers = 0;  ///< 0 = one per cluster node
};

template <typename K, typename V, typename R>
struct MapReduceResult {
  std::vector<std::pair<K, R>> results;
  ExecReport report;
};

/// Runs the job over every partition of `table_name`, gathering reduced
/// results at `coordinator` (default node 0). Accounts:
///  - one task + full partition scan per storage node (map phase),
///  - shuffle messages mapper->reducer sized by emitted pairs,
///  - one task per active reducer,
///  - result messages reducer->coordinator.
template <typename K, typename V, typename R>
MapReduceResult<K, V, R> run_map_reduce(Cluster& cluster,
                                        const std::string& table_name,
                                        const MapReduceJob<K, V, R>& job,
                                        NodeId coordinator = 0) {
  MapReduceResult<K, V, R> out;
  ExecReport& rep = out.report;
  const std::size_t n = cluster.num_nodes();

  // Failover-aware placement: each shard's map task runs at its serving
  // node (primary, or a live replica holder when the primary is down);
  // reducers are placed on live nodes only.
  std::vector<NodeId> shard_node(n);
  for (std::size_t shard = 0; shard < n; ++shard)
    shard_node[shard] = cluster.serving_node(table_name, shard);
  std::vector<NodeId> live;
  for (std::size_t node = 0; node < n; ++node)
    if (!cluster.node_is_down(static_cast<NodeId>(node)))
      live.push_back(static_cast<NodeId>(node));
  const std::size_t num_reducers =
      job.num_reducers == 0 ? live.size()
                            : std::min(job.num_reducers, live.size());

  // --- map phase: full scans through the stack at every shard ---
  std::vector<Emitter<K, V>> emitted(n);
  for (std::size_t shard = 0; shard < n; ++shard) {
    const Table& part = cluster.partition(table_name, shard);
    cluster.account_task(shard_node[shard]);
    rep.modelled_overhead_ms += cluster.cost_model().task_overhead_ms();
    ++rep.map_tasks;
    Timer t;
    job.map(shard_node[shard], part, emitted[shard]);
    const double ms = t.elapsed_ms();
    rep.map_compute_ms_total += ms;
    rep.map_compute_ms_max = std::max(rep.map_compute_ms_max, ms);
    cluster.account_scan(shard_node[shard], part.num_rows(),
                         part.byte_size());
  }

  // --- shuffle: route each key to hash(key) % num_reducers ---
  std::vector<std::unordered_map<K, std::vector<V>>> reducer_input(
      num_reducers);
  std::vector<double> inbound_ms(num_reducers, 0.0);
  std::hash<K> hasher;
  for (std::size_t mapper = 0; mapper < n; ++mapper) {
    // Batch bytes per (mapper, reducer) pair: one message per pair, as a
    // combiner-enabled framework would send.
    std::vector<std::uint64_t> batch_bytes(num_reducers, 0);
    for (auto& [k, v] : emitted[mapper].pairs()) {
      const std::size_t r = hasher(k) % num_reducers;
      batch_bytes[r] += job.kv_bytes;
      reducer_input[r][k].push_back(std::move(v));
    }
    for (std::size_t r = 0; r < num_reducers; ++r) {
      if (batch_bytes[r] == 0) continue;
      const double ms = cluster.network().send(shard_node[mapper], live[r],
                                               batch_bytes[r]);
      rep.modelled_network_ms += ms;
      inbound_ms[r] += ms;
      rep.shuffle_bytes += batch_bytes[r];
    }
  }
  for (const double ms : inbound_ms)
    rep.modelled_network_ms_critical =
        std::max(rep.modelled_network_ms_critical, ms);

  // --- reduce phase ---
  for (std::size_t r = 0; r < num_reducers; ++r) {
    if (reducer_input[r].empty()) continue;
    cluster.account_task(live[r]);
    rep.modelled_overhead_ms += cluster.cost_model().task_overhead_ms();
    ++rep.reduce_tasks;
    Timer t;
    std::uint64_t result_batch = 0;
    for (auto& [k, vals] : reducer_input[r]) {
      out.results.emplace_back(k, job.reduce(k, vals));
      result_batch += job.result_bytes;
    }
    const double ms = t.elapsed_ms();
    rep.reduce_compute_ms_total += ms;
    rep.reduce_compute_ms_max = std::max(rep.reduce_compute_ms_max, ms);
    const double net_ms =
        cluster.network().send(live[r], coordinator, result_batch);
    rep.modelled_network_ms += net_ms;
    rep.result_bytes += result_batch;
  }
  return out;
}

}  // namespace sea
