#include "exec/exec_report.h"

#include <algorithm>
#include <sstream>

namespace sea {

// Completeness guard: merge() below must combine every field. ExecReport
// is 24 trivially-copyable 8-byte fields; adding one changes the size and
// fails this assert until merge() (and summary(), where relevant) are
// updated to cover the new field.
static_assert(sizeof(ExecReport) == 24 * 8,
              "ExecReport gained/lost a field: update merge() and this guard");

void ExecReport::merge(const ExecReport& o) noexcept {
  wall_ms += o.wall_ms;
  map_compute_ms_total += o.map_compute_ms_total;
  map_compute_ms_max = std::max(map_compute_ms_max, o.map_compute_ms_max);
  reduce_compute_ms_total += o.reduce_compute_ms_total;
  reduce_compute_ms_max =
      std::max(reduce_compute_ms_max, o.reduce_compute_ms_max);
  coordinator_compute_ms += o.coordinator_compute_ms;
  modelled_network_ms += o.modelled_network_ms;
  modelled_network_ms_critical += o.modelled_network_ms_critical;
  modelled_overhead_ms += o.modelled_overhead_ms;
  shuffle_bytes += o.shuffle_bytes;
  result_bytes += o.result_bytes;
  map_tasks += o.map_tasks;
  reduce_tasks += o.reduce_tasks;
  rpc_round_trips += o.rpc_round_trips;
  retries += o.retries;
  dropped_messages += o.dropped_messages;
  tasks_rerouted += o.tasks_rerouted;
  modelled_backoff_ms += o.modelled_backoff_ms;
  retry_budget_exhausted += o.retry_budget_exhausted;
  hedged_rpcs += o.hedged_rpcs;
  hedges_won += o.hedges_won;
  breaker_fast_fails += o.breaker_fast_fails;
  recoveries += o.recoveries;
  shard_restore_bytes += o.shard_restore_bytes;
}

double ExecReport::money_cost_usd(const CostRates& rates) const noexcept {
  // Node busy time: all real compute plus the stack overheads charged to
  // nodes (tasks, RPC handling) and backoff waits — a retrying coordinator
  // still occupies (and bills for) its node.
  const double node_ms = map_compute_ms_total + reduce_compute_ms_total +
                         coordinator_compute_ms + modelled_overhead_ms +
                         modelled_backoff_ms;
  const double node_hours = node_ms / 3.6e6;
  const double gb =
      static_cast<double>(shuffle_bytes + result_bytes) / 1.073741824e9;
  return node_hours * rates.usd_per_node_hour +
         gb * rates.usd_per_gb_transfer;
}

std::string ExecReport::summary() const {
  std::ostringstream os;
  os << "wall=" << wall_ms << "ms makespan=" << makespan_ms()
     << "ms work=" << total_work_ms()
     << "ms shuffle=" << shuffle_bytes << "B result=" << result_bytes
     << "B map_tasks=" << map_tasks << " reduce_tasks=" << reduce_tasks
     << " rpcs=" << rpc_round_trips;
  if (retries || dropped_messages || tasks_rerouted)
    os << " retries=" << retries << " dropped=" << dropped_messages
       << " rerouted=" << tasks_rerouted << " backoff=" << modelled_backoff_ms
       << "ms";
  if (retry_budget_exhausted)
    os << " retry_budget_exhausted=" << retry_budget_exhausted;
  if (hedged_rpcs || breaker_fast_fails)
    os << " hedged=" << hedged_rpcs << " hedges_won=" << hedges_won
       << " breaker_fast_fails=" << breaker_fast_fails;
  if (recoveries || shard_restore_bytes)
    os << " recoveries=" << recoveries << " restored=" << shard_restore_bytes
       << "B";
  return os.str();
}

}  // namespace sea
