// Coordinator-cohort execution paradigm (paper RT3.2).
//
// A coordinating node bypasses the heavyweight distributed-processing
// layers and issues direct, surgical RPCs against the storage engine of
// specific cohort nodes — typically after consulting an index to learn
// *which* nodes and *which* tuples matter. This is the paradigm behind the
// paper's claimed orders-of-magnitude wins for rank-join [30] and kNN [33].
//
// Resilience: each rpc() applies the cluster's RetryPolicy — a dropped or
// timed-out request/response is retried with exponential backoff (jitter
// drawn from the fault injector's seeded RNG, so the whole recovery trace
// is deterministic). A cohort node that flaps mid-call raises
// NodeDownError so the caller can re-route to a replica holder. Retry
// cost lands in the ExecReport (retries, dropped_messages,
// modelled_backoff_ms) and therefore in makespan and money cost.
//
// Overload control (DESIGN.md "Deadlines & overload"):
//  * Deadline budgets — set_deadline() arms a per-query modelled-time
//    budget; every transfer, backoff wait, and RPC overhead charge
//    decrements it, and exhaustion raises DeadlineExceeded instead of
//    retrying past the latency target.
//  * Circuit breakers — every delivery failure feeds the cluster's
//    per-node breaker; an open breaker short-circuits the call with
//    NodeDownError (so callers re-route instead of burning retries), and
//    the breaker's modelled cooldown clock advances with the same charges
//    the cost model makes.
//  * Hedged replica reads — rpc_to() accepts a backup replica holder;
//    when the request leg's modelled latency exceeds a quantile of the
//    session's observed round trips, a backup RPC is issued and the first
//    success wins (classic tail-latency hedging, deterministic because
//    every latency is modelled and every draw comes from seeded streams).
//
// Observability: when the cluster carries a Tracer/MetricsRegistry
// (Cluster::set_observability), every rpc_to() records an "rpc" span with
// an outcome tag, plus "hedge"/"backoff" child spans and breaker events,
// all on the modelled clock — the tracer advances exactly where the
// deadline budget and breaker cooldowns are charged, so traces are
// bit-identical across runs and SEA_THREADS settings.
//
// The session accumulates an ExecReport comparable with MapReduce runs.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <type_traits>
#include <utility>

#include "cluster/cluster.h"
#include "common/stats.h"
#include "common/timer.h"
#include "exec/exec_report.h"
#include "fault/fault.h"
#include "fault/outage.h"
#include "fault/retry.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace sea {

class CohortSession {
 public:
  /// Sentinel for "no backup replica available" (hedging disabled).
  static constexpr NodeId kNoBackup = 0xffffffffu;

  CohortSession(Cluster& cluster, NodeId coordinator)
      : cluster_(cluster),
        coordinator_(coordinator),
        tracer_(cluster.tracer()),
        retry_obs_(RetryMetrics::bind(cluster.metrics())) {
    if (obs::MetricsRegistry* reg = cluster.metrics()) {
      m_round_trips_ = &reg->counter("rpc.round_trips");
      m_hedged_ = &reg->counter("rpc.hedged");
      m_hedges_won_ = &reg->counter("rpc.hedges_won");
      m_breaker_fast_fails_ = &reg->counter("rpc.breaker_fast_fails");
      m_rtt_ = &reg->histogram("rpc.rtt_ms",
                               {0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0});
    }
  }

  NodeId coordinator() const noexcept { return coordinator_; }
  Cluster& cluster() noexcept { return cluster_; }

  /// Arms a modelled-time deadline budget for subsequent RPCs (nullptr
  /// disarms). The budget object outlives the session's use of it.
  void set_deadline(QueryDeadline* deadline) noexcept { deadline_ = deadline; }
  QueryDeadline* deadline() const noexcept { return deadline_; }

  /// Retry tokens consumed so far (against RetryPolicy::retry_budget).
  std::size_t retry_tokens_used() const noexcept { return retry_tokens_used_; }

  /// One round trip: request of `request_bytes` to `node`, server-side work
  /// `fn()` (measured; fn must do its own account_probe/account_scan), and
  /// a `response_bytes` reply. Returns fn's value. Retries dropped/timed-out
  /// legs per the cluster's RetryPolicy (fn re-executes on a lost response —
  /// cohort reads are idempotent); throws RpcRetriesExhausted when attempts
  /// run out and NodeDownError when the cohort node is down or its breaker
  /// opens (re-route).
  template <typename F>
  auto rpc(NodeId node, std::size_t request_bytes, std::size_t response_bytes,
           F&& fn) -> decltype(fn()) {
    return rpc_to(node, kNoBackup, request_bytes, response_bytes,
                  [&](NodeId) { return fn(); });
  }

  /// Like rpc(), but the work function receives the node that actually
  /// executes it, and `backup` (a live replica holder, or kNoBackup) may
  /// serve a hedged read when the primary's request leg stalls.
  template <typename F>
  auto rpc_to(NodeId node, NodeId backup, std::size_t request_bytes,
              std::size_t response_bytes, F&& fn)
      -> decltype(fn(std::declval<NodeId>())) {
    using R = decltype(fn(std::declval<NodeId>()));
    const RetryPolicy& policy = cluster_.retry_policy();
    FaultInjector* injector = cluster_.fault_injector();
    CircuitBreakerSet& breakers = cluster_.breakers();
    // Only a DeadlineExceeded (thrown mid-charge) leaves the default tag;
    // every other exit overwrites it.
    obs::SpanScope span(tracer_, "rpc", static_cast<std::int64_t>(node));
    span.set_tag("deadline_exceeded");
    for (std::size_t attempt = 0;; ++attempt) {
      if (injector) {
        const TickEffects fx = injector->tick(cluster_);
        report_.recoveries += fx.restarts;
        report_.shard_restore_bytes += fx.restore_bytes;
      }
      if (cluster_.node_is_down(node)) {
        span.set_tag("node_down");
        throw NodeDownError(node, "CohortSession::rpc: cohort node " +
                                      std::to_string(node) + " is down");
      }
      if (!breakers.allow(node)) {
        ++report_.breaker_fast_fails;
        if (m_breaker_fast_fails_) m_breaker_fast_fails_->inc();
        if (tracer_)
          tracer_->event("breaker_open", "fast_fail",
                         static_cast<std::int64_t>(node));
        span.set_tag("breaker_open");
        throw NodeDownError(node, "CohortSession::rpc: circuit breaker open "
                                  "for node " +
                                      std::to_string(node));
      }
      const SendOutcome out =
          cluster_.network().try_send(coordinator_, node, request_bytes);
      if (out.delivered && out.ms <= policy.rpc_timeout_ms) {
        // Hedge: the request leg came in above the observed round-trip
        // quantile (straggler link). Fire one backup RPC at the next
        // replica holder; its success preempts the slow primary.
        if constexpr (!std::is_void_v<R>) {
          if (backup != kNoBackup && hedge_armed() &&
              out.ms > hedge_threshold_ms() &&
              !cluster_.node_is_down(backup) && breakers.allow(backup)) {
            ++report_.hedged_rpcs;
            if (m_hedged_) m_hedged_->inc();
            obs::SpanScope hedge_span(tracer_, "hedge",
                                      static_cast<std::int64_t>(backup));
            hedge_span.set_tag("lost");
            std::optional<R> hedged = attempt_once<R>(
                backup, request_bytes, response_bytes, fn, policy);
            if (hedged) {
              // The primary's in-flight request still consumed its time.
              charge_network(out.ms);
              ++report_.hedges_won;
              if (m_hedges_won_) m_hedges_won_->inc();
              hedge_span.set_tag("won");
              span.set_tag("hedge_won");
              span.add_bytes(request_bytes + response_bytes);
              return *hedged;
            }
          }
        }
        Timer t;
        if constexpr (std::is_void_v<R>) {
          fn(node);
          if (deliver_response(node, response_bytes, out.ms, t.elapsed_ms(),
                               policy)) {
            breakers.record_success(node);
            span.set_tag("ok");
            span.add_bytes(request_bytes + response_bytes);
            return;
          }
        } else {
          R result = fn(node);
          if (deliver_response(node, response_bytes, out.ms, t.elapsed_ms(),
                               policy)) {
            breakers.record_success(node);
            span.set_tag("ok");
            span.add_bytes(request_bytes + response_bytes);
            return result;
          }
        }
        breakers.record_failure(node);  // response leg lost / timed out
      } else {
        // Request leg lost (or modelled as timed out): the attempt still
        // consumed its transfer/detection time on the critical path.
        if (!out.delivered) {
          ++report_.dropped_messages;
          retry_obs_.on_drop();
        }
        charge_network(out.ms);
        breakers.record_failure(node);
      }
      if (breakers.open_now(node)) {
        // The breaker tripped on this failure: short-circuit the retry
        // storm and let the caller re-route to a replica holder.
        ++report_.breaker_fast_fails;
        if (m_breaker_fast_fails_) m_breaker_fast_fails_->inc();
        if (tracer_)
          tracer_->event("breaker_open", "tripped_mid_call",
                         static_cast<std::int64_t>(node));
        span.set_tag("breaker_open");
        throw NodeDownError(node, "CohortSession::rpc: circuit breaker "
                                  "opened for node " +
                                      std::to_string(node) + " mid-call");
      }
      note_retry(attempt, policy, injector, node, span);
    }
  }

  /// Accounts additional response payload from `node` whose size was only
  /// known after the RPC executed (e.g. variable-length match lists).
  void extra_response(NodeId node, std::size_t bytes) {
    const double ms = cluster_.network().send(node, coordinator_, bytes);
    charge_network(ms);
    report_.result_bytes += bytes;
  }

  /// Work done locally at the coordinator (merging, top-k maintenance...).
  template <typename F>
  auto local(F&& fn) -> decltype(fn()) {
    Timer t;
    if constexpr (std::is_void_v<decltype(fn())>) {
      std::forward<F>(fn)();
      report_.coordinator_compute_ms += t.elapsed_ms();
      return;
    } else {
      auto result = std::forward<F>(fn)();
      report_.coordinator_compute_ms += t.elapsed_ms();
      return result;
    }
  }

  /// Records that a task was moved to a replica holder after its serving
  /// node flapped mid-query (called by executors on NodeDownError).
  void note_reroute() noexcept { ++report_.tasks_rerouted; }

  const ExecReport& report() const noexcept { return report_; }
  ExecReport take_report() noexcept {
    ExecReport r = report_;
    report_ = ExecReport{};
    return r;
  }

 private:
  /// Charges modelled transfer time everywhere it must land: the report,
  /// the breaker cooldown clock, and the armed deadline budget (which may
  /// throw DeadlineExceeded right here — the overload-control abort point).
  void charge_network(double ms) {
    // RPCs are issued in sequence by the coordinator, so every leg
    // (including failed ones) is on the critical path.
    report_.modelled_network_ms += ms;
    report_.modelled_network_ms_critical += ms;
    cluster_.breakers().advance(ms);
    if (tracer_) tracer_->advance(ms);
    if (deadline_) deadline_->charge("rpc transfer", ms);
  }

  bool hedge_armed() const noexcept {
    const HedgeConfig& h = cluster_.hedge_config();
    return h.enabled && rtt_ms_.count() >= h.min_samples;
  }
  double hedge_threshold_ms() const {
    const HedgeConfig& h = cluster_.hedge_config();
    return rtt_ms_.quantile(h.quantile) * h.multiplier;
  }

  /// One non-retrying round trip at `node` (the hedged backup attempt).
  /// Failure returns nullopt: the caller falls back to the primary.
  template <typename R, typename F>
  std::optional<R> attempt_once(NodeId node, std::size_t request_bytes,
                                std::size_t response_bytes, F& fn,
                                const RetryPolicy& policy) {
    CircuitBreakerSet& breakers = cluster_.breakers();
    const SendOutcome out =
        cluster_.network().try_send(coordinator_, node, request_bytes);
    if (!out.delivered || out.ms > policy.rpc_timeout_ms) {
      if (!out.delivered) {
        ++report_.dropped_messages;
        retry_obs_.on_drop();
      }
      charge_network(out.ms);
      breakers.record_failure(node);
      return std::nullopt;
    }
    Timer t;
    R result = fn(node);
    if (!deliver_response(node, response_bytes, out.ms, t.elapsed_ms(),
                          policy)) {
      breakers.record_failure(node);
      return std::nullopt;
    }
    breakers.record_success(node);
    return result;
  }

  /// Response leg of an attempt whose request+work succeeded. Returns true
  /// when delivered; on a drop/timeout charges the wasted round trip so the
  /// caller retries (server work is also wasted and re-measured).
  bool deliver_response(NodeId node, std::size_t response_bytes, double out_ms,
                        double server_ms, const RetryPolicy& policy) {
    const SendOutcome back =
        cluster_.network().try_send(node, coordinator_, response_bytes);
    charge_network(out_ms + back.ms);
    // RPCs run sequentially, so server-side work is critical-path compute.
    report_.coordinator_compute_ms += server_ms;
    if (!back.delivered || back.ms > policy.rpc_timeout_ms) {
      if (!back.delivered) {
        ++report_.dropped_messages;
        retry_obs_.on_drop();
      }
      return false;
    }
    const double rpc_ms = cluster_.cost_model().coordinator_rpc_ms;
    report_.modelled_overhead_ms += rpc_ms;
    if (tracer_) tracer_->advance(rpc_ms);
    if (deadline_) deadline_->charge("rpc overhead", rpc_ms);
    report_.result_bytes += response_bytes;
    ++report_.rpc_round_trips;
    if (m_round_trips_) m_round_trips_->inc();
    if (m_rtt_) m_rtt_->observe(out_ms + back.ms);
    rtt_ms_.add(out_ms + back.ms);  // hedge-threshold observation
    return true;
  }

  /// Bookkeeping between attempts; throws RpcRetriesExhausted at the cap
  /// (before any backoff draw, so max_attempts=1 consumes no jitter RNG).
  /// The session-wide retry token budget (RetryPolicy::retry_budget) is
  /// checked here too: once spent, every further failure fails fast —
  /// the retry-storm guard for correlated outages (partitions).
  void note_retry(std::size_t attempt, const RetryPolicy& policy,
                  FaultInjector* injector, NodeId node, obs::SpanScope& span) {
    if (attempt + 1 >= policy.max_attempts) {
      span.set_tag("retries_exhausted");
      throw RpcRetriesExhausted(
          "CohortSession::rpc: " + std::to_string(policy.max_attempts) +
          " attempts to node " + std::to_string(node) + " all failed");
    }
    if (policy.retry_budget > 0 && retry_tokens_used_ >= policy.retry_budget) {
      ++report_.retry_budget_exhausted;
      retry_obs_.on_budget_exhausted();
      span.set_tag("retry_budget_exhausted");
      throw RpcRetriesExhausted(
          "CohortSession::rpc: session retry budget of " +
          std::to_string(policy.retry_budget) +
          " tokens exhausted (failing call to node " + std::to_string(node) +
          ")");
    }
    ++retry_tokens_used_;
    ++report_.retries;
    const double wait =
        policy.backoff_ms(attempt, injector ? injector->rng() : backoff_rng_);
    report_.modelled_backoff_ms += wait;
    retry_obs_.on_retry(wait);
    if (tracer_)
      tracer_->span_event("backoff", wait, "", 0,
                          static_cast<std::int64_t>(node));
    cluster_.breakers().advance(wait);
    if (deadline_) deadline_->charge("retry backoff", wait);
  }

  Cluster& cluster_;
  NodeId coordinator_;
  ExecReport report_;
  QueryDeadline* deadline_ = nullptr;
  /// Retry tokens spent so far this session (retry-storm guard; compared
  /// against RetryPolicy::retry_budget in note_retry).
  std::size_t retry_tokens_used_ = 0;
  /// Observability handles resolved once at construction (all null when
  /// the cluster has no tracer/registry attached — zero-cost path).
  obs::Tracer* tracer_ = nullptr;
  RetryMetrics retry_obs_;
  obs::Counter* m_round_trips_ = nullptr;
  obs::Counter* m_hedged_ = nullptr;
  obs::Counter* m_hedges_won_ = nullptr;
  obs::Counter* m_breaker_fast_fails_ = nullptr;
  obs::Histogram* m_rtt_ = nullptr;
  /// Observed modelled round-trip times of successful RPCs — the quantile
  /// source for the hedge threshold. Session-local and updated only on the
  /// (serial) coordinator path, so it is deterministic.
  SlidingQuantile rtt_ms_{128};
  /// Jitter source when no fault injector is attached (fixed seed keeps
  /// even injector-less retry traces deterministic).
  Rng backoff_rng_{0x5eabac0ffULL};
};

}  // namespace sea
