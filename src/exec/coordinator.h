// Coordinator-cohort execution paradigm (paper RT3.2).
//
// A coordinating node bypasses the heavyweight distributed-processing
// layers and issues direct, surgical RPCs against the storage engine of
// specific cohort nodes — typically after consulting an index to learn
// *which* nodes and *which* tuples matter. This is the paradigm behind the
// paper's claimed orders-of-magnitude wins for rank-join [30] and kNN [33].
//
// The session accumulates an ExecReport comparable with MapReduce runs.
#pragma once

#include <cstdint>
#include <functional>
#include <type_traits>
#include <utility>

#include "cluster/cluster.h"
#include "common/timer.h"
#include "exec/exec_report.h"

namespace sea {

class CohortSession {
 public:
  CohortSession(Cluster& cluster, NodeId coordinator)
      : cluster_(cluster), coordinator_(coordinator) {}

  NodeId coordinator() const noexcept { return coordinator_; }
  Cluster& cluster() noexcept { return cluster_; }

  /// One round trip: request of `request_bytes` to `node`, server-side work
  /// `fn()` (measured; fn must do its own account_probe/account_scan), and
  /// a `response_bytes` reply. Returns fn's value.
  template <typename F>
  auto rpc(NodeId node, std::size_t request_bytes, std::size_t response_bytes,
           F&& fn) -> decltype(fn()) {
    const double out_ms =
        cluster_.network().send(coordinator_, node, request_bytes);
    Timer t;
    if constexpr (std::is_void_v<decltype(fn())>) {
      std::forward<F>(fn)();
      finish_rpc(node, response_bytes, out_ms, t.elapsed_ms());
      return;
    } else {
      auto result = std::forward<F>(fn)();
      finish_rpc(node, response_bytes, out_ms, t.elapsed_ms());
      return result;
    }
  }

  /// Accounts additional response payload from `node` whose size was only
  /// known after the RPC executed (e.g. variable-length match lists).
  void extra_response(NodeId node, std::size_t bytes) {
    const double ms = cluster_.network().send(node, coordinator_, bytes);
    report_.modelled_network_ms += ms;
    report_.modelled_network_ms_critical += ms;
    report_.result_bytes += bytes;
  }

  /// Work done locally at the coordinator (merging, top-k maintenance...).
  template <typename F>
  auto local(F&& fn) -> decltype(fn()) {
    Timer t;
    if constexpr (std::is_void_v<decltype(fn())>) {
      std::forward<F>(fn)();
      report_.coordinator_compute_ms += t.elapsed_ms();
      return;
    } else {
      auto result = std::forward<F>(fn)();
      report_.coordinator_compute_ms += t.elapsed_ms();
      return result;
    }
  }

  const ExecReport& report() const noexcept { return report_; }
  ExecReport take_report() noexcept {
    ExecReport r = report_;
    report_ = ExecReport{};
    return r;
  }

 private:
  void finish_rpc(NodeId node, std::size_t response_bytes, double out_ms,
                  double server_ms) {
    const double back_ms =
        cluster_.network().send(node, coordinator_, response_bytes);
    report_.modelled_network_ms += out_ms + back_ms;
    // RPCs are issued in sequence by the coordinator, so every round trip
    // is on the critical path.
    report_.modelled_network_ms_critical += out_ms + back_ms;
    report_.modelled_overhead_ms += cluster_.cost_model().coordinator_rpc_ms;
    // RPCs run sequentially, so server-side work is critical-path compute.
    report_.coordinator_compute_ms += server_ms;
    report_.result_bytes += response_bytes;
    ++report_.rpc_round_trips;
  }

  Cluster& cluster_;
  NodeId coordinator_;
  ExecReport report_;
};

}  // namespace sea
