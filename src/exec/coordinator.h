// Coordinator-cohort execution paradigm (paper RT3.2).
//
// A coordinating node bypasses the heavyweight distributed-processing
// layers and issues direct, surgical RPCs against the storage engine of
// specific cohort nodes — typically after consulting an index to learn
// *which* nodes and *which* tuples matter. This is the paradigm behind the
// paper's claimed orders-of-magnitude wins for rank-join [30] and kNN [33].
//
// Resilience: each rpc() applies the cluster's RetryPolicy — a dropped or
// timed-out request/response is retried with exponential backoff (jitter
// drawn from the fault injector's seeded RNG, so the whole recovery trace
// is deterministic). A cohort node that flaps mid-call raises
// NodeDownError so the caller can re-route to a replica holder. Retry
// cost lands in the ExecReport (retries, dropped_messages,
// modelled_backoff_ms) and therefore in makespan and money cost.
//
// The session accumulates an ExecReport comparable with MapReduce runs.
#pragma once

#include <cstdint>
#include <functional>
#include <type_traits>
#include <utility>

#include "cluster/cluster.h"
#include "common/timer.h"
#include "exec/exec_report.h"
#include "fault/fault.h"
#include "fault/retry.h"

namespace sea {

class CohortSession {
 public:
  CohortSession(Cluster& cluster, NodeId coordinator)
      : cluster_(cluster), coordinator_(coordinator) {}

  NodeId coordinator() const noexcept { return coordinator_; }
  Cluster& cluster() noexcept { return cluster_; }

  /// One round trip: request of `request_bytes` to `node`, server-side work
  /// `fn()` (measured; fn must do its own account_probe/account_scan), and
  /// a `response_bytes` reply. Returns fn's value. Retries dropped/timed-out
  /// legs per the cluster's RetryPolicy (fn re-executes on a lost response —
  /// cohort reads are idempotent); throws RpcRetriesExhausted when attempts
  /// run out and NodeDownError when the cohort node is down (re-route).
  template <typename F>
  auto rpc(NodeId node, std::size_t request_bytes, std::size_t response_bytes,
           F&& fn) -> decltype(fn()) {
    const RetryPolicy& policy = cluster_.retry_policy();
    FaultInjector* injector = cluster_.fault_injector();
    for (std::size_t attempt = 0;; ++attempt) {
      if (injector) injector->tick(cluster_);
      if (cluster_.node_is_down(node))
        throw NodeDownError(node, "CohortSession::rpc: cohort node " +
                                      std::to_string(node) + " is down");
      const SendOutcome out =
          cluster_.network().try_send(coordinator_, node, request_bytes);
      if (out.delivered && out.ms <= policy.rpc_timeout_ms) {
        Timer t;
        if constexpr (std::is_void_v<decltype(fn())>) {
          fn();
          if (deliver_response(node, response_bytes, out.ms, t.elapsed_ms(),
                               policy)) {
            return;
          }
        } else {
          auto result = fn();
          if (deliver_response(node, response_bytes, out.ms, t.elapsed_ms(),
                               policy)) {
            return result;
          }
        }
      } else {
        // Request leg lost (or modelled as timed out): the attempt still
        // consumed its transfer/detection time on the critical path.
        if (!out.delivered) ++report_.dropped_messages;
        report_.modelled_network_ms += out.ms;
        report_.modelled_network_ms_critical += out.ms;
      }
      note_retry(attempt, policy, injector, node);
    }
  }

  /// Accounts additional response payload from `node` whose size was only
  /// known after the RPC executed (e.g. variable-length match lists).
  void extra_response(NodeId node, std::size_t bytes) {
    const double ms = cluster_.network().send(node, coordinator_, bytes);
    report_.modelled_network_ms += ms;
    report_.modelled_network_ms_critical += ms;
    report_.result_bytes += bytes;
  }

  /// Work done locally at the coordinator (merging, top-k maintenance...).
  template <typename F>
  auto local(F&& fn) -> decltype(fn()) {
    Timer t;
    if constexpr (std::is_void_v<decltype(fn())>) {
      std::forward<F>(fn)();
      report_.coordinator_compute_ms += t.elapsed_ms();
      return;
    } else {
      auto result = std::forward<F>(fn)();
      report_.coordinator_compute_ms += t.elapsed_ms();
      return result;
    }
  }

  /// Records that a task was moved to a replica holder after its serving
  /// node flapped mid-query (called by executors on NodeDownError).
  void note_reroute() noexcept { ++report_.tasks_rerouted; }

  const ExecReport& report() const noexcept { return report_; }
  ExecReport take_report() noexcept {
    ExecReport r = report_;
    report_ = ExecReport{};
    return r;
  }

 private:
  /// Response leg of an attempt whose request+work succeeded. Returns true
  /// when delivered; on a drop/timeout charges the wasted round trip so the
  /// caller retries (server work is also wasted and re-measured).
  bool deliver_response(NodeId node, std::size_t response_bytes, double out_ms,
                        double server_ms, const RetryPolicy& policy) {
    const SendOutcome back =
        cluster_.network().try_send(node, coordinator_, response_bytes);
    // RPCs are issued in sequence by the coordinator, so every round trip
    // (including failed ones) is on the critical path.
    report_.modelled_network_ms += out_ms + back.ms;
    report_.modelled_network_ms_critical += out_ms + back.ms;
    // RPCs run sequentially, so server-side work is critical-path compute.
    report_.coordinator_compute_ms += server_ms;
    if (!back.delivered || back.ms > policy.rpc_timeout_ms) {
      if (!back.delivered) ++report_.dropped_messages;
      return false;
    }
    report_.modelled_overhead_ms += cluster_.cost_model().coordinator_rpc_ms;
    report_.result_bytes += response_bytes;
    ++report_.rpc_round_trips;
    return true;
  }

  /// Bookkeeping between attempts; throws RpcRetriesExhausted at the cap.
  void note_retry(std::size_t attempt, const RetryPolicy& policy,
                  FaultInjector* injector, NodeId node) {
    if (attempt + 1 >= policy.max_attempts)
      throw RpcRetriesExhausted(
          "CohortSession::rpc: " + std::to_string(policy.max_attempts) +
          " attempts to node " + std::to_string(node) + " all failed");
    ++report_.retries;
    report_.modelled_backoff_ms +=
        policy.backoff_ms(attempt, injector ? injector->rng() : backoff_rng_);
  }

  Cluster& cluster_;
  NodeId coordinator_;
  ExecReport report_;
  /// Jitter source when no fault injector is attached (fixed seed keeps
  /// even injector-less retry traces deterministic).
  Rng backoff_rng_{0x5eabac0ffULL};
};

}  // namespace sea
