// Unified execution report shared by both distributed processing paradigms
// the paper contrasts (RT3.2): MapReduce-style and coordinator-cohort.
//
// Measured compute is real wall-clock; network and BDAS-layer costs are
// modelled (see DESIGN.md "cost accounting, not wall-clock fiction") and
// reported separately so benchmarks can print both raw hardware-independent
// counters (bytes, node touches) and an end-to-end modelled makespan.
#pragma once

#include <cstdint>
#include <string>

namespace sea {

/// Cloud pricing knobs for money-cost accounting (defaults are in the
/// ballpark of on-demand public-cloud list prices).
struct CostRates {
  double usd_per_node_hour = 0.40;   ///< charged on task/RPC busy time
  double usd_per_gb_transfer = 0.08; ///< inter-node transfer
};

struct ExecReport {
  // Real, measured compute.
  /// End-to-end wall clock of the execution call on the driving host,
  /// including any thread-pool parallelism (SEA_THREADS). Deliberately
  /// separate from the modelled makespan: wall_ms is where parallel
  /// speedups show up; the cost model stays hardware-independent.
  double wall_ms = 0.0;
  double map_compute_ms_total = 0.0;
  double map_compute_ms_max = 0.0;
  double reduce_compute_ms_total = 0.0;
  double reduce_compute_ms_max = 0.0;
  double coordinator_compute_ms = 0.0;

  // Modelled costs.
  double modelled_network_ms = 0.0;       ///< sum over messages
  double modelled_network_ms_critical = 0.0;  ///< max inbound per receiver
  double modelled_overhead_ms = 0.0;      ///< BDAS layer/task overheads

  // Hardware-independent counters.
  std::uint64_t shuffle_bytes = 0;
  std::uint64_t result_bytes = 0;
  std::uint64_t map_tasks = 0;
  std::uint64_t reduce_tasks = 0;
  std::uint64_t rpc_round_trips = 0;

  // Fault-recovery accounting (src/fault): deterministic for a fixed
  // FaultPlan seed, so resilience benchmarks are exactly repeatable.
  std::uint64_t retries = 0;           ///< message/RPC re-attempts
  std::uint64_t dropped_messages = 0;  ///< messages lost in flight
  std::uint64_t tasks_rerouted = 0;    ///< tasks moved off a flapped node
  double modelled_backoff_ms = 0.0;    ///< retry backoff waits (modelled)
  /// Failures refused a retry because the session/run retry token budget
  /// (RetryPolicy::retry_budget, the retry-storm guard) was already spent.
  std::uint64_t retry_budget_exhausted = 0;

  // Overload-control accounting (deadlines, breakers, hedges).
  std::uint64_t hedged_rpcs = 0;        ///< backup requests issued
  std::uint64_t hedges_won = 0;         ///< backups that answered first
  std::uint64_t breaker_fast_fails = 0; ///< RPCs short-circuited by a breaker

  // Crash-recovery accounting (src/fault node_crashes + shard rebuild).
  std::uint64_t recoveries = 0;  ///< node restarts observed mid-execution
  std::uint64_t shard_restore_bytes = 0;  ///< bytes re-replicated on restart

  /// End-to-end modelled makespan: parallel map phase, then the critical
  /// shuffle path, then parallel reduce, plus per-phase BDAS overheads and
  /// any retry backoff the coordinator sat through.
  double makespan_ms() const noexcept {
    return modelled_overhead_ms + map_compute_ms_max +
           modelled_network_ms_critical + reduce_compute_ms_max +
           coordinator_compute_ms + modelled_backoff_ms;
  }

  /// Total resource consumption (what a cloud bill would charge for):
  /// all compute everywhere plus all transfer time and backoff waits.
  double total_work_ms() const noexcept {
    return map_compute_ms_total + reduce_compute_ms_total +
           coordinator_compute_ms + modelled_network_ms +
           modelled_overhead_ms + modelled_backoff_ms;
  }

  /// Total *modelled* time of the execution (network + overheads +
  /// backoff) — every term deterministic for a fixed seed, none measured.
  /// This is the quantity deadline budgets and the admission queue charge,
  /// so overload control is bit-identical across SEA_THREADS settings.
  double modelled_ms() const noexcept {
    return modelled_network_ms + modelled_overhead_ms + modelled_backoff_ms;
  }

  /// Estimated money cost under the given cloud rates — the paper's
  /// explicit third metric (P4: "scalability, efficiency, accuracy,
  /// availability, money-costs"; [30] reports money-cost improvements).
  double money_cost_usd(const CostRates& rates) const noexcept;

  void merge(const ExecReport& o) noexcept;

  std::string summary() const;
};

}  // namespace sea
