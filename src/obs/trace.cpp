#include "obs/trace.h"

#include <cassert>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace sea::obs {

namespace {

/// Full round-trip precision: two bit-identical doubles print identically,
/// and any drift — however small — shows up in a byte comparison.
void put_double(std::ostream& os, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  os << buf;
}

/// Span names/tags are call-site literals, but escape defensively so the
/// dump stays valid JSON whatever a future call site passes.
void put_string(std::ostream& os, const char* s) {
  os << '"';
  for (; *s; ++s) {
    if (*s == '"' || *s == '\\') os << '\\';
    os << *s;
  }
  os << '"';
}

}  // namespace

Tracer::Tracer(std::size_t max_spans) : max_spans_(max_spans) {
  spans_.reserve(max_spans_ < 4096 ? max_spans_ : 4096);
}

SpanId Tracer::begin_span(const char* name, std::int64_t node) {
  if (spans_.size() >= max_spans_) {
    ++dropped_;
    return kNoSpan;
  }
  TraceSpan span;
  span.parent = stack_.empty() ? kNoSpan : stack_.back();
  span.name = name;
  span.node = node;
  span.start_ms = now_ms_;
  span.end_ms = now_ms_;
  const SpanId id = static_cast<SpanId>(spans_.size());
  spans_.push_back(span);
  stack_.push_back(id);
  return id;
}

void Tracer::end_span(SpanId id, const char* tag, std::uint64_t bytes) {
  if (id == kNoSpan) return;  // dropped at begin (capacity)
  assert(!stack_.empty() && stack_.back() == id &&
         "Tracer: spans must close innermost-first");
  stack_.pop_back();
  TraceSpan& span = spans_[id];
  span.end_ms = now_ms_;
  span.tag = tag;
  span.bytes = bytes;
}

void Tracer::span_event(const char* name, double duration_ms, const char* tag,
                        std::uint64_t bytes, std::int64_t node) {
  const SpanId id = begin_span(name, node);
  advance(duration_ms);
  end_span(id, tag, bytes);
}

void Tracer::reset() {
  spans_.clear();
  stack_.clear();
  dropped_ = 0;
  now_ms_ = 0.0;
}

void Tracer::dump_json(std::ostream& os) const {
  os << "{\n  \"clock_ms\": ";
  put_double(os, now_ms_);
  os << ",\n  \"dropped_spans\": " << dropped_ << ",\n  \"spans\": [";
  for (std::size_t i = 0; i < spans_.size(); ++i) {
    const TraceSpan& s = spans_[i];
    os << (i ? ",\n    " : "\n    ");
    os << "{\"id\": " << i << ", \"parent\": ";
    if (s.parent == kNoSpan)
      os << -1;
    else
      os << s.parent;
    os << ", \"name\": ";
    put_string(os, s.name);
    os << ", \"start_ms\": ";
    put_double(os, s.start_ms);
    os << ", \"end_ms\": ";
    put_double(os, s.end_ms);
    os << ", \"bytes\": " << s.bytes << ", \"node\": " << s.node
       << ", \"tag\": ";
    put_string(os, s.tag);
    os << '}';
  }
  os << (spans_.empty() ? "]\n}\n" : "\n  ]\n}\n");
}

std::string Tracer::dump_json() const {
  std::ostringstream os;
  dump_json(os);
  return os.str();
}

}  // namespace sea::obs
