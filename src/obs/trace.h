// TraceSpan trees on the modelled clock (DESIGN.md "Observability").
//
// One Tracer records a forest of spans: a root span per served query,
// child spans for exact-path legs (RPCs, retry backoffs, hedge races,
// MapReduce phases, WAN hops), model-path peeks, and overload events
// (shed, deadline-exceeded, breaker-open). Each span carries its modelled
// interval [start_ms, end_ms], a byte count, an optional node id, and an
// outcome tag.
//
// Determinism contract (the headline guarantee, same as ExecReport's
// modelled columns): span timestamps come from the tracer's *modelled*
// clock — advanced only by the deterministic charges the cost model makes
// (transfers, backoff waits, task overheads) — and span ids are assigned
// in creation order on the serial executor paths. A trace_dump of a
// seeded run is therefore bit-identical across runs and at any
// SEA_THREADS setting; tests/test_obs.cpp asserts exactly that.
//
// Nesting discipline: spans form a stack (begin/end are LIFO, enforced by
// SpanScope's destructor ordering), so every child interval is contained
// in its parent's and parent ids always precede child ids — the
// structural invariants the seed-sweep property test checks.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace sea::obs {

/// Id of a recorded span (index into the tracer's span vector, i.e.
/// creation order).
using SpanId = std::uint32_t;
inline constexpr SpanId kNoSpan = 0xffffffffu;

struct TraceSpan {
  SpanId parent = kNoSpan;  ///< kNoSpan for a root span
  const char* name = "";    ///< call-site literal ("serve", "rpc", ...)
  const char* tag = "";     ///< outcome ("ok", "shed", "dropped", ...)
  double start_ms = 0.0;    ///< modelled clock at begin
  double end_ms = 0.0;      ///< modelled clock at end
  std::uint64_t bytes = 0;  ///< payload attributed to this span
  std::int64_t node = -1;   ///< node/edge id when meaningful

  double duration_ms() const noexcept { return end_ms - start_ms; }
};

class Tracer {
 public:
  /// `max_spans` bounds memory on long runs: spans beyond it are counted
  /// (dropped_spans) but not recorded — deterministically, since all span
  /// creation happens on serial paths.
  explicit Tracer(std::size_t max_spans = 1u << 20);

  // --- modelled clock ---
  double now_ms() const noexcept { return now_ms_; }
  /// Advances the modelled clock; called with the same deterministic
  /// charges the cost model makes (never wall-clock).
  void advance(double ms) noexcept { now_ms_ += ms; }

  // --- span recording (serial paths only) ---
  /// Opens a span starting now, child of the innermost open span.
  SpanId begin_span(const char* name, std::int64_t node = -1);
  /// Closes the innermost open span (which must be `id`) at the current
  /// clock, attaching the outcome tag and payload bytes.
  void end_span(SpanId id, const char* tag = "", std::uint64_t bytes = 0);
  /// Records a complete leaf span covering [now, now + duration_ms] and
  /// advances the clock past it (backoff waits, WAN hops, transfers).
  void span_event(const char* name, double duration_ms, const char* tag = "",
                  std::uint64_t bytes = 0, std::int64_t node = -1);
  /// Records an instantaneous marker span at the current clock (shed,
  /// breaker-open, deadline-exceeded).
  void event(const char* name, const char* tag = "", std::int64_t node = -1) {
    span_event(name, 0.0, tag, 0, node);
  }

  const std::vector<TraceSpan>& spans() const noexcept { return spans_; }
  std::uint64_t dropped_spans() const noexcept { return dropped_; }
  std::size_t open_depth() const noexcept { return stack_.size(); }

  /// Clears all spans, the open-span stack, and rewinds the clock.
  void reset();

  /// Deterministic JSON export: one record per span in id order, doubles
  /// at full round-trip precision.
  void dump_json(std::ostream& os) const;
  std::string dump_json() const;

 private:
  std::vector<TraceSpan> spans_;
  std::vector<SpanId> stack_;  ///< open spans, innermost last
  std::size_t max_spans_;
  std::uint64_t dropped_ = 0;
  double now_ms_ = 0.0;
};

/// RAII span: begins on construction, ends (with the stored tag/bytes) on
/// destruction — exception-safe, and destructor ordering enforces the
/// tracer's LIFO nesting discipline. All methods no-op on a null tracer,
/// so call sites need no `if (tracer)` guards.
class SpanScope {
 public:
  SpanScope(Tracer* tracer, const char* name, std::int64_t node = -1)
      : tracer_(tracer) {
    if (tracer_) id_ = tracer_->begin_span(name, node);
  }
  ~SpanScope() {
    if (tracer_) tracer_->end_span(id_, tag_, bytes_);
  }
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

  void set_tag(const char* tag) noexcept { tag_ = tag; }
  void add_bytes(std::uint64_t bytes) noexcept { bytes_ += bytes; }

 private:
  Tracer* tracer_;
  SpanId id_ = kNoSpan;
  const char* tag_ = "";
  std::uint64_t bytes_ = 0;
};

}  // namespace sea::obs
