#include "obs/metrics.h"

#include <cstdio>
#include <ostream>
#include <sstream>

namespace sea::obs {

namespace {

void put_double(std::ostream& os, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  os << buf;
}

void put_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
  os << '"';
}

}  // namespace

Counter& MetricsRegistry::counter(const std::string& name) {
  return counters_[name];
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  return gauges_[name];
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_.emplace(name, Histogram(std::move(bounds)))
      .first->second;
}

void MetricsRegistry::reset() {
  for (auto& [name, c] : counters_) c.value_ = 0;
  for (auto& [name, g] : gauges_) g.value_ = 0.0;
  for (auto& [name, h] : histograms_) {
    h.count_ = 0;
    h.sum_ = 0.0;
    h.buckets_.assign(h.buckets_.size(), 0);
  }
}

void MetricsRegistry::snapshot_json(std::ostream& os) const {
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    os << (first ? "\n    " : ",\n    ");
    first = false;
    put_string(os, name);
    os << ": " << c.value();
  }
  os << (counters_.empty() ? "},\n" : "\n  },\n");
  os << "  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    os << (first ? "\n    " : ",\n    ");
    first = false;
    put_string(os, name);
    os << ": ";
    put_double(os, g.value());
  }
  os << (gauges_.empty() ? "},\n" : "\n  },\n");
  os << "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    os << (first ? "\n    " : ",\n    ");
    first = false;
    put_string(os, name);
    os << ": {\"count\": " << h.count() << ", \"sum\": ";
    put_double(os, h.sum());
    os << ", \"buckets\": [";
    const auto& bounds = h.bounds();
    const auto& buckets = h.buckets();
    for (std::size_t i = 0; i < buckets.size(); ++i) {
      os << (i ? ", " : "") << "{\"le\": ";
      if (i < bounds.size())
        put_double(os, bounds[i]);
      else
        os << "\"inf\"";
      os << ", \"n\": " << buckets[i] << '}';
    }
    os << "]}";
  }
  os << (histograms_.empty() ? "}\n}\n" : "\n  }\n}\n");
}

std::string MetricsRegistry::snapshot_json() const {
  std::ostringstream os;
  snapshot_json(os);
  return os.str();
}

}  // namespace sea::obs
