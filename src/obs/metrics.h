// MetricsRegistry — named counters, gauges, and fixed-bucket histograms
// for the serving/execution layers (DESIGN.md "Observability").
//
// Contract:
//  * Registration (counter()/gauge()/histogram()) may allocate and look up
//    by name; it happens once per component wiring. After registration the
//    returned handles are stable for the registry's lifetime and updating
//    them never allocates — inc/set/observe are plain arithmetic, safe on
//    the hot serving path.
//  * Every value recorded here must be *modelled* time, a byte count, or
//    an event count — never measured wall-clock — so a metrics_snapshot of
//    a seeded run is bit-identical across runs and SEA_THREADS settings
//    (the same determinism contract as ExecReport's modelled columns).
//  * Updates must happen on the serial executor/serving paths only (the
//    registry is deliberately unsynchronized, like the rest of the
//    accounting state).
//
// ExecReport and ServeStats remain the per-execution / per-loop views of
// the same events; the registry is the cross-query aggregate a monitoring
// system would scrape. tests/test_properties.cpp asserts the two stay
// consistent.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace sea::obs {

/// Monotonic event count.
class Counter {
 public:
  void inc(std::uint64_t delta = 1) noexcept { value_ += delta; }
  std::uint64_t value() const noexcept { return value_; }

 private:
  friend class MetricsRegistry;
  std::uint64_t value_ = 0;
};

/// Last-write-wins instantaneous value (e.g. queue backlog).
class Gauge {
 public:
  void set(double v) noexcept { value_ = v; }
  void add(double d) noexcept { value_ += d; }
  double value() const noexcept { return value_; }

 private:
  friend class MetricsRegistry;
  double value_ = 0.0;
};

/// Fixed-bucket histogram: bucket bounds are upper edges (le semantics);
/// one implicit +inf bucket catches the tail. Bounds are fixed at
/// registration, so observe() is a linear probe over a handful of doubles
/// with no allocation.
class Histogram {
 public:
  void observe(double v) noexcept {
    ++count_;
    sum_ += v;
    for (std::size_t i = 0; i < bounds_.size(); ++i) {
      if (v <= bounds_[i]) {
        ++buckets_[i];
        return;
      }
    }
    ++buckets_.back();  // +inf bucket
  }

  std::uint64_t count() const noexcept { return count_; }
  double sum() const noexcept { return sum_; }
  const std::vector<double>& bounds() const noexcept { return bounds_; }
  /// bounds().size() + 1 entries; the last is the +inf bucket.
  const std::vector<std::uint64_t>& buckets() const noexcept {
    return buckets_;
  }

 private:
  friend class MetricsRegistry;
  explicit Histogram(std::vector<double> bounds)
      : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1, 0) {}

  std::vector<double> bounds_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
};

class MetricsRegistry {
 public:
  /// Returns the named metric, registering it on first use. Handles are
  /// stable for the registry's lifetime (node-based storage).
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `bounds` must be sorted ascending; they bind on first registration
  /// (later calls with the same name return the existing histogram).
  Histogram& histogram(const std::string& name, std::vector<double> bounds);

  /// Zeroes every value but keeps all registrations (and handles) intact.
  void reset();

  /// Deterministic JSON export: metrics sorted by name within each
  /// section, doubles printed at full round-trip precision — byte-stable
  /// for bit-identical values.
  void snapshot_json(std::ostream& os) const;
  std::string snapshot_json() const;

  std::size_t size() const noexcept {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

 private:
  // std::map: stable node addresses (handle stability) + sorted iteration
  // (deterministic snapshots) in one structure.
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace sea::obs
