#include "data/generator.h"

#include <algorithm>
#include <memory>
#include <stdexcept>

namespace sea {

namespace {

/// Mixture component centres/widths are themselves drawn deterministically
/// from a seed derived from the column spec, so different columns get
/// different (but reproducible) cluster structure.
struct MixtureParams {
  std::vector<double> centers;
  std::vector<double> widths;
};

MixtureParams make_mixture(const ColumnSpec& spec, Rng& rng) {
  MixtureParams p;
  const int k = std::max(1, spec.mixture_components);
  p.centers.reserve(static_cast<std::size_t>(k));
  p.widths.reserve(static_cast<std::size_t>(k));
  const double span = spec.hi - spec.lo;
  for (int i = 0; i < k; ++i) {
    p.centers.push_back(rng.uniform(spec.lo + 0.1 * span, spec.hi - 0.1 * span));
    p.widths.push_back(rng.uniform(0.02, 0.08) * span);
  }
  return p;
}

}  // namespace

Table generate_table(const DatasetSpec& spec) {
  std::vector<std::string> names;
  names.reserve(spec.columns.size());
  for (const auto& c : spec.columns) names.push_back(c.name);
  // Filled column-wise and assembled via the bulk from_columns path; the
  // draw order (row-major, column RNG streams) is unchanged, so generated
  // values are identical to the old append_row construction.
  std::vector<std::vector<double>> cols(spec.columns.size());
  for (auto& c : cols) c.reserve(spec.rows);

  for (std::size_t i = 0; i < spec.columns.size(); ++i) {
    const auto& c = spec.columns[i];
    if (c.dist == ColumnDistribution::kDerivedLinear && c.source_column >= i)
      throw std::invalid_argument(
          "generate_table: derived column must reference a lower-indexed "
          "source column");
    if (c.hi < c.lo)
      throw std::invalid_argument("generate_table: column domain hi < lo");
  }

  Rng master(spec.seed);
  std::vector<Rng> col_rngs;
  std::vector<MixtureParams> mixtures(spec.columns.size());
  std::vector<std::unique_ptr<ZipfDistribution>> zipfs(spec.columns.size());
  col_rngs.reserve(spec.columns.size());
  for (std::size_t i = 0; i < spec.columns.size(); ++i) {
    col_rngs.push_back(master.fork());
    const auto& c = spec.columns[i];
    if (c.dist == ColumnDistribution::kGaussianMixture)
      mixtures[i] = make_mixture(c, col_rngs[i]);
    if (c.dist == ColumnDistribution::kZipf)
      zipfs[i] = std::make_unique<ZipfDistribution>(
          static_cast<std::size_t>(std::max(1, c.zipf_cardinality)),
          c.zipf_skew);
  }

  std::vector<double> row(spec.columns.size());
  for (std::size_t r = 0; r < spec.rows; ++r) {
    for (std::size_t i = 0; i < spec.columns.size(); ++i) {
      const auto& c = spec.columns[i];
      Rng& rng = col_rngs[i];
      double v = 0.0;
      switch (c.dist) {
        case ColumnDistribution::kUniform:
          v = rng.uniform(c.lo, c.hi);
          break;
        case ColumnDistribution::kGaussianMixture: {
          const auto& m = mixtures[i];
          const auto comp = rng.uniform_index(m.centers.size());
          v = std::clamp(rng.normal(m.centers[comp], m.widths[comp]), c.lo,
                         c.hi);
          break;
        }
        case ColumnDistribution::kZipf: {
          const auto rank = (*zipfs[i])(rng);
          const double frac = static_cast<double>(rank) /
                              static_cast<double>(zipfs[i]->size());
          v = c.lo + frac * (c.hi - c.lo);
          break;
        }
        case ColumnDistribution::kDerivedLinear:
          v = c.slope * row[c.source_column] + c.intercept +
              (c.noise_stddev > 0.0 ? rng.normal(0.0, c.noise_stddev) : 0.0);
          break;
        case ColumnDistribution::kSequentialId:
          v = static_cast<double>(r);
          break;
      }
      row[i] = v;
      cols[i].push_back(v);
    }
  }
  return Table::from_columns(Schema(names), std::move(cols));
}

Table make_clustered_dataset(std::size_t rows, std::size_t dims, int clusters,
                             std::uint64_t seed, double y_noise) {
  DatasetSpec spec;
  spec.rows = rows;
  spec.seed = seed;
  for (std::size_t d = 0; d < dims; ++d) {
    ColumnSpec c;
    c.name = "x" + std::to_string(d);
    c.dist = ColumnDistribution::kGaussianMixture;
    c.lo = 0.0;
    c.hi = 1.0;
    c.mixture_components = clusters;
    spec.columns.push_back(c);
  }
  ColumnSpec y;
  y.name = "y";
  y.dist = ColumnDistribution::kDerivedLinear;
  y.source_column = 0;
  y.slope = 2.0;
  y.intercept = 0.5;
  y.noise_stddev = y_noise;
  spec.columns.push_back(y);
  return generate_table(spec);
}

Table make_scored_relation(std::size_t rows, int key_cardinality,
                           double key_skew, std::uint64_t seed) {
  DatasetSpec spec;
  spec.rows = rows;
  spec.seed = seed;
  ColumnSpec key;
  key.name = "key";
  key.dist = ColumnDistribution::kZipf;
  key.lo = 0.0;
  key.hi = static_cast<double>(key_cardinality);
  key.zipf_cardinality = key_cardinality;
  key.zipf_skew = key_skew;
  spec.columns.push_back(key);
  ColumnSpec score;
  score.name = "score";
  score.dist = ColumnDistribution::kUniform;
  score.lo = 0.0;
  score.hi = 1.0;
  spec.columns.push_back(score);
  ColumnSpec payload;
  payload.name = "payload";
  payload.dist = ColumnDistribution::kUniform;
  payload.lo = 0.0;
  payload.hi = 1000.0;
  spec.columns.push_back(payload);
  Table t = generate_table(spec);
  // Zipf maps ranks to fractional positions; snap keys to integers so that
  // equality joins are meaningful.
  auto keys = t.mutable_column(0);
  for (auto& k : keys) k = std::floor(k);
  return t;
}

}  // namespace sea
