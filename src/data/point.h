// Point / geometry primitives for multi-dimensional analytics subspaces.
//
// The paper's selection operators (III.A) define subspaces as
// hyper-rectangles (range queries), hyper-spheres (radius queries) or
// kNN neighbourhoods. These types are shared by the data layer, the
// indexes, the workload generator, and the SEA agent.
#pragma once

#include <cmath>
#include <cstddef>
#include <span>
#include <stdexcept>
#include <vector>

namespace sea {

using Point = std::vector<double>;

/// Squared Euclidean distance between equally sized points.
inline double squared_distance(std::span<const double> a,
                               std::span<const double> b) {
  if (a.size() != b.size())
    throw std::invalid_argument("squared_distance: dimension mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

inline double euclidean_distance(std::span<const double> a,
                                 std::span<const double> b) {
  return std::sqrt(squared_distance(a, b));
}

/// Axis-aligned hyper-rectangle [lo[i], hi[i]] per dimension (closed).
struct Rect {
  Point lo;
  Point hi;

  std::size_t dims() const noexcept { return lo.size(); }

  bool valid() const noexcept {
    if (lo.size() != hi.size()) return false;
    for (std::size_t i = 0; i < lo.size(); ++i)
      if (lo[i] > hi[i]) return false;
    return true;
  }

  bool contains(std::span<const double> p) const noexcept {
    if (p.size() != lo.size()) return false;
    for (std::size_t i = 0; i < lo.size(); ++i)
      if (p[i] < lo[i] || p[i] > hi[i]) return false;
    return true;
  }

  bool intersects(const Rect& other) const noexcept {
    if (other.lo.size() != lo.size()) return false;
    for (std::size_t i = 0; i < lo.size(); ++i)
      if (other.hi[i] < lo[i] || other.lo[i] > hi[i]) return false;
    return true;
  }

  /// Volume of the rectangle (product of side lengths).
  double volume() const noexcept {
    double v = 1.0;
    for (std::size_t i = 0; i < lo.size(); ++i) v *= (hi[i] - lo[i]);
    return v;
  }

  Point center() const {
    Point c(lo.size());
    for (std::size_t i = 0; i < lo.size(); ++i) c[i] = 0.5 * (lo[i] + hi[i]);
    return c;
  }

  /// Squared distance from p to the nearest point of the rectangle
  /// (0 when p is inside). Used for k-d tree / grid pruning.
  double min_squared_distance(std::span<const double> p) const {
    if (p.size() != lo.size())
      throw std::invalid_argument("Rect::min_squared_distance: dims");
    double s = 0.0;
    for (std::size_t i = 0; i < lo.size(); ++i) {
      double d = 0.0;
      if (p[i] < lo[i])
        d = lo[i] - p[i];
      else if (p[i] > hi[i])
        d = p[i] - hi[i];
      s += d * d;
    }
    return s;
  }
};

/// Hyper-sphere: centre + radius (closed ball).
struct Ball {
  Point center;
  double radius = 0.0;

  std::size_t dims() const noexcept { return center.size(); }

  bool contains(std::span<const double> p) const {
    return squared_distance(center, p) <= radius * radius;
  }

  /// Tight axis-aligned bounding box, for probing rectangle indexes.
  Rect bounding_box() const {
    Rect r;
    r.lo.resize(center.size());
    r.hi.resize(center.size());
    for (std::size_t i = 0; i < center.size(); ++i) {
      r.lo[i] = center[i] - radius;
      r.hi[i] = center[i] + radius;
    }
    return r;
  }
};

}  // namespace sea
