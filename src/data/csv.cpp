#include "data/csv.h"

#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace sea {

void write_csv(const Table& table, std::ostream& out) {
  const auto& schema = table.schema();
  for (std::size_t c = 0; c < schema.num_columns(); ++c) {
    if (c) out << ',';
    out << schema.name(c);
  }
  out << '\n';
  out << std::setprecision(17);
  for (std::size_t r = 0; r < table.num_rows(); ++r) {
    for (std::size_t c = 0; c < table.num_columns(); ++c) {
      if (c) out << ',';
      out << table.at(r, c);
    }
    out << '\n';
  }
}

void write_csv_file(const Table& table, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_csv_file: cannot open " + path);
  write_csv(table, out);
}

Table read_csv(std::istream& in) {
  std::string line;
  if (!std::getline(in, line))
    throw std::runtime_error("read_csv: empty input");
  std::vector<std::string> names;
  {
    std::stringstream header(line);
    std::string cell;
    while (std::getline(header, cell, ',')) names.push_back(cell);
  }
  if (names.empty()) throw std::runtime_error("read_csv: no columns");
  Table table{Schema(names)};
  std::vector<double> row(names.size());
  std::size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::stringstream ss(line);
    std::string cell;
    std::size_t c = 0;
    while (std::getline(ss, cell, ',')) {
      if (c >= row.size())
        throw std::runtime_error("read_csv: too many cells at line " +
                                 std::to_string(line_no));
      try {
        row[c] = std::stod(cell);
      } catch (const std::exception&) {
        throw std::runtime_error("read_csv: bad number '" + cell +
                                 "' at line " + std::to_string(line_no));
      }
      ++c;
    }
    if (c != row.size())
      throw std::runtime_error("read_csv: too few cells at line " +
                               std::to_string(line_no));
    table.append_row(row);
  }
  return table;
}

Table read_csv_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("read_csv_file: cannot open " + path);
  return read_csv(in);
}

}  // namespace sea
