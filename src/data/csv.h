// Minimal CSV import/export so examples can persist/load datasets and the
// raw-data analytics path (RT2.3) has a "raw file" representation to adapt
// over.
#pragma once

#include <iosfwd>
#include <string>

#include "data/table.h"

namespace sea {

/// Writes `table` as a header line followed by one comma-separated row per
/// tuple, full double precision.
void write_csv(const Table& table, std::ostream& out);
void write_csv_file(const Table& table, const std::string& path);

/// Parses a CSV produced by write_csv (header + numeric rows).
/// Throws std::runtime_error on malformed input.
Table read_csv(std::istream& in);
Table read_csv_file(const std::string& path);

}  // namespace sea
