// Column-major in-memory table: the base-data representation held by the
// simulated storage nodes. All values are doubles (the analytics in the
// paper operate over multi-dimensional numeric spaces); an optional
// integer id column supports join operators.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "data/point.h"

namespace sea {

/// Column names; column index is the identifier used everywhere else.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<std::string> column_names);

  std::size_t num_columns() const noexcept { return names_.size(); }
  const std::string& name(std::size_t col) const;
  const std::vector<std::string>& names() const noexcept { return names_; }

  /// Index of a named column; throws std::out_of_range if absent.
  std::size_t index_of(const std::string& name) const;
  bool has_column(const std::string& name) const noexcept;

  /// Appends a column name (bulk columnar construction path); throws
  /// std::invalid_argument on a duplicate.
  void add_column(std::string name);

 private:
  std::vector<std::string> names_;
};

class Table {
 public:
  Table() = default;
  explicit Table(Schema schema);

  const Schema& schema() const noexcept { return schema_; }
  std::size_t num_rows() const noexcept { return num_rows_; }
  std::size_t num_columns() const noexcept { return columns_.size(); }
  bool empty() const noexcept { return num_rows_ == 0; }

  /// Appends one row; row.size() must equal num_columns().
  void append_row(std::span<const double> row);

  /// Appends a whole named column in one move (bulk columnar path beside
  /// append_row). On a table that already has columns, values.size() must
  /// equal num_rows(); on an empty schema the column defines the row count.
  void append_column(std::string name, std::vector<double> values);

  /// Builds a table directly from column vectors (moved, no per-row
  /// copying). All columns must share one length.
  static Table from_columns(Schema schema,
                            std::vector<std::vector<double>> columns);

  /// Reserves storage for n rows.
  void reserve(std::size_t n);

  double at(std::size_t row, std::size_t col) const;
  void set(std::size_t row, std::size_t col, double value);

  /// Whole column as a contiguous span (column-major layout).
  std::span<const double> column(std::size_t col) const;
  std::span<double> mutable_column(std::size_t col);

  /// Materializes a row (allocates).
  Point row(std::size_t r) const;

  /// Gathers the subset of columns `cols` of row r into out (resized).
  void gather(std::size_t r, std::span<const std::size_t> cols,
              Point& out) const;

  /// Removes rows [first, first+count) — used by update/delete experiments.
  void erase_rows(std::size_t first, std::size_t count);

  /// Estimated in-memory footprint in bytes (data only), as accounted by
  /// the storage/network cost model.
  std::size_t byte_size() const noexcept {
    return num_rows_ * columns_.size() * sizeof(double);
  }

  /// Bytes per row, used for transfer-cost accounting.
  std::size_t row_bytes() const noexcept {
    return columns_.size() * sizeof(double);
  }

 private:
  Schema schema_;
  std::vector<std::vector<double>> columns_;
  std::size_t num_rows_ = 0;
};

/// Bounding box of the given columns of the table (lo/hi per column).
Rect table_bounds(const Table& table, std::span<const std::size_t> cols);

}  // namespace sea
