// Synthetic dataset generators.
//
// Substitution note (DESIGN.md): the paper's motivating datasets (genomes,
// earth-science sensor archives) are unavailable; these generators produce
// multi-dimensional data with the structural properties the SEA paradigm
// depends on — clustered mass (so query subspaces overlap data subspaces),
// skew (Zipf), and cross-attribute dependence (for correlation/regression
// analytics). All generation is deterministic given the spec's seed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "data/table.h"

namespace sea {

enum class ColumnDistribution {
  kUniform,          ///< U[lo, hi]
  kGaussianMixture,  ///< mixture of `mixture_components` gaussians in [lo,hi]
  kZipf,             ///< zipf-ranked values mapped into [lo, hi]
  kDerivedLinear,    ///< slope * value(source_column) + intercept + N(0, noise)
  kSequentialId,     ///< 0, 1, 2, ... (row id / join key)
};

struct ColumnSpec {
  std::string name;
  ColumnDistribution dist = ColumnDistribution::kUniform;
  double lo = 0.0;
  double hi = 1.0;
  int mixture_components = 4;     ///< kGaussianMixture only
  double zipf_skew = 1.1;         ///< kZipf only
  int zipf_cardinality = 1000;    ///< kZipf only: number of distinct ranks
  std::size_t source_column = 0;  ///< kDerivedLinear only
  double slope = 1.0;             ///< kDerivedLinear only
  double intercept = 0.0;         ///< kDerivedLinear only
  double noise_stddev = 0.0;      ///< kDerivedLinear only
};

struct DatasetSpec {
  std::size_t rows = 0;
  std::uint64_t seed = 1;
  std::vector<ColumnSpec> columns;
};

/// Generates a table per the spec. Derived columns must reference
/// lower-indexed source columns.
Table generate_table(const DatasetSpec& spec);

/// Convenience: `dims` gaussian-mixture attributes x0..x{dims-1} in [0,1]
/// plus a derived attribute "y" linearly dependent on x0 with noise —
/// the canonical workload for count/avg/correlation/regression analytics.
Table make_clustered_dataset(std::size_t rows, std::size_t dims,
                             int clusters, std::uint64_t seed,
                             double y_noise = 0.05);

/// Convenience for rank-join experiments: columns {key, score, payload}.
/// Keys are zipf-distributed over [0, key_cardinality) so that join
/// selectivity is controlled by skew; scores are U[0, 1].
Table make_scored_relation(std::size_t rows, int key_cardinality,
                           double key_skew, std::uint64_t seed);

}  // namespace sea
