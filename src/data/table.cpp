#include "data/table.h"

#include <algorithm>
#include <stdexcept>

#include "common/primitives.h"

namespace sea {

Schema::Schema(std::vector<std::string> column_names)
    : names_(std::move(column_names)) {
  for (std::size_t i = 0; i < names_.size(); ++i) {
    for (std::size_t j = i + 1; j < names_.size(); ++j) {
      if (names_[i] == names_[j])
        throw std::invalid_argument("Schema: duplicate column name " +
                                    names_[i]);
    }
  }
}

const std::string& Schema::name(std::size_t col) const {
  if (col >= names_.size()) throw std::out_of_range("Schema::name");
  return names_[col];
}

std::size_t Schema::index_of(const std::string& name) const {
  for (std::size_t i = 0; i < names_.size(); ++i)
    if (names_[i] == name) return i;
  throw std::out_of_range("Schema::index_of: no column named " + name);
}

bool Schema::has_column(const std::string& name) const noexcept {
  return std::any_of(names_.begin(), names_.end(),
                     [&](const std::string& n) { return n == name; });
}

void Schema::add_column(std::string name) {
  if (has_column(name))
    throw std::invalid_argument("Schema::add_column: duplicate column name " +
                                name);
  names_.push_back(std::move(name));
}

Table::Table(Schema schema) : schema_(std::move(schema)) {
  columns_.resize(schema_.num_columns());
}

void Table::append_row(std::span<const double> row) {
  if (row.size() != columns_.size())
    throw std::invalid_argument("Table::append_row: arity mismatch");
  for (std::size_t c = 0; c < columns_.size(); ++c)
    columns_[c].push_back(row[c]);
  ++num_rows_;
}

void Table::append_column(std::string name, std::vector<double> values) {
  if (!columns_.empty() && values.size() != num_rows_)
    throw std::invalid_argument("Table::append_column: row count mismatch");
  schema_.add_column(std::move(name));
  if (columns_.empty()) num_rows_ = values.size();
  columns_.push_back(std::move(values));
}

Table Table::from_columns(Schema schema,
                          std::vector<std::vector<double>> columns) {
  if (schema.num_columns() != columns.size())
    throw std::invalid_argument("Table::from_columns: arity mismatch");
  for (const auto& c : columns)
    if (c.size() != columns.front().size())
      throw std::invalid_argument("Table::from_columns: ragged columns");
  Table t;
  t.schema_ = std::move(schema);
  t.num_rows_ = columns.empty() ? 0 : columns.front().size();
  t.columns_ = std::move(columns);
  return t;
}

void Table::reserve(std::size_t n) {
  for (auto& c : columns_) c.reserve(n);
}

double Table::at(std::size_t row, std::size_t col) const {
  if (col >= columns_.size() || row >= num_rows_)
    throw std::out_of_range("Table::at");
  return columns_[col][row];
}

void Table::set(std::size_t row, std::size_t col, double value) {
  if (col >= columns_.size() || row >= num_rows_)
    throw std::out_of_range("Table::set");
  columns_[col][row] = value;
}

std::span<const double> Table::column(std::size_t col) const {
  if (col >= columns_.size()) throw std::out_of_range("Table::column");
  return columns_[col];
}

std::span<double> Table::mutable_column(std::size_t col) {
  if (col >= columns_.size()) throw std::out_of_range("Table::mutable_column");
  return columns_[col];
}

Point Table::row(std::size_t r) const {
  if (r >= num_rows_) throw std::out_of_range("Table::row");
  Point p(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) p[c] = columns_[c][r];
  return p;
}

void Table::gather(std::size_t r, std::span<const std::size_t> cols,
                   Point& out) const {
  if (r >= num_rows_) throw std::out_of_range("Table::gather");
  out.resize(cols.size());
  for (std::size_t i = 0; i < cols.size(); ++i) {
    if (cols[i] >= columns_.size()) throw std::out_of_range("Table::gather");
    out[i] = columns_[cols[i]][r];
  }
}

void Table::erase_rows(std::size_t first, std::size_t count) {
  if (first > num_rows_ || first + count > num_rows_)
    throw std::out_of_range("Table::erase_rows");
  for (auto& c : columns_) {
    c.erase(c.begin() + static_cast<std::ptrdiff_t>(first),
            c.begin() + static_cast<std::ptrdiff_t>(first + count));
  }
  num_rows_ -= count;
}

Rect table_bounds(const Table& table, std::span<const std::size_t> cols) {
  Rect r;
  r.lo.assign(cols.size(), 0.0);
  r.hi.assign(cols.size(), 0.0);
  if (table.num_rows() == 0) return r;
  for (std::size_t i = 0; i < cols.size(); ++i) {
    // Blocked parallel min/max: exact, so identical to a serial scan.
    const auto [mn, mx] = par::minmax(table.column(cols[i]));
    r.lo[i] = mn;
    r.hi[i] = mx;
  }
  return r;
}

}  // namespace sea
