// Cache-blocked columnar scan kernels over Table.
//
// The row-at-a-time alternative (Table::gather into a Point per row) pays
// an allocation-free but cache-hostile price: one bounds-checked indirect
// load per (row, column) plus a Rect/Ball predicate on a materialized
// Point. These kernels flip the loop: column-at-a-time over fixed blocks
// of rows, refining a block-local candidate list — the selection vector —
// so each column's span is streamed sequentially and rows failing an
// earlier column are never touched again.
//
// Determinism: selection vectors list qualifying row ids in ascending row
// order (block results are concatenated in block order), and the per-row
// arithmetic (squared distance accumulated in column order) matches the
// row-at-a-time code bit for bit — so callers that aggregate over the
// selection in row order produce byte-identical answers to the old scans
// at any SEA_THREADS. Kernels parallelize over blocks via the primitives
// BlockPlan (thread-count-independent boundaries); invoked inside a map
// task (already parallel) they degrade to serial automatically.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "data/point.h"
#include "data/table.h"

namespace sea {

/// Row ids (ascending) of rows whose `cols` values lie inside `rect`.
/// `sel` is cleared first; its capacity is reused across calls.
void select_range(const Table& table, std::span<const std::size_t> cols,
                  const Rect& rect, std::vector<std::uint32_t>& sel);

/// Row ids (ascending) of rows within `ball` (closed) over `cols`.
void select_ball(const Table& table, std::span<const std::size_t> cols,
                 const Ball& ball, std::vector<std::uint32_t>& sel);

/// Squared distance of every row to `center` over `cols` (out resized to
/// num_rows). Per-row accumulation runs in column order — the same adds,
/// in the same order, as squared_distance() on a gathered Point.
void squared_distances(const Table& table, std::span<const std::size_t> cols,
                       std::span<const double> center,
                       std::vector<double>& out);

/// Count / sum / sum-of-squares of one column restricted to a selection
/// vector — the blocked tree-combined aggregate used by the bench kernels.
struct ColumnAggregates {
  std::uint64_t count = 0;
  double sum = 0.0;
  double sum_sq = 0.0;
};

/// Tree-combined aggregate of column[sel[i]] over the whole selection.
/// Parallel over fixed blocks of the selection; combine order depends only
/// on sel.size(), so the result is thread-count-invariant (though not
/// bit-equal to a serial left fold — callers needing that fold serially).
ColumnAggregates aggregate_column(std::span<const double> column,
                                  std::span<const std::uint32_t> sel);

}  // namespace sea
