#include "data/columnar.h"

#include <stdexcept>

#include "common/primitives.h"

namespace sea {

namespace {

/// Collects per-block partial selections (each a pure function of the
/// block's rows), then concatenates them in block order — ascending row
/// ids, independent of the worker count.
template <typename BlockSelect>
void blocked_select(std::size_t num_rows, std::vector<std::uint32_t>& sel,
                    BlockSelect&& block_select) {
  sel.clear();
  const par::BlockPlan p = par::plan(num_rows);
  if (p.blocks == 0) return;
  std::vector<std::vector<std::uint32_t>> partial(p.blocks);
  ParallelFor(p.blocks, [&](std::size_t b) {
    block_select(p.begin(b), p.end(b), partial[b]);
  });
  std::size_t total = 0;
  for (const auto& part : partial) total += part.size();
  sel.reserve(total);
  for (const auto& part : partial)
    sel.insert(sel.end(), part.begin(), part.end());
}

}  // namespace

void select_range(const Table& table, std::span<const std::size_t> cols,
                  const Rect& rect, std::vector<std::uint32_t>& sel) {
  if (rect.dims() != cols.size())
    throw std::invalid_argument("select_range: dims mismatch");
  std::vector<std::span<const double>> spans;
  spans.reserve(cols.size());
  for (const std::size_t c : cols) spans.push_back(table.column(c));
  blocked_select(
      table.num_rows(), sel,
      [&](std::size_t begin, std::size_t end,
          std::vector<std::uint32_t>& out) {
        if (cols.empty()) {  // empty subspace: every row qualifies
          out.reserve(end - begin);
          for (std::size_t r = begin; r < end; ++r)
            out.push_back(static_cast<std::uint32_t>(r));
          return;
        }
        // First column seeds the candidate list; each further column
        // compacts it in place (column-at-a-time, one span streamed per
        // pass over the surviving candidates).
        const auto c0 = spans[0];
        const double lo0 = rect.lo[0], hi0 = rect.hi[0];
        for (std::size_t r = begin; r < end; ++r)
          if (c0[r] >= lo0 && c0[r] <= hi0)
            out.push_back(static_cast<std::uint32_t>(r));
        for (std::size_t d = 1; d < cols.size() && !out.empty(); ++d) {
          const auto cd = spans[d];
          const double lo = rect.lo[d], hi = rect.hi[d];
          std::size_t kept = 0;
          for (const std::uint32_t r : out)
            if (cd[r] >= lo && cd[r] <= hi) out[kept++] = r;
          out.resize(kept);
        }
      });
}

void squared_distances(const Table& table, std::span<const std::size_t> cols,
                       std::span<const double> center,
                       std::vector<double>& out) {
  if (center.size() != cols.size())
    throw std::invalid_argument("squared_distances: dims mismatch");
  std::vector<std::span<const double>> spans;
  spans.reserve(cols.size());
  for (const std::size_t c : cols) spans.push_back(table.column(c));
  out.assign(table.num_rows(), 0.0);
  const par::BlockPlan p = par::plan(table.num_rows());
  if (p.blocks == 0) return;
  ParallelFor(p.blocks, [&](std::size_t b) {
    const std::size_t begin = p.begin(b), end = p.end(b);
    // Column-at-a-time accumulation: per row the adds happen in dimension
    // order, exactly like squared_distance() over a gathered Point.
    for (std::size_t d = 0; d < cols.size(); ++d) {
      const auto cd = spans[d];
      const double c = center[d];
      for (std::size_t r = begin; r < end; ++r) {
        const double diff = cd[r] - c;
        out[r] += diff * diff;
      }
    }
  });
}

void select_ball(const Table& table, std::span<const std::size_t> cols,
                 const Ball& ball, std::vector<std::uint32_t>& sel) {
  if (ball.dims() != cols.size())
    throw std::invalid_argument("select_ball: dims mismatch");
  std::vector<std::span<const double>> spans;
  spans.reserve(cols.size());
  for (const std::size_t c : cols) spans.push_back(table.column(c));
  const double r2 = ball.radius * ball.radius;
  blocked_select(
      table.num_rows(), sel,
      [&](std::size_t begin, std::size_t end,
          std::vector<std::uint32_t>& out) {
        // Block-local distance buffer, accumulated column-at-a-time in
        // dimension order (bit-equal to squared_distance on each row).
        std::vector<double> d2(end - begin, 0.0);
        for (std::size_t d = 0; d < cols.size(); ++d) {
          const auto cd = spans[d];
          const double c = ball.center[d];
          for (std::size_t r = begin; r < end; ++r) {
            const double diff = cd[r] - c;
            d2[r - begin] += diff * diff;
          }
        }
        for (std::size_t r = begin; r < end; ++r)
          if (d2[r - begin] <= r2) out.push_back(static_cast<std::uint32_t>(r));
      });
}

ColumnAggregates aggregate_column(std::span<const double> column,
                                  std::span<const std::uint32_t> sel) {
  return par::blocked_reduce(
      sel.size(), ColumnAggregates{},
      [&](std::size_t begin, std::size_t end) {
        ColumnAggregates a;
        for (std::size_t i = begin; i < end; ++i) {
          const double v = column[sel[i]];
          ++a.count;
          a.sum += v;
          a.sum_sq += v * v;
        }
        return a;
      },
      [](const ColumnAggregates& a, const ColumnAggregates& b) {
        ColumnAggregates r;
        r.count = a.count + b.count;
        r.sum = a.sum + b.sum;
        r.sum_sq = a.sum_sq + b.sum_sq;
        return r;
      });
}

}  // namespace sea
