#include "index/histogram.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/parallel.h"
#include "common/primitives.h"

namespace sea {

EquiWidthHistogram::EquiWidthHistogram(double lo, double hi,
                                       std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {
  if (buckets == 0)
    throw std::invalid_argument("EquiWidthHistogram: buckets must be > 0");
  if (hi <= lo)
    throw std::invalid_argument("EquiWidthHistogram: hi must exceed lo");
}

std::size_t EquiWidthHistogram::bucket_of(double v) const noexcept {
  const double frac = (v - lo_) / (hi_ - lo_);
  const auto b = static_cast<std::int64_t>(
      std::floor(frac * static_cast<double>(counts_.size())));
  return static_cast<std::size_t>(std::clamp<std::int64_t>(
      b, 0, static_cast<std::int64_t>(counts_.size()) - 1));
}

void EquiWidthHistogram::add(double v) noexcept {
  ++counts_[bucket_of(v)];
  ++total_;
}

void EquiWidthHistogram::add_all(std::span<const double> values) noexcept {
  // Bulk path: bucketize in parallel, then add the (exact, integer)
  // two-pass parallel histogram — identical counts to the per-value loop.
  std::vector<std::uint32_t> bucket(values.size());
  ParallelChunks(values.size(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i)
      bucket[i] = static_cast<std::uint32_t>(bucket_of(values[i]));
  });
  const std::vector<std::uint64_t> bulk =
      par::histogram(bucket, counts_.size());
  for (std::size_t b = 0; b < counts_.size(); ++b) counts_[b] += bulk[b];
  total_ += values.size();
}

std::uint64_t EquiWidthHistogram::bucket_count(std::size_t b) const {
  if (b >= counts_.size())
    throw std::out_of_range("EquiWidthHistogram::bucket_count");
  return counts_[b];
}

double EquiWidthHistogram::estimate_range(double a, double b) const noexcept {
  if (b < a || total_ == 0) return 0.0;
  a = std::max(a, lo_);
  b = std::min(b, hi_);
  if (b < a) return 0.0;
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  double est = 0.0;
  const std::size_t first = bucket_of(a);
  const std::size_t last = bucket_of(b);
  for (std::size_t i = first; i <= last; ++i) {
    const double blo = lo_ + static_cast<double>(i) * width;
    const double bhi = blo + width;
    const double overlap =
        std::max(0.0, std::min(b, bhi) - std::max(a, blo));
    est += static_cast<double>(counts_[i]) * (overlap / width);
  }
  return est;
}

double EquiWidthHistogram::selectivity(double a, double b) const noexcept {
  return total_ == 0 ? 0.0
                     : estimate_range(a, b) / static_cast<double>(total_);
}

EquiDepthHistogram::EquiDepthHistogram(std::span<const double> values,
                                       std::size_t buckets) {
  if (buckets == 0)
    throw std::invalid_argument("EquiDepthHistogram: buckets must be > 0");
  total_ = values.size();
  if (values.empty()) return;
  std::vector<double> sorted(values.begin(), values.end());
  // Deterministic parallel sample sort; equal doubles are interchangeable,
  // so the result matches std::sort exactly.
  par::sample_sort(std::span<double>(sorted));
  buckets = std::min(buckets, sorted.size());
  edges_.reserve(buckets + 1);
  edges_.push_back(sorted.front());
  for (std::size_t b = 1; b < buckets; ++b) {
    const std::size_t pos = (b * sorted.size()) / buckets;
    const double edge = sorted[pos];
    // Skip duplicate edges caused by heavy value repetition.
    if (edge > edges_.back()) edges_.push_back(edge);
  }
  const double last = sorted.back();
  edges_.push_back(last > edges_.back()
                       ? std::nextafter(last, last + 1.0)
                       : std::nextafter(edges_.back(), edges_.back() + 1.0));
}

double EquiDepthHistogram::estimate_range(double a, double b) const noexcept {
  if (b < a || total_ == 0 || edges_.size() < 2) return 0.0;
  const double per_bucket =
      static_cast<double>(total_) / static_cast<double>(edges_.size() - 1);
  double est = 0.0;
  for (std::size_t i = 0; i + 1 < edges_.size(); ++i) {
    const double blo = edges_[i];
    const double bhi = edges_[i + 1];
    const double width = bhi - blo;
    if (width <= 0.0) continue;
    const double overlap = std::max(0.0, std::min(b, bhi) - std::max(a, blo));
    est += per_bucket * (overlap / width);
  }
  return est;
}

double EquiDepthHistogram::selectivity(double a, double b) const noexcept {
  return total_ == 0 ? 0.0
                     : estimate_range(a, b) / static_cast<double>(total_);
}

ProductHistogram::ProductHistogram(std::span<const Point> points,
                                   std::size_t buckets) {
  total_ = points.size();
  if (points.empty()) return;
  const std::size_t d = points[0].size();
  std::vector<double> column(points.size());
  dims_.reserve(d);
  for (std::size_t j = 0; j < d; ++j) {
    for (std::size_t i = 0; i < points.size(); ++i) column[i] = points[i][j];
    dims_.emplace_back(column, buckets);
  }
}

ProductHistogram::ProductHistogram(
    std::span<const std::span<const double>> columns, std::size_t buckets) {
  if (columns.empty()) return;
  total_ = columns[0].size();
  dims_.reserve(columns.size());
  for (const auto col : columns) {
    if (col.size() != columns[0].size())
      throw std::invalid_argument("ProductHistogram: ragged columns");
    dims_.emplace_back(col, buckets);
  }
}

double ProductHistogram::estimate_count(const Rect& rect) const {
  if (rect.dims() != dims_.size())
    throw std::invalid_argument("ProductHistogram::estimate_count: dims");
  double sel = 1.0;
  for (std::size_t j = 0; j < dims_.size(); ++j)
    sel *= dims_[j].selectivity(rect.lo[j], rect.hi[j]);
  return sel * static_cast<double>(total_);
}

std::size_t ProductHistogram::byte_size() const noexcept {
  std::size_t s = sizeof(std::uint64_t);
  for (const auto& h : dims_) s += h.byte_size();
  return s;
}

}  // namespace sea
