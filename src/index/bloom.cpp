#include "index/bloom.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sea {

BloomFilter::BloomFilter(std::size_t expected_items,
                         double false_positive_rate) {
  if (expected_items == 0) expected_items = 1;
  if (false_positive_rate <= 0.0 || false_positive_rate >= 1.0)
    throw std::invalid_argument("BloomFilter: rate must be in (0,1)");
  const double ln2 = std::log(2.0);
  const double m = -static_cast<double>(expected_items) *
                   std::log(false_positive_rate) / (ln2 * ln2);
  num_bits_ = std::max<std::size_t>(64, static_cast<std::size_t>(m));
  num_hashes_ = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::round(
             m / static_cast<double>(expected_items) * ln2)));
  bits_.assign((num_bits_ + 63) / 64, 0);
}

std::uint64_t BloomFilter::mix(std::uint64_t x, std::uint64_t salt) noexcept {
  x += salt * 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

void BloomFilter::insert(std::uint64_t key) noexcept {
  if (bits_.empty()) return;
  for (std::size_t i = 0; i < num_hashes_; ++i) {
    const std::uint64_t bit = mix(key, i + 1) % num_bits_;
    bits_[bit / 64] |= (1ULL << (bit % 64));
  }
  ++inserted_;
}

bool BloomFilter::may_contain(std::uint64_t key) const noexcept {
  if (bits_.empty()) return false;
  for (std::size_t i = 0; i < num_hashes_; ++i) {
    const std::uint64_t bit = mix(key, i + 1) % num_bits_;
    if (!(bits_[bit / 64] & (1ULL << (bit % 64)))) return false;
  }
  return true;
}

}  // namespace sea
