#include "index/count_min.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace sea {

CountMinSketch::CountMinSketch(double eps, double delta) {
  if (eps <= 0.0 || eps >= 1.0)
    throw std::invalid_argument("CountMinSketch: eps must be in (0,1)");
  if (delta <= 0.0 || delta >= 1.0)
    throw std::invalid_argument("CountMinSketch: delta must be in (0,1)");
  width_ = static_cast<std::size_t>(std::ceil(std::exp(1.0) / eps));
  depth_ = static_cast<std::size_t>(std::ceil(std::log(1.0 / delta)));
  depth_ = std::max<std::size_t>(1, depth_);
  table_.assign(width_ * depth_, 0);
}

std::uint64_t CountMinSketch::mix(std::uint64_t x,
                                  std::uint64_t salt) noexcept {
  x ^= salt * 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

void CountMinSketch::add(std::uint64_t key, std::uint64_t count) noexcept {
  if (table_.empty()) return;
  for (std::size_t d = 0; d < depth_; ++d) {
    const std::size_t col = mix(key, d + 1) % width_;
    table_[d * width_ + col] += count;
  }
  total_ += count;
}

std::uint64_t CountMinSketch::estimate(std::uint64_t key) const noexcept {
  if (table_.empty()) return 0;
  std::uint64_t best = std::numeric_limits<std::uint64_t>::max();
  for (std::size_t d = 0; d < depth_; ++d) {
    const std::size_t col = mix(key, d + 1) % width_;
    best = std::min(best, table_[d * width_ + col]);
  }
  return best;
}

}  // namespace sea
