#include "index/kdtree.h"

#include <algorithm>
#include <deque>
#include <numeric>
#include <queue>
#include <stdexcept>

#include "common/parallel.h"
#include "data/table.h"

namespace sea {

namespace {
/// Below this size a subtree is built inline rather than fanned out.
constexpr std::uint32_t kParallelBuildThreshold = 4096;
}  // namespace

KdTree::KdTree(std::vector<Point> points, std::vector<std::uint64_t> ids)
    : points_(std::move(points)), ids_(std::move(ids)) {
  if (ids_.empty()) {
    ids_.resize(points_.size());
    std::iota(ids_.begin(), ids_.end(), 0);
  }
  if (ids_.size() != points_.size())
    throw std::invalid_argument("KdTree: ids/points size mismatch");
  for (const auto& p : points_) {
    if (p.size() != points_[0].size())
      throw std::invalid_argument("KdTree: inconsistent dimensionality");
  }
  order_.resize(points_.size());
  std::iota(order_.begin(), order_.end(), 0);
  if (points_.empty()) return;

  const auto n = static_cast<std::uint32_t>(points_.size());
  nodes_.resize(subtree_nodes(n));
  root_ = 0;

  const std::size_t threads = configured_threads();
  if (threads <= 1 || n < kParallelBuildThreshold || in_parallel_region()) {
    build_at(0, n, 0);
    return;
  }

  // Parallel build by subtree: expand the top of the tree breadth-first on
  // this thread until there is a task per worker (and then some), then
  // build the remaining subtrees concurrently. Every subtree owns a
  // disjoint slice of order_ and a disjoint, precomputed preorder slice of
  // nodes_, so the resulting arrays are identical to a serial build.
  struct Item {
    std::uint32_t begin, end, self;
  };
  std::deque<Item> frontier{{0, n, 0}};
  std::vector<Item> tasks;
  const std::size_t target = threads * 4;
  while (!frontier.empty() && frontier.size() + tasks.size() < target) {
    const Item it = frontier.front();
    frontier.pop_front();
    if (it.end - it.begin <= kParallelBuildThreshold / 4) {
      tasks.push_back(it);  // small enough: hand straight to the pool
      continue;
    }
    std::uint32_t mid = 0;
    if (!split_node(it.begin, it.end, it.self, &mid)) continue;  // leaf done
    const std::uint32_t left_count = mid - it.begin;
    frontier.push_back({it.begin, mid, it.self + 1});
    frontier.push_back(
        {mid, it.end,
         it.self + 1 + static_cast<std::uint32_t>(subtree_nodes(left_count))});
  }
  tasks.insert(tasks.end(), frontier.begin(), frontier.end());
  ParallelFor(tasks.size(), [&](std::size_t i) {
    build_at(tasks[i].begin, tasks[i].end, tasks[i].self);
  });
}

std::size_t KdTree::subtree_nodes(std::uint32_t count) noexcept {
  if (count <= kLeafSize) return 1;
  const std::uint32_t left = count / 2;
  return 1 + subtree_nodes(left) + subtree_nodes(count - left);
}

Rect KdTree::compute_bounds(std::uint32_t begin, std::uint32_t end) const {
  const std::size_t d = points_[order_[begin]].size();
  Rect r;
  r.lo = points_[order_[begin]];
  r.hi = points_[order_[begin]];
  for (std::uint32_t i = begin + 1; i < end; ++i) {
    const Point& p = points_[order_[i]];
    for (std::size_t j = 0; j < d; ++j) {
      r.lo[j] = std::min(r.lo[j], p[j]);
      r.hi[j] = std::max(r.hi[j], p[j]);
    }
  }
  return r;
}

bool KdTree::split_node(std::uint32_t begin, std::uint32_t end,
                        std::uint32_t self, std::uint32_t* mid_out) {
  Node node;
  node.bounds = compute_bounds(begin, end);
  node.begin = begin;
  node.end = end;
  const std::uint32_t count = end - begin;
  if (count <= kLeafSize) {
    nodes_[self] = std::move(node);
    return false;
  }
  // Split on the widest axis at the median.
  const std::size_t d = node.bounds.dims();
  std::size_t axis = 0;
  double widest = -1.0;
  for (std::size_t j = 0; j < d; ++j) {
    const double w = node.bounds.hi[j] - node.bounds.lo[j];
    if (w > widest) {
      widest = w;
      axis = j;
    }
  }
  const std::uint32_t mid = begin + count / 2;
  std::nth_element(order_.begin() + begin, order_.begin() + mid,
                   order_.begin() + end,
                   [&](std::uint32_t a, std::uint32_t b) {
                     return points_[a][axis] < points_[b][axis];
                   });
  node.axis = static_cast<std::uint16_t>(axis);
  node.split = points_[order_[mid]][axis];
  node.left = static_cast<std::int32_t>(self + 1);
  node.right = static_cast<std::int32_t>(
      self + 1 + static_cast<std::uint32_t>(subtree_nodes(mid - begin)));
  nodes_[self] = std::move(node);
  *mid_out = mid;
  return true;
}

void KdTree::build_at(std::uint32_t begin, std::uint32_t end,
                      std::uint32_t self) {
  std::uint32_t mid = 0;
  if (!split_node(begin, end, self, &mid)) return;
  const Node& node = nodes_[self];
  const auto left = static_cast<std::uint32_t>(node.left);
  const auto right = static_cast<std::uint32_t>(node.right);
  build_at(begin, mid, left);
  build_at(mid, end, right);
}

std::vector<std::uint64_t> KdTree::range_query(const Rect& rect,
                                               KdQueryCost* cost) const {
  std::vector<std::uint64_t> out;
  if (root_ < 0) return out;
  if (rect.dims() != dims())
    throw std::invalid_argument("KdTree::range_query: dimension mismatch");
  std::vector<std::int32_t> stack{root_};
  while (!stack.empty()) {
    const Node& n = nodes_[static_cast<std::size_t>(stack.back())];
    stack.pop_back();
    if (cost) ++cost->nodes_visited;
    if (!rect.intersects(n.bounds)) continue;
    if (n.left < 0) {  // leaf
      for (std::uint32_t i = n.begin; i < n.end; ++i) {
        if (cost) ++cost->points_examined;
        if (rect.contains(points_[order_[i]])) out.push_back(ids_[order_[i]]);
      }
    } else {
      stack.push_back(n.left);
      stack.push_back(n.right);
    }
  }
  return out;
}

std::vector<std::uint64_t> KdTree::radius_query(const Ball& ball,
                                                KdQueryCost* cost) const {
  std::vector<std::uint64_t> out;
  if (root_ < 0) return out;
  if (ball.dims() != dims())
    throw std::invalid_argument("KdTree::radius_query: dimension mismatch");
  const double r2 = ball.radius * ball.radius;
  std::vector<std::int32_t> stack{root_};
  while (!stack.empty()) {
    const Node& n = nodes_[static_cast<std::size_t>(stack.back())];
    stack.pop_back();
    if (cost) ++cost->nodes_visited;
    if (n.bounds.min_squared_distance(ball.center) > r2) continue;
    if (n.left < 0) {
      for (std::uint32_t i = n.begin; i < n.end; ++i) {
        if (cost) ++cost->points_examined;
        if (squared_distance(ball.center, points_[order_[i]]) <= r2)
          out.push_back(ids_[order_[i]]);
      }
    } else {
      stack.push_back(n.left);
      stack.push_back(n.right);
    }
  }
  return out;
}

std::vector<std::pair<std::uint64_t, double>> KdTree::knn(
    std::span<const double> query, std::size_t k, KdQueryCost* cost) const {
  std::vector<std::pair<std::uint64_t, double>> result;
  if (root_ < 0 || k == 0) return result;
  if (query.size() != dims())
    throw std::invalid_argument("KdTree::knn: dimension mismatch");

  // Max-heap of (distance^2, id) of current best k.
  using Entry = std::pair<double, std::uint64_t>;
  std::priority_queue<Entry> best;

  // Best-first traversal ordered by node min-distance.
  using Frontier = std::pair<double, std::int32_t>;
  std::priority_queue<Frontier, std::vector<Frontier>, std::greater<>> frontier;
  frontier.emplace(nodes_[static_cast<std::size_t>(root_)]
                       .bounds.min_squared_distance(query),
                   root_);
  while (!frontier.empty()) {
    const auto [min_d2, idx] = frontier.top();
    frontier.pop();
    if (best.size() == k && min_d2 > best.top().first) break;
    const Node& n = nodes_[static_cast<std::size_t>(idx)];
    if (cost) ++cost->nodes_visited;
    if (n.left < 0) {
      for (std::uint32_t i = n.begin; i < n.end; ++i) {
        if (cost) ++cost->points_examined;
        const double d2 = squared_distance(query, points_[order_[i]]);
        if (best.size() < k) {
          best.emplace(d2, ids_[order_[i]]);
        } else if (d2 < best.top().first) {
          best.pop();
          best.emplace(d2, ids_[order_[i]]);
        }
      }
    } else {
      for (const std::int32_t child : {n.left, n.right}) {
        const double d2 = nodes_[static_cast<std::size_t>(child)]
                              .bounds.min_squared_distance(query);
        if (best.size() < k || d2 <= best.top().first)
          frontier.emplace(d2, child);
      }
    }
  }
  result.reserve(best.size());
  while (!best.empty()) {
    result.emplace_back(best.top().second, std::sqrt(best.top().first));
    best.pop();
  }
  std::reverse(result.begin(), result.end());
  return result;
}

KdTree build_kdtree(const Table& table, std::span<const std::size_t> cols) {
  // Fill the points column-at-a-time from contiguous column spans (no
  // per-row gather); each chunk writes its own slots.
  std::vector<Point> pts(table.num_rows());
  ParallelChunks(table.num_rows(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t r = begin; r < end; ++r) pts[r].resize(cols.size());
    for (std::size_t c = 0; c < cols.size(); ++c) {
      const auto col = table.column(cols[c]);
      for (std::size_t r = begin; r < end; ++r) pts[r][c] = col[r];
    }
  });
  return KdTree(std::move(pts));
}

}  // namespace sea
