#include "index/kdtree.h"

#include <algorithm>
#include <numeric>
#include <queue>
#include <stdexcept>

#include "data/table.h"

namespace sea {

KdTree::KdTree(std::vector<Point> points, std::vector<std::uint64_t> ids)
    : points_(std::move(points)), ids_(std::move(ids)) {
  if (ids_.empty()) {
    ids_.resize(points_.size());
    std::iota(ids_.begin(), ids_.end(), 0);
  }
  if (ids_.size() != points_.size())
    throw std::invalid_argument("KdTree: ids/points size mismatch");
  for (const auto& p : points_) {
    if (p.size() != points_[0].size())
      throw std::invalid_argument("KdTree: inconsistent dimensionality");
  }
  order_.resize(points_.size());
  std::iota(order_.begin(), order_.end(), 0);
  if (!points_.empty())
    root_ = build(0, static_cast<std::uint32_t>(points_.size()));
}

Rect KdTree::compute_bounds(std::uint32_t begin, std::uint32_t end) const {
  const std::size_t d = points_[order_[begin]].size();
  Rect r;
  r.lo = points_[order_[begin]];
  r.hi = points_[order_[begin]];
  for (std::uint32_t i = begin + 1; i < end; ++i) {
    const Point& p = points_[order_[i]];
    for (std::size_t j = 0; j < d; ++j) {
      r.lo[j] = std::min(r.lo[j], p[j]);
      r.hi[j] = std::max(r.hi[j], p[j]);
    }
  }
  return r;
}

std::int32_t KdTree::build(std::uint32_t begin, std::uint32_t end) {
  Node node;
  node.bounds = compute_bounds(begin, end);
  node.begin = begin;
  node.end = end;
  const std::uint32_t count = end - begin;
  if (count <= kLeafSize) {
    nodes_.push_back(node);
    return static_cast<std::int32_t>(nodes_.size() - 1);
  }
  // Split on the widest axis at the median.
  const std::size_t d = node.bounds.dims();
  std::size_t axis = 0;
  double widest = -1.0;
  for (std::size_t j = 0; j < d; ++j) {
    const double w = node.bounds.hi[j] - node.bounds.lo[j];
    if (w > widest) {
      widest = w;
      axis = j;
    }
  }
  const std::uint32_t mid = begin + count / 2;
  std::nth_element(order_.begin() + begin, order_.begin() + mid,
                   order_.begin() + end,
                   [&](std::uint32_t a, std::uint32_t b) {
                     return points_[a][axis] < points_[b][axis];
                   });
  node.axis = static_cast<std::uint16_t>(axis);
  node.split = points_[order_[mid]][axis];
  const auto self = static_cast<std::int32_t>(nodes_.size());
  nodes_.push_back(node);
  const std::int32_t left = build(begin, mid);
  const std::int32_t right = build(mid, end);
  nodes_[self].left = left;
  nodes_[self].right = right;
  return self;
}

std::vector<std::uint64_t> KdTree::range_query(const Rect& rect,
                                               KdQueryCost* cost) const {
  std::vector<std::uint64_t> out;
  if (root_ < 0) return out;
  if (rect.dims() != dims())
    throw std::invalid_argument("KdTree::range_query: dimension mismatch");
  std::vector<std::int32_t> stack{root_};
  while (!stack.empty()) {
    const Node& n = nodes_[static_cast<std::size_t>(stack.back())];
    stack.pop_back();
    if (cost) ++cost->nodes_visited;
    if (!rect.intersects(n.bounds)) continue;
    if (n.left < 0) {  // leaf
      for (std::uint32_t i = n.begin; i < n.end; ++i) {
        if (cost) ++cost->points_examined;
        if (rect.contains(points_[order_[i]])) out.push_back(ids_[order_[i]]);
      }
    } else {
      stack.push_back(n.left);
      stack.push_back(n.right);
    }
  }
  return out;
}

std::vector<std::uint64_t> KdTree::radius_query(const Ball& ball,
                                                KdQueryCost* cost) const {
  std::vector<std::uint64_t> out;
  if (root_ < 0) return out;
  if (ball.dims() != dims())
    throw std::invalid_argument("KdTree::radius_query: dimension mismatch");
  const double r2 = ball.radius * ball.radius;
  std::vector<std::int32_t> stack{root_};
  while (!stack.empty()) {
    const Node& n = nodes_[static_cast<std::size_t>(stack.back())];
    stack.pop_back();
    if (cost) ++cost->nodes_visited;
    if (n.bounds.min_squared_distance(ball.center) > r2) continue;
    if (n.left < 0) {
      for (std::uint32_t i = n.begin; i < n.end; ++i) {
        if (cost) ++cost->points_examined;
        if (squared_distance(ball.center, points_[order_[i]]) <= r2)
          out.push_back(ids_[order_[i]]);
      }
    } else {
      stack.push_back(n.left);
      stack.push_back(n.right);
    }
  }
  return out;
}

std::vector<std::pair<std::uint64_t, double>> KdTree::knn(
    std::span<const double> query, std::size_t k, KdQueryCost* cost) const {
  std::vector<std::pair<std::uint64_t, double>> result;
  if (root_ < 0 || k == 0) return result;
  if (query.size() != dims())
    throw std::invalid_argument("KdTree::knn: dimension mismatch");

  // Max-heap of (distance^2, id) of current best k.
  using Entry = std::pair<double, std::uint64_t>;
  std::priority_queue<Entry> best;

  // Best-first traversal ordered by node min-distance.
  using Frontier = std::pair<double, std::int32_t>;
  std::priority_queue<Frontier, std::vector<Frontier>, std::greater<>> frontier;
  frontier.emplace(nodes_[static_cast<std::size_t>(root_)]
                       .bounds.min_squared_distance(query),
                   root_);
  while (!frontier.empty()) {
    const auto [min_d2, idx] = frontier.top();
    frontier.pop();
    if (best.size() == k && min_d2 > best.top().first) break;
    const Node& n = nodes_[static_cast<std::size_t>(idx)];
    if (cost) ++cost->nodes_visited;
    if (n.left < 0) {
      for (std::uint32_t i = n.begin; i < n.end; ++i) {
        if (cost) ++cost->points_examined;
        const double d2 = squared_distance(query, points_[order_[i]]);
        if (best.size() < k) {
          best.emplace(d2, ids_[order_[i]]);
        } else if (d2 < best.top().first) {
          best.pop();
          best.emplace(d2, ids_[order_[i]]);
        }
      }
    } else {
      for (const std::int32_t child : {n.left, n.right}) {
        const double d2 = nodes_[static_cast<std::size_t>(child)]
                              .bounds.min_squared_distance(query);
        if (best.size() < k || d2 <= best.top().first)
          frontier.emplace(d2, child);
      }
    }
  }
  result.reserve(best.size());
  while (!best.empty()) {
    result.emplace_back(best.top().second, std::sqrt(best.top().first));
    best.pop();
  }
  std::reverse(result.begin(), result.end());
  return result;
}

KdTree build_kdtree(const Table& table, std::span<const std::size_t> cols) {
  std::vector<Point> pts;
  pts.reserve(table.num_rows());
  Point p;
  for (std::size_t r = 0; r < table.num_rows(); ++r) {
    table.gather(r, cols, p);
    pts.push_back(p);
  }
  return KdTree(std::move(pts));
}

}  // namespace sea
