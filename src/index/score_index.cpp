#include "index/score_index.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace sea {

ScoreIndex::ScoreIndex(const Table& table, std::size_t key_col,
                       std::size_t score_col, std::size_t payload_col) {
  if (key_col >= table.num_columns() || score_col >= table.num_columns())
    throw std::invalid_argument("ScoreIndex: bad column");
  const bool has_payload = payload_col < table.num_columns();
  by_rank_.reserve(table.num_rows());
  const auto keys = table.column(key_col);
  const auto scores = table.column(score_col);
  for (std::size_t r = 0; r < table.num_rows(); ++r) {
    ScoredTuple t;
    t.key = static_cast<std::uint64_t>(std::llround(keys[r]));
    t.score = scores[r];
    t.payload = has_payload ? table.at(r, payload_col) : 0.0;
    t.row = static_cast<std::uint32_t>(r);
    by_rank_.push_back(t);
  }
  std::sort(by_rank_.begin(), by_rank_.end(),
            [](const ScoredTuple& a, const ScoredTuple& b) {
              return a.score > b.score;
            });
  for (std::uint32_t i = 0; i < by_rank_.size(); ++i)
    key_index_[by_rank_[i].key].push_back(i);
}

const ScoredTuple& ScoreIndex::by_rank(std::size_t rank) const {
  if (rank >= by_rank_.size()) throw std::out_of_range("ScoreIndex::by_rank");
  return by_rank_[rank];
}

std::span<const std::uint32_t> ScoreIndex::ranks_for_key(
    std::uint64_t key) const {
  const auto it = key_index_.find(key);
  if (it == key_index_.end()) return {};
  return it->second;
}

double ScoreIndex::best_score_for_key(std::uint64_t key) const {
  const auto ranks = ranks_for_key(key);
  if (ranks.empty()) return -std::numeric_limits<double>::infinity();
  // Ranks are ascending positions in descending-score order, so the first
  // rank holds the best score.
  return by_rank_[ranks.front()].score;
}

}  // namespace sea
