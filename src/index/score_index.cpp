#include "index/score_index.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include <span>

#include "common/parallel.h"
#include "common/primitives.h"

namespace sea {

namespace {

/// Strict total order (descending score, ascending source row): every
/// build strategy — serial std::sort or parallel sample sort — converges
/// on the same unique rank order, score ties included.
bool rank_before(const ScoredTuple& a, const ScoredTuple& b) noexcept {
  if (a.score != b.score) return a.score > b.score;
  return a.row < b.row;
}

}  // namespace

std::vector<ScoredTuple> build_rank_order(const Table& table,
                                          std::size_t key_col,
                                          std::size_t score_col,
                                          std::size_t payload_col) {
  if (key_col >= table.num_columns() || score_col >= table.num_columns())
    throw std::invalid_argument("ScoreIndex: bad column");
  const bool has_payload = payload_col < table.num_columns();
  const std::size_t n = table.num_rows();
  std::vector<ScoredTuple> by_rank(n);
  const auto keys = table.column(key_col);
  const auto scores = table.column(score_col);
  ParallelChunks(n, [&](std::size_t begin, std::size_t end) {
    for (std::size_t r = begin; r < end; ++r) {
      ScoredTuple& t = by_rank[r];
      t.key = static_cast<std::uint64_t>(std::llround(keys[r]));
      t.score = scores[r];
      t.payload = has_payload ? table.at(r, payload_col) : 0.0;
      t.row = static_cast<std::uint32_t>(r);
    }
  });

  // Deterministic parallel sample sort; rank_before is a strict total
  // order, so the output is identical to a serial std::sort at any
  // SEA_THREADS (and sample_sort itself falls back to std::sort below its
  // serial cutoff or inside nested parallel regions).
  par::sample_sort(std::span<ScoredTuple>(by_rank), rank_before);
  return by_rank;
}

ScoreIndex::ScoreIndex(const Table& table, std::size_t key_col,
                       std::size_t score_col, std::size_t payload_col)
    : by_rank_(build_rank_order(table, key_col, score_col, payload_col)) {
  const std::size_t n = by_rank_.size();
  key_index_.reserve(n);
  for (std::uint32_t i = 0; i < by_rank_.size(); ++i)
    key_index_[by_rank_[i].key].push_back(i);
}

const ScoredTuple& ScoreIndex::by_rank(std::size_t rank) const {
  if (rank >= by_rank_.size()) throw std::out_of_range("ScoreIndex::by_rank");
  return by_rank_[rank];
}

std::span<const std::uint32_t> ScoreIndex::ranks_for_key(
    std::uint64_t key) const {
  const auto it = key_index_.find(key);
  if (it == key_index_.end()) return {};
  return it->second;
}

double ScoreIndex::best_score_for_key(std::uint64_t key) const {
  const auto ranks = ranks_for_key(key);
  if (ranks.empty()) return -std::numeric_limits<double>::infinity();
  // Ranks are ascending positions in descending-score order, so the first
  // rank holds the best score.
  return by_rank_[ranks.front()].score;
}

}  // namespace sea
