// k-d tree over multi-dimensional points with range / radius / kNN search.
//
// Used by the big-data-less operators (paper RT2): a per-node k-d tree lets
// the coordinator surgically retrieve only the tuples inside a queried
// subspace instead of scanning the partition. Every query reports how many
// tree nodes and points it visited so the cluster accounting stays honest.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "data/point.h"

namespace sea {

struct KdQueryCost {
  std::uint64_t nodes_visited = 0;
  std::uint64_t points_examined = 0;
};

class KdTree {
 public:
  KdTree() = default;

  /// Builds over `points` (copied); `ids[i]` is the caller's identifier for
  /// points[i] (e.g. a row index). ids may be empty => identity ids.
  KdTree(std::vector<Point> points, std::vector<std::uint64_t> ids = {});

  std::size_t size() const noexcept { return points_.size(); }
  bool empty() const noexcept { return points_.empty(); }
  std::size_t dims() const noexcept {
    return points_.empty() ? 0 : points_[0].size();
  }

  /// Ids of all points inside the rectangle.
  std::vector<std::uint64_t> range_query(const Rect& rect,
                                         KdQueryCost* cost = nullptr) const;

  /// Ids of all points inside the ball.
  std::vector<std::uint64_t> radius_query(const Ball& ball,
                                          KdQueryCost* cost = nullptr) const;

  /// The k nearest neighbours of `query` as (id, distance), ascending by
  /// distance. Returns fewer when the tree holds fewer points.
  std::vector<std::pair<std::uint64_t, double>> knn(
      std::span<const double> query, std::size_t k,
      KdQueryCost* cost = nullptr) const;

 private:
  struct Node {
    std::int32_t left = -1;
    std::int32_t right = -1;
    std::uint32_t begin = 0;  ///< leaf: range [begin, end) in order_
    std::uint32_t end = 0;
    std::uint16_t axis = 0;
    double split = 0.0;
    Rect bounds;
  };

  static constexpr std::size_t kLeafSize = 16;

  /// Nodes in the subtree over `count` points — the layout is preorder
  /// (self, left subtree, right subtree), a pure function of the point
  /// count, so parallel subtree builds write disjoint, precomputed slots
  /// and produce the exact array a serial build would.
  static std::size_t subtree_nodes(std::uint32_t count) noexcept;

  /// Writes the node for [begin, end) at nodes_[self]; returns false for a
  /// leaf, true after an internal split with `*mid_out` set.
  bool split_node(std::uint32_t begin, std::uint32_t end, std::uint32_t self,
                  std::uint32_t* mid_out);
  /// Recursive build of the subtree at its preorder slot.
  void build_at(std::uint32_t begin, std::uint32_t end, std::uint32_t self);
  Rect compute_bounds(std::uint32_t begin, std::uint32_t end) const;

  std::vector<Point> points_;
  std::vector<std::uint64_t> ids_;
  std::vector<std::uint32_t> order_;  ///< permutation, leaves own subranges
  std::vector<Node> nodes_;
  std::int32_t root_ = -1;
};

/// Convenience: build a KdTree from selected columns of a table, using row
/// indices as ids.
class Table;
KdTree build_kdtree(const Table& table, std::span<const std::size_t> cols);

}  // namespace sea
