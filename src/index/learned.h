// Learned-index tier (paper E3/E4 "statistical indexes", pushed to the
// modern learned-index form — LiLIS / RMI, see PAPERS.md).
//
// Two structures, both *exact by construction*: a model predicts where an
// answer lives, a provably sound bounded window around the prediction is
// searched exactly, so every lookup returns byte-identical results to the
// heavyweight exact index it replaces — the differential harness in
// tests/test_learned_index.cpp enforces exactly that contract.
//
//  * RmiModel / LearnedScoreIndex — a two-stage recursive model index over
//    sorted keys: stage 1 is a monotone linear router onto leaf segments,
//    stage 2 a per-segment linear model with a recorded max-error bound.
//    A lookup costs O(1) model evaluation + a binary search over at most
//    2*err+2 slots ("last mile"). Replaces ScoreIndex's hash map random
//    access at a fraction of the memory.
//  * LearnedGrid — a spatial grid that learns the per-dimension CDF
//    (piecewise-linear over sampled quantiles) and places cell boundaries
//    at equal CDF mass, so skewed data gets balanced cells where a uniform
//    grid degenerates. Same query API and answers as GridIndex.
//
// Both builds run on the shared pool (ParallelFor / par::sample_sort /
// par::counting_sort) and are bit-identical at SEA_THREADS 1 vs 8: every
// model parameter and every array is a pure function of the input.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "data/point.h"
#include "data/table.h"
#include "index/grid.h"
#include "index/score_index.h"

namespace sea {

// ---------------------------------------------------------------------------
// RMI over a sorted key array.
// ---------------------------------------------------------------------------

/// One stage-2 leaf: a linear model over the keys routed to it, plus the
/// max position error it was observed to make at build time. `begin/end`
/// is the slice of the sorted key array the segment owns; because the
/// stage-1 router is monotone in the key, each segment's keys form a
/// contiguous run and any query routed here has its answer inside
/// [begin, end] — the error window is clipped to that range, which is what
/// makes the lookup exact even for never-seen keys.
struct RmiSegment {
  double slope = 0.0;
  double intercept = 0.0;
  std::uint32_t err = 0;    ///< max |predicted - true| over trained keys
  std::uint32_t begin = 0;  ///< first position owned by this segment
  std::uint32_t end = 0;    ///< one past the last position
};

/// Per-lookup accounting, mirroring KdQueryCost/GridQueryCost: how wide the
/// last-mile window was and how far the model actually missed. The
/// error-bound contract (tests assert it, never trust it) is
///   observed_error <= advertised_error   for every lookup.
struct RmiProbeCost {
  std::uint64_t lookups = 0;
  std::uint64_t window_slots = 0;     ///< total last-mile window width
  std::uint64_t observed_error = 0;   ///< max |found - predicted| seen
  std::uint64_t advertised_error = 0; ///< max (segment err + 1) consulted
};

/// Two-stage RMI: fit() learns the router and the segments over a sorted
/// (ascending) key array; locate() returns a window guaranteed to contain
/// std::lower_bound's answer for the query key.
class RmiModel {
 public:
  RmiModel() = default;

  /// Fits over `sorted_keys` (must be ascending; duplicates fine).
  /// `leaf_target` ~ keys per stage-2 segment (0 = default).
  void fit(std::span<const double> sorted_keys, std::size_t leaf_target = 0);

  struct Window {
    std::size_t lo = 0;    ///< inclusive
    std::size_t hi = 0;    ///< inclusive as a position (lower_bound may
                           ///< return hi); search range is [lo, hi]
    std::size_t pred = 0;  ///< the model's point prediction
    std::uint32_t seg = 0;
  };

  /// O(1): route + predict + clip. For any key within the routed
  /// segment's key range, the index of the first sorted key >= `key`
  /// (i.e. lower_bound) lies in [lo, hi]. Keys outside that range need
  /// no window at all: routing is monotone, so their lower_bound is the
  /// segment boundary itself — segment(w.seg).begin below the range,
  /// .end above it (two O(1) comparisons for the caller).
  Window locate(double key) const noexcept;

  std::size_t size() const noexcept { return n_; }
  std::size_t num_segments() const noexcept { return segments_.size(); }
  const RmiSegment& segment(std::size_t s) const { return segments_.at(s); }
  /// Largest per-segment error bound (the advertised worst case).
  std::uint32_t max_error() const noexcept { return max_err_; }
  std::size_t byte_size() const noexcept {
    return segments_.size() * sizeof(RmiSegment) + sizeof(*this);
  }

 private:
  std::size_t route(double key) const noexcept;

  std::vector<RmiSegment> segments_;
  double router_slope_ = 0.0;
  double router_intercept_ = 0.0;
  std::size_t n_ = 0;
  std::uint32_t max_err_ = 0;
};

// ---------------------------------------------------------------------------
// LearnedScoreIndex — drop-in for ScoreIndex (rank-join random access).
// ---------------------------------------------------------------------------

/// Same build (identical rank order, bit for bit) and the same access
/// paths as ScoreIndex, but random access by key goes through an RMI over
/// the key-sorted tuple permutation instead of a hash map: 12 bytes/row +
/// a few segments instead of an unordered_map. Lookups are exact — the
/// differential suite drives this against ScoreIndex on every workload.
class LearnedScoreIndex {
 public:
  LearnedScoreIndex() = default;
  LearnedScoreIndex(const Table& table, std::size_t key_col,
                    std::size_t score_col, std::size_t payload_col);

  std::size_t size() const noexcept { return by_rank_.size(); }
  bool empty() const noexcept { return by_rank_.empty(); }

  /// rank 0 = highest score; identical to ScoreIndex::by_rank.
  const ScoredTuple& by_rank(std::size_t rank) const;

  /// Indices (into rank order, ascending) of all tuples with this key;
  /// empty if none. Byte-identical to ScoreIndex::ranks_for_key.
  std::span<const std::uint32_t> ranks_for_key(
      std::uint64_t key, RmiProbeCost* cost = nullptr) const;

  /// Highest score present for `key`, or -inf when absent.
  double best_score_for_key(std::uint64_t key,
                            RmiProbeCost* cost = nullptr) const;

  std::size_t byte_size() const noexcept {
    return by_rank_.size() * sizeof(ScoredTuple) +
           keys_.size() * sizeof(std::uint64_t) +
           ranks_.size() * sizeof(std::uint32_t) + rmi_.byte_size();
  }

  const RmiModel& rmi() const noexcept { return rmi_; }
  /// Key-sorted views (ascending key, rank-ascending within ties) — the
  /// arrays the RMI predicts into; exposed for the property suite.
  std::span<const std::uint64_t> sorted_keys() const noexcept { return keys_; }
  std::span<const std::uint32_t> ranks_by_key() const noexcept {
    return ranks_;
  }

 private:
  std::vector<ScoredTuple> by_rank_;
  std::vector<std::uint64_t> keys_;   ///< sorted ascending
  std::vector<std::uint32_t> ranks_;  ///< rank of keys_[i]'s tuple
  RmiModel rmi_;
};

// ---------------------------------------------------------------------------
// LearnedGrid — CDF-learned spatial grid (GridIndex's query API).
// ---------------------------------------------------------------------------

/// Piecewise-linear CDF of one dimension, learned from a deterministic
/// stride sample: knots at equally spaced sample quantiles, linear
/// interpolation between them. Monotone non-decreasing by construction —
/// the property that keeps rectangle queries sound on the learned grid.
class LearnedCdf {
 public:
  LearnedCdf() = default;
  /// Learns from `values` (unsorted); `knots` interior intervals.
  LearnedCdf(std::span<const double> values, std::size_t knots);

  /// Monotone map value -> [0, 1].
  double operator()(double v) const noexcept;
  /// Approximate inverse: value at CDF mass u in [0, 1].
  double inverse(double u) const noexcept;

  std::size_t num_knots() const noexcept { return knots_.size(); }
  std::size_t byte_size() const noexcept {
    return knots_.size() * sizeof(double) + sizeof(*this);
  }

 private:
  std::vector<double> knots_;  ///< ascending quantile values (K+1 entries)
};

/// Grid index whose cell boundaries sit at equal learned-CDF mass per
/// dimension instead of equal width: skewed blobs spread over many cells,
/// empty space collapses. Query semantics (and answers) match GridIndex;
/// only the cell placement — and therefore the cost — differs.
class LearnedGrid {
 public:
  LearnedGrid() = default;

  /// Builds over `points` within `domain` with `cells_per_dim` cells per
  /// axis placed at learned CDF quantiles. Points outside the domain are
  /// clamped into border cells, like GridIndex.
  LearnedGrid(std::vector<Point> points, Rect domain,
              std::size_t cells_per_dim, std::vector<std::uint64_t> ids = {});

  std::size_t size() const noexcept { return points_.size(); }
  bool empty() const noexcept { return points_.empty(); }
  std::size_t dims() const noexcept { return domain_.dims(); }
  std::size_t cells_per_dim() const noexcept { return cells_per_dim_; }
  std::size_t num_cells() const noexcept {
    return cell_offsets_.empty() ? 0 : cell_offsets_.size() - 1;
  }

  std::vector<std::uint64_t> range_query(const Rect& rect,
                                         GridQueryCost* cost = nullptr) const;
  std::vector<std::uint64_t> radius_query(const Ball& ball,
                                          GridQueryCost* cost = nullptr) const;
  std::vector<std::pair<std::uint64_t, double>> knn(
      std::span<const double> query, std::size_t k,
      GridQueryCost* cost = nullptr) const;

  /// CSR cell table (property suite: counts must sum to size()).
  std::span<const std::uint32_t> cell_offsets() const noexcept {
    return cell_offsets_;
  }
  const LearnedCdf& cdf(std::size_t dim) const { return cdfs_.at(dim); }

  std::size_t byte_size() const noexcept {
    std::size_t b = points_.size() * (dims() * sizeof(double)) +
                    ids_.size() * sizeof(std::uint64_t) +
                    (cell_offsets_.size() + cell_points_.size()) *
                        sizeof(std::uint32_t);
    for (const auto& c : cdfs_) b += c.byte_size();
    return b;
  }

 private:
  std::size_t cell_coord(double v, std::size_t dim) const noexcept;
  std::size_t cell_of(std::span<const double> p) const noexcept;
  std::vector<std::pair<double, std::uint64_t>> radius_candidates(
      const Ball& ball, GridQueryCost* cost) const;
  std::span<const std::uint32_t> cell(std::size_t idx) const noexcept {
    return std::span<const std::uint32_t>(cell_points_)
        .subspan(cell_offsets_[idx],
                 cell_offsets_[idx + 1] - cell_offsets_[idx]);
  }

  std::vector<Point> points_;
  std::vector<std::uint64_t> ids_;
  Rect domain_;
  std::size_t cells_per_dim_ = 0;
  std::vector<LearnedCdf> cdfs_;  ///< one per dimension
  std::vector<std::uint32_t> cell_offsets_;
  std::vector<std::uint32_t> cell_points_;
};

// ---------------------------------------------------------------------------
// Modelled costs — what the E6 planner consults to learn when *not* to use
// the learned tier (ROADMAP item 1).
// ---------------------------------------------------------------------------

/// Coarse modelled build / per-query lookup / resident-memory estimates
/// for one access structure over `rows` points in `dims` dimensions at an
/// estimated query selectivity. Units match the modelled-ms currency of
/// ExecReport (hardware-independent by design); bytes are literal. The
/// adaptive executor feeds these to the selector as features — priors the
/// online cost models correct from observed reality.
struct IndexCostEstimate {
  double build_ms = 0.0;
  double lookup_ms = 0.0;
  double memory_bytes = 0.0;
};

IndexCostEstimate modelled_kdtree_cost(std::size_t rows, std::size_t dims,
                                       double est_selectivity) noexcept;
IndexCostEstimate modelled_grid_cost(std::size_t rows, std::size_t dims,
                                     double est_selectivity) noexcept;
IndexCostEstimate modelled_learned_grid_cost(std::size_t rows,
                                             std::size_t dims,
                                             double est_selectivity) noexcept;

}  // namespace sea
