// Count-Min sketch over 64-bit keys (Cormode & Muthukrishnan, cited as [16]
// in the paper's AQP-synopsis discussion). Provides frequency upper-bound
// estimates in sublinear space; used as a synopsis baseline and by the
// rank-join coordinator to prioritize keys.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace sea {

class CountMinSketch {
 public:
  CountMinSketch() = default;

  /// eps: additive error fraction (of total count); delta: failure prob.
  /// width = ceil(e / eps), depth = ceil(ln(1/delta)).
  CountMinSketch(double eps, double delta);

  void add(std::uint64_t key, std::uint64_t count = 1) noexcept;

  /// Overestimate (never underestimate) of key's total count.
  std::uint64_t estimate(std::uint64_t key) const noexcept;

  std::uint64_t total() const noexcept { return total_; }
  std::size_t width() const noexcept { return width_; }
  std::size_t depth() const noexcept { return depth_; }
  std::size_t byte_size() const noexcept {
    return table_.size() * sizeof(std::uint64_t);
  }

 private:
  static std::uint64_t mix(std::uint64_t x, std::uint64_t salt) noexcept;

  std::size_t width_ = 0;
  std::size_t depth_ = 0;
  std::vector<std::uint64_t> table_;  ///< depth_ rows of width_
  std::uint64_t total_ = 0;
};

}  // namespace sea
