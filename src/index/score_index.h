// Per-partition score index for rank-join (paper [30], experiment E3).
//
// Supports the two access paths of threshold-style top-k join algorithms:
//   * sorted access — tuples in descending score order, and
//   * random access — all tuples with a given join key.
// Built once per storage node; the coordinator then pulls tuples in rank
// order and probes keys surgically instead of shuffling whole relations.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "data/table.h"

namespace sea {

struct ScoredTuple {
  std::uint64_t key = 0;
  double score = 0.0;
  double payload = 0.0;
  std::uint32_t row = 0;  ///< row index in the source partition
};

/// The canonical rank order every score index builds on: tuples sorted by
/// (score desc, row asc) — a strict total order, so the deterministic
/// parallel sample sort yields the same array at any SEA_THREADS. Shared
/// by ScoreIndex and LearnedScoreIndex so the two are byte-identical by
/// construction on the sorted-access path.
std::vector<ScoredTuple> build_rank_order(const Table& table,
                                          std::size_t key_col,
                                          std::size_t score_col,
                                          std::size_t payload_col);

class ScoreIndex {
 public:
  ScoreIndex() = default;

  /// Builds over `table` using the named columns. Payload column is
  /// optional (pass num_columns() to skip).
  ScoreIndex(const Table& table, std::size_t key_col, std::size_t score_col,
             std::size_t payload_col);

  std::size_t size() const noexcept { return by_rank_.size(); }
  bool empty() const noexcept { return by_rank_.empty(); }

  /// rank 0 = highest score.
  const ScoredTuple& by_rank(std::size_t rank) const;

  /// Indices (into rank order) of all tuples with this key; empty if none.
  std::span<const std::uint32_t> ranks_for_key(std::uint64_t key) const;

  /// Highest score present for `key`, or -inf when absent.
  double best_score_for_key(std::uint64_t key) const;

  /// Modelled resident footprint: the rank array plus the hash map's
  /// real freight — per-key node (key, vector header, chain link), the
  /// rank arrays themselves, and the bucket table.
  std::size_t byte_size() const noexcept {
    std::size_t b = by_rank_.size() * sizeof(ScoredTuple) +
                    key_index_.bucket_count() * sizeof(void*);
    for (const auto& [key, ranks] : key_index_)
      b += sizeof(key) + sizeof(ranks) + sizeof(void*) +
           ranks.capacity() * sizeof(std::uint32_t);
    return b;
  }

 private:
  std::vector<ScoredTuple> by_rank_;
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> key_index_;
};

}  // namespace sea
