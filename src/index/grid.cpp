#include "index/grid.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <queue>
#include <stdexcept>

#include "common/parallel.h"
#include "common/primitives.h"
#include "index/cell_iter.h"

namespace sea {

GridIndex::GridIndex(std::vector<Point> points, Rect domain,
                     std::size_t cells_per_dim, std::vector<std::uint64_t> ids)
    : points_(std::move(points)),
      ids_(std::move(ids)),
      domain_(std::move(domain)),
      cells_per_dim_(cells_per_dim) {
  if (!domain_.valid() || domain_.dims() == 0)
    throw std::invalid_argument("GridIndex: invalid domain");
  if (cells_per_dim_ == 0)
    throw std::invalid_argument("GridIndex: cells_per_dim must be > 0");
  // Guard against overflow of the flattened cell table.
  double total = 1.0;
  for (std::size_t d = 0; d < domain_.dims(); ++d) {
    total *= static_cast<double>(cells_per_dim_);
    if (total > 1e8)
      throw std::invalid_argument("GridIndex: too many cells; reduce "
                                  "cells_per_dim or dimensionality");
  }
  if (ids_.empty()) {
    ids_.resize(points_.size());
    std::iota(ids_.begin(), ids_.end(), 0);
  }
  if (ids_.size() != points_.size())
    throw std::invalid_argument("GridIndex: ids/points size mismatch");
  // Compute cell assignments in parallel (each point owns its slot), then
  // build the CSR cell table with a stable parallel counting sort: each
  // cell's point-index run is ascending — exactly the order the old
  // per-cell push_back loop produced — with one flat array instead of a
  // vector-of-vectors (one allocation, contiguous query scans).
  std::vector<std::uint32_t> cell_idx(points_.size());
  ParallelChunks(points_.size(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      if (points_[i].size() != domain_.dims())
        throw std::invalid_argument("GridIndex: point dimensionality mismatch");
      cell_idx[i] = static_cast<std::uint32_t>(cell_of(points_[i]));
    }
  });
  par::CountingSort cs =
      par::counting_sort(cell_idx, static_cast<std::size_t>(total));
  cell_offsets_ = std::move(cs.offsets);
  cell_points_ = std::move(cs.order);
}

std::size_t GridIndex::cell_coord(double v, std::size_t dim) const noexcept {
  const double lo = domain_.lo[dim];
  const double hi = domain_.hi[dim];
  const double width = (hi - lo) / static_cast<double>(cells_per_dim_);
  if (width <= 0.0) return 0;
  const double raw = (v - lo) / width;
  const auto c = static_cast<std::int64_t>(std::floor(raw));
  return static_cast<std::size_t>(
      std::clamp<std::int64_t>(c, 0,
                               static_cast<std::int64_t>(cells_per_dim_) - 1));
}

std::size_t GridIndex::cell_of(std::span<const double> p) const noexcept {
  std::size_t idx = 0;
  for (std::size_t d = 0; d < domain_.dims(); ++d)
    idx = idx * cells_per_dim_ + cell_coord(p[d], d);
  return idx;
}

std::size_t GridIndex::flatten(
    std::span<const std::size_t> coords) const noexcept {
  std::size_t idx = 0;
  for (std::size_t d = 0; d < coords.size(); ++d)
    idx = idx * cells_per_dim_ + coords[d];
  return idx;
}

using detail::CoordIterator;

std::vector<std::uint64_t> GridIndex::range_query(const Rect& rect,
                                                  GridQueryCost* cost) const {
  std::vector<std::uint64_t> out;
  if (points_.empty()) return out;
  if (rect.dims() != dims())
    throw std::invalid_argument("GridIndex::range_query: dims");
  std::vector<std::size_t> lo(dims()), hi(dims());
  for (std::size_t d = 0; d < dims(); ++d) {
    lo[d] = cell_coord(rect.lo[d], d);
    hi[d] = cell_coord(rect.hi[d], d);
  }
  for (CoordIterator it(lo, hi); !it.done(); it.advance()) {
    const auto cell_pts = cell(flatten(it.coords()));
    if (cost) ++cost->cells_visited;
    for (const std::uint32_t i : cell_pts) {
      if (cost) ++cost->points_examined;
      if (rect.contains(points_[i])) out.push_back(ids_[i]);
    }
  }
  return out;
}

std::vector<std::uint64_t> GridIndex::radius_query(const Ball& ball,
                                                   GridQueryCost* cost) const {
  std::vector<std::uint64_t> out;
  if (points_.empty()) return out;
  if (ball.dims() != dims())
    throw std::invalid_argument("GridIndex::radius_query: dims");
  const Rect box = ball.bounding_box();
  const double r2 = ball.radius * ball.radius;
  std::vector<std::size_t> lo(dims()), hi(dims());
  for (std::size_t d = 0; d < dims(); ++d) {
    lo[d] = cell_coord(box.lo[d], d);
    hi[d] = cell_coord(box.hi[d], d);
  }
  for (CoordIterator it(lo, hi); !it.done(); it.advance()) {
    const auto cell_pts = cell(flatten(it.coords()));
    if (cost) ++cost->cells_visited;
    for (const std::uint32_t i : cell_pts) {
      if (cost) ++cost->points_examined;
      if (squared_distance(ball.center, points_[i]) <= r2)
        out.push_back(ids_[i]);
    }
  }
  return out;
}

std::vector<std::pair<std::uint64_t, double>> GridIndex::knn(
    std::span<const double> query, std::size_t k, GridQueryCost* cost) const {
  std::vector<std::pair<std::uint64_t, double>> result;
  if (points_.empty() || k == 0) return result;
  if (query.size() != dims())
    throw std::invalid_argument("GridIndex::knn: dims");

  // Expand a growing ball until it certainly contains k points: start with
  // the width of one cell, double the radius each round.
  double cell_width = 0.0;
  for (std::size_t d = 0; d < dims(); ++d)
    cell_width = std::max(
        cell_width, (domain_.hi[d] - domain_.lo[d]) /
                        static_cast<double>(cells_per_dim_));
  double radius = std::max(cell_width, 1e-9);
  // A ball of max_radius around the query covers the whole domain box even
  // when the query lies outside it (per-dim distance to the farther face);
  // the domain diagonal alone under-covers exactly those queries, and a
  // degenerate lo==hi domain would stop the expansion at radius ~0.
  double far2 = 0.0;
  for (std::size_t d = 0; d < dims(); ++d) {
    const double w = std::max(std::abs(query[d] - domain_.lo[d]),
                              std::abs(query[d] - domain_.hi[d]));
    far2 += w * w;
  }
  const double max_radius = std::sqrt(far2) + std::max(cell_width, 1e-9);

  for (;;) {
    const Ball ball{Point(query.begin(), query.end()), radius};
    auto ranked = radius_candidates(ball, cost);
    const bool exhausted = radius >= max_radius;
    if (ranked.size() >= k || exhausted) {
      if (exhausted && ranked.size() < k) {
        // The covering ball still found < k points: only possible when
        // points were clamped into border cells from outside the domain
        // (their true distance exceeds any in-domain bound) or k exceeds
        // the in-ball population. Fall back to an exact scan of every
        // point so the answer matches the tree's.
        ranked.clear();
        ranked.reserve(points_.size());
        for (std::size_t i = 0; i < points_.size(); ++i)
          ranked.emplace_back(squared_distance(query, points_[i]), ids_[i]);
        if (cost) cost->points_examined += points_.size();
      }
      // If k candidates lie within radius r, the true k nearest all lie
      // within r too, so they are among the candidates.
      const std::size_t take = std::min(k, ranked.size());
      std::partial_sort(ranked.begin(),
                        ranked.begin() + static_cast<std::ptrdiff_t>(take),
                        ranked.end());
      result.reserve(take);
      for (std::size_t i = 0; i < take; ++i)
        result.emplace_back(ranked[i].second, std::sqrt(ranked[i].first));
      return result;
    }
    radius *= 2.0;
  }
}

std::vector<std::pair<double, std::uint64_t>> GridIndex::radius_candidates(
    const Ball& ball, GridQueryCost* cost) const {
  std::vector<std::pair<double, std::uint64_t>> out;
  const Rect box = ball.bounding_box();
  const double r2 = ball.radius * ball.radius;
  std::vector<std::size_t> lo(dims()), hi(dims());
  for (std::size_t d = 0; d < dims(); ++d) {
    lo[d] = cell_coord(box.lo[d], d);
    hi[d] = cell_coord(box.hi[d], d);
  }
  for (CoordIterator it(lo, hi); !it.done(); it.advance()) {
    const auto cell_pts = cell(flatten(it.coords()));
    if (cost) ++cost->cells_visited;
    for (const std::uint32_t i : cell_pts) {
      if (cost) ++cost->points_examined;
      const double d2 = squared_distance(ball.center, points_[i]);
      if (d2 <= r2) out.emplace_back(d2, ids_[i]);
    }
  }
  return out;
}

}  // namespace sea
