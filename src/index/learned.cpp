#include "index/learned.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "common/parallel.h"
#include "common/primitives.h"
#include "index/cell_iter.h"

namespace sea {

namespace {

/// Least-squares fit of *run-first* position on key over
/// sorted_keys[begin, end), slope clamped to >= 0 so the model is
/// monotone — the property the window-soundness argument in
/// RmiModel::fit rests on. lower_bound answers always land on the first
/// slot of a duplicate run, so that is the position worth predicting: a
/// constant array collapses to err 0 instead of ballooning to n/2.
/// Degenerate inputs (empty range, constant keys, non-finite moments)
/// collapse to the flat model slope=0, intercept=first position.
std::pair<double, double> fit_monotone_line(std::span<const double> keys,
                                            std::size_t begin,
                                            std::size_t end) {
  const std::size_t m = end - begin;
  if (m == 0) return {0.0, static_cast<double>(begin)};
  double sum_k = 0.0, sum_i = 0.0, sum_kk = 0.0, sum_ki = 0.0;
  std::size_t run_first = begin;
  for (std::size_t i = begin; i < end; ++i) {
    if (keys[i] != keys[run_first]) run_first = i;
    const double k = keys[i];
    const double p = static_cast<double>(run_first);
    sum_k += k;
    sum_i += p;
    sum_kk += k * k;
    sum_ki += k * p;
  }
  const double dn = static_cast<double>(m);
  const double var = sum_kk - sum_k * sum_k / dn;
  double slope = 0.0;
  if (var > 0.0 && std::isfinite(var)) slope = (sum_ki - sum_k * sum_i / dn) / var;
  if (!(slope > 0.0)) slope = 0.0;  // monotone; also catches NaN
  const double intercept = (sum_i - slope * sum_k) / dn;
  return {slope, std::isfinite(intercept) ? intercept
                                          : static_cast<double>(begin)};
}

/// Integer prediction of `line` at `key`, clamped into [lo, hi]. The same
/// formula runs at build time (error accounting) and at query time
/// (window placement), so the advertised bound is exactly the one probed.
std::size_t predict_clamped(double slope, double intercept, double key,
                            std::size_t lo, std::size_t hi) noexcept {
  const double p = slope * key + intercept;
  if (!(p > static_cast<double>(lo))) return lo;  // also catches NaN
  if (p >= static_cast<double>(hi)) return hi;
  return static_cast<std::size_t>(std::llround(p)) > hi
             ? hi
             : std::max(lo, static_cast<std::size_t>(std::llround(p)));
}

std::size_t abs_diff(std::size_t a, std::size_t b) noexcept {
  return a > b ? a - b : b - a;
}

}  // namespace

// ---------------------------------------------------------------------------
// RmiModel
// ---------------------------------------------------------------------------

void RmiModel::fit(std::span<const double> sorted_keys,
                   std::size_t leaf_target) {
  const std::size_t n = sorted_keys.size();
  n_ = n;
  segments_.clear();
  max_err_ = 0;
  if (leaf_target == 0) leaf_target = 128;
  const std::size_t num_segs = std::clamp<std::size_t>(
      n / std::max<std::size_t>(1, leaf_target), 1, std::size_t{1} << 16);
  if (n == 0) {
    router_slope_ = 0.0;
    router_intercept_ = 0.0;
    segments_.push_back(RmiSegment{});
    return;
  }

  // Stage 1: one monotone line over the whole array routes a key to its
  // leaf segment. Fitted with the blocked pairwise-tree reduction so the
  // moments — and with them every downstream parameter — are bit-identical
  // at any SEA_THREADS.
  struct Moments {
    double k = 0.0, i = 0.0, kk = 0.0, ki = 0.0;
  };
  const Moments mo = par::blocked_reduce(
      n, Moments{},
      [&](std::size_t begin, std::size_t end) {
        Moments m;
        for (std::size_t i = begin; i < end; ++i) {
          const double k = sorted_keys[i];
          const double p = static_cast<double>(i);
          m.k += k;
          m.i += p;
          m.kk += k * k;
          m.ki += k * p;
        }
        return m;
      },
      [](const Moments& a, const Moments& b) {
        return Moments{a.k + b.k, a.i + b.i, a.kk + b.kk, a.ki + b.ki};
      });
  const double dn = static_cast<double>(n);
  const double var = mo.kk - mo.k * mo.k / dn;
  router_slope_ = 0.0;
  if (var > 0.0 && std::isfinite(var))
    router_slope_ = (mo.ki - mo.k * mo.i / dn) / var;
  if (!(router_slope_ > 0.0)) router_slope_ = 0.0;
  router_intercept_ = (mo.i - router_slope_ * mo.k) / dn;
  if (!std::isfinite(router_intercept_)) router_intercept_ = 0.0;

  // Segment boundaries: route() is monotone in the key and keys are
  // sorted, so segment ids are non-decreasing along the array and each
  // boundary is a partition point — computable independently per segment.
  segments_.assign(num_segs, RmiSegment{});
  std::vector<std::uint32_t> bounds(num_segs + 1, 0);
  bounds[num_segs] = static_cast<std::uint32_t>(n);
  ParallelFor(num_segs, [&](std::size_t s) {
    if (s == 0) return;  // bounds[0] = 0
    const auto it = std::partition_point(
        sorted_keys.begin(), sorted_keys.end(),
        [&](double k) { return route(k) < s; });
    bounds[s] = static_cast<std::uint32_t>(it - sorted_keys.begin());
  });

  // Stage 2: per-segment monotone line + error bound. Equal keys always
  // route to the same segment, so duplicate runs never span a boundary
  // and the per-run positions the bound must cover are all local. err
  // covers (a) the run-first position of every run — the lower_bound
  // answer for any present key — and (b) for every run except the
  // segment's last, the run-last position: an unseen key falling between
  // two runs lands at run-last + 1, and its own prediction can sit as
  // low as the left run's. Together with the monotone prediction this
  // makes [pred - err, pred + err + 1] clipped to the segment a sound
  // lower_bound window for any query key whose value lies within the
  // segment's key range; keys outside that range are resolved by the
  // caller's O(1) boundary comparisons (see
  // LearnedScoreIndex::ranks_for_key) — the exactness-by-construction
  // contract. A segment holding one giant duplicate run therefore
  // advertises err 0, not half its length.
  ParallelFor(num_segs, [&](std::size_t s) {
    RmiSegment& seg = segments_[s];
    seg.begin = bounds[s];
    seg.end = bounds[s + 1];
    const auto [slope, intercept] =
        fit_monotone_line(sorted_keys, seg.begin, seg.end);
    seg.slope = slope;
    seg.intercept = intercept;
    std::size_t err = 0;
    std::size_t run_first = seg.begin;
    for (std::size_t i = seg.begin; i < seg.end; ++i) {
      if (sorted_keys[i] != sorted_keys[run_first]) run_first = i;
      const bool run_end =
          i + 1 == seg.end || sorted_keys[i + 1] != sorted_keys[i];
      if (!run_end) continue;
      const std::size_t pred = predict_clamped(slope, intercept,
                                               sorted_keys[i], seg.begin,
                                               seg.end);
      err = std::max(err, abs_diff(pred, run_first));
      if (i + 1 < seg.end && i > pred) err = std::max(err, i - pred);
    }
    seg.err = static_cast<std::uint32_t>(
        std::min<std::size_t>(err, UINT32_MAX));
  });
  for (const RmiSegment& s : segments_) max_err_ = std::max(max_err_, s.err);
}

std::size_t RmiModel::route(double key) const noexcept {
  if (n_ == 0 || segments_.size() <= 1) return 0;
  const double pos = router_slope_ * key + router_intercept_;
  const double scaled =
      pos * static_cast<double>(segments_.size()) / static_cast<double>(n_);
  if (!(scaled > 0.0)) return 0;
  const auto s = static_cast<std::size_t>(scaled);
  return std::min(s, segments_.size() - 1);
}

RmiModel::Window RmiModel::locate(double key) const noexcept {
  Window w;
  if (n_ == 0) return w;
  w.seg = static_cast<std::uint32_t>(route(key));
  const RmiSegment& seg = segments_[w.seg];
  w.pred = predict_clamped(seg.slope, seg.intercept, key, seg.begin, seg.end);
  const std::size_t err = seg.err;
  w.lo = std::max<std::size_t>(seg.begin, w.pred > err ? w.pred - err : 0);
  w.hi = std::min<std::size_t>(seg.end, w.pred + err + 1);
  return w;
}

// ---------------------------------------------------------------------------
// LearnedScoreIndex
// ---------------------------------------------------------------------------

LearnedScoreIndex::LearnedScoreIndex(const Table& table, std::size_t key_col,
                                     std::size_t score_col,
                                     std::size_t payload_col)
    : by_rank_(build_rank_order(table, key_col, score_col, payload_col)) {
  const std::size_t n = by_rank_.size();
  // Key-sorted permutation of the rank order: (key asc, rank asc) is a
  // strict total order, so the deterministic sample sort gives the same
  // array at any SEA_THREADS — and within one key the ranks come out
  // ascending, exactly the order ScoreIndex's hash map accumulates.
  std::vector<std::pair<std::uint64_t, std::uint32_t>> kv(n);
  ParallelChunks(n, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i)
      kv[i] = {by_rank_[i].key, static_cast<std::uint32_t>(i)};
  });
  par::sample_sort(std::span<std::pair<std::uint64_t, std::uint32_t>>(kv));
  keys_.resize(n);
  ranks_.resize(n);
  std::vector<double> keyd(n);
  ParallelChunks(n, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      keys_[i] = kv[i].first;
      ranks_[i] = kv[i].second;
      keyd[i] = static_cast<double>(kv[i].first);
    }
  });
  rmi_.fit(keyd);
}

const ScoredTuple& LearnedScoreIndex::by_rank(std::size_t rank) const {
  if (rank >= by_rank_.size())
    throw std::out_of_range("LearnedScoreIndex::by_rank");
  return by_rank_[rank];
}

std::span<const std::uint32_t> LearnedScoreIndex::ranks_for_key(
    std::uint64_t key, RmiProbeCost* cost) const {
  if (keys_.empty()) return {};
  const RmiModel::Window w = rmi_.locate(static_cast<double>(key));
  const RmiSegment& seg = rmi_.segment(w.seg);
  if (cost) {
    ++cost->lookups;
    cost->advertised_error = std::max<std::uint64_t>(
        cost->advertised_error, seg.err + std::uint64_t{1});
  }
  // O(1) boundary guards: routing is monotone, so a key outside this
  // segment's key range is absent from the whole array (every occurrence
  // would have routed here). This is what lets a duplicate-heavy segment
  // advertise a tiny err — the window never has to reach the insertion
  // point of out-of-range misses.
  if (seg.begin == seg.end || key < keys_[seg.begin] ||
      key > keys_[seg.end - 1])
    return {};
  // Last mile: exact binary search inside the bounded window, with u64
  // comparisons so the result is exact even where the double cast of the
  // key is lossy. A run of u64 keys sharing one double can outgrow the
  // window at the segment's tail (the one run err does not cover past
  // its first slot); landing on the window's upper edge extends the
  // search to the segment end — rare, and still inside one segment.
  const auto first = keys_.begin() + static_cast<std::ptrdiff_t>(w.lo);
  auto last = keys_.begin() + static_cast<std::ptrdiff_t>(w.hi);
  auto pos = std::lower_bound(first, last, key);
  std::size_t slots = w.hi - w.lo;
  if (pos == last && w.hi < seg.end) {
    last = keys_.begin() + static_cast<std::ptrdiff_t>(seg.end);
    pos = std::lower_bound(pos, last, key);
    slots += seg.end - w.hi;
  }
  const auto found = static_cast<std::size_t>(pos - keys_.begin());
  if (cost) {
    cost->window_slots += slots;
    cost->observed_error =
        std::max<std::uint64_t>(cost->observed_error, abs_diff(found, w.pred));
  }
  if (found == static_cast<std::size_t>(last - keys_.begin()) ||
      keys_[found] != key)
    return {};
  // Equal keys never span a segment boundary, so the full duplicate run
  // lies in [pos, seg.end) even when it outruns the window.
  const auto run_end = std::upper_bound(
      pos, keys_.begin() + static_cast<std::ptrdiff_t>(seg.end), key);
  return std::span<const std::uint32_t>(
      ranks_.data() + found, static_cast<std::size_t>(run_end - pos));
}

double LearnedScoreIndex::best_score_for_key(std::uint64_t key,
                                             RmiProbeCost* cost) const {
  const auto ranks = ranks_for_key(key, cost);
  if (ranks.empty()) return -std::numeric_limits<double>::infinity();
  return by_rank_[ranks.front()].score;
}

// ---------------------------------------------------------------------------
// LearnedCdf
// ---------------------------------------------------------------------------

LearnedCdf::LearnedCdf(std::span<const double> values, std::size_t knots) {
  const std::size_t n = values.size();
  if (n == 0 || knots == 0) return;
  // Deterministic stride sample (no RNG — same fixed-stride idiom as
  // sample_sort's pivots), sorted serially: the sample is small, and the
  // knots are a pure function of the input regardless of SEA_THREADS.
  const std::size_t cap = std::max<std::size_t>(knots * 8, 64);
  const std::size_t s = std::min(n, cap);
  std::vector<double> sample(s);
  for (std::size_t i = 0; i < s; ++i)
    sample[i] = values[s == 1 ? 0 : i * (n - 1) / (s - 1)];
  std::sort(sample.begin(), sample.end());
  const std::size_t k = std::min(knots, s > 1 ? s - 1 : std::size_t{1});
  knots_.resize(k + 1);
  for (std::size_t j = 0; j <= k; ++j)
    knots_[j] = sample[s == 1 ? 0 : j * (s - 1) / k];
}

double LearnedCdf::operator()(double v) const noexcept {
  if (knots_.size() < 2) return 0.0;
  if (!(v > knots_.front())) return 0.0;
  if (v >= knots_.back()) return 1.0;
  const std::size_t k = knots_.size() - 1;
  const auto it = std::upper_bound(knots_.begin(), knots_.end(), v);
  const auto j = static_cast<std::size_t>(it - knots_.begin()) - 1;
  // knots_[j] <= v < knots_[j+1] and the bracket is strict, so the
  // interpolation denominator is positive; the map stays monotone across
  // duplicate knots (mass jumps, as a CDF should).
  const double t = (v - knots_[j]) / (knots_[j + 1] - knots_[j]);
  return (static_cast<double>(j) + t) / static_cast<double>(k);
}

double LearnedCdf::inverse(double u) const noexcept {
  if (knots_.empty()) return 0.0;
  if (knots_.size() < 2) return knots_.front();
  const std::size_t k = knots_.size() - 1;
  const double x = std::clamp(u, 0.0, 1.0) * static_cast<double>(k);
  const auto j = std::min(static_cast<std::size_t>(x), k - 1);
  const double t = x - static_cast<double>(j);
  return knots_[j] + t * (knots_[j + 1] - knots_[j]);
}

// ---------------------------------------------------------------------------
// LearnedGrid
// ---------------------------------------------------------------------------

LearnedGrid::LearnedGrid(std::vector<Point> points, Rect domain,
                         std::size_t cells_per_dim,
                         std::vector<std::uint64_t> ids)
    : points_(std::move(points)),
      ids_(std::move(ids)),
      domain_(std::move(domain)),
      cells_per_dim_(cells_per_dim) {
  if (!domain_.valid() || domain_.dims() == 0)
    throw std::invalid_argument("LearnedGrid: invalid domain");
  if (cells_per_dim_ == 0)
    throw std::invalid_argument("LearnedGrid: cells_per_dim must be > 0");
  double total = 1.0;
  for (std::size_t d = 0; d < domain_.dims(); ++d) {
    total *= static_cast<double>(cells_per_dim_);
    if (total > 1e8)
      throw std::invalid_argument("LearnedGrid: too many cells; reduce "
                                  "cells_per_dim or dimensionality");
  }
  if (ids_.empty()) {
    ids_.resize(points_.size());
    std::iota(ids_.begin(), ids_.end(), 0);
  }
  if (ids_.size() != points_.size())
    throw std::invalid_argument("LearnedGrid: ids/points size mismatch");
  const std::size_t n = points_.size();
  ParallelChunks(n, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i)
      if (points_[i].size() != domain_.dims())
        throw std::invalid_argument(
            "LearnedGrid: point dimensionality mismatch");
  });

  // Learn one CDF per dimension from the data itself (not the domain):
  // cell boundaries land at equal learned mass, so skewed blobs spread
  // over many cells and empty space collapses into few.
  cdfs_.resize(domain_.dims());
  std::vector<double> col(n);
  for (std::size_t d = 0; d < domain_.dims(); ++d) {
    ParallelChunks(n, [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) col[i] = points_[i][d];
    });
    cdfs_[d] = LearnedCdf(col, std::min<std::size_t>(64, cells_per_dim_ * 4));
  }

  // CSR cell table via the stable parallel counting sort, exactly like
  // GridIndex — bit-identical at any SEA_THREADS.
  std::vector<std::uint32_t> cell_idx(n);
  ParallelChunks(n, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i)
      cell_idx[i] = static_cast<std::uint32_t>(cell_of(points_[i]));
  });
  par::CountingSort cs =
      par::counting_sort(cell_idx, static_cast<std::size_t>(total));
  cell_offsets_ = std::move(cs.offsets);
  cell_points_ = std::move(cs.order);
}

std::size_t LearnedGrid::cell_coord(double v, std::size_t dim) const noexcept {
  const double u = cdfs_[dim](v);
  const auto c = static_cast<std::size_t>(
      u * static_cast<double>(cells_per_dim_));
  return std::min(c, cells_per_dim_ - 1);
}

std::size_t LearnedGrid::cell_of(std::span<const double> p) const noexcept {
  std::size_t idx = 0;
  for (std::size_t d = 0; d < domain_.dims(); ++d)
    idx = idx * cells_per_dim_ + cell_coord(p[d], d);
  return idx;
}

namespace {

std::size_t flatten_coords(std::span<const std::size_t> coords,
                           std::size_t cells_per_dim) noexcept {
  std::size_t idx = 0;
  for (std::size_t d = 0; d < coords.size(); ++d)
    idx = idx * cells_per_dim + coords[d];
  return idx;
}

}  // namespace

std::vector<std::uint64_t> LearnedGrid::range_query(
    const Rect& rect, GridQueryCost* cost) const {
  std::vector<std::uint64_t> out;
  if (points_.empty()) return out;
  if (rect.dims() != dims())
    throw std::invalid_argument("LearnedGrid::range_query: dims");
  std::vector<std::size_t> lo(dims()), hi(dims());
  for (std::size_t d = 0; d < dims(); ++d) {
    lo[d] = cell_coord(rect.lo[d], d);
    hi[d] = cell_coord(rect.hi[d], d);
  }
  for (detail::CoordIterator it(lo, hi); !it.done(); it.advance()) {
    const auto cell_pts = cell(flatten_coords(it.coords(), cells_per_dim_));
    if (cost) ++cost->cells_visited;
    for (const std::uint32_t i : cell_pts) {
      if (cost) ++cost->points_examined;
      if (rect.contains(points_[i])) out.push_back(ids_[i]);
    }
  }
  return out;
}

std::vector<std::uint64_t> LearnedGrid::radius_query(
    const Ball& ball, GridQueryCost* cost) const {
  std::vector<std::uint64_t> out;
  if (points_.empty()) return out;
  if (ball.dims() != dims())
    throw std::invalid_argument("LearnedGrid::radius_query: dims");
  for (const auto& cand : radius_candidates(ball, cost))
    out.push_back(cand.second);
  return out;
}

std::vector<std::pair<double, std::uint64_t>> LearnedGrid::radius_candidates(
    const Ball& ball, GridQueryCost* cost) const {
  std::vector<std::pair<double, std::uint64_t>> out;
  const Rect box = ball.bounding_box();
  const double r2 = ball.radius * ball.radius;
  std::vector<std::size_t> lo(dims()), hi(dims());
  for (std::size_t d = 0; d < dims(); ++d) {
    lo[d] = cell_coord(box.lo[d], d);
    hi[d] = cell_coord(box.hi[d], d);
  }
  for (detail::CoordIterator it(lo, hi); !it.done(); it.advance()) {
    const auto cell_pts = cell(flatten_coords(it.coords(), cells_per_dim_));
    if (cost) ++cost->cells_visited;
    for (const std::uint32_t i : cell_pts) {
      if (cost) ++cost->points_examined;
      const double d2 = squared_distance(ball.center, points_[i]);
      if (d2 <= r2) out.emplace_back(d2, ids_[i]);
    }
  }
  return out;
}

std::vector<std::pair<std::uint64_t, double>> LearnedGrid::knn(
    std::span<const double> query, std::size_t k, GridQueryCost* cost) const {
  std::vector<std::pair<std::uint64_t, double>> result;
  if (points_.empty() || k == 0) return result;
  if (query.size() != dims())
    throw std::invalid_argument("LearnedGrid::knn: dims");

  // Initial radius ~ the learned width of the query's own cell (the
  // inverse CDF stretches where data is sparse and shrinks where it is
  // dense — the adaptive-placement payoff).
  double cell_width = 0.0;
  for (std::size_t d = 0; d < dims(); ++d) {
    const std::size_t c = cell_coord(query[d], d);
    const double w =
        cdfs_[d].inverse(static_cast<double>(c + 1) /
                         static_cast<double>(cells_per_dim_)) -
        cdfs_[d].inverse(static_cast<double>(c) /
                         static_cast<double>(cells_per_dim_));
    cell_width = std::max(cell_width, w);
  }
  double radius = std::max(cell_width, 1e-9);
  // A ball of max_radius around the query covers the whole domain (even
  // when the query sits far outside it); the final fallback below covers
  // clamped outlier points the domain box never contained.
  double far2 = 0.0;
  for (std::size_t d = 0; d < dims(); ++d) {
    const double w = std::max(std::abs(query[d] - domain_.lo[d]),
                              std::abs(query[d] - domain_.hi[d]));
    far2 += w * w;
  }
  const double max_radius = std::sqrt(far2) + std::max(cell_width, 1e-9);

  for (;;) {
    const Ball ball{Point(query.begin(), query.end()), radius};
    auto ranked = radius_candidates(ball, cost);
    const bool exhausted = radius >= max_radius;
    if (ranked.size() >= k || exhausted) {
      if (exhausted && ranked.size() < k) {
        // Degenerate coverage (k > points in the whole domain ball, or
        // outliers clamped into border cells): exact fallback over every
        // point, so the result matches the tree's.
        ranked.clear();
        ranked.reserve(points_.size());
        for (std::size_t i = 0; i < points_.size(); ++i)
          ranked.emplace_back(squared_distance(query, points_[i]), ids_[i]);
        if (cost) cost->points_examined += points_.size();
      }
      const std::size_t take = std::min(k, ranked.size());
      std::partial_sort(ranked.begin(),
                        ranked.begin() + static_cast<std::ptrdiff_t>(take),
                        ranked.end());
      result.reserve(take);
      for (std::size_t i = 0; i < take; ++i)
        result.emplace_back(ranked[i].second, std::sqrt(ranked[i].first));
      return result;
    }
    radius *= 2.0;
  }
}

// ---------------------------------------------------------------------------
// Modelled costs
// ---------------------------------------------------------------------------

namespace {
// Coarse per-row constants in the modelled-ms currency (hardware-free, the
// same family of numbers as the cluster cost model): comparisons for tree
// descent, straight scans for grids, model evaluation for the learned
// tier. Priors only — the E6 selector's online GBMs correct them from
// observed cost, which is how the planner learns when *not* to use the
// learned tier (e.g. tiny tables where build amortization never pays).
constexpr double kMsPerCompare = 2e-6;
constexpr double kMsPerRowScan = 5e-7;
constexpr double kMsPerModelEval = 1e-6;
}  // namespace

IndexCostEstimate modelled_kdtree_cost(std::size_t rows, std::size_t dims,
                                       double est_selectivity) noexcept {
  IndexCostEstimate e;
  const double n = static_cast<double>(std::max<std::size_t>(rows, 1));
  const double logn = std::log2(n + 1.0);
  e.build_ms = kMsPerCompare * n * logn;
  e.lookup_ms = kMsPerCompare * logn + kMsPerRowScan * est_selectivity * n;
  e.memory_bytes = n * (static_cast<double>(dims) * 8.0 + 48.0);
  return e;
}

IndexCostEstimate modelled_grid_cost(std::size_t rows, std::size_t dims,
                                     double est_selectivity) noexcept {
  IndexCostEstimate e;
  const double n = static_cast<double>(std::max<std::size_t>(rows, 1));
  e.build_ms = kMsPerRowScan * 2.0 * n;
  // A uniform grid over-scans by the cell slop around the query box; the
  // slop grows with dimensionality (border cells per face).
  const double slop = 1.0 + 0.5 * static_cast<double>(dims);
  e.lookup_ms = kMsPerRowScan * slop * est_selectivity * n +
                kMsPerCompare * static_cast<double>(dims);
  e.memory_bytes = n * (static_cast<double>(dims) * 8.0 + 12.0);
  return e;
}

IndexCostEstimate modelled_learned_grid_cost(
    std::size_t rows, std::size_t dims, double est_selectivity) noexcept {
  IndexCostEstimate e = modelled_grid_cost(rows, dims, est_selectivity);
  const double n = static_cast<double>(std::max<std::size_t>(rows, 1));
  // CDF learning adds a per-row pass at build; balanced cells cut the
  // per-query scan slop but each coordinate costs a model evaluation.
  e.build_ms += kMsPerRowScan * n;
  const double slop = 1.0 + 0.25 * static_cast<double>(dims);
  e.lookup_ms = kMsPerRowScan * slop * est_selectivity * n +
                kMsPerModelEval * 2.0 * static_cast<double>(dims);
  e.memory_bytes += 65.0 * 8.0 * static_cast<double>(dims);
  return e;
}

}  // namespace sea
