// One-dimensional histograms and a multi-dimensional product histogram.
//
// These are the "statistical structures" of paper P3/O4: compact summaries
// kept at the coordinator that let it estimate selectivities and prune
// nodes *before* touching base data. The product histogram (attribute-
// value-independence assumption) also serves as a classic synopsis-based
// AQP baseline in E2.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "data/point.h"

namespace sea {

/// Equi-width histogram over [lo, hi].
class EquiWidthHistogram {
 public:
  EquiWidthHistogram() = default;
  EquiWidthHistogram(double lo, double hi, std::size_t buckets);

  void add(double v) noexcept;
  void add_all(std::span<const double> values) noexcept;

  std::size_t buckets() const noexcept { return counts_.size(); }
  std::uint64_t total() const noexcept { return total_; }
  double lo() const noexcept { return lo_; }
  double hi() const noexcept { return hi_; }
  std::uint64_t bucket_count(std::size_t b) const;

  /// Estimated number of values in [a, b] assuming uniformity per bucket.
  double estimate_range(double a, double b) const noexcept;

  /// Fraction of total mass in [a, b].
  double selectivity(double a, double b) const noexcept;

  /// Serialized size in bytes (for synopsis-shipping cost accounting).
  std::size_t byte_size() const noexcept {
    return sizeof(double) * 2 + counts_.size() * sizeof(std::uint64_t);
  }

 private:
  std::size_t bucket_of(double v) const noexcept;

  double lo_ = 0.0, hi_ = 1.0;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Equi-depth histogram built from a (sorted copy of a) sample: bucket
/// boundaries hold ~equal counts, which is far more robust under skew.
class EquiDepthHistogram {
 public:
  EquiDepthHistogram() = default;

  /// Builds from `values` with ~`buckets` buckets.
  EquiDepthHistogram(std::span<const double> values, std::size_t buckets);

  std::size_t buckets() const noexcept {
    return edges_.empty() ? 0 : edges_.size() - 1;
  }
  std::uint64_t total() const noexcept { return total_; }

  double estimate_range(double a, double b) const noexcept;
  double selectivity(double a, double b) const noexcept;

  std::size_t byte_size() const noexcept {
    return edges_.size() * sizeof(double) + sizeof(std::uint64_t);
  }

 private:
  std::vector<double> edges_;  ///< buckets+1 edges; equal mass per bucket
  std::uint64_t total_ = 0;
};

/// Multi-dimensional selectivity estimator under the attribute-value-
/// independence (AVI) assumption: product of per-dimension selectivities.
class ProductHistogram {
 public:
  ProductHistogram() = default;

  /// One equi-depth histogram per column of `points`.
  ProductHistogram(std::span<const Point> points, std::size_t buckets);

  /// Columnar build: one equi-depth histogram per span of `columns`, all
  /// sharing one length. Identical to the Point overload on the same data
  /// without materializing a row-major copy.
  ProductHistogram(std::span<const std::span<const double>> columns,
                   std::size_t buckets);

  std::size_t dims() const noexcept { return dims_.size(); }
  std::uint64_t total() const noexcept { return total_; }

  /// Estimated count of points inside the rectangle.
  double estimate_count(const Rect& rect) const;

  std::size_t byte_size() const noexcept;

 private:
  std::vector<EquiDepthHistogram> dims_;
  std::uint64_t total_ = 0;
};

}  // namespace sea
