// Cross-product iterator over per-dimension cell-coordinate ranges,
// shared by the uniform GridIndex and the CDF-learned LearnedGrid (both
// visit the same rectangular block of cells; only how values map to
// coordinates differs).
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace sea::detail {

/// Iterates the cross product of [lo[d], hi[d]] coordinate ranges in
/// row-major order (last dimension fastest). Done immediately when any
/// range is inverted.
class CoordIterator {
 public:
  CoordIterator(std::vector<std::size_t> lo, std::vector<std::size_t> hi)
      : lo_(std::move(lo)), hi_(std::move(hi)), cur_(lo_), done_(false) {
    for (std::size_t d = 0; d < lo_.size(); ++d)
      if (lo_[d] > hi_[d]) done_ = true;
  }

  bool done() const noexcept { return done_; }
  const std::vector<std::size_t>& coords() const noexcept { return cur_; }

  void advance() noexcept {
    for (std::size_t d = cur_.size(); d-- > 0;) {
      if (cur_[d] < hi_[d]) {
        ++cur_[d];
        for (std::size_t j = d + 1; j < cur_.size(); ++j) cur_[j] = lo_[j];
        return;
      }
    }
    done_ = true;
  }

 private:
  std::vector<std::size_t> lo_, hi_, cur_;
  bool done_;
};

}  // namespace sea::detail
