// Uniform grid index over a bounded multi-dimensional domain.
//
// The alternative access structure to the k-d tree (paper RT3.1 asks the
// optimizer to pick between such alternatives). Cheap to build and very
// fast for low dimensionality / large selectivities; degrades in high
// dimensions — exactly the trade-off the method-selection experiments (E6)
// exercise.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "data/point.h"

namespace sea {

struct GridQueryCost {
  std::uint64_t cells_visited = 0;
  std::uint64_t points_examined = 0;
};

class GridIndex {
 public:
  GridIndex() = default;

  /// Builds over `points` within `domain`, with `cells_per_dim` cells along
  /// each axis. Points outside the domain are clamped into border cells.
  GridIndex(std::vector<Point> points, Rect domain, std::size_t cells_per_dim,
            std::vector<std::uint64_t> ids = {});

  std::size_t size() const noexcept { return points_.size(); }
  bool empty() const noexcept { return points_.empty(); }
  std::size_t dims() const noexcept { return domain_.dims(); }
  std::size_t cells_per_dim() const noexcept { return cells_per_dim_; }
  std::size_t num_cells() const noexcept {
    return cell_offsets_.empty() ? 0 : cell_offsets_.size() - 1;
  }

  std::vector<std::uint64_t> range_query(const Rect& rect,
                                         GridQueryCost* cost = nullptr) const;

  std::vector<std::uint64_t> radius_query(const Ball& ball,
                                          GridQueryCost* cost = nullptr) const;

  /// kNN by expanding rings of cells around the query point.
  std::vector<std::pair<std::uint64_t, double>> knn(
      std::span<const double> query, std::size_t k,
      GridQueryCost* cost = nullptr) const;

  /// CSR cell table (property suite: counts must sum to size()).
  std::span<const std::uint32_t> cell_offsets() const noexcept {
    return cell_offsets_;
  }

  /// Modelled resident footprint: points, ids, and the CSR cell table.
  std::size_t byte_size() const noexcept {
    return points_.size() * (dims() * sizeof(double)) +
           ids_.size() * sizeof(std::uint64_t) +
           (cell_offsets_.size() + cell_points_.size()) *
               sizeof(std::uint32_t);
  }

 private:
  std::vector<std::pair<double, std::uint64_t>> radius_candidates(
      const Ball& ball, GridQueryCost* cost) const;
  std::size_t cell_coord(double v, std::size_t dim) const noexcept;
  std::size_t cell_of(std::span<const double> p) const noexcept;
  /// Flattens per-dim coordinates into a cell index.
  std::size_t flatten(std::span<const std::size_t> coords) const noexcept;
  /// Point indices of one cell (ascending — the serial insertion order).
  std::span<const std::uint32_t> cell(std::size_t idx) const noexcept {
    return std::span<const std::uint32_t>(cell_points_)
        .subspan(cell_offsets_[idx], cell_offsets_[idx + 1] - cell_offsets_[idx]);
  }

  std::vector<Point> points_;
  std::vector<std::uint64_t> ids_;
  Rect domain_;
  std::size_t cells_per_dim_ = 0;
  /// CSR cell table (built by a stable parallel counting sort): cell c's
  /// point indices are cell_points_[cell_offsets_[c] .. cell_offsets_[c+1]).
  std::vector<std::uint32_t> cell_offsets_;
  std::vector<std::uint32_t> cell_points_;
};

}  // namespace sea
