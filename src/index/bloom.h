// Bloom filter over 64-bit keys.
//
// Used by the surgical rank-join (paper [30], E3): each node ships a small
// Bloom filter of its join keys to the coordinator so probes only visit
// nodes that can possibly match — "surgically accessing the smallest data
// subset required" (P3).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace sea {

class BloomFilter {
 public:
  BloomFilter() = default;

  /// Sizes the filter for `expected_items` at the given false-positive
  /// rate using the standard m/k formulas.
  BloomFilter(std::size_t expected_items, double false_positive_rate);

  void insert(std::uint64_t key) noexcept;
  /// May return true for absent keys (by design); never false for present.
  bool may_contain(std::uint64_t key) const noexcept;

  std::size_t num_bits() const noexcept { return num_bits_; }
  std::size_t num_hashes() const noexcept { return num_hashes_; }
  std::size_t byte_size() const noexcept { return bits_.size() * 8; }
  std::uint64_t inserted() const noexcept { return inserted_; }

 private:
  static std::uint64_t mix(std::uint64_t x, std::uint64_t salt) noexcept;

  std::vector<std::uint64_t> bits_;
  std::size_t num_bits_ = 0;
  std::size_t num_hashes_ = 0;
  std::uint64_t inserted_ = 0;
};

}  // namespace sea
