#include "sea/agent.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "common/log.h"
#include "common/parallel.h"

namespace sea {

DatalessAgent::DatalessAgent(
    AgentConfig config,
    std::function<Rect(const std::vector<std::size_t>&)> domain_provider)
    : config_(config), domain_provider_(std::move(domain_provider)) {
  if (!domain_provider_)
    throw std::invalid_argument("DatalessAgent: null domain provider");
  if (config_.max_relative_error <= 0.0)
    throw std::invalid_argument("DatalessAgent: max_relative_error must be > 0");
  if (config_.confidence <= 0.0 || config_.confidence >= 1.0)
    throw std::invalid_argument("DatalessAgent: confidence must be in (0,1)");
}

namespace {

/// Mass-proportional analytics (count, sum) are learned as densities:
/// target / volume-proxy, where the volume proxy is the last model feature
/// (box volume, r^d, or k). This removes the dominant source of variance
/// (subspace size) before the local linear fit, cf. [26]-[29].
double mass_scale(const AnalyticalQuery& q,
                  const std::vector<double>& model_features) noexcept {
  if (q.analytic != AnalyticType::kCount && q.analytic != AnalyticType::kSum)
    return 1.0;
  return std::max(1e-3, model_features.back());
}

}  // namespace

DatalessAgent::SignatureState& DatalessAgent::state_for(
    const AnalyticalQuery& query) {
  const std::string sig = query.signature();
  auto it = signatures_.find(sig);
  if (it == signatures_.end()) {
    Rect domain = domain_provider_(query.subspace_cols);
    it = signatures_
             .emplace(sig, SignatureState(config_, std::move(domain)))
             .first;
  }
  return it->second;
}

double DatalessAgent::staleness_multiplier() const noexcept {
  if (staleness_ <= 0.0) return 1.0;
  const double recovery =
      config_.staleness_recovery == 0
          ? 0.0
          : 1.0 - std::min(1.0, static_cast<double>(fresh_since_update_) /
                                    static_cast<double>(
                                        config_.staleness_recovery));
  return 1.0 + config_.staleness_inflation * staleness_ * recovery;
}

std::optional<double> DatalessAgent::model_predict(
    const QuantumModel& qm, const std::vector<double>& features,
    std::size_t feature_dims) const {
  const bool warm_linear =
      qm.linear.fitted() && qm.xs.size() >= 2 * (feature_dims + 1);
  switch (config_.model_kind) {
    case QuantumModelKind::kLinear:
      if (qm.linear.fitted()) return qm.linear.predict(features);
      return std::nullopt;
    case QuantumModelKind::kKnn:
      if (qm.knn.size() > 0) return qm.knn.predict(features);
      return std::nullopt;
    case QuantumModelKind::kAuto:
      if (qm.prefer_gbm && qm.gbm.fitted()) return qm.gbm.predict(features);
      if (warm_linear) return qm.linear.predict(features);
      if (qm.knn.size() > 0) return qm.knn.predict(features);
      return std::nullopt;
    case QuantumModelKind::kGbm:
      if (qm.gbm.fitted() && qm.xs.size() >= 2 * (feature_dims + 1))
        return qm.gbm.predict(features);
      if (qm.knn.size() > 0) return qm.knn.predict(features);
      return std::nullopt;
  }
  return std::nullopt;
}

void DatalessAgent::maybe_refit(QuantumModel& qm, std::size_t feature_dims) {
  if (qm.xs.size() < feature_dims + 2) return;
  if (config_.model_kind == QuantumModelKind::kGbm) {
    if (qm.since_refit < config_.refit_interval && qm.gbm.fitted()) return;
    qm.gbm = GbmRegressor(quantum_gbm_params());
    qm.gbm.fit(qm.xs, qm.ys, &qm.rng);
    qm.since_refit = 0;
    return;
  }
  if (qm.since_refit < config_.refit_interval &&
      qm.linear.fitted())
    return;
  // Columnar refit: transpose the quantum's training store once and hand
  // the linear fit contiguous column spans (bit-identical to the row-major
  // fit, see linear.h; the normal-equation dot products then run over
  // contiguous memory).
  const std::size_t rows = qm.xs.size();
  const std::size_t dims = qm.xs[0].size();
  std::vector<double> x_cols(rows * dims);
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t i = 0; i < dims; ++i) x_cols[i * rows + r] = qm.xs[r][i];
  qm.linear.fit_columns(x_cols, rows, dims, qm.ys, config_.ridge_lambda);
  qm.since_refit = 0;

  // Query-driven model selection (paper [48]): compare linear vs GBM on a
  // chronological 80/20 split and keep the held-out winner.
  if (config_.model_kind == QuantumModelKind::kAuto &&
      config_.auto_select_model &&
      qm.xs.size() >= config_.select_min_samples) {
    const std::size_t split = qm.xs.size() * 4 / 5;
    const std::span<const std::vector<double>> train_x(qm.xs.data(), split);
    const std::span<const double> train_y(qm.ys.data(), split);
    // Train-prefix columns, re-packed at the prefix length.
    std::vector<double> train_cols(split * dims);
    for (std::size_t r = 0; r < split; ++r)
      for (std::size_t i = 0; i < dims; ++i)
        train_cols[i * split + r] = qm.xs[r][i];
    LinearModel lin;
    lin.fit_columns(train_cols, split, dims, train_y, config_.ridge_lambda);
    const GbmParams params = quantum_gbm_params();
    GbmRegressor gbm(params);
    gbm.fit(train_x, train_y, &qm.rng);
    double lin_sse = 0.0, gbm_sse = 0.0;
    for (std::size_t i = split; i < qm.xs.size(); ++i) {
      const double le = lin.predict(qm.xs[i]) - qm.ys[i];
      const double ge = gbm.predict(qm.xs[i]) - qm.ys[i];
      lin_sse += le * le;
      gbm_sse += ge * ge;
    }
    qm.prefer_gbm = gbm_sse < lin_sse;
    if (qm.prefer_gbm) {
      // Refit the winner on all pairs for serving.
      qm.gbm = GbmRegressor(params);
      qm.gbm.fit(qm.xs, qm.ys, &qm.rng);
    }
  }
}

std::optional<Prediction> DatalessAgent::try_predict(
    const AnalyticalQuery& query) {
  SignatureState& st = state_for(query);
  const QueryFeatures f = extract_features(query, st.domain);
  const std::size_t qid = st.quantizer.assign(f.position);
  if (qid == SIZE_MAX || qid >= st.models.size() || !st.models[qid]) {
    ++stats_.predictions_declined;
    return std::nullopt;
  }
  QuantumModel& qm = *st.models[qid];
  if (qm.xs.size() < config_.min_samples_to_predict ||
      qm.abs_residuals.count() < config_.min_samples_to_predict / 2) {
    ++stats_.predictions_declined;
    return std::nullopt;
  }
  auto value = model_predict(qm, f.model, f.model.size());
  if (!value) {
    ++stats_.predictions_declined;
    return std::nullopt;
  }
  value = *value * mass_scale(query, f.model);
  if (query.analytic == AnalyticType::kCount ||
      query.analytic == AnalyticType::kVariance)
    value = std::max(0.0, *value);
  Prediction p;
  p.value = *value;
  p.expected_abs_error =
      qm.abs_residuals.quantile(config_.confidence) * staleness_multiplier();
  p.expected_rel_error =
      p.expected_abs_error / std::max(std::abs(p.value), config_.rel_floor);
  p.quantum = qid;
  p.quantum_population = qm.xs.size();
  if (p.expected_rel_error > config_.max_relative_error) {
    ++stats_.predictions_declined;
    return std::nullopt;
  }
  ++stats_.predictions_served;
  return p;
}

Prediction DatalessAgent::predict_unchecked(const AnalyticalQuery& query) {
  auto p = maybe_predict(query);
  if (!p)
    throw std::logic_error("DatalessAgent::predict_unchecked: no model for " +
                           query.signature());
  return *p;
}

std::optional<Prediction> DatalessAgent::maybe_predict(
    const AnalyticalQuery& query) {
  SignatureState& st = state_for(query);
  const QueryFeatures f = extract_features(query, st.domain);
  const std::size_t qid = st.quantizer.assign(f.position);
  if (qid == SIZE_MAX || qid >= st.models.size() || !st.models[qid])
    return std::nullopt;
  QuantumModel& qm = *st.models[qid];
  auto value = model_predict(qm, f.model, f.model.size());
  if (!value) return std::nullopt;
  value = *value * mass_scale(query, f.model);
  // Domain knowledge: counts and variances cannot be negative.
  if (query.analytic == AnalyticType::kCount ||
      query.analytic == AnalyticType::kVariance)
    value = std::max(0.0, *value);
  Prediction p;
  p.value = *value;
  p.expected_abs_error =
      qm.abs_residuals.empty()
          ? std::numeric_limits<double>::infinity()
          : qm.abs_residuals.quantile(config_.confidence) *
                staleness_multiplier();
  p.expected_rel_error =
      p.expected_abs_error / std::max(std::abs(p.value), config_.rel_floor);
  p.quantum = qid;
  p.quantum_population = qm.xs.size();
  return p;
}

DatalessAgent::PeekResult DatalessAgent::peek_predict(
    const AnalyticalQuery& query) const {
  PeekResult out;
  const auto it = signatures_.find(query.signature());
  if (it == signatures_.end()) return out;
  const SignatureState& st = it->second;
  const QueryFeatures f = extract_features(query, st.domain);
  const std::size_t qid = st.quantizer.assign(f.position);
  if (qid == SIZE_MAX || qid >= st.models.size() || !st.models[qid]) return out;
  const QuantumModel& qm = *st.models[qid];
  auto value = model_predict(qm, f.model, f.model.size());
  if (!value) return out;
  value = *value * mass_scale(query, f.model);
  if (query.analytic == AnalyticType::kCount ||
      query.analytic == AnalyticType::kVariance)
    value = std::max(0.0, *value);
  Prediction& p = out.prediction;
  p.value = *value;
  p.expected_abs_error =
      qm.abs_residuals.empty()
          ? std::numeric_limits<double>::infinity()
          : qm.abs_residuals.quantile(config_.confidence) *
                staleness_multiplier();
  p.expected_rel_error =
      p.expected_abs_error / std::max(std::abs(p.value), config_.rel_floor);
  p.quantum = qid;
  p.quantum_population = qm.xs.size();
  out.usable = true;
  out.confident =
      qm.xs.size() >= config_.min_samples_to_predict &&
      qm.abs_residuals.count() >= config_.min_samples_to_predict / 2 &&
      p.expected_rel_error <= config_.max_relative_error;
  return out;
}

void DatalessAgent::observe(const AnalyticalQuery& query,
                            double exact_answer) {
  absorb(query, exact_answer, /*defer_refit=*/false);
}

void DatalessAgent::observe_batch(
    std::span<const std::pair<AnalyticalQuery, double>> batch) {
  // Phase 1 (serial, batch order): every shared-state mutation —
  // quantization, prequential residuals, drift handling, bounded stores,
  // staleness and purge bookkeeping — exactly as repeated observe() calls
  // would, except refits are marked pending instead of run inline.
  for (const auto& [query, answer] : batch)
    absorb(query, answer, /*defer_refit=*/true);

  // Phase 2 (parallel fan-out): refit each touched quantum at most once.
  // Quanta are independent — each owns its model state and its private RNG
  // stream — so the fitted models are identical at any thread count.
  std::vector<QuantumModel*> pending;
  for (auto& [sig, st] : signatures_) {
    (void)sig;
    for (auto& m : st.models)
      if (m && m->refit_pending) pending.push_back(&*m);
  }
  ParallelFor(pending.size(), [&](std::size_t i) {
    QuantumModel& qm = *pending[i];
    qm.refit_pending = false;
    if (!qm.xs.empty()) maybe_refit(qm, qm.xs.back().size());
  });
}

void DatalessAgent::absorb(const AnalyticalQuery& query, double exact_answer,
                           bool defer_refit) {
  SignatureState& st = state_for(query);
  const QueryFeatures f = extract_features(query, st.domain);
  const std::size_t qid = st.quantizer.observe(f.position);
  if (qid >= st.models.size()) st.models.resize(qid + 1);
  if (!st.models[qid])
    st.models[qid].emplace(config_, quantum_stream_seed(config_.seed, qid));
  QuantumModel& qm = *st.models[qid];

  const double scale = mass_scale(query, f.model);
  // Prequential residual: score the current model on this example *before*
  // absorbing it, so residual quantiles honestly estimate serving error.
  if (const auto pred = model_predict(qm, f.model, f.model.size())) {
    const double abs_err = std::abs(*pred * scale - exact_answer);
    qm.abs_residuals.add(abs_err);
    if (qm.drift.add(abs_err)) {
      ++stats_.drift_alarms;
      // Keep the most recent quarter of pairs: the new concept's data.
      const std::size_t keep = qm.xs.size() / 4;
      qm.xs.erase(qm.xs.begin(),
                  qm.xs.end() - static_cast<std::ptrdiff_t>(keep));
      qm.ys.erase(qm.ys.begin(),
                  qm.ys.end() - static_cast<std::ptrdiff_t>(keep));
      qm.knn.clear();
      for (std::size_t i = 0; i < qm.xs.size(); ++i)
        qm.knn.add(qm.xs[i], qm.ys[i]);
      qm.abs_residuals.clear();
      qm.linear = LinearModel{};
      qm.gbm = GbmRegressor{};
      qm.since_refit = config_.refit_interval;  // force refit
    }
  }

  // Bounded training store: drop the oldest pair when full.
  if (qm.xs.size() >= config_.max_samples_per_quantum) {
    qm.xs.erase(qm.xs.begin());
    qm.ys.erase(qm.ys.begin());
    // kNN store is rebuilt periodically by refits; rebuild here to stay
    // consistent with the bounded window.
    qm.knn.clear();
    for (std::size_t i = 0; i < qm.xs.size(); ++i) qm.knn.add(qm.xs[i], qm.ys[i]);
  }
  qm.xs.push_back(f.model);
  qm.ys.push_back(exact_answer / scale);
  qm.knn.add(f.model, exact_answer / scale);
  ++qm.since_refit;
  if (defer_refit)
    qm.refit_pending = true;
  else
    maybe_refit(qm, f.model.size());

  ++stats_.observations;
  if (staleness_ > 0.0) {
    ++fresh_since_update_;
    if (fresh_since_update_ >= config_.staleness_recovery) {
      staleness_ = 0.0;
      fresh_since_update_ = 0;
    }
  }

  // Interest-drift housekeeping (RT1.4-i): drop long-unused quanta.
  if (config_.purge_idle > 0 &&
      st.quantizer.clock() % (config_.purge_idle / 4 + 1) == 0) {
    std::vector<std::size_t> remap;
    const auto removed = st.quantizer.purge_stale(config_.purge_idle, &remap);
    if (!removed.empty()) {
      stats_.quanta_purged += removed.size();
      std::vector<std::optional<QuantumModel>> kept(st.quantizer.size());
      for (std::size_t old = 0; old < remap.size(); ++old) {
        if (remap[old] != SIZE_MAX && old < st.models.size())
          kept[remap[old]] = std::move(st.models[old]);
      }
      st.models = std::move(kept);
    }
  }
}

void DatalessAgent::note_data_update(double fraction) {
  if (fraction < 0.0)
    throw std::invalid_argument("note_data_update: negative fraction");
  staleness_ = std::min(1.0, staleness_ + fraction);
  fresh_since_update_ = 0;
}

std::size_t DatalessAgent::num_quanta(const std::string& signature) const {
  const auto it = signatures_.find(signature);
  return it == signatures_.end() ? 0 : it->second.quantizer.size();
}

std::vector<Point> DatalessAgent::quanta_centers(
    const std::string& signature, std::uint64_t min_population) const {
  std::vector<Point> out;
  const auto it = signatures_.find(signature);
  if (it == signatures_.end()) return out;
  out.reserve(it->second.quantizer.size());
  for (std::size_t q = 0; q < it->second.quantizer.size(); ++q) {
    const Quantum& quantum = it->second.quantizer.quantum(q);
    if (quantum.population >= min_population)
      out.push_back(quantum.center);
  }
  return out;
}

Point DatalessAgent::query_position(const AnalyticalQuery& query) {
  SignatureState& st = state_for(query);
  return extract_features(query, st.domain).position;
}

std::size_t DatalessAgent::byte_size() const noexcept {
  std::size_t total = 0;
  for (const auto& [sig, st] : signatures_) {
    (void)sig;
    for (std::size_t q = 0; q < st.quantizer.size(); ++q)
      total += st.quantizer.quantum(q).center.size() * sizeof(double) +
               sizeof(Quantum);
    for (const auto& m : st.models) {
      if (!m) continue;
      for (const auto& x : m->xs) total += x.size() * sizeof(double);
      total += m->ys.size() * sizeof(double);
      total += m->linear.byte_size();
      if (m->gbm.fitted()) total += m->gbm.byte_size();
    }
  }
  return total;
}

}  // namespace sea
