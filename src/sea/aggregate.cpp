#include "sea/aggregate.h"

#include <cmath>

namespace sea {

void AggregateState::add(double t, double u) noexcept {
  ++count;
  sum_t += t;
  sum_tt += t * t;
  sum_u += u;
  sum_uu += u * u;
  sum_tu += t * u;
}

void AggregateState::merge(const AggregateState& o) noexcept {
  count += o.count;
  sum_t += o.sum_t;
  sum_tt += o.sum_tt;
  sum_u += o.sum_u;
  sum_uu += o.sum_uu;
  sum_tu += o.sum_tu;
}

double AggregateState::finalize(AnalyticType type) const noexcept {
  const double n = static_cast<double>(count);
  switch (type) {
    case AnalyticType::kCount:
      return n;
    case AnalyticType::kSum:
      return sum_t;
    case AnalyticType::kAvg:
      return count ? sum_t / n : 0.0;
    case AnalyticType::kVariance: {
      if (count < 2) return 0.0;
      const double var = (sum_tt - sum_t * sum_t / n) / (n - 1.0);
      return var > 0.0 ? var : 0.0;
    }
    case AnalyticType::kCorrelation: {
      if (count < 2) return 0.0;
      const double cov = sum_tu - sum_t * sum_u / n;
      const double vt = sum_tt - sum_t * sum_t / n;
      const double vu = sum_uu - sum_u * sum_u / n;
      const double denom = std::sqrt(vt * vu);
      return denom > 0.0 ? cov / denom : 0.0;
    }
    case AnalyticType::kRegressionSlope: {
      if (count < 2) return 0.0;
      const double cov = sum_tu - sum_t * sum_u / n;
      const double vt = sum_tt - sum_t * sum_t / n;
      return vt > 0.0 ? cov / vt : 0.0;
    }
    case AnalyticType::kRegressionIntercept: {
      if (count < 2) return 0.0;
      const double cov = sum_tu - sum_t * sum_u / n;
      const double vt = sum_tt - sum_t * sum_t / n;
      const double slope = vt > 0.0 ? cov / vt : 0.0;
      return sum_u / n - slope * sum_t / n;
    }
  }
  return 0.0;
}

}  // namespace sea
