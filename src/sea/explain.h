// Query-answer explanations and higher-level data-less exploration
// (paper RT4).
//
// RT4.2 — instead of returning a single scalar, the system can attach a
// compact *functional* explanation: a piecewise-linear model of how the
// answer changes as one query parameter varies (e.g. count vs radius).
// Analysts then answer whole families of what-if queries by plugging
// values into the explanation, without issuing any of them (§III.A).
// The explanation itself is derived *data-lessly* from the agent's models,
// piecewise-fit in the spirit of segmented regression [23].
//
// RT4.1 — higher-level interrogations composed from predicted basics, e.g.
// "return the data subspaces where the correlation coefficient between
// attributes is greater than a threshold": a grid sweep over the domain
// answered entirely by the agent.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "sea/agent.h"
#include "sea/query.h"

namespace sea {

enum class ExplainParameter {
  kRadius,  ///< radius of a kRadius selection
  kWidth,   ///< symmetric width of dimension `width_dim` of a kRange selection
  kK        ///< k of a kNN selection
};

struct ExplanationSegment {
  double lo = 0.0;
  double hi = 0.0;
  double slope = 0.0;
  double intercept = 0.0;

  double evaluate(double param) const noexcept {
    return slope * param + intercept;
  }
};

struct Explanation {
  std::string parameter;
  std::vector<ExplanationSegment> segments;

  /// Piecewise evaluation; clamps outside the modelled parameter range.
  double evaluate(double param) const;

  /// Compact human-readable rendering, e.g.
  /// "count(r) = 310.2*r - 1.5 on [0.05,0.12]; 954.8*r - 78.2 on [0.12,0.3]".
  std::string to_string() const;

  std::size_t byte_size() const noexcept {
    return segments.size() * sizeof(ExplanationSegment);
  }
};

struct ExplainConfig {
  std::size_t sweep_steps = 48;
  /// Relative residual tolerance before a new segment starts.
  double tolerance = 0.05;
  std::size_t max_segments = 8;
};

class Explainer {
 public:
  explicit Explainer(DatalessAgent& agent, ExplainConfig config = {})
      : agent_(agent), config_(config) {}

  /// Varies the chosen parameter of `query` over [lo, hi], predicts every
  /// point data-lessly, and fits a piecewise-linear explanation.
  /// Returns nullopt when the agent has no models along the sweep.
  std::optional<Explanation> explain(const AnalyticalQuery& query,
                                     ExplainParameter param, double lo,
                                     double hi,
                                     std::size_t width_dim = 0);

 private:
  DatalessAgent& agent_;
  ExplainConfig config_;
};

/// One interesting subspace found by data-less exploration.
struct SubspaceFinding {
  Ball region;
  double predicted_value = 0.0;
  double expected_abs_error = 0.0;
};

/// Sweeps ball-shaped subspaces of `radius` centred on a grid_per_dim^d
/// grid over `domain`, predicts `prototype`'s analytic for each (data-less)
/// and returns those where value > threshold (or < when `greater` is
/// false). `prototype` supplies analytic type, target columns and subspace
/// columns; its own selection geometry is ignored. Predictions whose
/// expected relative error exceeds `max_expected_rel_error` are dropped
/// (the agent's own error estimates gate exploration quality).
std::vector<SubspaceFinding> find_interesting_subspaces(
    DatalessAgent& agent, const AnalyticalQuery& prototype, const Rect& domain,
    double radius, double threshold, bool greater, std::size_t grid_per_dim,
    double max_expected_rel_error = 1e100);

/// The ranking form of the same interrogation: the `j` subspaces with the
/// highest (or lowest, when `greater` is false) predicted analytic value,
/// sorted best-first — "return the data subspaces where ..." (§III.A) as a
/// top-j query, answered entirely from models.
std::vector<SubspaceFinding> top_interesting_subspaces(
    DatalessAgent& agent, const AnalyticalQuery& prototype, const Rect& domain,
    double radius, std::size_t j, bool greater, std::size_t grid_per_dim,
    double max_expected_rel_error = 1e100);

}  // namespace sea
