// The analytical query model (paper §III.A).
//
// A query is (a) a selection operator defining a data subspace — a
// hyper-rectangle (range), a hyper-sphere (radius) or a kNN neighbourhood —
// over a set of attribute columns, plus (b) an analytical operator over the
// tuples in that subspace: descriptive statistics (count / sum / avg /
// variance) or dependence statistics (correlation, regression slope &
// intercept) between two attributes.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "data/point.h"

namespace sea {

enum class SelectionType { kRange, kRadius, kNearestNeighbors };

enum class AnalyticType {
  kCount,
  kSum,
  kAvg,
  kVariance,
  kCorrelation,      ///< Pearson r between target_col and target_col2
  kRegressionSlope,  ///< OLS slope of target_col2 ~ target_col
  kRegressionIntercept
};

const char* to_string(SelectionType t) noexcept;
const char* to_string(AnalyticType t) noexcept;

/// True for analytics that need a primary target column.
bool needs_target(AnalyticType t) noexcept;
/// True for dependence statistics that need a second column.
bool needs_second_target(AnalyticType t) noexcept;

struct AnalyticalQuery {
  SelectionType selection = SelectionType::kRange;
  /// Columns over which the selection subspace is defined.
  std::vector<std::size_t> subspace_cols;
  Rect range;       ///< kRange
  Ball ball;        ///< kRadius
  Point knn_point;  ///< kNearestNeighbors
  std::size_t knn_k = 0;

  AnalyticType analytic = AnalyticType::kCount;
  std::size_t target_col = 0;   ///< sum/avg/var & first dependence column
  std::size_t target_col2 = 0;  ///< second dependence column

  /// Validates internal consistency (dims match etc.); throws on error.
  void validate() const;

  /// Centre of the selected subspace (query position in query space).
  Point selection_center() const;

  /// Human-readable one-liner for logs/examples.
  std::string describe() const;

  /// A stable signature grouping queries that share selection family,
  /// analytic type and target columns — each signature gets its own
  /// quantizer and models inside the agent (answer scales differ).
  std::string signature() const;
};

/// Feature extraction for the agent's models (paper RT1.1/RT1.3): the
/// query's position is its subspace centre normalized into [0,1]^d by the
/// data domain; the model features append the normalized extent (widths or
/// radius or k) since answers depend on subspace size.
struct QueryFeatures {
  Point position;  ///< normalized centre — quantization space
  Point model;     ///< position + normalized extents — regression features
};

QueryFeatures extract_features(const AnalyticalQuery& q, const Rect& domain);

}  // namespace sea
