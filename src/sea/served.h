// ServedAnalytics — the full Fig. 2 serving loop.
//
// Queries arrive; the agent intercepts them. During the bootstrap phase
// (and whenever the agent is not confident) the query executes exactly on
// the BDAS and the (query, answer) pair trains the agent. Once models are
// warm, confident queries are answered data-less: zero base-data access,
// zero network traffic. An optional audit channel re-executes a sample of
// served queries so accuracy can be tracked in production (and so the
// drift detectors keep receiving residuals after the system goes
// data-less — the paper's model-maintenance loop, RT1.4).
//
// Availability (paper P4): when exact execution fails — all replica
// holders of a shard down, an RPC exhausts its retries, or the query's
// deadline budget runs out — the loop does not throw: it serves the
// agent's best model answer flagged `degraded=true` (the Fig. 2 data-less
// agent is uniquely positioned to keep answering when base data is
// unreachable). Only a query whose signature the agent has never modelled
// propagates the failure.
//
// Overload control (DESIGN.md "Deadlines & overload"): an optional
// admission queue tracks a *modelled* backlog of exact-execution work.
// Each arrival drains `drain_ms_per_query` of backlog; each exact
// execution adds its modelled cost. Above the high-water mark, queries
// that would hit the BDAS are shed to the model-backed path instead
// (`ServedAnswer.shed = true`) — the agent absorbs overload the same way
// it absorbs outages. All quantities are modelled, so shedding decisions
// are bit-identical at any SEA_THREADS setting.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sea/agent.h"
#include "sea/exact.h"

namespace sea {

struct ServeConfig {
  /// Execute the first N queries exactly regardless of confidence
  /// ("training queries", Fig. 2).
  std::size_t bootstrap_queries = 100;
  ExecParadigm exact_paradigm = ExecParadigm::kCoordinatorIndexed;
  /// Fraction of *served* (data-less) queries to also execute exactly, as
  /// an accuracy audit + continued training signal.
  double audit_fraction = 0.05;
  std::uint64_t audit_seed = 99;
  /// Per-query modelled-time budget (ms) for exact executions; a query
  /// whose modelled cost exceeds it aborts with DeadlineExceeded and falls
  /// back to the degraded model path. 0 disables deadlines.
  double deadline_ms = 0.0;
  /// Admission-queue capacity in modelled ms of backlog. 0 disables
  /// admission control (no query is ever shed).
  double queue_capacity_ms = 0.0;
  /// Shed to the model path when the backlog exceeds this fraction of
  /// queue_capacity_ms.
  double shed_high_water = 0.7;
  /// Modelled backlog drained per arriving query — the offered-load knob:
  /// smaller drain than the typical exact cost means the queue grows.
  double drain_ms_per_query = 0.0;
};

/// Abstraction over where the serving model lives. By default the serve
/// loop reads and trains its own in-process agent; a crash-recovery
/// deployment plugs in src/recovery's ModelReplicaSet here so serving
/// survives model-host crashes and stale answers are accounted. All calls
/// happen on the serial serving path, so implementations need no locking.
class ServingModelProvider {
 public:
  /// Recovery activity accumulated since the last drain (mirrored into
  /// ServeStats so the serving layer's counters stay self-contained).
  struct RecoveryDelta {
    std::uint64_t recoveries = 0;
    std::uint64_t replayed_updates = 0;
  };

  virtual ~ServingModelProvider() = default;
  /// The replica currently serving predictions; nullptr while no replica
  /// is up (the model path is unusable and every query goes exact).
  virtual DatalessAgent* primary() = 0;
  /// True when the primary's model version lags the latest committed
  /// update — answers produced from it are *stale* (pre-crash state).
  virtual bool primary_stale() const = 0;
  /// Ground truth routed into the replicated model (replaces the direct
  /// agent.observe call).
  virtual void observe(const AnalyticalQuery& query, double truth) = 0;
  /// Advances the provider's modelled clock by this serve's modelled
  /// exact-execution cost (checkpoints fall due, catch-ups complete).
  virtual void advance(double modelled_ms) = 0;
  /// Drains recovery counters accumulated since the last call.
  virtual RecoveryDelta take_recovery_delta() = 0;
};

/// Epoch fencing for the exact-serving path (implemented by the membership
/// layer's lease directory, src/membership; interface lives here so the
/// serving loop needs no membership dependency). check() throws StaleEpoch
/// when this serving process no longer holds a current lease for the data
/// the query touches — the ex-holder side of a partition must not serve
/// exact answers that a new holder may already be contradicting. Fenced
/// queries degrade to the model-backed read-only path.
class EpochFence {
 public:
  virtual ~EpochFence() = default;
  virtual void check(const AnalyticalQuery& query) const = 0;
};

struct ServedAnswer {
  double value = 0.0;
  bool data_less = false;
  bool audited = false;
  /// The model answer came from a replica whose version predates the
  /// latest committed update (it is mid crash-recovery catch-up). Only
  /// ever set when a ServingModelProvider is attached.
  bool stale_model = false;
  /// Exact execution failed (outage or blown deadline) and the value is
  /// the agent's model answer served without the usual confidence gate.
  bool degraded = false;
  /// Load shedding: the admission queue was over its high-water mark, so
  /// the query skipped the BDAS and was answered by the model.
  bool shed = false;
  /// The exact path was fenced (StaleEpoch: this process's shard-lease
  /// epoch is no longer current) and the value is a model answer. Always
  /// implies degraded.
  bool fenced = false;
  /// Batch serving only: outage + no model — serve() would have thrown;
  /// serve_batch() flags the slot instead so the rest of the batch still
  /// completes. `value` is meaningless when set.
  bool failed = false;
  Prediction prediction;    ///< valid when data_less
  ExactResult exact;        ///< valid when !data_less or audited
  double latency_ms = 0.0;  ///< measured end-to-end serve time
};

/// Serving counters. The top-level outcome classes partition the queries:
/// every query lands in exactly one of data_less_served, exact_answered,
/// shed, or failed (conserved() asserts this). degraded_served is a subset
/// of data_less_served; exact_executed / exact_failures / deadline_exceeded
/// count executions (including audits), not queries.
struct ServeStats {
  std::uint64_t queries = 0;
  std::uint64_t data_less_served = 0;  ///< model answers (incl. degraded)
  std::uint64_t exact_answered = 0;    ///< answered from an exact execution
  std::uint64_t shed = 0;              ///< load-shed to the model path
  std::uint64_t failed = 0;            ///< outage + no model: unanswerable
  std::uint64_t exact_executed = 0;  ///< includes bootstrap + declines + audits
  std::uint64_t exact_failures = 0;  ///< exact executions that raised an outage
  std::uint64_t degraded_served = 0; ///< model answers served during outages
  std::uint64_t deadline_exceeded = 0;  ///< executions aborted on the budget
  /// Degraded serves caused by epoch fencing (StaleEpoch): this process is
  /// a fenced ex-holder and answered read-only from the model. Subset of
  /// degraded_served.
  std::uint64_t fenced_serves = 0;

  // Crash-recovery accounting (populated only when a ServingModelProvider
  // is attached; see src/recovery).
  std::uint64_t recoveries = 0;         ///< model replicas fully recovered
  std::uint64_t replayed_updates = 0;   ///< WAL updates replayed on restart
  std::uint64_t stale_model_serves = 0; ///< model answers from a stale replica

  /// Query-conservation invariant: every query is counted in exactly one
  /// outcome class.
  bool conserved() const noexcept {
    return queries == data_less_served + exact_answered + shed + failed;
  }
};

class ServedAnalytics {
 public:
  ServedAnalytics(DatalessAgent& agent, ExactExecutor& exec,
                  ServeConfig config = {});

  ServedAnswer serve(const AnalyticalQuery& query);

  /// Serves a batch of independent queries. Model predictions run
  /// concurrently (SEA_THREADS) against the agent state frozen at batch
  /// entry; confidence gating, audit coin flips, exact executions, and
  /// statistics updates then run serially in batch order, so answers and
  /// every counter are identical at any thread count. Ground truth from
  /// exact executions is absorbed once at the end via observe_batch().
  /// Unlike serve(), an unanswerable query (outage + no model) does not
  /// throw: its answer comes back with failed=true.
  std::vector<ServedAnswer> serve_batch(
      std::span<const AnalyticalQuery> queries);

  /// Attaches (or detaches, with nullptr) a replicated model provider.
  /// While attached, predictions read provider->primary(), ground truth
  /// flows through provider->observe(), and stale/recovery counters are
  /// folded into stats(). Caller owns the provider; it must outlive use.
  void set_model_provider(ServingModelProvider* provider) noexcept {
    provider_ = provider;
  }

  /// Attaches (or detaches, with nullptr) an epoch fence consulted before
  /// every exact execution. Caller owns the fence; it must outlive use.
  void set_epoch_fence(const EpochFence* fence) noexcept { fence_ = fence; }

  const ServeStats& stats() const noexcept { return stats_; }
  DatalessAgent& agent() noexcept { return agent_; }
  ExactExecutor& executor() noexcept { return exec_; }
  /// Current modelled backlog of the admission queue (ms).
  double queue_backlog_ms() const noexcept { return queue_backlog_ms_; }

 private:
  /// Executes `query` exactly under the configured deadline, updating the
  /// admission backlog on success. Throws typed outage errors.
  ExactResult execute_exact(const AnalyticalQuery& query);
  /// True when the admission queue is over its high-water mark.
  bool overloaded() const noexcept;
  /// The model answering this serve call: the provider's primary replica
  /// when one is attached (may be null mid-outage), else the own agent.
  DatalessAgent* serving_model() noexcept {
    return provider_ ? provider_->primary() : &agent_;
  }
  /// Flags `out` (and counts) a stale model answer; no-op without provider.
  void note_model_answer(ServedAnswer& out);
  /// Ground truth: provider when attached, else the own agent.
  void absorb_truth(const AnalyticalQuery& query, double truth);
  /// Advances the attached provider's modelled clock and folds its
  /// recovery counters into stats_. No-op without a provider.
  void advance_provider(double modelled_ms);

  /// Observability plumbing: the tracer/registry live on the executor's
  /// cluster (Cluster::set_observability). bind_obs() re-resolves the
  /// serve.* metric handles when the attached registry changes (cheap
  /// pointer compare per serve call); sync_metrics() mirrors the ServeStats
  /// deltas since the last sync into the registry, so the counters track
  /// stats_ exactly from the moment of attachment.
  obs::Tracer* tracer() const noexcept { return exec_.cluster().tracer(); }
  void bind_obs();
  void sync_metrics();

  DatalessAgent& agent_;
  ExactExecutor& exec_;
  ServingModelProvider* provider_ = nullptr;
  const EpochFence* fence_ = nullptr;
  ServeConfig config_;
  ServeStats stats_;
  Rng audit_rng_;
  /// Modelled ms of exact-execution work admitted but not yet drained.
  double queue_backlog_ms_ = 0.0;

  struct ServeMetrics {
    obs::Counter* queries = nullptr;
    obs::Counter* data_less_served = nullptr;
    obs::Counter* exact_answered = nullptr;
    obs::Counter* shed = nullptr;
    obs::Counter* failed = nullptr;
    obs::Counter* exact_executed = nullptr;
    obs::Counter* exact_failures = nullptr;
    obs::Counter* degraded_served = nullptr;
    obs::Counter* deadline_exceeded = nullptr;
    obs::Counter* fenced_serves = nullptr;
    obs::Counter* recoveries = nullptr;
    obs::Counter* replayed_updates = nullptr;
    obs::Counter* stale_model_serves = nullptr;
    obs::Gauge* queue_backlog = nullptr;
    obs::Histogram* exact_modelled_ms = nullptr;
  };
  obs::MetricsRegistry* bound_registry_ = nullptr;
  ServeMetrics m_;
  ServeStats mirrored_;  ///< stats_ as of the last sync_metrics()
};

}  // namespace sea
