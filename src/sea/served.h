// ServedAnalytics — the full Fig. 2 serving loop.
//
// Queries arrive; the agent intercepts them. During the bootstrap phase
// (and whenever the agent is not confident) the query executes exactly on
// the BDAS and the (query, answer) pair trains the agent. Once models are
// warm, confident queries are answered data-less: zero base-data access,
// zero network traffic. An optional audit channel re-executes a sample of
// served queries so accuracy can be tracked in production (and so the
// drift detectors keep receiving residuals after the system goes
// data-less — the paper's model-maintenance loop, RT1.4).
//
// Availability (paper P4): when exact execution fails — all replica
// holders of a shard down, or an RPC exhausts its retries — the loop does
// not throw: it serves the agent's best model answer flagged
// `degraded=true` (the Fig. 2 data-less agent is uniquely positioned to
// keep answering when base data is unreachable). Only a query whose
// signature the agent has never modelled propagates the failure.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"
#include "sea/agent.h"
#include "sea/exact.h"

namespace sea {

struct ServeConfig {
  /// Execute the first N queries exactly regardless of confidence
  /// ("training queries", Fig. 2).
  std::size_t bootstrap_queries = 100;
  ExecParadigm exact_paradigm = ExecParadigm::kCoordinatorIndexed;
  /// Fraction of *served* (data-less) queries to also execute exactly, as
  /// an accuracy audit + continued training signal.
  double audit_fraction = 0.05;
  std::uint64_t audit_seed = 99;
};

struct ServedAnswer {
  double value = 0.0;
  bool data_less = false;
  bool audited = false;
  /// Exact execution failed (outage) and the value is the agent's model
  /// answer served without the usual confidence gate.
  bool degraded = false;
  /// Batch serving only: outage + no model — serve() would have thrown;
  /// serve_batch() flags the slot instead so the rest of the batch still
  /// completes. `value` is meaningless when set.
  bool failed = false;
  Prediction prediction;    ///< valid when data_less
  ExactResult exact;        ///< valid when !data_less or audited
  double latency_ms = 0.0;  ///< measured end-to-end serve time
};

struct ServeStats {
  std::uint64_t queries = 0;
  std::uint64_t data_less_served = 0;
  std::uint64_t exact_executed = 0;  ///< includes bootstrap + declines + audits
  std::uint64_t exact_failures = 0;  ///< exact executions that raised an outage
  std::uint64_t degraded_served = 0; ///< model answers served during outages
  std::uint64_t unanswerable = 0;    ///< outage + no model: failure propagated
};

class ServedAnalytics {
 public:
  ServedAnalytics(DatalessAgent& agent, ExactExecutor& exec,
                  ServeConfig config = {});

  ServedAnswer serve(const AnalyticalQuery& query);

  /// Serves a batch of independent queries. Model predictions run
  /// concurrently (SEA_THREADS) against the agent state frozen at batch
  /// entry; confidence gating, audit coin flips, exact executions, and
  /// statistics updates then run serially in batch order, so answers and
  /// every counter are identical at any thread count. Ground truth from
  /// exact executions is absorbed once at the end via observe_batch().
  /// Unlike serve(), an unanswerable query (outage + no model) does not
  /// throw: its answer comes back with failed=true.
  std::vector<ServedAnswer> serve_batch(
      std::span<const AnalyticalQuery> queries);

  const ServeStats& stats() const noexcept { return stats_; }
  DatalessAgent& agent() noexcept { return agent_; }
  ExactExecutor& executor() noexcept { return exec_; }

 private:
  DatalessAgent& agent_;
  ExactExecutor& exec_;
  ServeConfig config_;
  ServeStats stats_;
  Rng audit_rng_;
};

}  // namespace sea
