#include "sea/query.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace sea {

const char* to_string(SelectionType t) noexcept {
  switch (t) {
    case SelectionType::kRange:
      return "range";
    case SelectionType::kRadius:
      return "radius";
    case SelectionType::kNearestNeighbors:
      return "knn";
  }
  return "?";
}

const char* to_string(AnalyticType t) noexcept {
  switch (t) {
    case AnalyticType::kCount:
      return "count";
    case AnalyticType::kSum:
      return "sum";
    case AnalyticType::kAvg:
      return "avg";
    case AnalyticType::kVariance:
      return "variance";
    case AnalyticType::kCorrelation:
      return "correlation";
    case AnalyticType::kRegressionSlope:
      return "regression_slope";
    case AnalyticType::kRegressionIntercept:
      return "regression_intercept";
  }
  return "?";
}

bool needs_target(AnalyticType t) noexcept {
  return t != AnalyticType::kCount;
}

bool needs_second_target(AnalyticType t) noexcept {
  return t == AnalyticType::kCorrelation ||
         t == AnalyticType::kRegressionSlope ||
         t == AnalyticType::kRegressionIntercept;
}

void AnalyticalQuery::validate() const {
  if (subspace_cols.empty())
    throw std::invalid_argument("AnalyticalQuery: no subspace columns");
  const std::size_t d = subspace_cols.size();
  switch (selection) {
    case SelectionType::kRange:
      if (range.dims() != d || !range.valid())
        throw std::invalid_argument("AnalyticalQuery: bad range selection");
      break;
    case SelectionType::kRadius:
      if (ball.dims() != d || ball.radius < 0.0)
        throw std::invalid_argument("AnalyticalQuery: bad radius selection");
      break;
    case SelectionType::kNearestNeighbors:
      if (knn_point.size() != d || knn_k == 0)
        throw std::invalid_argument("AnalyticalQuery: bad kNN selection");
      break;
  }
}

Point AnalyticalQuery::selection_center() const {
  switch (selection) {
    case SelectionType::kRange:
      return range.center();
    case SelectionType::kRadius:
      return ball.center;
    case SelectionType::kNearestNeighbors:
      return knn_point;
  }
  return {};
}

std::string AnalyticalQuery::describe() const {
  std::ostringstream os;
  os << to_string(analytic) << " over " << to_string(selection) << " d="
     << subspace_cols.size();
  if (selection == SelectionType::kRadius) os << " r=" << ball.radius;
  if (selection == SelectionType::kNearestNeighbors) os << " k=" << knn_k;
  if (needs_target(analytic)) os << " target=" << target_col;
  if (needs_second_target(analytic)) os << "," << target_col2;
  return os.str();
}

std::string AnalyticalQuery::signature() const {
  std::ostringstream os;
  os << to_string(selection) << '/' << to_string(analytic);
  for (const std::size_t c : subspace_cols) os << ':' << c;
  if (needs_target(analytic)) os << "|t" << target_col;
  if (needs_second_target(analytic)) os << ",t" << target_col2;
  return os.str();
}

QueryFeatures extract_features(const AnalyticalQuery& q, const Rect& domain) {
  q.validate();
  if (domain.dims() != q.subspace_cols.size())
    throw std::invalid_argument("extract_features: domain dims mismatch");
  const std::size_t d = q.subspace_cols.size();
  QueryFeatures f;
  const Point center = q.selection_center();
  f.position.resize(d);
  for (std::size_t i = 0; i < d; ++i) {
    const double w = std::max(1e-12, domain.hi[i] - domain.lo[i]);
    f.position[i] = (center[i] - domain.lo[i]) / w;
  }
  f.model = f.position;
  switch (q.selection) {
    case SelectionType::kRange: {
      double volume = 1.0;
      for (std::size_t i = 0; i < d; ++i) {
        const double w = std::max(1e-12, domain.hi[i] - domain.lo[i]);
        const double frac = (q.range.hi[i] - q.range.lo[i]) / w;
        f.model.push_back(frac);
        volume *= frac;
      }
      // Mass-proportional analytics (count/sum) are ~linear in the
      // subspace volume, so expose it directly as a feature.
      f.model.push_back(volume);
      break;
    }
    case SelectionType::kRadius: {
      double mean_w = 0.0;
      for (std::size_t i = 0; i < d; ++i)
        mean_w += std::max(1e-12, domain.hi[i] - domain.lo[i]);
      mean_w /= static_cast<double>(d);
      const double r = q.ball.radius / mean_w;
      f.model.push_back(r);
      // Ball volume scales as r^d.
      f.model.push_back(std::pow(r, static_cast<double>(d)));
      break;
    }
    case SelectionType::kNearestNeighbors:
      // Normalize k logarithmically: extents typically scale with log k.
      f.model.push_back(std::log1p(static_cast<double>(q.knn_k)) / 10.0);
      // Counts/sums over a kNN subspace scale linearly with k itself.
      f.model.push_back(static_cast<double>(q.knn_k) / 1000.0);
      break;
  }
  return f;
}

}  // namespace sea
