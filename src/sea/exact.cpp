#include "sea/exact.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <span>
#include <sstream>

#include "common/timer.h"
#include "data/columnar.h"
#include "exec/coordinator.h"
#include "exec/mapreduce.h"

namespace sea {

namespace {

/// Contiguous spans of the query's target columns (empty spans when the
/// analytic has no / no second target): row-r targets are one indexed load
/// each instead of a bounds-checked Table::at per row.
struct TargetColumns {
  std::span<const double> t;
  std::span<const double> u;

  TargetColumns(const Table& part, const AnalyticalQuery& q)
      : t(needs_target(q.analytic) ? part.column(q.target_col)
                                   : std::span<const double>()),
        u(needs_second_target(q.analytic) ? part.column(q.target_col2)
                                          : std::span<const double>()) {}

  double t_of(std::size_t r) const noexcept { return t.empty() ? 0.0 : t[r]; }
  double u_of(std::size_t r) const noexcept { return u.empty() ? 0.0 : u[r]; }
};

/// Candidate for distributed kNN selections: distance + target values.
struct KnnCand {
  double dist = 0.0;
  double t = 0.0;
  double u = 0.0;
};

/// Per-node grid-build inputs, shared by the uniform and the learned grid
/// caches so both structures see identical points, domains and cell counts.
struct GridBuildInput {
  std::vector<Point> pts;
  Rect dom;
  std::size_t cells = 2;
};

GridBuildInput grid_build_input(const Table& part,
                                const std::vector<std::size_t>& cols) {
  GridBuildInput in;
  // Column-at-a-time fill from contiguous spans (no per-row gather).
  in.pts.assign(part.num_rows(), Point(cols.size()));
  for (std::size_t c = 0; c < cols.size(); ++c) {
    const auto col = part.column(cols[c]);
    for (std::size_t r = 0; r < part.num_rows(); ++r) in.pts[r][c] = col[r];
  }
  in.dom = part.num_rows() ? table_bounds(part, cols) : Rect{};
  if (part.num_rows() == 0) {
    in.dom.lo.assign(cols.size(), 0.0);
    in.dom.hi.assign(cols.size(), 1.0);
  }
  // Pad the upper edge so maxima land inside the last cell.
  for (std::size_t i = 0; i < cols.size(); ++i)
    in.dom.hi[i] = std::nextafter(in.dom.hi[i] + 1e-12,
                                  std::numeric_limits<double>::max());
  // Cells per dimension: ~rows^(1/d) capped to keep memory sane.
  const double per_dim = std::pow(
      std::max<double>(1.0, static_cast<double>(part.num_rows())),
      1.0 / static_cast<double>(cols.size()));
  in.cells = std::clamp<std::size_t>(
      static_cast<std::size_t>(per_dim / 2.0), 2, 32);
  return in;
}

}  // namespace

/// Reusable shuffle buffers, one per MapReduce job shape the executor runs.
struct ExactExecutor::MrScratch {
  MapReduceScratch<int, KnnCand> knn;
  MapReduceScratch<int, AggregateState> agg;
};

const char* to_string(ExecParadigm p) noexcept {
  switch (p) {
    case ExecParadigm::kMapReduce:
      return "mapreduce";
    case ExecParadigm::kCoordinatorIndexed:
      return "coordinator_indexed";
    case ExecParadigm::kCoordinatorGrid:
      return "coordinator_grid";
    case ExecParadigm::kCoordinatorLearned:
      return "coordinator_learned";
  }
  return "?";
}

ExactExecutor::ExactExecutor(Cluster& cluster, std::string table_name,
                             NodeId coordinator)
    : cluster_(cluster), table_(std::move(table_name)),
      coordinator_(coordinator),
      mr_scratch_(std::make_unique<MrScratch>()) {
  if (!cluster_.has_table(table_))
    throw std::invalid_argument("ExactExecutor: unknown table " + table_);
}

ExactExecutor::~ExactExecutor() = default;

std::string ExactExecutor::colset_key(const std::vector<std::size_t>& cols) {
  std::ostringstream os;
  for (const auto c : cols) os << c << ',';
  return os.str();
}

const ExactExecutor::NodeIndexes& ExactExecutor::indexes_for(
    const std::vector<std::size_t>& cols) {
  const std::string key = colset_key(cols);
  auto it = index_cache_.find(key);
  if (it != index_cache_.end()) return it->second;
  Timer t;
  NodeIndexes idx;
  idx.per_node.reserve(cluster_.num_nodes());
  for (std::size_t n = 0; n < cluster_.num_nodes(); ++n) {
    const Table& part = cluster_.partition(table_, static_cast<NodeId>(n));
    idx.per_node.push_back(build_kdtree(part, cols));
  }
  index_build_ms_ += t.elapsed_ms();
  return index_cache_.emplace(key, std::move(idx)).first->second;
}

const ExactExecutor::NodeGrids& ExactExecutor::grids_for(
    const std::vector<std::size_t>& cols) {
  const std::string key = colset_key(cols);
  auto it = grid_cache_.find(key);
  if (it != grid_cache_.end()) return it->second;
  Timer t;
  NodeGrids grids;
  grids.per_node.reserve(cluster_.num_nodes());
  for (std::size_t n = 0; n < cluster_.num_nodes(); ++n) {
    const Table& part = cluster_.partition(table_, static_cast<NodeId>(n));
    GridBuildInput in = grid_build_input(part, cols);
    grids.per_node.emplace_back(std::move(in.pts), std::move(in.dom),
                                in.cells);
  }
  index_build_ms_ += t.elapsed_ms();
  return grid_cache_.emplace(key, std::move(grids)).first->second;
}

const ExactExecutor::NodeLearnedGrids& ExactExecutor::learned_for(
    const std::vector<std::size_t>& cols) {
  const std::string key = colset_key(cols);
  auto it = learned_cache_.find(key);
  if (it != learned_cache_.end()) return it->second;
  Timer t;
  NodeLearnedGrids grids;
  grids.per_node.reserve(cluster_.num_nodes());
  for (std::size_t n = 0; n < cluster_.num_nodes(); ++n) {
    const Table& part = cluster_.partition(table_, static_cast<NodeId>(n));
    GridBuildInput in = grid_build_input(part, cols);
    grids.per_node.emplace_back(std::move(in.pts), std::move(in.dom),
                                in.cells);
  }
  index_build_ms_ += t.elapsed_ms();
  return learned_cache_.emplace(key, std::move(grids)).first->second;
}

const Rect& ExactExecutor::domain(const std::vector<std::size_t>& cols) {
  const std::string key = colset_key(cols);
  auto it = domain_cache_.find(key);
  if (it != domain_cache_.end()) return it->second;
  Rect bounds;
  bool first = true;
  for (std::size_t n = 0; n < cluster_.num_nodes(); ++n) {
    const Table& part = cluster_.partition(table_, static_cast<NodeId>(n));
    if (part.num_rows() == 0) continue;
    const Rect b = table_bounds(part, cols);
    if (first) {
      bounds = b;
      first = false;
    } else {
      for (std::size_t i = 0; i < cols.size(); ++i) {
        bounds.lo[i] = std::min(bounds.lo[i], b.lo[i]);
        bounds.hi[i] = std::max(bounds.hi[i], b.hi[i]);
      }
    }
  }
  if (first) {
    bounds.lo.assign(cols.size(), 0.0);
    bounds.hi.assign(cols.size(), 1.0);
  }
  return domain_cache_.emplace(key, std::move(bounds)).first->second;
}

void ExactExecutor::invalidate_caches() {
  index_cache_.clear();
  grid_cache_.clear();
  learned_cache_.clear();
  domain_cache_.clear();
}

ExactResult ExactExecutor::execute(const AnalyticalQuery& query,
                                   ExecParadigm paradigm,
                                   QueryDeadline* deadline) {
  query.validate();
  // End-to-end wall clock of the whole call (index builds included), so
  // every paradigm's report carries a measured wall_ms next to the
  // modelled columns.
  Timer wall;
  obs::SpanScope span(cluster_.tracer(), "exact");
  span.set_tag(to_string(paradigm));
  ExactResult res = [&] {
    switch (paradigm) {
      case ExecParadigm::kMapReduce:
        return execute_mapreduce(query, deadline);
      case ExecParadigm::kCoordinatorIndexed:
      case ExecParadigm::kCoordinatorGrid:
      case ExecParadigm::kCoordinatorLearned:
        return execute_indexed(query, paradigm, deadline);
    }
    throw std::logic_error("ExactExecutor::execute: bad paradigm");
  }();
  res.report.wall_ms = wall.elapsed_ms();
  return res;
}

AggregateState ExactExecutor::aggregate_rows(
    const Table& part, const std::vector<std::uint64_t>& rows,
    const AnalyticalQuery& q) const {
  AggregateState agg;
  const TargetColumns tc(part, q);
  for (const auto r : rows) {
    const auto i = static_cast<std::size_t>(r);
    agg.add(tc.t_of(i), tc.u_of(i));
  }
  return agg;
}

ExactResult ExactExecutor::execute_mapreduce(const AnalyticalQuery& q,
                                             QueryDeadline* deadline) {
  ExactResult out;
  if (q.selection == SelectionType::kNearestNeighbors) {
    // Map: local top-k candidates from a full scan; reduce: global top-k.
    MapReduceJob<int, KnnCand, AggregateState> job;
    job.kv_bytes = sizeof(KnnCand);
    job.result_bytes = AggregateState::kWireBytes;
    const std::size_t k = q.knn_k;
    job.map = [&q, k](NodeId, const Table& part, Emitter<int, KnnCand>& out_) {
      // Columnar distance kernel: per-row accumulation runs in column
      // order, so sqrt(d2[r]) is bit-equal to euclidean_distance on a
      // gathered Point (see columnar.h).
      std::vector<double> d2;
      squared_distances(part, q.subspace_cols, q.knn_point, d2);
      const TargetColumns tc(part, q);
      std::vector<KnnCand> local(part.num_rows());
      for (std::size_t r = 0; r < part.num_rows(); ++r) {
        local[r].dist = std::sqrt(d2[r]);
        local[r].t = tc.t_of(r);
        local[r].u = tc.u_of(r);
      }
      const std::size_t take = std::min(k, local.size());
      std::partial_sort(local.begin(),
                        local.begin() + static_cast<std::ptrdiff_t>(take),
                        local.end(), [](const KnnCand& a, const KnnCand& b) {
                          return a.dist < b.dist;
                        });
      for (std::size_t i = 0; i < take; ++i) out_.emit(0, local[i]);
    };
    job.reduce = [&q, k](const int&, std::vector<KnnCand>& cands) {
      const std::size_t take = std::min(k, cands.size());
      std::partial_sort(cands.begin(),
                        cands.begin() + static_cast<std::ptrdiff_t>(take),
                        cands.end(), [](const KnnCand& a, const KnnCand& b) {
                          return a.dist < b.dist;
                        });
      AggregateState agg;
      for (std::size_t i = 0; i < take; ++i) agg.add(cands[i].t, cands[i].u);
      return agg;
    };
    auto mr = run_map_reduce(cluster_, table_, job, coordinator_, deadline,
                             &mr_scratch_->knn);
    AggregateState total;
    for (auto& [key, agg] : mr.results) {
      (void)key;
      total.merge(agg);
    }
    out.answer = total.finalize(q.analytic);
    out.state = total;
    out.qualifying_tuples = total.count;
    out.report = mr.report;
    return out;
  }

  // Range / radius selections: filter + partial aggregate per partition.
  MapReduceJob<int, AggregateState, AggregateState> job;
  job.kv_bytes = AggregateState::kWireBytes;
  job.result_bytes = AggregateState::kWireBytes;
  job.map = [&q](NodeId, const Table& part,
                 Emitter<int, AggregateState>& out_) {
    // Columnar selection kernel: the selection vector lists qualifying
    // rows in ascending order, and the ball test accumulates distance in
    // column order — so the aggregate below adds the same values in the
    // same order as the old gather-per-row scan (byte-identical answer).
    std::vector<std::uint32_t> sel;
    if (q.selection == SelectionType::kRange)
      select_range(part, q.subspace_cols, q.range, sel);
    else
      select_ball(part, q.subspace_cols, q.ball, sel);
    const TargetColumns tc(part, q);
    AggregateState agg;
    for (const std::uint32_t r : sel) agg.add(tc.t_of(r), tc.u_of(r));
    out_.emit(0, agg);
  };
  job.reduce = [](const int&, std::vector<AggregateState>& states) {
    AggregateState total;
    for (const auto& s : states) total.merge(s);
    return total;
  };
  auto mr = run_map_reduce(cluster_, table_, job, coordinator_, deadline,
                           &mr_scratch_->agg);
  AggregateState total;
  for (auto& [key, agg] : mr.results) {
    (void)key;
    total.merge(agg);
  }
  out.answer = total.finalize(q.analytic);
  out.state = total;
  out.qualifying_tuples = total.count;
  out.report = mr.report;
  return out;
}

ExactResult ExactExecutor::execute_indexed(const AnalyticalQuery& q,
                                           ExecParadigm access,
                                           QueryDeadline* deadline) {
  ExactResult out;
  const bool use_grid = access == ExecParadigm::kCoordinatorGrid;
  const bool use_learned = access == ExecParadigm::kCoordinatorLearned;
  const NodeIndexes* kd =
      (use_grid || use_learned) ? nullptr : &indexes_for(q.subspace_cols);
  const NodeGrids* grid = use_grid ? &grids_for(q.subspace_cols) : nullptr;
  const NodeLearnedGrids* learned =
      use_learned ? &learned_for(q.subspace_cols) : nullptr;
  // Uniform access wrappers over the three access structures (RT3.1).
  const auto node_knn = [&](std::size_t n, std::span<const double> point,
                            std::size_t k, std::uint64_t& examined) {
    if (use_grid || use_learned) {
      GridQueryCost cost;
      auto nn = use_learned ? learned->per_node[n].knn(point, k, &cost)
                            : grid->per_node[n].knn(point, k, &cost);
      examined = cost.points_examined;
      return nn;
    }
    KdQueryCost cost;
    auto nn = kd->per_node[n].knn(point, k, &cost);
    examined = cost.points_examined;
    return nn;
  };
  const auto node_select = [&](std::size_t n, std::uint64_t& examined) {
    if (use_grid || use_learned) {
      GridQueryCost cost;
      std::vector<std::uint64_t> rows;
      if (use_learned) {
        rows = q.selection == SelectionType::kRange
                   ? learned->per_node[n].range_query(q.range, &cost)
                   : learned->per_node[n].radius_query(q.ball, &cost);
      } else {
        rows = q.selection == SelectionType::kRange
                   ? grid->per_node[n].range_query(q.range, &cost)
                   : grid->per_node[n].radius_query(q.ball, &cost);
      }
      examined = cost.points_examined;
      return rows;
    }
    KdQueryCost cost;
    auto rows = q.selection == SelectionType::kRange
                    ? kd->per_node[n].range_query(q.range, &cost)
                    : kd->per_node[n].radius_query(q.ball, &cost);
    examined = cost.points_examined;
    return rows;
  };
  CohortSession session(cluster_, coordinator_);
  session.set_deadline(deadline);
  // Request = the query geometry: centre + extents, ~ (2d + 2) doubles.
  const std::size_t req_bytes = (2 * q.subspace_cols.size() + 2) * 8;

  // Shard `n` is answered by its serving node (primary, or a live replica
  // holder under failures). A node that flaps *mid-RPC* raises
  // NodeDownError (a tripped circuit breaker raises it too); the shard is
  // then re-resolved and re-routed to the next available holder. Replica
  // exhaustion (ShardUnavailable) propagates to the caller, where the
  // serving layer degrades to a model-backed answer.
  const auto rpc_with_reroute = [&](std::size_t shard, auto&& do_rpc) {
    for (;;) {
      const NodeId serving = cluster_.serving_node(table_, shard);
      try {
        return do_rpc(serving);
      } catch (const NodeDownError& e) {
        session.note_reroute();
        if (obs::Tracer* tr = cluster_.tracer())
          tr->event("reroute", "rpc", static_cast<std::int64_t>(e.node));
      }
    }
  };
  // Backup holder for hedged reads: the next live replica of `shard`
  // other than the serving node (kNoBackup when unreplicated).
  const auto backup_for = [&](std::size_t shard, NodeId serving) -> NodeId {
    const PartitionSpec& spec = cluster_.partition_spec(table_);
    for (std::size_t r = 0; r < spec.replicas; ++r) {
      const NodeId cand =
          static_cast<NodeId>((shard + r) % cluster_.num_nodes());
      if (cand != serving && !cluster_.node_is_down(cand)) return cand;
    }
    return CohortSession::kNoBackup;
  };

  if (q.selection == SelectionType::kNearestNeighbors) {
    // Each cohort node returns its local top-k (from its k-d tree); the
    // coordinator merges to the global k.
    std::vector<KnnCand> merged;
    for (std::size_t n = 0; n < cluster_.num_nodes(); ++n) {
      const Table& part = cluster_.partition(table_, static_cast<NodeId>(n));
      if (part.num_rows() == 0) continue;  // empty partitions never probed
      const std::size_t resp_bytes = sizeof(KnnCand) * q.knn_k;
      auto local = rpc_with_reroute(n, [&](NodeId serving) {
        return session.rpc_to(
            serving, backup_for(n, serving), req_bytes, resp_bytes,
            [&](NodeId executing) {
              std::uint64_t examined = 0;
              auto nn = node_knn(n, q.knn_point, q.knn_k, examined);
              cluster_.account_probe(executing, 1, examined,
                                     examined * part.row_bytes());
              std::vector<KnnCand> cands;
              cands.reserve(nn.size());
              const TargetColumns tc(part, q);
              for (const auto& [row, dist] : nn) {
                const auto r = static_cast<std::size_t>(row);
                cands.push_back(KnnCand{dist, tc.t_of(r), tc.u_of(r)});
              }
              return cands;
            });
      });
      merged.insert(merged.end(), local.begin(), local.end());
    }
    const std::size_t take = std::min<std::size_t>(q.knn_k, merged.size());
    AggregateState total = session.local([&] {
      std::partial_sort(merged.begin(),
                        merged.begin() + static_cast<std::ptrdiff_t>(take),
                        merged.end(), [](const KnnCand& a, const KnnCand& b) {
                          return a.dist < b.dist;
                        });
      AggregateState agg;
      for (std::size_t i = 0; i < take; ++i)
        agg.add(merged[i].t, merged[i].u);
      return agg;
    });
    out.answer = total.finalize(q.analytic);
    out.state = total;
    out.qualifying_tuples = total.count;
    out.report = session.take_report();
    return out;
  }

  // Range / radius: prune nodes by partition ranges when possible, then
  // surgical k-d probes; only aggregate states return.
  std::vector<NodeId> nodes;
  const auto& pspec = cluster_.partition_spec(table_);
  // Node pruning is only sound when the table is range-partitioned on one
  // of the query's subspace columns.
  std::size_t part_dim = q.subspace_cols.size();
  if (pspec.scheme == Partitioning::kRangeColumn) {
    for (std::size_t i = 0; i < q.subspace_cols.size(); ++i)
      if (q.subspace_cols[i] == pspec.partition_column) part_dim = i;
  }
  if (part_dim < q.subspace_cols.size()) {
    if (q.selection == SelectionType::kRange) {
      nodes = cluster_.nodes_for_range(table_, q.range.lo[part_dim],
                                       q.range.hi[part_dim]);
    } else {
      const Rect bb = q.ball.bounding_box();
      nodes = cluster_.nodes_for_range(table_, bb.lo[part_dim],
                                       bb.hi[part_dim]);
    }
  } else {
    for (std::size_t n = 0; n < cluster_.num_nodes(); ++n)
      nodes.push_back(static_cast<NodeId>(n));
  }

  AggregateState total;
  for (const NodeId n : nodes) {
    const Table& part = cluster_.partition(table_, n);
    if (part.num_rows() == 0) continue;  // empty partitions never probed
    AggregateState node_agg = rpc_with_reroute(n, [&](NodeId serving) {
      return session.rpc_to(
          serving, backup_for(n, serving), req_bytes,
          AggregateState::kWireBytes, [&](NodeId executing) {
            std::uint64_t examined = 0;
            const std::vector<std::uint64_t> rows = node_select(n, examined);
            cluster_.account_probe(executing, 1, examined,
                                   examined * part.row_bytes());
            return aggregate_rows(part, rows, q);
          });
    });
    total.merge(node_agg);
  }
  out.answer = total.finalize(q.analytic);
  out.state = total;
  out.qualifying_tuples = total.count;
  out.report = session.take_report();
  return out;
}

}  // namespace sea
