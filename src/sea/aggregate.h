// Mergeable aggregate state for distributed analytical query execution.
//
// Each storage node computes an AggregateState over its qualifying tuples;
// states merge associatively at reducers / the coordinator; finalize()
// yields the scalar answer for any AnalyticType. This is the unit shipped
// over the (accounted) network instead of raw tuples — already a key
// efficiency lever before any learning enters the picture.
#pragma once

#include <cstdint>

#include "sea/query.h"

namespace sea {

struct AggregateState {
  std::uint64_t count = 0;
  double sum_t = 0.0;    ///< sum of target_col
  double sum_tt = 0.0;   ///< sum of target_col^2
  double sum_u = 0.0;    ///< sum of target_col2
  double sum_uu = 0.0;   ///< sum of target_col2^2
  double sum_tu = 0.0;   ///< cross sum

  /// Accumulates one qualifying tuple's target values.
  void add(double t, double u) noexcept;

  void merge(const AggregateState& o) noexcept;

  /// Scalar answer for the analytic; degenerate cases (empty subspace,
  /// zero variance) return 0.
  double finalize(AnalyticType type) const noexcept;

  /// Wire size for transfer accounting.
  static constexpr std::size_t kWireBytes = 6 * 8;
};

}  // namespace sea
