// The intelligent data-less analytics agent (paper §III.B, Fig. 2, RT1).
//
// The agent sits between analysts and the BDAS. It learns, per query
// *signature* (selection family × analytic × target columns):
//
//  RT1.1 Query-space quantization — an OnlineQuantizer over the normalized
//        subspace centres of incoming queries tracks where analysts are
//        looking; quanta grow, adapt, and are purged as interests drift.
//  RT1.2 Answer-space modelling — per quantum, a ridge linear model from
//        query geometry features to the answer (kNN regressor while the
//        quantum is cold, optional GBM for non-linear answer surfaces).
//  RT1.3 Prediction + error estimation — prequential absolute residuals
//        per quantum give a conformal-style error quantile; a prediction
//        is served data-less only when the expected error is acceptable,
//        otherwise the caller is told to execute exactly (and feed the
//        answer back via observe()).
//  RT1.4 Maintenance — an ADWIN-style drift detector per quantum retrains
//        on query-pattern/data drift; note_data_update() inflates error
//        expectations until enough fresh observations arrive.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "ml/drift.h"
#include "ml/gbm.h"
#include "ml/kmeans.h"
#include "ml/knn_model.h"
#include "ml/linear.h"
#include "sea/query.h"

namespace sea {

enum class QuantumModelKind {
  kAuto,    ///< linear once warm, kNN while cold (default)
  kLinear,  ///< force linear
  kKnn,     ///< force kNN regressor
  kGbm,     ///< gradient-boosted trees once warm, kNN while cold (RT3.3)
};

struct AgentConfig {
  std::size_t max_quanta = 128;
  /// Queries farther than this (normalized space) from all quanta open a
  /// new quantum.
  double create_distance = 0.12;
  /// Minimum (query, answer) pairs in a quantum before serving from it.
  std::size_t min_samples_to_predict = 20;
  /// Refit the quantum's linear model every this many new observations.
  std::size_t refit_interval = 16;
  double ridge_lambda = 1e-4;
  /// Conformal coverage target for the error interval.
  double confidence = 0.9;
  /// Serve a prediction only when the expected error relative to
  /// max(|prediction|, rel_floor) is below this.
  double max_relative_error = 0.2;
  double rel_floor = 1.0;
  std::size_t knn_k = 5;
  QuantumModelKind model_kind = QuantumModelKind::kAuto;
  /// Drift detector window / confidence over per-quantum abs residuals.
  std::size_t drift_window = 48;
  double drift_confidence = 0.01;
  /// Purge quanta unused for this many observations (0 = never).
  std::uint64_t purge_idle = 0;
  /// Error inflation applied per unit of reported data-update fraction.
  double staleness_inflation = 4.0;
  /// Fresh observations needed to fully clear staleness.
  std::size_t staleness_recovery = 32;
  /// Cap on stored training pairs per quantum (ring buffer semantics).
  std::size_t max_samples_per_quantum = 512;
  /// Query-driven model selection (paper [48], RT3.3): under kAuto, once a
  /// quantum holds at least `select_min_samples` pairs, each refit fits
  /// both a linear model and a GBM on the older 80% and keeps whichever
  /// wins on the held-out newest 20%.
  bool auto_select_model = false;
  std::size_t select_min_samples = 60;
  /// Root seed for the agent's stochastic components. Each quantum derives
  /// its own RNG stream from this seed and its quantum id, so refits draw
  /// identical randomness no matter which worker thread runs them
  /// (DESIGN.md "Concurrency model").
  std::uint64_t seed = 0x5ea00001ULL;
};

struct Prediction {
  double value = 0.0;
  /// Expected absolute error (conformal quantile, staleness-inflated).
  double expected_abs_error = 0.0;
  double expected_rel_error = 0.0;
  std::size_t quantum = 0;
  std::size_t quantum_population = 0;
};

struct AgentStats {
  std::uint64_t predictions_served = 0;   ///< confident, data-less answers
  std::uint64_t predictions_declined = 0; ///< fell back to exact execution
  std::uint64_t observations = 0;         ///< (query, answer) pairs absorbed
  std::uint64_t drift_alarms = 0;
  std::uint64_t quanta_purged = 0;
};

class DatalessAgent {
 public:
  /// `domain_provider` returns the data-domain bounding box for a set of
  /// subspace columns (used to normalize query features). Typically wired
  /// to ExactExecutor::domain.
  DatalessAgent(AgentConfig config,
                std::function<Rect(const std::vector<std::size_t>&)>
                    domain_provider);

  /// Data-less answer if the agent is confident; nullopt => the caller
  /// should execute exactly and call observe() with the truth.
  std::optional<Prediction> try_predict(const AnalyticalQuery& query);

  /// Always predicts (no confidence gate); throws std::logic_error when the
  /// signature has no usable model at all. Used by explanations and
  /// higher-level data-less exploration.
  Prediction predict_unchecked(const AnalyticalQuery& query);

  /// Like predict_unchecked but returns nullopt instead of throwing, and
  /// does not count towards serve/decline statistics.
  std::optional<Prediction> maybe_predict(const AnalyticalQuery& query);

  /// Result of a read-only prediction probe (peek_predict).
  struct PeekResult {
    Prediction prediction;
    bool usable = false;     ///< a model produced a value (maybe_predict)
    bool confident = false;  ///< it also passes the try_predict serving gate
  };

  /// Read-only analogue of try_predict / maybe_predict: never creates
  /// signature state, never updates statistics, safe to call concurrently
  /// with other const methods. Batched serving uses it to fan predictions
  /// out across SEA_THREADS workers against a frozen agent.
  PeekResult peek_predict(const AnalyticalQuery& query) const;

  /// Serving-outcome bookkeeping for batch callers that gate predictions
  /// obtained via peek_predict: counts a served / declined prediction
  /// exactly as try_predict would have.
  void record_serve_outcome(bool served) noexcept {
    if (served)
      ++stats_.predictions_served;
    else
      ++stats_.predictions_declined;
  }

  /// Absorbs ground truth for a query (training / feedback path).
  void observe(const AnalyticalQuery& query, double exact_answer);

  /// Absorbs a batch of (query, truth) pairs. Shared state — quantization,
  /// prequential residuals, drift handling, bounded stores — is updated
  /// serially in batch order, exactly as repeated observe() calls would;
  /// model refits are deferred to the end of the batch and then run at most
  /// once per touched quantum, in parallel (SEA_THREADS). Each quantum owns
  /// an RNG stream derived from config().seed and its id, so the result is
  /// identical at any thread count.
  void observe_batch(
      std::span<const std::pair<AnalyticalQuery, double>> batch);

  /// Signals that `fraction` of the base data changed (RT1.4-ii): inflates
  /// expected errors until staleness_recovery fresh observations arrive.
  void note_data_update(double fraction);

  const AgentStats& stats() const noexcept { return stats_; }
  const AgentConfig& config() const noexcept { return config_; }

  /// Number of quanta for a signature (0 when unseen).
  std::size_t num_quanta(const std::string& signature) const;
  std::size_t num_signatures() const noexcept { return signatures_.size(); }

  /// Centroids of the signature's quanta in normalized query space — the
  /// shareable "model state" of RT5.2 (which subspaces this agent has
  /// models for). Empty when the signature is unseen. `min_population`
  /// filters to quanta warm enough to be worth advertising to peers.
  std::vector<Point> quanta_centers(const std::string& signature,
                                    std::uint64_t min_population = 0) const;

  /// Normalized query-space position of a query (for routing decisions).
  Point query_position(const AnalyticalQuery& query);

  /// Total model footprint: codebooks + training pairs + fitted models.
  std::size_t byte_size() const noexcept;

  /// Writes the agent's shippable state (config, per-signature quantizers,
  /// training pairs, fitted linear models, residual windows) as a binary
  /// stream — the unit that crosses the WAN in model-shipping deployments
  /// (RT1.5, RT5.2). Drift-detector state is deliberately not shipped: a
  /// freshly placed model starts watching its new environment from scratch.
  void serialize(std::ostream& out) const;

  /// Reconstructs an agent from a serialized stream. kNN fallbacks are
  /// rebuilt from the shipped training pairs, so predictions match the
  /// source agent exactly. Throws std::runtime_error on malformed input.
  static DatalessAgent deserialize(
      std::istream& in,
      std::function<Rect(const std::vector<std::size_t>&)> domain_provider);

 private:
  struct QuantumModel {
    std::vector<std::vector<double>> xs;
    std::vector<double> ys;
    LinearModel linear;
    GbmRegressor gbm;  ///< fitted under kGbm, or by auto-selection ([48])
    /// kAuto + auto_select_model: true when the held-out comparison chose
    /// the GBM over the linear model for this quantum.
    bool prefer_gbm = false;
    KnnRegressor knn;
    SlidingQuantile abs_residuals;
    AdwinLiteDetector drift;
    std::size_t since_refit = 0;
    /// Private RNG stream (seeded from the agent seed + quantum id) that
    /// feeds stochastic refits; never shared across quanta, so parallel
    /// refits stay reproducible. Not serialized.
    Rng rng;
    /// Set by observe_batch() when a refit is due; cleared by the deferred
    /// refit pass. Transient, not serialized.
    bool refit_pending = false;

    QuantumModel(const AgentConfig& cfg, std::uint64_t stream_seed)
        : knn(cfg.knn_k),
          abs_residuals(96),
          drift(cfg.drift_window, cfg.drift_confidence),
          rng(stream_seed) {}
  };

  struct SignatureState {
    OnlineQuantizer quantizer;
    std::vector<std::optional<QuantumModel>> models;
    Rect domain;

    SignatureState(const AgentConfig& cfg, Rect dom)
        : quantizer(cfg.max_quanta, cfg.create_distance),
          domain(std::move(dom)) {}
  };

  /// The per-quantum GBM configuration (shared by refit and deserialize).
  static GbmParams quantum_gbm_params() noexcept {
    GbmParams params;
    params.num_trees = 60;
    params.max_depth = 3;
    params.min_leaf = 3;
    return params;
  }

  /// Seed of a quantum's private RNG stream: a pure function of the root
  /// seed and the quantum id, so any worker (or a deserialized replica)
  /// reconstructs the same stream.
  static std::uint64_t quantum_stream_seed(std::uint64_t root_seed,
                                           std::uint64_t quantum_id) noexcept {
    SplitMix64 sm(root_seed + 0x9e3779b97f4a7c15ULL * (quantum_id + 1));
    return sm.next();
  }

  SignatureState& state_for(const AnalyticalQuery& query);
  /// Shared observe body; defer_refit postpones maybe_refit (observe_batch
  /// phase 2) instead of running it inline.
  void absorb(const AnalyticalQuery& query, double exact_answer,
              bool defer_refit);
  /// Model prediction for features within a quantum; nullopt when cold.
  std::optional<double> model_predict(const QuantumModel& qm,
                                      const std::vector<double>& features,
                                      std::size_t feature_dims) const;
  void maybe_refit(QuantumModel& qm, std::size_t feature_dims);
  double staleness_multiplier() const noexcept;

  AgentConfig config_;
  std::function<Rect(const std::vector<std::size_t>&)> domain_provider_;
  std::unordered_map<std::string, SignatureState> signatures_;
  AgentStats stats_;
  double staleness_ = 0.0;
  std::size_t fresh_since_update_ = 0;
};

}  // namespace sea
