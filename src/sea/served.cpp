#include "sea/served.h"

#include "common/timer.h"

namespace sea {

ServedAnalytics::ServedAnalytics(DatalessAgent& agent, ExactExecutor& exec,
                                 ServeConfig config)
    : agent_(agent), exec_(exec), config_(config),
      audit_rng_(config.audit_seed) {}

ServedAnswer ServedAnalytics::serve(const AnalyticalQuery& query) {
  ServedAnswer out;
  Timer timer;
  ++stats_.queries;

  const bool bootstrapping = stats_.queries <= config_.bootstrap_queries;
  if (!bootstrapping) {
    if (auto pred = agent_.try_predict(query)) {
      out.data_less = true;
      out.value = pred->value;
      out.prediction = *pred;
      if (config_.audit_fraction > 0.0 &&
          audit_rng_.bernoulli(config_.audit_fraction)) {
        out.audited = true;
        out.exact = exec_.execute(query, config_.exact_paradigm);
        agent_.observe(query, out.exact.answer);
        ++stats_.exact_executed;
      }
      ++stats_.data_less_served;
      out.latency_ms = timer.elapsed_ms();
      return out;
    }
  }

  out.exact = exec_.execute(query, config_.exact_paradigm);
  out.value = out.exact.answer;
  agent_.observe(query, out.exact.answer);
  ++stats_.exact_executed;
  out.latency_ms = timer.elapsed_ms();
  return out;
}

}  // namespace sea
