#include "sea/served.h"

#include <algorithm>

#include "common/parallel.h"
#include "common/timer.h"
#include "fault/outage.h"

namespace sea {

// Completeness guard: ServeStats is 13 uint64 outcome/execution/recovery
// counters; conserved() and sync_metrics() below must cover every one.
// Adding a field changes the size and fails this assert until both are
// updated.
static_assert(sizeof(ServeStats) == 13 * 8,
              "ServeStats gained/lost a field: update conserved(), "
              "sync_metrics(), and this guard");

ServedAnalytics::ServedAnalytics(DatalessAgent& agent, ExactExecutor& exec,
                                 ServeConfig config)
    : agent_(agent), exec_(exec), config_(config),
      audit_rng_(config.audit_seed) {}

void ServedAnalytics::bind_obs() {
  obs::MetricsRegistry* reg = exec_.cluster().metrics();
  if (reg == bound_registry_) return;
  bound_registry_ = reg;
  if (!reg) {
    m_ = ServeMetrics{};
    return;
  }
  m_.queries = &reg->counter("serve.queries");
  m_.data_less_served = &reg->counter("serve.data_less_served");
  m_.exact_answered = &reg->counter("serve.exact_answered");
  m_.shed = &reg->counter("serve.shed");
  m_.failed = &reg->counter("serve.failed");
  m_.exact_executed = &reg->counter("serve.exact_executed");
  m_.exact_failures = &reg->counter("serve.exact_failures");
  m_.degraded_served = &reg->counter("serve.degraded_served");
  m_.deadline_exceeded = &reg->counter("serve.deadline_exceeded");
  m_.fenced_serves = &reg->counter("serve.fenced_serves");
  m_.recoveries = &reg->counter("serve.recoveries");
  m_.replayed_updates = &reg->counter("serve.replayed_updates");
  m_.stale_model_serves = &reg->counter("serve.stale_model_serves");
  m_.queue_backlog = &reg->gauge("serve.queue_backlog_ms");
  m_.exact_modelled_ms = &reg->histogram(
      "serve.exact_modelled_ms", {25.0, 50.0, 100.0, 200.0, 400.0, 800.0});
  // Count from the moment of attachment: a registry wired mid-run sees
  // only the serving activity that happens while it is attached.
  mirrored_ = stats_;
}

void ServedAnalytics::sync_metrics() {
  if (!m_.queries) return;
  m_.queries->inc(stats_.queries - mirrored_.queries);
  m_.data_less_served->inc(stats_.data_less_served -
                           mirrored_.data_less_served);
  m_.exact_answered->inc(stats_.exact_answered - mirrored_.exact_answered);
  m_.shed->inc(stats_.shed - mirrored_.shed);
  m_.failed->inc(stats_.failed - mirrored_.failed);
  m_.exact_executed->inc(stats_.exact_executed - mirrored_.exact_executed);
  m_.exact_failures->inc(stats_.exact_failures - mirrored_.exact_failures);
  m_.degraded_served->inc(stats_.degraded_served - mirrored_.degraded_served);
  m_.deadline_exceeded->inc(stats_.deadline_exceeded -
                            mirrored_.deadline_exceeded);
  m_.fenced_serves->inc(stats_.fenced_serves - mirrored_.fenced_serves);
  m_.recoveries->inc(stats_.recoveries - mirrored_.recoveries);
  m_.replayed_updates->inc(stats_.replayed_updates -
                           mirrored_.replayed_updates);
  m_.stale_model_serves->inc(stats_.stale_model_serves -
                             mirrored_.stale_model_serves);
  m_.queue_backlog->set(queue_backlog_ms_);
  mirrored_ = stats_;
}

void ServedAnalytics::note_model_answer(ServedAnswer& out) {
  if (!provider_ || !provider_->primary_stale()) return;
  out.stale_model = true;
  ++stats_.stale_model_serves;
}

void ServedAnalytics::absorb_truth(const AnalyticalQuery& query,
                                   double truth) {
  if (provider_)
    provider_->observe(query, truth);
  else
    agent_.observe(query, truth);
}

void ServedAnalytics::advance_provider(double modelled_ms) {
  if (!provider_) return;
  provider_->advance(modelled_ms);
  const ServingModelProvider::RecoveryDelta d =
      provider_->take_recovery_delta();
  stats_.recoveries += d.recoveries;
  stats_.replayed_updates += d.replayed_updates;
}

bool ServedAnalytics::overloaded() const noexcept {
  return config_.queue_capacity_ms > 0.0 &&
         queue_backlog_ms_ >
             config_.shed_high_water * config_.queue_capacity_ms;
}

ExactResult ServedAnalytics::execute_exact(const AnalyticalQuery& query) {
  QueryDeadline budget(config_.deadline_ms);
  QueryDeadline* dl = config_.deadline_ms > 0.0 ? &budget : nullptr;
  obs::Tracer* tr = tracer();
  obs::SpanScope span(tr, "exact_exec");
  ExactResult res;
  try {
    // Epoch fence first: a fenced ex-holder must not even start exact
    // execution under its stale lease (split-brain prevention).
    if (fence_) fence_->check(query);
    res = exec_.execute(query, config_.exact_paradigm, dl);
  } catch (const StaleEpoch&) {
    ++stats_.exact_failures;
    span.set_tag("stale_epoch");
    if (tr) tr->event("stale_epoch");
    throw;
  } catch (const DeadlineExceeded&) {
    ++stats_.exact_failures;
    ++stats_.deadline_exceeded;
    span.set_tag("deadline_exceeded");
    if (tr) tr->event("deadline_exceeded");
    throw;
  } catch (const OutageError&) {
    ++stats_.exact_failures;
    span.set_tag("outage");
    throw;
  }
  span.set_tag("ok");
  if (m_.exact_modelled_ms)
    m_.exact_modelled_ms->observe(res.report.modelled_ms());
  ++stats_.exact_executed;
  // Successful exact work joins the admission backlog at its modelled
  // cost; failed attempts are not charged (their cost is unknowable here
  // and the breaker/deadline layers already bounded it).
  if (config_.queue_capacity_ms > 0.0)
    queue_backlog_ms_ += res.report.modelled_ms();
  return res;
}

ServedAnswer ServedAnalytics::serve(const AnalyticalQuery& query) {
  ServedAnswer out;
  Timer timer;
  bind_obs();
  obs::Tracer* tr = tracer();
  // Root span per served query; only the unanswerable throw keeps the
  // default tag — every other exit overwrites it with its outcome.
  obs::SpanScope root(tr, "serve");
  root.set_tag("failed");
  ++stats_.queries;
  // One query's worth of service capacity elapses per arrival.
  if (config_.queue_capacity_ms > 0.0)
    queue_backlog_ms_ =
        std::max(0.0, queue_backlog_ms_ - config_.drain_ms_per_query);

  // Modelled cost of this serve's successful exact work — the amount the
  // attached model provider's clock advances (0 for pure model answers;
  // the provider applies its own minimum per-query advance).
  double modelled = 0.0;
  const bool bootstrapping = stats_.queries <= config_.bootstrap_queries;
  DatalessAgent* model = serving_model();
  if (!bootstrapping && model) {
    if (auto pred = model->try_predict(query)) {
      out.data_less = true;
      out.value = pred->value;
      out.prediction = *pred;
      note_model_answer(out);
      if (config_.audit_fraction > 0.0 &&
          audit_rng_.bernoulli(config_.audit_fraction)) {
        try {
          out.exact = execute_exact(query);
          out.audited = true;
          modelled += out.exact.report.modelled_ms();
          absorb_truth(query, out.exact.answer);
        } catch (const OutageError&) {
          // Audit is best-effort: an outage (or blown deadline) skips the
          // audit but never fails the (already confident) data-less answer.
        }
      }
      ++stats_.data_less_served;
      root.set_tag(out.audited ? "audited" : "data_less");
      advance_provider(modelled);
      sync_metrics();
      out.latency_ms = timer.elapsed_ms();
      return out;
    }
    // Load shedding: the query would hit the BDAS, the admission queue is
    // over its high-water mark, and the model can stand in — shed.
    if (overloaded()) {
      if (auto pred = model->maybe_predict(query)) {
        out.shed = true;
        out.data_less = true;
        out.value = pred->value;
        out.prediction = *pred;
        note_model_answer(out);
        ++stats_.shed;
        if (tr) tr->event("shed", "overloaded");
        root.set_tag("shed");
        advance_provider(0.0);
        sync_metrics();
        out.latency_ms = timer.elapsed_ms();
        return out;
      }
    }
  }

  try {
    out.exact = execute_exact(query);
  } catch (const OutageError& err) {
    // Exact path unavailable (replicas exhausted / retries exhausted /
    // deadline blown / fenced by a stale lease epoch): serve the model's
    // best answer, explicitly flagged degraded, instead of failing the
    // query — the availability axis of the paper's P4. execute_exact
    // already classified the failure.
    // Re-resolve the model: the injector ticks inside the failed execution
    // may have crashed the primary replica and failed serving over.
    const bool fenced = dynamic_cast<const StaleEpoch*>(&err) != nullptr;
    model = serving_model();
    std::optional<Prediction> pred =
        model ? model->maybe_predict(query) : std::nullopt;
    if (pred) {
      out.degraded = true;
      out.fenced = fenced;
      out.data_less = true;
      out.value = pred->value;
      out.prediction = *pred;
      note_model_answer(out);
      ++stats_.degraded_served;
      if (fenced) ++stats_.fenced_serves;
      ++stats_.data_less_served;
      root.set_tag(fenced ? "fenced" : "degraded");
      advance_provider(0.0);
      sync_metrics();
      out.latency_ms = timer.elapsed_ms();
      return out;
    }
    ++stats_.failed;
    advance_provider(0.0);
    sync_metrics();
    throw;
  }
  out.value = out.exact.answer;
  modelled += out.exact.report.modelled_ms();
  absorb_truth(query, out.exact.answer);
  ++stats_.exact_answered;
  root.set_tag("exact");
  advance_provider(modelled);
  sync_metrics();
  out.latency_ms = timer.elapsed_ms();
  return out;
}

std::vector<ServedAnswer> ServedAnalytics::serve_batch(
    std::span<const AnalyticalQuery> queries) {
  std::vector<ServedAnswer> out(queries.size());
  if (queries.empty()) return out;
  bind_obs();
  obs::Tracer* tr = tracer();

  // Phase 1 (parallel): read-only model predictions against the agent state
  // frozen at batch entry. Each query writes only its own slot. No span or
  // metric is recorded here — the model peek is traced serially in phase 2
  // (as a zero-duration marker: prediction compute is measured wall time,
  // which must never enter the modelled trace).
  // The model is resolved once and frozen for the whole batch (the
  // provider's primary replica, or the own agent). A crash mid-batch can
  // wipe its *contents*, but replicas are stored by value so the pointer
  // stays valid; the pre-computed peeks simply reflect pre-crash state.
  DatalessAgent* model = serving_model();
  std::vector<DatalessAgent::PeekResult> peek(queries.size());
  std::vector<double> predict_ms(queries.size(), 0.0);
  if (model) {
    ParallelFor(queries.size(), [&](std::size_t i) {
      Timer t;
      peek[i] = model->peek_predict(queries[i]);
      predict_ms[i] = t.elapsed_ms();
    });
  }

  // Phase 2 (serial, batch order): all shared-state work — confidence
  // gating, audit coin flips, admission/shedding decisions, exact
  // executions (cluster + fault injector), statistics — in the same order
  // at any thread count.
  std::vector<std::pair<AnalyticalQuery, double>> train;
  train.reserve(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const AnalyticalQuery& query = queries[i];
    ServedAnswer& ans = out[i];
    Timer timer;
    obs::SpanScope root(tr, "serve");
    root.set_tag("failed");
    if (tr)
      tr->event("peek", !peek[i].usable        ? "unusable"
                        : peek[i].confident    ? "confident"
                                               : "usable");
    ++stats_.queries;
    if (config_.queue_capacity_ms > 0.0)
      queue_backlog_ms_ =
          std::max(0.0, queue_backlog_ms_ - config_.drain_ms_per_query);
    const bool bootstrapping = stats_.queries <= config_.bootstrap_queries;
    double modelled = 0.0;
    if (!bootstrapping) {
      const bool served = peek[i].usable && peek[i].confident;
      if (model) model->record_serve_outcome(served);
      if (served) {
        ans.data_less = true;
        ans.value = peek[i].prediction.value;
        ans.prediction = peek[i].prediction;
        note_model_answer(ans);
        if (config_.audit_fraction > 0.0 &&
            audit_rng_.bernoulli(config_.audit_fraction)) {
          try {
            ans.exact = execute_exact(query);
            ans.audited = true;
            modelled += ans.exact.report.modelled_ms();
            train.emplace_back(query, ans.exact.answer);
          } catch (const OutageError&) {
            // Best-effort audit (classified inside execute_exact).
          }
        }
        ++stats_.data_less_served;
        root.set_tag(ans.audited ? "audited" : "data_less");
        advance_provider(modelled);
        ans.latency_ms = predict_ms[i] + timer.elapsed_ms();
        continue;
      }
      if (overloaded() && peek[i].usable) {
        ans.shed = true;
        ans.data_less = true;
        ans.value = peek[i].prediction.value;
        ans.prediction = peek[i].prediction;
        note_model_answer(ans);
        ++stats_.shed;
        if (tr) tr->event("shed", "overloaded");
        root.set_tag("shed");
        advance_provider(0.0);
        ans.latency_ms = predict_ms[i] + timer.elapsed_ms();
        continue;
      }
    }
    try {
      ans.exact = execute_exact(query);
    } catch (const OutageError& err) {
      const bool fenced = dynamic_cast<const StaleEpoch*>(&err) != nullptr;
      if (peek[i].usable) {
        ans.degraded = true;
        ans.fenced = fenced;
        ans.data_less = true;
        ans.value = peek[i].prediction.value;
        ans.prediction = peek[i].prediction;
        note_model_answer(ans);
        ++stats_.degraded_served;
        if (fenced) ++stats_.fenced_serves;
        ++stats_.data_less_served;
        root.set_tag(fenced ? "fenced" : "degraded");
      } else {
        ++stats_.failed;
        ans.failed = true;
      }
      advance_provider(0.0);
      ans.latency_ms = predict_ms[i] + timer.elapsed_ms();
      continue;
    }
    ans.value = ans.exact.answer;
    modelled += ans.exact.report.modelled_ms();
    train.emplace_back(query, ans.exact.answer);
    ++stats_.exact_answered;
    root.set_tag("exact");
    advance_provider(modelled);
    ans.latency_ms = predict_ms[i] + timer.elapsed_ms();
  }
  sync_metrics();

  // Phase 3: absorb the batch's ground truth. Without a provider, refits
  // fan out per quantum via observe_batch; with one, truth is committed
  // through the replicated log (serially — the WAL order is the history).
  if (!train.empty()) {
    if (provider_) {
      for (const auto& [q, truth] : train) provider_->observe(q, truth);
    } else {
      agent_.observe_batch(train);
    }
  }
  return out;
}

}  // namespace sea
