#include "sea/served.h"

#include "common/timer.h"

namespace sea {

ServedAnalytics::ServedAnalytics(DatalessAgent& agent, ExactExecutor& exec,
                                 ServeConfig config)
    : agent_(agent), exec_(exec), config_(config),
      audit_rng_(config.audit_seed) {}

ServedAnswer ServedAnalytics::serve(const AnalyticalQuery& query) {
  ServedAnswer out;
  Timer timer;
  ++stats_.queries;

  const bool bootstrapping = stats_.queries <= config_.bootstrap_queries;
  if (!bootstrapping) {
    if (auto pred = agent_.try_predict(query)) {
      out.data_less = true;
      out.value = pred->value;
      out.prediction = *pred;
      if (config_.audit_fraction > 0.0 &&
          audit_rng_.bernoulli(config_.audit_fraction)) {
        try {
          out.exact = exec_.execute(query, config_.exact_paradigm);
          out.audited = true;
          agent_.observe(query, out.exact.answer);
          ++stats_.exact_executed;
        } catch (const std::runtime_error&) {
          // Audit is best-effort: an outage skips the audit but never
          // fails the (already confident) data-less answer.
          ++stats_.exact_failures;
        }
      }
      ++stats_.data_less_served;
      out.latency_ms = timer.elapsed_ms();
      return out;
    }
  }

  try {
    out.exact = exec_.execute(query, config_.exact_paradigm);
  } catch (const std::runtime_error&) {
    // Exact path unavailable (replicas exhausted / retries exhausted):
    // serve the model's best answer, explicitly flagged degraded, instead
    // of failing the query — the availability axis of the paper's P4.
    ++stats_.exact_failures;
    if (auto pred = agent_.maybe_predict(query)) {
      out.degraded = true;
      out.data_less = true;
      out.value = pred->value;
      out.prediction = *pred;
      ++stats_.degraded_served;
      out.latency_ms = timer.elapsed_ms();
      return out;
    }
    ++stats_.unanswerable;
    throw;
  }
  out.value = out.exact.answer;
  agent_.observe(query, out.exact.answer);
  ++stats_.exact_executed;
  out.latency_ms = timer.elapsed_ms();
  return out;
}

}  // namespace sea
