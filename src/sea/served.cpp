#include "sea/served.h"

#include <algorithm>

#include "common/parallel.h"
#include "common/timer.h"
#include "fault/outage.h"

namespace sea {

ServedAnalytics::ServedAnalytics(DatalessAgent& agent, ExactExecutor& exec,
                                 ServeConfig config)
    : agent_(agent), exec_(exec), config_(config),
      audit_rng_(config.audit_seed) {}

bool ServedAnalytics::overloaded() const noexcept {
  return config_.queue_capacity_ms > 0.0 &&
         queue_backlog_ms_ >
             config_.shed_high_water * config_.queue_capacity_ms;
}

ExactResult ServedAnalytics::execute_exact(const AnalyticalQuery& query) {
  QueryDeadline budget(config_.deadline_ms);
  QueryDeadline* dl = config_.deadline_ms > 0.0 ? &budget : nullptr;
  ExactResult res;
  try {
    res = exec_.execute(query, config_.exact_paradigm, dl);
  } catch (const DeadlineExceeded&) {
    ++stats_.exact_failures;
    ++stats_.deadline_exceeded;
    throw;
  } catch (const OutageError&) {
    ++stats_.exact_failures;
    throw;
  }
  ++stats_.exact_executed;
  // Successful exact work joins the admission backlog at its modelled
  // cost; failed attempts are not charged (their cost is unknowable here
  // and the breaker/deadline layers already bounded it).
  if (config_.queue_capacity_ms > 0.0)
    queue_backlog_ms_ += res.report.modelled_ms();
  return res;
}

ServedAnswer ServedAnalytics::serve(const AnalyticalQuery& query) {
  ServedAnswer out;
  Timer timer;
  ++stats_.queries;
  // One query's worth of service capacity elapses per arrival.
  if (config_.queue_capacity_ms > 0.0)
    queue_backlog_ms_ =
        std::max(0.0, queue_backlog_ms_ - config_.drain_ms_per_query);

  const bool bootstrapping = stats_.queries <= config_.bootstrap_queries;
  if (!bootstrapping) {
    if (auto pred = agent_.try_predict(query)) {
      out.data_less = true;
      out.value = pred->value;
      out.prediction = *pred;
      if (config_.audit_fraction > 0.0 &&
          audit_rng_.bernoulli(config_.audit_fraction)) {
        try {
          out.exact = execute_exact(query);
          out.audited = true;
          agent_.observe(query, out.exact.answer);
        } catch (const OutageError&) {
          // Audit is best-effort: an outage (or blown deadline) skips the
          // audit but never fails the (already confident) data-less answer.
        }
      }
      ++stats_.data_less_served;
      out.latency_ms = timer.elapsed_ms();
      return out;
    }
    // Load shedding: the query would hit the BDAS, the admission queue is
    // over its high-water mark, and the model can stand in — shed.
    if (overloaded()) {
      if (auto pred = agent_.maybe_predict(query)) {
        out.shed = true;
        out.data_less = true;
        out.value = pred->value;
        out.prediction = *pred;
        ++stats_.shed;
        out.latency_ms = timer.elapsed_ms();
        return out;
      }
    }
  }

  try {
    out.exact = execute_exact(query);
  } catch (const OutageError&) {
    // Exact path unavailable (replicas exhausted / retries exhausted /
    // deadline blown): serve the model's best answer, explicitly flagged
    // degraded, instead of failing the query — the availability axis of
    // the paper's P4. execute_exact already classified the failure.
    if (auto pred = agent_.maybe_predict(query)) {
      out.degraded = true;
      out.data_less = true;
      out.value = pred->value;
      out.prediction = *pred;
      ++stats_.degraded_served;
      ++stats_.data_less_served;
      out.latency_ms = timer.elapsed_ms();
      return out;
    }
    ++stats_.failed;
    throw;
  }
  out.value = out.exact.answer;
  agent_.observe(query, out.exact.answer);
  ++stats_.exact_answered;
  out.latency_ms = timer.elapsed_ms();
  return out;
}

std::vector<ServedAnswer> ServedAnalytics::serve_batch(
    std::span<const AnalyticalQuery> queries) {
  std::vector<ServedAnswer> out(queries.size());
  if (queries.empty()) return out;

  // Phase 1 (parallel): read-only model predictions against the agent state
  // frozen at batch entry. Each query writes only its own slot.
  std::vector<DatalessAgent::PeekResult> peek(queries.size());
  std::vector<double> predict_ms(queries.size(), 0.0);
  ParallelFor(queries.size(), [&](std::size_t i) {
    Timer t;
    peek[i] = agent_.peek_predict(queries[i]);
    predict_ms[i] = t.elapsed_ms();
  });

  // Phase 2 (serial, batch order): all shared-state work — confidence
  // gating, audit coin flips, admission/shedding decisions, exact
  // executions (cluster + fault injector), statistics — in the same order
  // at any thread count.
  std::vector<std::pair<AnalyticalQuery, double>> train;
  train.reserve(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const AnalyticalQuery& query = queries[i];
    ServedAnswer& ans = out[i];
    Timer timer;
    ++stats_.queries;
    if (config_.queue_capacity_ms > 0.0)
      queue_backlog_ms_ =
          std::max(0.0, queue_backlog_ms_ - config_.drain_ms_per_query);
    const bool bootstrapping = stats_.queries <= config_.bootstrap_queries;
    if (!bootstrapping) {
      const bool served = peek[i].usable && peek[i].confident;
      agent_.record_serve_outcome(served);
      if (served) {
        ans.data_less = true;
        ans.value = peek[i].prediction.value;
        ans.prediction = peek[i].prediction;
        if (config_.audit_fraction > 0.0 &&
            audit_rng_.bernoulli(config_.audit_fraction)) {
          try {
            ans.exact = execute_exact(query);
            ans.audited = true;
            train.emplace_back(query, ans.exact.answer);
          } catch (const OutageError&) {
            // Best-effort audit (classified inside execute_exact).
          }
        }
        ++stats_.data_less_served;
        ans.latency_ms = predict_ms[i] + timer.elapsed_ms();
        continue;
      }
      if (overloaded() && peek[i].usable) {
        ans.shed = true;
        ans.data_less = true;
        ans.value = peek[i].prediction.value;
        ans.prediction = peek[i].prediction;
        ++stats_.shed;
        ans.latency_ms = predict_ms[i] + timer.elapsed_ms();
        continue;
      }
    }
    try {
      ans.exact = execute_exact(query);
    } catch (const OutageError&) {
      if (peek[i].usable) {
        ans.degraded = true;
        ans.data_less = true;
        ans.value = peek[i].prediction.value;
        ans.prediction = peek[i].prediction;
        ++stats_.degraded_served;
        ++stats_.data_less_served;
      } else {
        ++stats_.failed;
        ans.failed = true;
      }
      ans.latency_ms = predict_ms[i] + timer.elapsed_ms();
      continue;
    }
    ans.value = ans.exact.answer;
    train.emplace_back(query, ans.exact.answer);
    ++stats_.exact_answered;
    ans.latency_ms = predict_ms[i] + timer.elapsed_ms();
  }

  // Phase 3: absorb the batch's ground truth; refits fan out per quantum.
  if (!train.empty()) agent_.observe_batch(train);
  return out;
}

}  // namespace sea
