#include "sea/served.h"

#include "common/parallel.h"
#include "common/timer.h"

namespace sea {

ServedAnalytics::ServedAnalytics(DatalessAgent& agent, ExactExecutor& exec,
                                 ServeConfig config)
    : agent_(agent), exec_(exec), config_(config),
      audit_rng_(config.audit_seed) {}

ServedAnswer ServedAnalytics::serve(const AnalyticalQuery& query) {
  ServedAnswer out;
  Timer timer;
  ++stats_.queries;

  const bool bootstrapping = stats_.queries <= config_.bootstrap_queries;
  if (!bootstrapping) {
    if (auto pred = agent_.try_predict(query)) {
      out.data_less = true;
      out.value = pred->value;
      out.prediction = *pred;
      if (config_.audit_fraction > 0.0 &&
          audit_rng_.bernoulli(config_.audit_fraction)) {
        try {
          out.exact = exec_.execute(query, config_.exact_paradigm);
          out.audited = true;
          agent_.observe(query, out.exact.answer);
          ++stats_.exact_executed;
        } catch (const std::runtime_error&) {
          // Audit is best-effort: an outage skips the audit but never
          // fails the (already confident) data-less answer.
          ++stats_.exact_failures;
        }
      }
      ++stats_.data_less_served;
      out.latency_ms = timer.elapsed_ms();
      return out;
    }
  }

  try {
    out.exact = exec_.execute(query, config_.exact_paradigm);
  } catch (const std::runtime_error&) {
    // Exact path unavailable (replicas exhausted / retries exhausted):
    // serve the model's best answer, explicitly flagged degraded, instead
    // of failing the query — the availability axis of the paper's P4.
    ++stats_.exact_failures;
    if (auto pred = agent_.maybe_predict(query)) {
      out.degraded = true;
      out.data_less = true;
      out.value = pred->value;
      out.prediction = *pred;
      ++stats_.degraded_served;
      out.latency_ms = timer.elapsed_ms();
      return out;
    }
    ++stats_.unanswerable;
    throw;
  }
  out.value = out.exact.answer;
  agent_.observe(query, out.exact.answer);
  ++stats_.exact_executed;
  out.latency_ms = timer.elapsed_ms();
  return out;
}

std::vector<ServedAnswer> ServedAnalytics::serve_batch(
    std::span<const AnalyticalQuery> queries) {
  std::vector<ServedAnswer> out(queries.size());
  if (queries.empty()) return out;

  // Phase 1 (parallel): read-only model predictions against the agent state
  // frozen at batch entry. Each query writes only its own slot.
  std::vector<DatalessAgent::PeekResult> peek(queries.size());
  std::vector<double> predict_ms(queries.size(), 0.0);
  ParallelFor(queries.size(), [&](std::size_t i) {
    Timer t;
    peek[i] = agent_.peek_predict(queries[i]);
    predict_ms[i] = t.elapsed_ms();
  });

  // Phase 2 (serial, batch order): all shared-state work — confidence
  // gating, audit coin flips, exact executions (cluster + fault injector),
  // statistics — in the same order at any thread count.
  std::vector<std::pair<AnalyticalQuery, double>> train;
  train.reserve(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const AnalyticalQuery& query = queries[i];
    ServedAnswer& ans = out[i];
    Timer timer;
    ++stats_.queries;
    const bool bootstrapping = stats_.queries <= config_.bootstrap_queries;
    if (!bootstrapping) {
      const bool served = peek[i].usable && peek[i].confident;
      agent_.record_serve_outcome(served);
      if (served) {
        ans.data_less = true;
        ans.value = peek[i].prediction.value;
        ans.prediction = peek[i].prediction;
        if (config_.audit_fraction > 0.0 &&
            audit_rng_.bernoulli(config_.audit_fraction)) {
          try {
            ans.exact = exec_.execute(query, config_.exact_paradigm);
            ans.audited = true;
            train.emplace_back(query, ans.exact.answer);
            ++stats_.exact_executed;
          } catch (const std::runtime_error&) {
            ++stats_.exact_failures;
          }
        }
        ++stats_.data_less_served;
        ans.latency_ms = predict_ms[i] + timer.elapsed_ms();
        continue;
      }
    }
    try {
      ans.exact = exec_.execute(query, config_.exact_paradigm);
    } catch (const std::runtime_error&) {
      ++stats_.exact_failures;
      if (peek[i].usable) {
        ans.degraded = true;
        ans.data_less = true;
        ans.value = peek[i].prediction.value;
        ans.prediction = peek[i].prediction;
        ++stats_.degraded_served;
      } else {
        ++stats_.unanswerable;
        ans.failed = true;
      }
      ans.latency_ms = predict_ms[i] + timer.elapsed_ms();
      continue;
    }
    ans.value = ans.exact.answer;
    train.emplace_back(query, ans.exact.answer);
    ++stats_.exact_executed;
    ans.latency_ms = predict_ms[i] + timer.elapsed_ms();
  }

  // Phase 3: absorb the batch's ground truth; refits fan out per quantum.
  if (!train.empty()) agent_.observe_batch(train);
  return out;
}

}  // namespace sea
