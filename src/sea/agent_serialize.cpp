// Binary (de)serialization of DatalessAgent — the "ship the model, not the
// data" wire format (paper RT1.5 / RT5.2).
#include <cstring>
#include <type_traits>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "sea/agent.h"

namespace sea {

namespace {

constexpr char kMagic[8] = {'S', 'E', 'A', 'A', 'G', 'T', '0', '1'};

template <typename T>
void write_pod(std::ostream& out, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T read_pod(std::istream& in) {
  static_assert(std::is_trivially_copyable_v<T>);
  T v;
  in.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!in) throw std::runtime_error("DatalessAgent::deserialize: truncated");
  return v;
}

void write_doubles(std::ostream& out, const std::vector<double>& v) {
  write_pod<std::uint64_t>(out, v.size());
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(double)));
}

std::vector<double> read_doubles(std::istream& in) {
  const auto n = read_pod<std::uint64_t>(in);
  if (n > (1ull << 32))
    throw std::runtime_error("DatalessAgent::deserialize: absurd length");
  std::vector<double> v(n);
  in.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(n * sizeof(double)));
  if (!in) throw std::runtime_error("DatalessAgent::deserialize: truncated");
  return v;
}

void write_string(std::ostream& out, const std::string& s) {
  write_pod<std::uint64_t>(out, s.size());
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string read_string(std::istream& in) {
  const auto n = read_pod<std::uint64_t>(in);
  if (n > (1ull << 20))
    throw std::runtime_error("DatalessAgent::deserialize: absurd string");
  std::string s(n, '\0');
  in.read(s.data(), static_cast<std::streamsize>(n));
  if (!in) throw std::runtime_error("DatalessAgent::deserialize: truncated");
  return s;
}

}  // namespace

void DatalessAgent::serialize(std::ostream& out) const {
  out.write(kMagic, sizeof(kMagic));
  write_pod(out, config_);
  write_pod(out, staleness_);
  write_pod<std::uint64_t>(out, fresh_since_update_);

  write_pod<std::uint64_t>(out, signatures_.size());
  for (const auto& [sig, st] : signatures_) {
    write_string(out, sig);
    write_doubles(out, st.domain.lo);
    write_doubles(out, st.domain.hi);
    // Quantizer state.
    write_pod<std::uint64_t>(out, st.quantizer.clock());
    write_pod<std::uint64_t>(out, st.quantizer.size());
    for (std::size_t q = 0; q < st.quantizer.size(); ++q) {
      const Quantum& quantum = st.quantizer.quantum(q);
      write_doubles(out, quantum.center);
      write_pod<std::uint64_t>(out, quantum.population);
      write_pod<std::uint64_t>(out, quantum.last_used);
      write_pod(out, quantum.mean_sq_distance);
    }
    // Per-quantum models.
    write_pod<std::uint64_t>(out, st.models.size());
    for (const auto& m : st.models) {
      write_pod<std::uint8_t>(out, m.has_value() ? 1 : 0);
      if (!m) continue;
      write_pod<std::uint64_t>(out, m->xs.size());
      for (const auto& x : m->xs) write_doubles(out, x);
      write_doubles(out, m->ys);
      write_pod<std::uint8_t>(out, m->linear.fitted() ? 1 : 0);
      if (m->linear.fitted()) {
        write_doubles(out, m->linear.weights());
        write_pod(out, m->linear.intercept());
        write_pod(out, m->linear.r_squared());
      }
      write_pod<std::uint8_t>(out, m->gbm.fitted() ? 1 : 0);
      write_pod<std::uint8_t>(out, m->prefer_gbm ? 1 : 0);
      write_doubles(out, m->abs_residuals.window());
      write_pod<std::uint64_t>(out, m->abs_residuals.count());
      write_pod<std::uint64_t>(out, m->since_refit);
    }
  }
}

DatalessAgent DatalessAgent::deserialize(
    std::istream& in,
    std::function<Rect(const std::vector<std::size_t>&)> domain_provider) {
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
    throw std::runtime_error("DatalessAgent::deserialize: bad magic");
  const auto config = read_pod<AgentConfig>(in);
  DatalessAgent agent(config, std::move(domain_provider));
  agent.staleness_ = read_pod<double>(in);
  agent.fresh_since_update_ =
      static_cast<std::size_t>(read_pod<std::uint64_t>(in));

  const auto num_sigs = read_pod<std::uint64_t>(in);
  for (std::uint64_t s = 0; s < num_sigs; ++s) {
    const std::string sig = read_string(in);
    Rect domain;
    domain.lo = read_doubles(in);
    domain.hi = read_doubles(in);
    SignatureState st(config, std::move(domain));
    const auto clock = read_pod<std::uint64_t>(in);
    const auto num_quanta = read_pod<std::uint64_t>(in);
    std::vector<Quantum> quanta(num_quanta);
    for (auto& q : quanta) {
      q.center = read_doubles(in);
      q.population = read_pod<std::uint64_t>(in);
      q.last_used = read_pod<std::uint64_t>(in);
      q.mean_sq_distance = read_pod<double>(in);
    }
    st.quantizer.restore(std::move(quanta), clock);

    const auto num_models = read_pod<std::uint64_t>(in);
    st.models.resize(num_models);
    for (std::size_t qid = 0; qid < st.models.size(); ++qid) {
      auto& slot = st.models[qid];
      if (read_pod<std::uint8_t>(in) == 0) continue;
      // The RNG stream seed is a pure function of (root seed, quantum id),
      // so the replica reconstructs the same stream the source would use.
      slot.emplace(config, quantum_stream_seed(config.seed, qid));
      QuantumModel& m = *slot;
      const auto n = read_pod<std::uint64_t>(in);
      m.xs.reserve(n);
      for (std::uint64_t i = 0; i < n; ++i) m.xs.push_back(read_doubles(in));
      m.ys = read_doubles(in);
      if (m.ys.size() != m.xs.size())
        throw std::runtime_error("DatalessAgent::deserialize: pair mismatch");
      // kNN fallback rebuilds from the shipped pairs.
      for (std::size_t i = 0; i < m.xs.size(); ++i)
        m.knn.add(m.xs[i], m.ys[i]);
      if (read_pod<std::uint8_t>(in) == 1) {
        auto weights = read_doubles(in);
        const double intercept = read_pod<double>(in);
        const double r2 = read_pod<double>(in);
        m.linear = LinearModel::from_parts(std::move(weights), intercept, r2);
      }
      const bool had_gbm = read_pod<std::uint8_t>(in) == 1;
      m.prefer_gbm = read_pod<std::uint8_t>(in) == 1;
      auto window = read_doubles(in);
      const auto seen = read_pod<std::uint64_t>(in);
      m.abs_residuals.restore(std::move(window),
                              static_cast<std::size_t>(seen));
      m.since_refit = static_cast<std::size_t>(read_pod<std::uint64_t>(in));
      // GBM ensembles are not shipped (tree serialization is not worth the
      // wire bytes); refitting on the shipped pairs is deterministic and
      // recovers an equivalent model.
      if (had_gbm && !m.xs.empty()) {
        m.gbm = GbmRegressor(quantum_gbm_params());
        m.gbm.fit(m.xs, m.ys, &m.rng);
      }
    }
    agent.signatures_.emplace(sig, std::move(st));
  }
  return agent;
}

}  // namespace sea
