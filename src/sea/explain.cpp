#include "sea/explain.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "common/stats.h"

namespace sea {

double Explanation::evaluate(double param) const {
  if (segments.empty())
    throw std::logic_error("Explanation::evaluate: empty explanation");
  if (param <= segments.front().lo) return segments.front().evaluate(param);
  for (const auto& s : segments)
    if (param <= s.hi) return s.evaluate(param);
  return segments.back().evaluate(param);
}

std::string Explanation::to_string() const {
  std::ostringstream os;
  os << "f(" << parameter << ") = ";
  for (std::size_t i = 0; i < segments.size(); ++i) {
    if (i) os << "; ";
    const auto& s = segments[i];
    os << s.slope << "*" << parameter
       << (s.intercept >= 0.0 ? "+" : "") << s.intercept << " on ["
       << s.lo << "," << s.hi << "]";
  }
  return os.str();
}

namespace {

/// Greedy left-to-right segmentation: extend the current segment while the
/// OLS fit over its points keeps every residual within tolerance * scale.
std::vector<ExplanationSegment> segment_fit(const std::vector<double>& xs,
                                            const std::vector<double>& ys,
                                            double tolerance,
                                            std::size_t max_segments) {
  std::vector<ExplanationSegment> segs;
  const std::size_t n = xs.size();
  double scale = 1.0;
  for (const double y : ys) scale = std::max(scale, std::abs(y));

  std::size_t begin = 0;
  while (begin < n) {
    // Grow the segment as far as the tolerance allows (always >= 2 pts).
    std::size_t end = std::min(begin + 2, n);
    RunningCovariance cov;
    cov.add(xs[begin], ys[begin]);
    if (end - begin > 1) cov.add(xs[begin + 1], ys[begin + 1]);
    std::size_t best_end = end;
    while (end < n) {
      RunningCovariance trial = cov;
      trial.add(xs[end], ys[end]);
      // Check residuals of the trial fit over [begin, end].
      const double slope = trial.slope();
      const double intercept = trial.intercept();
      double worst = 0.0;
      for (std::size_t i = begin; i <= end; ++i)
        worst = std::max(worst,
                         std::abs(ys[i] - (slope * xs[i] + intercept)));
      if (worst > tolerance * scale &&
          segs.size() + 1 < max_segments)  // last segment must absorb rest
        break;
      cov = trial;
      ++end;
      best_end = end;
    }
    ExplanationSegment s;
    s.lo = xs[begin];
    s.hi = xs[std::min(best_end, n) - 1];
    s.slope = cov.slope();
    s.intercept = cov.intercept();
    segs.push_back(s);
    begin = best_end;
  }
  return segs;
}

}  // namespace

std::optional<Explanation> Explainer::explain(const AnalyticalQuery& query,
                                              ExplainParameter param,
                                              double lo, double hi,
                                              std::size_t width_dim) {
  if (hi <= lo)
    throw std::invalid_argument("Explainer::explain: hi must exceed lo");
  if (config_.sweep_steps < 4)
    throw std::invalid_argument("Explainer::explain: need >= 4 sweep steps");

  switch (param) {
    case ExplainParameter::kRadius:
      if (query.selection != SelectionType::kRadius)
        throw std::invalid_argument("explain(kRadius): not a radius query");
      break;
    case ExplainParameter::kWidth:
      if (query.selection != SelectionType::kRange)
        throw std::invalid_argument("explain(kWidth): not a range query");
      if (width_dim >= query.subspace_cols.size())
        throw std::invalid_argument("explain(kWidth): bad width_dim");
      break;
    case ExplainParameter::kK:
      if (query.selection != SelectionType::kNearestNeighbors)
        throw std::invalid_argument("explain(kK): not a kNN query");
      break;
  }

  std::vector<double> xs, ys;
  xs.reserve(config_.sweep_steps);
  ys.reserve(config_.sweep_steps);
  for (std::size_t s = 0; s < config_.sweep_steps; ++s) {
    const double v = lo + (hi - lo) * static_cast<double>(s) /
                              static_cast<double>(config_.sweep_steps - 1);
    AnalyticalQuery q = query;
    switch (param) {
      case ExplainParameter::kRadius:
        q.ball.radius = v;
        break;
      case ExplainParameter::kWidth: {
        const Point c = query.range.center();
        q.range.lo[width_dim] = c[width_dim] - v / 2.0;
        q.range.hi[width_dim] = c[width_dim] + v / 2.0;
        break;
      }
      case ExplainParameter::kK:
        q.knn_k = std::max<std::size_t>(
            1, static_cast<std::size_t>(std::llround(v)));
        break;
    }
    if (const auto p = agent_.maybe_predict(q)) {
      xs.push_back(v);
      ys.push_back(p->value);
    }
  }
  if (xs.size() < 4) return std::nullopt;

  Explanation e;
  switch (param) {
    case ExplainParameter::kRadius:
      e.parameter = "radius";
      break;
    case ExplainParameter::kWidth:
      e.parameter = "width";
      break;
    case ExplainParameter::kK:
      e.parameter = "k";
      break;
  }
  e.segments =
      segment_fit(xs, ys, config_.tolerance, config_.max_segments);
  return e;
}

std::vector<SubspaceFinding> find_interesting_subspaces(
    DatalessAgent& agent, const AnalyticalQuery& prototype, const Rect& domain,
    double radius, double threshold, bool greater, std::size_t grid_per_dim,
    double max_expected_rel_error) {
  if (grid_per_dim == 0)
    throw std::invalid_argument("find_interesting_subspaces: grid_per_dim");
  const std::size_t d = prototype.subspace_cols.size();
  if (domain.dims() != d)
    throw std::invalid_argument("find_interesting_subspaces: domain dims");

  std::vector<SubspaceFinding> findings;
  std::vector<std::size_t> coord(d, 0);
  for (;;) {
    Ball region;
    region.center.resize(d);
    for (std::size_t i = 0; i < d; ++i) {
      const double step = (domain.hi[i] - domain.lo[i]) /
                          static_cast<double>(grid_per_dim);
      region.center[i] =
          domain.lo[i] + (static_cast<double>(coord[i]) + 0.5) * step;
    }
    region.radius = radius;

    AnalyticalQuery q = prototype;
    q.selection = SelectionType::kRadius;
    q.ball = region;
    if (const auto p = agent.maybe_predict(q)) {
      const bool hit = greater ? p->value > threshold : p->value < threshold;
      if (hit && p->expected_rel_error <= max_expected_rel_error)
        findings.push_back(
            SubspaceFinding{region, p->value, p->expected_abs_error});
    }

    // Advance the grid odometer.
    std::size_t i = 0;
    for (; i < d; ++i) {
      if (++coord[i] < grid_per_dim) break;
      coord[i] = 0;
    }
    if (i == d) break;
  }
  return findings;
}

std::vector<SubspaceFinding> top_interesting_subspaces(
    DatalessAgent& agent, const AnalyticalQuery& prototype, const Rect& domain,
    double radius, std::size_t j, bool greater, std::size_t grid_per_dim,
    double max_expected_rel_error) {
  // Threshold at -inf/+inf keeps every confident prediction, then rank.
  const double keep_all = greater ? -std::numeric_limits<double>::infinity()
                                  : std::numeric_limits<double>::infinity();
  auto findings = find_interesting_subspaces(agent, prototype, domain, radius,
                                             keep_all, greater, grid_per_dim,
                                             max_expected_rel_error);
  std::sort(findings.begin(), findings.end(),
            [greater](const SubspaceFinding& a, const SubspaceFinding& b) {
              return greater ? a.predicted_value > b.predicted_value
                             : a.predicted_value < b.predicted_value;
            });
  if (findings.size() > j) findings.resize(j);
  return findings;
}

}  // namespace sea
