// Exact execution of analytical queries over the simulated BDAS.
//
// Two interchangeable paradigms (paper RT3.2):
//  * kMapReduce — the Fig. 1 status quo: every node launches a task, scans
//    its whole partition through all stack layers, and shuffles partial
//    aggregates.
//  * kCoordinatorIndexed — the big-data-less path (P3): the coordinator
//    RPCs only relevant nodes, which answer from per-node k-d trees with
//    surgical tuple access; only 48-byte aggregate states travel.
//
// Both return the same exact answer; they differ (hugely) in cost, which
// is exactly what experiments E1/E6 measure.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/cluster.h"
#include "exec/exec_report.h"
#include "fault/outage.h"
#include "index/grid.h"
#include "index/kdtree.h"
#include "index/learned.h"
#include "sea/aggregate.h"
#include "sea/query.h"

namespace sea {

enum class ExecParadigm {
  kMapReduce,
  kCoordinatorIndexed,  ///< per-node k-d trees
  kCoordinatorGrid,     ///< per-node uniform grids (RT3.1 alternative)
  kCoordinatorLearned,  ///< per-node CDF-learned grids (exact, see learned.h)
};

const char* to_string(ExecParadigm p) noexcept;

struct ExactResult {
  double answer = 0.0;
  std::uint64_t qualifying_tuples = 0;
  /// Raw mergeable aggregate (lets callers combine answers across systems,
  /// e.g. the polystore's federated queries).
  AggregateState state;
  ExecReport report;
};

class ExactExecutor {
 public:
  /// Executes against table `table_name` stored in `cluster`.
  /// `coordinator` is the node issuing queries (also reducer target).
  ExactExecutor(Cluster& cluster, std::string table_name,
                NodeId coordinator = 0);
  ~ExactExecutor();  // out-of-line: MrScratch is complete only in exact.cpp

  /// Exact answer via the chosen paradigm. The kCoordinatorIndexed path
  /// lazily builds (and caches) per-node k-d trees over the query's
  /// subspace columns; build time is reported via index_build_ms().
  /// When `deadline` is non-null, every modelled cost (transfers, task
  /// overheads, retry backoff) is charged against its budget and the
  /// execution aborts with DeadlineExceeded once it is spent.
  ExactResult execute(const AnalyticalQuery& query, ExecParadigm paradigm,
                      QueryDeadline* deadline = nullptr);

  /// Global bounds of the given columns (union over partitions); cached.
  /// Used for feature normalization by the agent and workload generators.
  const Rect& domain(const std::vector<std::size_t>& cols);

  Cluster& cluster() noexcept { return cluster_; }
  const std::string& table_name() const noexcept { return table_; }
  double index_build_ms() const noexcept { return index_build_ms_; }

  /// Drops cached indexes/domains (call after data updates).
  void invalidate_caches();

 private:
  struct NodeIndexes {
    std::vector<KdTree> per_node;
  };
  struct NodeGrids {
    std::vector<GridIndex> per_node;
  };
  struct NodeLearnedGrids {
    std::vector<LearnedGrid> per_node;
  };

  static std::string colset_key(const std::vector<std::size_t>& cols);
  const NodeIndexes& indexes_for(const std::vector<std::size_t>& cols);
  const NodeGrids& grids_for(const std::vector<std::size_t>& cols);
  const NodeLearnedGrids& learned_for(const std::vector<std::size_t>& cols);

  ExactResult execute_mapreduce(const AnalyticalQuery& query,
                                QueryDeadline* deadline);
  /// Shared coordinator-cohort path; `access` selects the per-node access
  /// structure (RT3.1): k-d tree, uniform grid, or learned grid.
  ExactResult execute_indexed(const AnalyticalQuery& query,
                              ExecParadigm access, QueryDeadline* deadline);

  /// Scans `rows` of a partition and accumulates qualifying tuples.
  AggregateState aggregate_rows(const Table& part,
                                const std::vector<std::uint64_t>& rows,
                                const AnalyticalQuery& q) const;

  /// Reusable MapReduce shuffle buffers (one per job key/value shape),
  /// kept warm across the executor's query stream — see MapReduceScratch.
  struct MrScratch;

  Cluster& cluster_;
  std::string table_;
  NodeId coordinator_;
  double index_build_ms_ = 0.0;
  std::unordered_map<std::string, NodeIndexes> index_cache_;
  std::unordered_map<std::string, NodeGrids> grid_cache_;
  std::unordered_map<std::string, NodeLearnedGrids> learned_cache_;
  std::unordered_map<std::string, Rect> domain_cache_;
  std::unique_ptr<MrScratch> mr_scratch_;
};

}  // namespace sea
