// Self-verifying durable encodings for the checkpoint/WAL store.
//
// Every record the CheckpointStore persists is wrapped in a frame:
//
//   [magic u32][payload_len u32][crc u32][payload bytes]
//
// all fields little-endian, with the CRC-32 (IEEE 802.3 polynomial)
// computed over the magic+length prefix and the payload together, so a
// flip anywhere in the frame — including the length field — fails
// verification. Decoding distinguishes *structural* damage (torn tail,
// bad magic, absurd length), which even a checksum-oblivious reader trips
// over loudly, from *silent* damage (flipped bits with intact framing),
// which only CRC verification catches. That split is what the
// verify-on/verify-off experiment arms in E19 measure.
//
// Payload codecs for WAL records and checkpoints are explicit
// little-endian byte layouts (never memcpy of structs), so a frame
// written on any host decodes identically on any other and a flipped
// payload byte decodes to *wrong values*, not undefined behavior. Decoders
// cap every embedded count so garbage never drives allocation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "sea/query.h"

namespace sea::recovery {

/// One-shot CRC-32 (IEEE, reflected, init/xorout 0xFFFFFFFF): the
/// known-answer for "123456789" is 0xCBF43926.
std::uint32_t crc32(std::string_view bytes) noexcept;
/// CRC-32 of the concatenation `first + second` without materializing it.
std::uint32_t crc32(std::string_view first, std::string_view second) noexcept;

inline constexpr std::uint32_t kFrameMagic = 0x5EAF14A3u;
inline constexpr std::size_t kFrameHeaderBytes = 12;
/// Frames larger than this are structurally invalid (a flipped length
/// field must not drive a giant allocation).
inline constexpr std::uint32_t kMaxFramePayloadBytes = 1u << 28;

enum class FrameStatus {
  kOk,
  kTornTail,     ///< log ends mid-header or mid-payload
  kBadMagic,     ///< header does not start a frame
  kBadLength,    ///< length field exceeds kMaxFramePayloadBytes
  kBadChecksum,  ///< framing intact but the CRC does not match (verify only)
};

const char* to_string(FrameStatus s) noexcept;

/// Result of decoding one frame at an offset. `payload` views into the
/// caller's log buffer (valid while the buffer lives); `consumed` is the
/// total frame size. Both are zero unless status == kOk.
struct FrameView {
  FrameStatus status = FrameStatus::kTornTail;
  std::string_view payload;
  std::size_t consumed = 0;
};

std::string encode_frame(std::string_view payload);

/// Decodes the frame starting at `offset`. Structural checks (torn tail,
/// magic, length) always run — a real reader derails on those with or
/// without checksums; `verify` additionally recomputes the CRC, which is
/// what turns a silent bit flip into a detected kBadChecksum.
FrameView decode_frame(std::string_view log, std::size_t offset,
                       bool verify) noexcept;

// --- WAL record payload ---------------------------------------------------

std::string encode_wal_payload(std::uint64_t version,
                               const AnalyticalQuery& query, double answer);

/// `ok == false` means the payload was structurally undecodable (bad
/// count, short buffer, trailing garbage) — damage even an unchecked
/// reader notices. A flipped *value* byte still decodes with ok == true
/// and simply carries wrong numbers; only frame verification catches it.
struct WalPayload {
  bool ok = false;
  std::uint64_t version = 0;
  AnalyticalQuery query;
  double answer = 0.0;
};

WalPayload decode_wal_payload(std::string_view payload);

// --- Checkpoint payload ---------------------------------------------------

std::string encode_checkpoint_payload(std::uint64_t version,
                                      double taken_at_ms,
                                      std::string_view blob);

struct CheckpointPayload {
  bool ok = false;
  std::uint64_t version = 0;
  double taken_at_ms = 0.0;
  std::string blob;
};

CheckpointPayload decode_checkpoint_payload(std::string_view payload);

}  // namespace sea::recovery
