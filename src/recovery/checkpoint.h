// Durable state for crash recovery (DESIGN.md "Crash recovery &
// anti-entropy"): per-node model checkpoints plus a write-ahead delta log
// of observe() updates since the last checkpoint.
//
// The store models a node's *durable* medium: a crash wipes the node's
// in-memory model (src/fault node_crashes) but never the checkpoint or
// WAL held here. On restart the node replays checkpoint + log locally,
// then an anti-entropy pass (replica.h) fetches whatever was committed
// while it was down.
//
// The WAL is append-only and always written; taking a checkpoint
// truncates the prefix the snapshot already covers. With checkpointing
// disabled the log is never truncated, so a restart replays the entire
// observation history from genesis — correct, but slow, which is exactly
// the trade-off experiment E17 measures.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "net/network.h"
#include "sea/query.h"

namespace sea::recovery {

/// One logged model update: the (query, truth) pair absorbed at `version`
/// (versions are 1-based positions in the global committed history).
struct WalRecord {
  std::uint64_t version = 0;
  AnalyticalQuery query;
  double answer = 0.0;
};

/// A full serialized model snapshot covering history up to `version`.
struct CheckpointRecord {
  std::string blob;            ///< DatalessAgent::serialize bytes
  std::uint64_t version = 0;   ///< last update included in the snapshot
  double taken_at_ms = 0.0;    ///< modelled time the snapshot completed
};

struct CheckpointStoreStats {
  std::uint64_t checkpoints_taken = 0;
  std::uint64_t wal_appends = 0;
  std::uint64_t wal_truncated = 0;  ///< records dropped by checkpoints
};

/// Modelled wire/disk footprint of one WAL record (mirrors the geo
/// layer's query_wire_bytes plus version + answer framing).
inline std::size_t wal_record_bytes(const AnalyticalQuery& q) noexcept {
  return (2 * q.subspace_cols.size() + 6) * sizeof(double) + 16;
}

/// Per-node durable storage: at most one checkpoint (newer replaces
/// older) plus the ordered WAL suffix not yet covered by it. Keyed by a
/// std::map so any iteration is deterministic.
class CheckpointStore {
 public:
  /// Replaces the node's checkpoint and truncates every WAL record the
  /// snapshot already covers (version <= record.version).
  void put_checkpoint(NodeId node, CheckpointRecord record);

  /// Latest checkpoint, or nullptr if the node never took one.
  const CheckpointRecord* checkpoint(NodeId node) const;

  /// Appends one update to the node's log (always durable, even if a
  /// crash follows immediately).
  void append_wal(NodeId node, WalRecord record);

  /// The node's WAL suffix in append order (empty if none).
  const std::vector<WalRecord>& wal(NodeId node) const;

  /// Modelled byte footprint of the node's current WAL suffix.
  std::uint64_t wal_bytes(NodeId node) const;

  const CheckpointStoreStats& stats() const noexcept { return stats_; }

 private:
  struct NodeState {
    std::optional<CheckpointRecord> checkpoint;
    std::vector<WalRecord> wal;
  };
  std::map<NodeId, NodeState> nodes_;
  CheckpointStoreStats stats_;
};

}  // namespace sea::recovery
