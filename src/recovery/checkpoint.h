// Durable state for crash recovery (DESIGN.md "Crash recovery &
// anti-entropy" + "Storage faults & integrity"): per-node model
// checkpoints plus a write-ahead delta log of observe() updates.
//
// The store models a node's *durable* medium: a crash wipes the node's
// in-memory model (src/fault node_crashes) but never the frames held
// here. What a crash does NOT protect against is the medium itself lying:
// every record is persisted through an optional StorageFaultModel
// (fault/storage.h) that may tear the write to a prefix, flip a bit, or
// lose the flush outright — so every stored frame is exactly what a
// faulty disk would return, and readers must cope.
//
// They cope with framing (frame.h): each checkpoint and WAL record is a
// length-prefixed, CRC-checksummed frame. Verified reads
// (load_checkpoint / replay_wal with verify=true) detect torn tails,
// flipped bits, and lost-flush version gaps deterministically; replay
// truncates at the first bad frame and checkpoint loads fall back to the
// previous retained epoch. Unchecked reads model a checksum-oblivious
// reader: structural damage still stops them loudly, but flipped values
// and silent gaps are applied as-is (the store tracks that omnisciently —
// the `tainted` bookkeeping the E19 wrong-answer accounting is built on).
//
// Checkpoint retention is 2 epochs by default, and taking a checkpoint
// truncates only the WAL prefix covered by the *oldest retained* epoch:
// falling back one epoch therefore always finds a contiguous WAL from the
// fallback version (truncating eagerly would leave a hole between the
// epochs that even a verified reader could not detect).
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "fault/storage.h"
#include "net/network.h"
#include "sea/query.h"

namespace sea::recovery {

/// One logged model update: the (query, truth) pair absorbed at `version`
/// (versions are 1-based positions in the global committed history).
struct WalRecord {
  std::uint64_t version = 0;
  AnalyticalQuery query;
  double answer = 0.0;
};

/// A full serialized model snapshot covering history up to `version`.
struct CheckpointRecord {
  std::string blob;            ///< DatalessAgent::serialize bytes
  std::uint64_t version = 0;   ///< last update included in the snapshot
  double taken_at_ms = 0.0;    ///< modelled time the snapshot completed
};

/// Counters guarded by a sizeof static_assert in checkpoint.cpp.
struct CheckpointStoreStats {
  std::uint64_t checkpoints_taken = 0;
  std::uint64_t wal_appends = 0;
  std::uint64_t wal_truncated = 0;   ///< records dropped by checkpoints
  std::uint64_t frames_written = 0;  ///< checkpoint + WAL frames persisted
  std::uint64_t frame_bytes_written = 0;  ///< physical bytes (post-fault)
  std::uint64_t torn_writes = 0;     ///< frames torn to a prefix
  std::uint64_t bit_flips = 0;       ///< frames with a flipped bit
  std::uint64_t lost_flushes = 0;    ///< frames that never landed
  std::uint64_t stalled_writes = 0;  ///< frames written inside a stall
  std::uint64_t nodes_reset = 0;     ///< reset_node calls (scrub repairs)
};

/// Result of a (verified or unchecked) checkpoint load.
struct CheckpointLoad {
  bool loaded = false;
  std::string blob;
  std::uint64_t version = 0;
  double taken_at_ms = 0.0;
  /// The newest epoch was rejected and an older one (or nothing) was used.
  bool fell_back = false;
  /// Epoch frames rejected during the walk (verification or structure).
  std::size_t corrupt_detected = 0;
  /// Omniscient: the returned blob came from a corrupted frame that still
  /// decoded (unchecked mode), or from a checkpoint of divergent state.
  bool tainted = false;
};

/// Result of a (verified or unchecked) WAL replay walk.
struct WalReplay {
  std::vector<WalRecord> records;    ///< decoded records, in walk order
  std::vector<bool> record_tainted;  ///< omniscient, parallel to records
  std::size_t frames_total = 0;      ///< frames physically present
  std::size_t corrupt_detected = 0;  ///< frames rejected (stops the walk)
  bool truncated = false;            ///< stopped before the end of the log
  /// Omniscient: an unchecked walk silently skipped committed versions
  /// (lost flush / flipped version field) — the replica is missing
  /// updates it believes it has.
  bool silent_gap = false;
};

/// Verified integrity scan of one node's durable state (the scrubber's
/// durable pass): counts frames that fail structural or CRC checks.
struct NodeIntegrityReport {
  std::size_t frames = 0;
  std::size_t checkpoint_corrupt = 0;
  std::size_t wal_corrupt = 0;

  std::size_t corrupt_frames() const noexcept {
    return checkpoint_corrupt + wal_corrupt;
  }
  bool clean() const noexcept { return corrupt_frames() == 0; }
};

/// Modelled wire/disk footprint of one WAL record (mirrors the geo
/// layer's query_wire_bytes plus version + answer framing).
inline std::size_t wal_record_bytes(const AnalyticalQuery& q) noexcept {
  return (2 * q.subspace_cols.size() + 6) * sizeof(double) + 16;
}

/// Per-node durable storage: up to `checkpoint_retention` checkpoint
/// epochs (oldest evicted) plus the ordered WAL suffix not yet covered by
/// the oldest retained epoch. Keyed by a std::map so any iteration is
/// deterministic.
class CheckpointStore {
 public:
  /// Routes every subsequent durable write through `model` (nullptr
  /// restores clean writes). The caller owns the model.
  void attach_faults(StorageFaultModel* model) noexcept { faults_ = model; }

  /// Retained checkpoint epochs per node (>= 1). 2 (the default) is the
  /// minimum that makes fallback sound; 1 restores the seed's
  /// truncate-eagerly behavior for comparison experiments.
  void set_checkpoint_retention(std::size_t epochs);

  /// Persists a new checkpoint epoch (evicting beyond retention) and
  /// truncates every WAL record covered by the *oldest retained* epoch.
  /// `tainted` is omniscient bookkeeping: the snapshot was taken from a
  /// replica already known to have diverged.
  void put_checkpoint(NodeId node, CheckpointRecord record,
                      bool tainted = false);

  /// Appends one update to the node's log (through the fault model: the
  /// durable image may be torn/flipped/absent).
  void append_wal(NodeId node, WalRecord record);

  /// Strict read of the newest checkpoint epoch: throws
  /// CorruptedStateError (fault/outage.h) if its frame fails
  /// verification; nullopt when the node never took one.
  std::optional<CheckpointRecord> checkpoint(NodeId node) const;

  /// Strict decode of the node's full WAL suffix: throws
  /// CorruptedStateError at the first frame that fails verification.
  std::vector<WalRecord> wal(NodeId node) const;

  /// Physical durable bytes of the node's WAL suffix (frames included).
  std::uint64_t wal_bytes(NodeId node) const;

  /// Recovery read of the best usable checkpoint, newest epoch first.
  /// verify=true re-checks CRCs and falls back one epoch on failure;
  /// verify=false models the checksum-oblivious reader (structural damage
  /// still rejects an epoch — a torn frame crashes any loader — but a
  /// flipped-yet-decodable epoch is returned as-is, flagged `tainted`).
  CheckpointLoad load_checkpoint(NodeId node, bool verify) const;

  /// Recovery walk of the WAL: decodes records in order, skipping those
  /// at or below `after_version` (covered by the loaded snapshot).
  /// verify=true additionally enforces version continuity from
  /// `after_version` (lost flushes leave no frame behind — the gap in the
  /// version sequence is their only trace) and truncates at the first bad
  /// frame; verify=false applies flipped values and crosses gaps
  /// silently, with the taint recorded omnisciently.
  WalReplay replay_wal(NodeId node, std::uint64_t after_version,
                       bool verify) const;

  /// Verified integrity scan (no decode-apply): the scrubber's durable
  /// pass over every retained frame of `node`.
  NodeIntegrityReport verify_node(NodeId node) const;

  /// Discards all durable state of `node` (quarantine repair: untrusted
  /// frames are wiped before the replica is rebuilt from peers).
  void reset_node(NodeId node);

  std::size_t retained_checkpoints(NodeId node) const;
  const CheckpointStoreStats& stats() const noexcept { return stats_; }

 private:
  /// One durable frame exactly as the medium holds it, plus omniscient
  /// bookkeeping no reader consults: `version` drives truncation/eviction
  /// (readers decode their own), `corrupted`/`lost` record what the write
  /// fault did, `tainted` marks frames encoded from divergent state.
  struct StoredFrame {
    std::string bytes;
    std::uint64_t version = 0;
    bool corrupted = false;
    bool lost = false;
    bool tainted = false;
  };
  struct NodeState {
    std::vector<StoredFrame> checkpoints;  ///< oldest..newest
    std::vector<StoredFrame> wal;          ///< append order
  };

  StoredFrame make_frame(NodeId node, std::string payload,
                         std::uint64_t version, bool tainted);

  std::map<NodeId, NodeState> nodes_;
  CheckpointStoreStats stats_;
  StorageFaultModel* faults_ = nullptr;
  std::size_t retention_ = 2;
};

}  // namespace sea::recovery
