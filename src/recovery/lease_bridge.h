// Lease-transfer <-> crash-recovery bridges.
//
// LeaseCatchupBridge: when a shard lease moves (src/membership), the new
// holder may have been serving cold for a while — its model replica can
// lag the committed history. This adapter turns every lease transfer into
// a ModelReplicaSet::request_catchup for the new holder, so the handoff
// triggers the same anti-entropy catch-up machinery a crash restart gets
// and the new authority serves current state as soon as the modelled
// catch-up completes. Register with LeaseDirectory::add_transfer_listener.
//
// QuarantineLeaseGate: the reverse direction — scrub verdicts flow back
// into the lease protocol. A replica the integrity scrubber quarantined
// (digest-divergent, mid-repair) is fenced out of every grant and renewal
// until its repair completes, so known-corrupt state can never acquire
// serving authority. Install with LeaseDirectory::set_eligibility.
#pragma once

#include "membership/lease.h"
#include "recovery/replica.h"

namespace sea {

class LeaseCatchupBridge final : public LeaseTransferListener {
 public:
  explicit LeaseCatchupBridge(recovery::ModelReplicaSet& replicas)
      : replicas_(replicas) {}

  void on_lease_transfer(const std::string& /*table*/, std::size_t /*shard*/,
                         NodeId new_holder, NodeId /*old_holder*/,
                         std::uint64_t /*epoch*/,
                         std::uint64_t /*tick*/) override {
    ++transfers_seen_;
    if (replicas_.request_catchup(new_holder)) ++catchups_started_;
  }

  std::uint64_t transfers_seen() const noexcept { return transfers_seen_; }
  std::uint64_t catchups_started() const noexcept {
    return catchups_started_;
  }

 private:
  recovery::ModelReplicaSet& replicas_;
  std::uint64_t transfers_seen_ = 0;
  std::uint64_t catchups_started_ = 0;
};

/// LeaseEligibility veto backed by scrub quarantine state: a quarantined
/// replica can neither win a shard lease nor renew one it holds (its
/// current lease simply expires un-renewed and a clean peer takes over).
class QuarantineLeaseGate final : public LeaseEligibility {
 public:
  explicit QuarantineLeaseGate(const recovery::ModelReplicaSet& replicas)
      : replicas_(replicas) {}

  bool lease_eligible(NodeId node) const override {
    return !replicas_.quarantined(node);
  }

 private:
  const recovery::ModelReplicaSet& replicas_;
};

}  // namespace sea
