// Seeded chaos-schedule generation: composes crash-restarts, flaps,
// message drops, grey nodes, latency spikes, storage faults (torn writes,
// bit flips, lost flushes, stalled-I/O windows), and a load multiplier
// into one valid FaultPlan, from a single seed.
//
// Used by the acceptance scenarios in tests/test_recovery.cpp and
// tests/test_integrity.cpp and the E17/E19 benches: one seed fully
// determines which nodes crash, when, and for how long, so every counter
// in a chaos run is exactly repeatable. The seed can be swept from the
// environment (SEA_CHAOS_SEED) without recompiling; a full schedule can
// be replayed verbatim from a dump_json() line via SEA_CHAOS_TOKEN
// (chaos_schedule_from_env / parse_chaos_token below).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fault/fault.h"
#include "net/network.h"

namespace sea::recovery {

struct ChaosConfig {
  std::uint64_t seed = 0xC4A05;
  std::size_t num_nodes = 8;
  /// Logical-tick horizon all windows must fit inside.
  std::uint64_t horizon_ticks = 1200;
  /// Crash-restarts (state wiped; distinct nodes).
  std::size_t crashes = 2;
  std::uint64_t min_crash_down_ticks = 60;
  std::uint64_t max_crash_down_ticks = 160;
  /// Transient flaps (state kept; distinct from crash nodes).
  std::size_t flaps = 1;
  std::uint64_t min_flap_down_ticks = 20;
  std::uint64_t max_flap_down_ticks = 60;
  /// Grey-failing nodes (up, but most inbound messages lost).
  std::size_t grey_nodes = 1;
  double grey_drop_probability = 0.85;
  /// Plan-wide message chaos.
  double drop_probability = 0.10;
  double spike_probability = 0.02;
  double spike_multiplier = 8.0;
  /// Offered-load multiplier the harness applies on top of the faults
  /// (passed through; the plan itself cannot express load).
  double load_multiplier = 2.0;
  /// Network partition windows (FaultPlan::partitions). Drawn inside
  /// disjoint, equal segments of the horizon so no two windows can ever
  /// overlap (validate() rejects overlapping cuts).
  std::size_t partitions = 0;
  std::uint64_t min_partition_ticks = 40;
  std::uint64_t max_partition_ticks = 120;
  /// Zone cut (sever `partition_zone` from the rest) vs node-set cut.
  bool partition_zone_cut = false;
  std::uint32_t partition_zone = 1;
  /// Node-set cuts: nodes on the severed side (drawn from non-protected
  /// nodes, so the coordinator stays majority-side). 0 = a minority of
  /// (num_nodes - 1) / 2 nodes.
  std::size_t partition_side_nodes = 0;
  /// Nodes exempt from every fault (node 0 hosts the coordinator: a
  /// crashed coordinator is a different experiment).
  std::vector<NodeId> protected_nodes = {0};
  /// Storage-fault profiles attached to every *crash* node (the nodes
  /// whose durable state actually gets re-read): each profiled durable
  /// write tears, flips, or loses with these probabilities. All 0 =
  /// clean storage. Requires crashes > 0 when any is nonzero.
  double torn_write_probability = 0.0;
  double bit_flip_probability = 0.0;
  double lost_flush_probability = 0.0;
  /// Stalled-I/O windows (FaultPlan::storage_stalls) on the crash nodes,
  /// drawn in disjoint segments of the horizon like partitions so same-
  /// node windows never overlap (validate() rejects that).
  std::size_t storage_stalls = 0;
  std::uint64_t min_stall_ticks = 20;
  std::uint64_t max_stall_ticks = 80;
  double stall_multiplier = 4.0;
  /// Offered-load spike windows (harness-applied, like load_multiplier:
  /// the plan itself cannot express load). During a window the harness
  /// multiplies its per-tick offered load by spike_load_multiplier, on top
  /// of the base load_multiplier. Windows are drawn inside disjoint, equal
  /// segments of the horizon like partitions, so spikes never overlap.
  std::size_t load_spikes = 0;
  std::uint64_t min_spike_ticks = 60;
  std::uint64_t max_spike_ticks = 160;
  double spike_load_multiplier = 4.0;  ///< must be >= 1 when load_spikes > 0
  /// Migration-window fault (harness-applied): probability that one
  /// CRC-framed durable frame shipped by a live-migration PREPARE is
  /// corrupted in flight. The destination's frame CRC detects it; the
  /// migration aborts and retries on a fresh epoch under its retry budget.
  double migration_frame_corrupt_probability = 0.0;
};

/// One offered-load spike window: [start_at, end_at) ticks at `multiplier`
/// times the base offered load.
struct LoadSpikeWindow {
  std::uint64_t start_at = 0;
  std::uint64_t end_at = 0;
  double multiplier = 1.0;
};

struct ChaosSchedule {
  FaultPlan plan;
  double load_multiplier = 1.0;
  std::vector<NodeId> crash_nodes;
  std::vector<NodeId> flap_nodes;
  std::vector<NodeId> grey_nodes;
  std::vector<LoadSpikeWindow> load_spikes;
  double migration_frame_corrupt_probability = 0.0;

  /// The offered-load multiplier in force at `tick`: the base
  /// load_multiplier times any active spike window.
  double load_at(std::uint64_t tick) const noexcept {
    double m = load_multiplier;
    for (const LoadSpikeWindow& w : load_spikes)
      if (tick >= w.start_at && tick < w.end_at) m *= w.multiplier;
    return m;
  }

  /// The full derived schedule as single-line JSON (seed, probabilities,
  /// every crash/flap/grey/partition window). Chaos-test failure messages
  /// embed this, so any failure is reproducible from its log line alone.
  std::string dump_json() const;
};

/// Builds a schedule from `config.seed`: shuffles the non-protected nodes
/// and deals them out to crashes, flaps, and grey failures (all node sets
/// disjoint, so windows can never overlap per node), then draws window
/// positions inside the horizon. The result always passes
/// FaultPlan::validate(). Throws std::invalid_argument when the cluster
/// has too few eligible nodes or the horizon cannot fit the windows.
ChaosSchedule make_chaos_schedule(const ChaosConfig& config);

/// SEA_CHAOS_SEED from the environment, or `fallback` when unset or
/// unparseable.
std::uint64_t chaos_seed_from_env(std::uint64_t fallback);

/// Parses a dump_json() line back into the exact schedule it described
/// (round-trip: parse_chaos_token(s.dump_json()).dump_json() ==
/// s.dump_json()). The rebuilt plan is re-validated. Throws
/// std::invalid_argument on malformed JSON, unknown structure, or a plan
/// that fails FaultPlan::validate().
ChaosSchedule parse_chaos_token(const std::string& token);

/// Replays a schedule pinned in the environment: when SEA_CHAOS_TOKEN is
/// set (to a dump_json() line — exactly what a chaos-test failure message
/// embeds), parses and returns it, overriding generation entirely;
/// otherwise generates from `config` (with SEA_CHAOS_SEED still applied
/// by the caller as before). A set-but-malformed token throws rather than
/// silently falling back: a repro run must never quietly test the wrong
/// schedule.
ChaosSchedule chaos_schedule_from_env(const ChaosConfig& config);

}  // namespace sea::recovery
