// Replicated serving models with durable checkpoints, WAL replay, and
// anti-entropy catch-up (the tentpole of DESIGN.md "Crash recovery &
// anti-entropy").
//
// A ModelReplicaSet keeps one DatalessAgent replica per configured node.
// Ground truth flows through observe(): each update is committed to a
// global history (monotonic version), appended to every live replica's
// write-ahead log (checkpoint.h), and applied to every live replica.
//
// Crash model (wired to FaultInjector via CrashListener): on_crash wipes
// the replica's in-memory model — the durable checkpoint + WAL survive.
// on_restart replays checkpoint + WAL locally (modelled replay cost),
// then runs anti-entropy rounds against a live caught-up peer to fetch
// the updates committed while the node was down. Deterministic replay:
// every replica is a pure function of the observation sequence (quantum
// RNG streams are derived from the root seed), so a recovered replica is
// bit-identical to one that never crashed.
//
// Serving affinity: the home replica (nodes[0]) owns serving whenever it
// is up; serving fails over to a live peer only while the home is down
// and returns to the home at restart. During the home's catch-up window
// it serves its replayed (pre-crash) state — those answers are *stale*,
// flagged through ServingModelProvider::primary_stale() and counted as
// ServeStats::stale_model_serves. Shortening that window is what
// checkpoints buy (experiment E17): with checkpointing disabled a restart
// replays the entire history from genesis; with it, checkpoint + short
// WAL suffix.
//
// Every method runs on the serial serving path; the modelled clock
// (advance()) is what recovery and checkpoint deadlines are measured
// against, so all counters, spans, and metrics are bit-identical at any
// SEA_THREADS setting.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "fault/fault.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "recovery/checkpoint.h"
#include "recovery/digest.h"
#include "sea/agent.h"
#include "sea/served.h"

namespace sea::recovery {

/// Scrub pass knobs (DESIGN.md "Storage faults & integrity"). A pass
/// digests every live caught-up replica's serialized state (modelled
/// cost below), compares roots, quarantines divergent replicas for
/// repair through the anti-entropy path, and CRC-walks each clean
/// replica's durable frames, rebuilding any that fail.
struct ScrubConfig {
  /// Scrub cadence on the modelled clock; 0 disables scrubbing.
  double interval_ms = 0.0;
  /// Modelled cost of digesting one replica: base + per-KB of state.
  double digest_base_ms = 0.5;
  double digest_ms_per_kb = 0.004;
  /// Digest-tree leaf size over the serialized state.
  std::size_t page_bytes = 4096;
};

struct ReplicaSetConfig {
  /// Replica placement; nodes[0] is the *home* replica (serving affinity).
  std::vector<NodeId> nodes;
  /// Model configuration shared by every replica.
  AgentConfig agent;
  /// Snapshot cadence on the modelled clock; 0 disables checkpoints
  /// entirely (restart = full-log replay from genesis).
  double checkpoint_interval_ms = 400.0;
  /// Modelled cost of taking a snapshot: base + per-KB of serialized
  /// model state, charged to the modelled clock (the serving node is busy
  /// snapshotting).
  double checkpoint_base_ms = 2.0;
  double checkpoint_ms_per_kb = 0.02;
  /// Modelled cost of loading a snapshot at restart, per KB.
  double checkpoint_load_ms_per_kb = 0.01;
  /// Modelled cost of re-applying one logged update (WAL replay and
  /// anti-entropy deltas alike).
  double replay_ms_per_update = 0.05;
  /// Modelled cost of one anti-entropy transfer round: base + per-KB of
  /// shipped delta (or full model state when the restarted node has
  /// nothing local).
  double transfer_base_ms = 1.0;
  double transfer_ms_per_kb = 0.08;
  /// Final-round cutover: once the remaining gap is this small the tail
  /// is applied synchronously, so recovery terminates even under a
  /// continuous observe stream.
  std::uint64_t cutover_updates = 32;
  /// Minimum modelled-clock advance per advance() call — pure model
  /// answers still move time forward.
  double min_query_advance_ms = 0.05;
  /// Verify frame checksums on every checkpoint load / WAL replay (the
  /// silent-corruption defense). false models the checksum-oblivious
  /// reader E19 uses as its baseline arm: structural damage still fails
  /// loudly, but flipped bits and lost-flush gaps are applied silently.
  bool verify_checksums = true;
  /// Periodic digest scrub + durable CRC walk (off by default).
  ScrubConfig scrub;
};

/// One completed recovery, from restart to fully caught up. The duration
/// is exactly the sum of its modelled charges, so tests can bound it from
/// the config knobs and these counters.
struct RecoveryEvent {
  NodeId node = 0;
  double restart_at_ms = 0.0;
  double caught_up_at_ms = 0.0;
  std::uint64_t checkpoint_version = 0;  ///< 0 = no checkpoint (full-log)
  std::uint64_t checkpoint_bytes = 0;
  std::uint64_t replayed_updates = 0;    ///< local WAL replay
  std::uint64_t delta_updates = 0;       ///< fetched via anti-entropy
  std::uint64_t transferred_bytes = 0;
  std::uint64_t rounds = 0;              ///< anti-entropy rounds
  bool full_state_transfer = false;
  std::uint64_t target_version = 0;      ///< version at completion

  double recovery_ms() const noexcept {
    return caught_up_at_ms - restart_at_ms;
  }
};

/// Counters guarded by a sizeof static_assert in replica.cpp.
struct RecoveryStats {
  std::uint64_t crashes = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t replayed_updates = 0;
  std::uint64_t anti_entropy_rounds = 0;
  std::uint64_t anti_entropy_updates = 0;
  std::uint64_t anti_entropy_bytes = 0;
  std::uint64_t full_state_transfers = 0;
  std::uint64_t checkpoints = 0;
  std::uint64_t checkpoint_bytes = 0;
  double modelled_checkpoint_ms = 0.0;
  double modelled_recovery_ms = 0.0;  ///< sum over completed recoveries
  double max_recovery_ms = 0.0;
  // --- integrity (storage faults, scrub/repair) ---
  std::uint64_t corrupt_frames_detected = 0;  ///< frames verification caught
  std::uint64_t checkpoint_fallbacks = 0;  ///< loads that fell back an epoch
  std::uint64_t tainted_loads = 0;  ///< omniscient: loads that applied
                                    ///< corrupt data undetected (0 whenever
                                    ///< verify_checksums is on)
  std::uint64_t scrub_passes = 0;
  std::uint64_t scrub_checks = 0;     ///< replica digests compared
  std::uint64_t scrub_clean = 0;      ///< checks matching the canonical root
  std::uint64_t scrub_divergent = 0;  ///< checks quarantined for repair
  std::uint64_t scrub_repairs = 0;    ///< quarantines fully repaired
  std::uint64_t scrub_durable_repairs = 0;  ///< durable states rebuilt
  std::uint64_t scrub_referee_replays = 0;  ///< canonical-replay tie-breaks
  double modelled_scrub_ms = 0.0;

  /// Scrub accounting invariant (mirrors ServeStats::conserved): every
  /// digest check resolved clean or divergent, and every divergence was
  /// repaired or is still quarantined now.
  bool scrub_conserved(std::uint64_t quarantined_now) const noexcept {
    return scrub_checks == scrub_clean + scrub_divergent &&
           scrub_divergent == scrub_repairs + quarantined_now;
  }
};

class ModelReplicaSet final : public ServingModelProvider,
                             public CrashListener {
 public:
  using DomainProvider =
      std::function<Rect(const std::vector<std::size_t>&)>;

  /// Throws std::invalid_argument when `config.nodes` is empty or lists a
  /// node twice.
  ModelReplicaSet(ReplicaSetConfig config, DomainProvider domain_provider);

  // ServingModelProvider (the serial serving path).
  DatalessAgent* primary() override;
  bool primary_stale() const override;
  void observe(const AnalyticalQuery& query, double truth) override;
  void advance(double modelled_ms) override;
  RecoveryDelta take_recovery_delta() override;

  // CrashListener (notified by FaultInjector at crash/restart ticks).
  void on_crash(NodeId node, std::uint64_t tick) override;
  void on_restart(NodeId node, std::uint64_t tick) override;

  /// Attaches a tracer / metrics registry (either may be null; caller
  /// owns both). recovery.*, scrub.*, and storage.* counters track
  /// stats() from the moment of attachment, mirroring the serving
  /// layer's contract.
  void bind_obs(obs::Tracer* tracer, obs::MetricsRegistry* metrics);

  /// Routes durable writes through `model` (torn writes / bit flips /
  /// lost flushes) and prices checkpoint and load costs by its stall
  /// multiplier. nullptr restores clean storage. Caller owns the model.
  void set_storage_faults(StorageFaultModel* model);

  /// Runs one scrub pass immediately (tests/benches; the cadence path
  /// calls this from advance()).
  void scrub_now();

  /// Drives the modelled clock until no replica is mid-recovery (or the
  /// step budget runs out) — lets tests and benches settle in-flight
  /// catch-ups after the query stream ends.
  void settle(double step_ms = 5.0, std::size_t max_steps = 10000);

  /// Lease-transfer handoff (src/membership): starts an anti-entropy
  /// catch-up for a live replica lagging the committed history — the node
  /// just acquired a shard lease and must serve current state, exactly the
  /// WAL-replay handoff a crash restart gets, minus the local replay (its
  /// in-memory state never died). No-op (returns false) when the node is
  /// unknown, down, still isolated, already recovering, or already caught
  /// up.
  bool request_catchup(NodeId node);

  /// Marks `node` connectivity-isolated (minority side of a partition):
  /// while isolated the replica misses the live observe stream — its model
  /// and WAL freeze at their current version — but it is not down and can
  /// keep serving its (increasingly stale) state. Clearing isolation does
  /// NOT catch the replica up by itself; the handoff that makes it an
  /// authority again (request_catchup, via a lease transfer) does.
  void set_isolated(NodeId node, bool isolated);
  bool isolated(NodeId node) const;

  std::uint64_t committed_version() const noexcept {
    return committed_version_;
  }
  double now_ms() const noexcept { return now_ms_; }
  bool replica_up(NodeId node) const;
  bool replica_recovering(NodeId node) const;
  bool any_recovering() const;
  std::uint64_t replica_version(NodeId node) const;
  /// True while `node` is quarantined mid-repair: it neither serves
  /// (primary() skips it) nor may win a lease (QuarantineLeaseGate).
  bool quarantined(NodeId node) const;
  std::size_t quarantined_now() const;
  /// Omniscient ground truth for harnesses: whether the replica (or the
  /// one primary() would serve) silently applied corrupted data. Invisible
  /// to the defense logic — this is the E19 wrong-answer-serve account.
  bool replica_tainted(NodeId node) const;
  bool primary_tainted() const;
  /// Digest tree of the replica's current serialized state (no modelled
  /// cost charged — harness instrumentation, not a scrub).
  DigestTree replica_digest(NodeId node) const;
  /// True when every up, caught-up replica shares one digest root.
  bool digests_converged() const;
  const RecoveryStats& stats() const noexcept { return stats_; }
  const std::vector<RecoveryEvent>& recovery_events() const noexcept {
    return events_;
  }
  const CheckpointStore& store() const noexcept { return store_; }

 private:
  struct Replica {
    NodeId node = 0;
    DatalessAgent agent;  ///< by value: pointers survive a wipe-by-assign
    std::uint64_t version = 0;
    bool up = true;
    bool isolated = false;     ///< partitioned off the live observe stream
    bool recovering = false;   ///< restarted, not yet caught up
    bool catching_up = false;  ///< a timed anti-entropy round in flight
    bool quarantined = false;  ///< scrub-divergent, mid-repair
    bool tainted = false;      ///< omniscient: state silently diverged
    double next_checkpoint_ms = 0.0;
    double catchup_ready_ms = 0.0;  ///< modelled completion of work so far
    std::uint64_t catchup_target = 0;
    RecoveryEvent event;            ///< in-flight recovery accumulator

    Replica(NodeId n, DatalessAgent a)
        : node(n), agent(std::move(a)) {}
  };

  Replica* find(NodeId node);
  const Replica* find(NodeId node) const;
  /// First live, caught-up replica other than `r` — the preferred
  /// anti-entropy source. nullptr means the round sources from the
  /// coordinator's committed log instead (single-replica deployments, or
  /// every peer down/recovering).
  const Replica* find_peer(const Replica& r) const;
  void begin_recovery(Replica& r);
  void start_catchup_round(Replica& r);
  void apply_catchup(Replica& r);
  void finish_recovery(Replica& r);
  void step_recovery(Replica& r);
  void take_checkpoint(Replica& r);
  void run_scrub();
  void quarantine(Replica& r);
  void sync_metrics();
  double storage_stall(NodeId node) const;

  ReplicaSetConfig config_;
  DomainProvider domain_provider_;
  CheckpointStore store_;
  std::vector<Replica> replicas_;
  /// Global committed history; entry i is version i+1.
  std::vector<std::pair<AnalyticalQuery, double>> history_;
  std::uint64_t committed_version_ = 0;
  double now_ms_ = 0.0;
  double next_scrub_ms_ = 0.0;
  StorageFaultModel* storage_ = nullptr;
  RecoveryStats stats_;
  RecoveryDelta pending_delta_;
  std::vector<RecoveryEvent> events_;

  obs::Tracer* tracer_ = nullptr;
  struct RecoveryMetrics {
    obs::Counter* crashes = nullptr;
    obs::Counter* recoveries = nullptr;
    obs::Counter* replayed_updates = nullptr;
    obs::Counter* anti_entropy_rounds = nullptr;
    obs::Counter* anti_entropy_updates = nullptr;
    obs::Counter* anti_entropy_bytes = nullptr;
    obs::Counter* full_state_transfers = nullptr;
    obs::Counter* checkpoints = nullptr;
    obs::Counter* checkpoint_bytes = nullptr;
    obs::Gauge* modelled_checkpoint_ms = nullptr;
    obs::Gauge* modelled_recovery_ms = nullptr;
    obs::Gauge* max_recovery_ms = nullptr;
    obs::Histogram* recovery_ms = nullptr;
    // storage.* (frame verification + write-fault mirror of store stats)
    obs::Counter* corrupt_frames = nullptr;
    obs::Counter* checkpoint_fallbacks = nullptr;
    obs::Counter* tainted_loads = nullptr;
    obs::Counter* torn_writes = nullptr;
    obs::Counter* bit_flips = nullptr;
    obs::Counter* lost_flushes = nullptr;
    obs::Counter* stalled_writes = nullptr;
    obs::Counter* frames_written = nullptr;
    // scrub.*
    obs::Counter* scrub_passes = nullptr;
    obs::Counter* scrub_checks = nullptr;
    obs::Counter* scrub_clean = nullptr;
    obs::Counter* scrub_divergent = nullptr;
    obs::Counter* scrub_repairs = nullptr;
    obs::Counter* scrub_durable_repairs = nullptr;
    obs::Counter* scrub_referee_replays = nullptr;
    obs::Gauge* modelled_scrub_ms = nullptr;
  };
  RecoveryMetrics m_;
  RecoveryStats mirrored_;
  CheckpointStoreStats mirrored_store_;
};

}  // namespace sea::recovery
