#include "recovery/digest.h"

#include <algorithm>
#include <stdexcept>

namespace sea::recovery {

namespace {

/// Pairwise combine for the fold levels: a strong 64-bit mix so sibling
/// swaps and level collisions don't cancel (murmur3-style finalizer).
std::uint64_t combine(std::uint64_t a, std::uint64_t b) noexcept {
  std::uint64_t x =
      a * 0x9E3779B97F4A7C15ULL + (b ^ (b >> 29)) + 0x517CC1B727220A95ULL;
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDULL;
  x ^= x >> 33;
  x *= 0xC4CEB9FE1A85EC53ULL;
  x ^= x >> 33;
  return x;
}

}  // namespace

std::uint64_t fnv1a64(std::string_view bytes) noexcept {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const char ch : bytes) {
    h ^= static_cast<unsigned char>(ch);
    h *= 0x100000001B3ULL;
  }
  return h;
}

DigestTree digest_state(std::string_view state, std::size_t page_bytes) {
  if (page_bytes == 0)
    throw std::invalid_argument("digest_state: page_bytes must be >= 1");
  DigestTree t;
  t.state_bytes = state.size();
  t.pages.reserve(state.size() / page_bytes + 1);
  for (std::size_t off = 0; off < state.size(); off += page_bytes)
    t.pages.push_back(
        fnv1a64(state.substr(off, std::min(page_bytes, state.size() - off))));
  // Fold pairwise; an odd tail promotes. Seed the root with the byte count
  // so a truncated state never collides with its own prefix's tree.
  std::vector<std::uint64_t> level = t.pages;
  if (level.empty()) level.push_back(fnv1a64({}));
  while (level.size() > 1) {
    std::vector<std::uint64_t> next;
    next.reserve((level.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < level.size(); i += 2)
      next.push_back(combine(level[i], level[i + 1]));
    if (level.size() % 2 != 0) next.push_back(level.back());
    level.swap(next);
  }
  t.root = combine(level.front(), static_cast<std::uint64_t>(t.state_bytes));
  return t;
}

std::size_t digest_diff_pages(const DigestTree& a,
                              const DigestTree& b) noexcept {
  const std::size_t common = std::min(a.pages.size(), b.pages.size());
  std::size_t diff = std::max(a.pages.size(), b.pages.size()) - common;
  for (std::size_t i = 0; i < common; ++i)
    if (a.pages[i] != b.pages[i]) ++diff;
  return diff;
}

}  // namespace sea::recovery
