#include "recovery/checkpoint.h"

#include <algorithm>

namespace sea::recovery {

void CheckpointStore::put_checkpoint(NodeId node, CheckpointRecord record) {
  NodeState& st = nodes_[node];
  // Drop the WAL prefix the snapshot covers; the log keeps only deltas
  // newer than the checkpoint.
  const std::uint64_t covered = record.version;
  const auto keep = std::find_if(
      st.wal.begin(), st.wal.end(),
      [covered](const WalRecord& w) { return w.version > covered; });
  stats_.wal_truncated +=
      static_cast<std::uint64_t>(keep - st.wal.begin());
  st.wal.erase(st.wal.begin(), keep);
  st.checkpoint = std::move(record);
  ++stats_.checkpoints_taken;
}

const CheckpointRecord* CheckpointStore::checkpoint(NodeId node) const {
  const auto it = nodes_.find(node);
  if (it == nodes_.end() || !it->second.checkpoint) return nullptr;
  return &*it->second.checkpoint;
}

void CheckpointStore::append_wal(NodeId node, WalRecord record) {
  nodes_[node].wal.push_back(std::move(record));
  ++stats_.wal_appends;
}

const std::vector<WalRecord>& CheckpointStore::wal(NodeId node) const {
  static const std::vector<WalRecord> kEmpty;
  const auto it = nodes_.find(node);
  return it == nodes_.end() ? kEmpty : it->second.wal;
}

std::uint64_t CheckpointStore::wal_bytes(NodeId node) const {
  std::uint64_t bytes = 0;
  for (const WalRecord& w : wal(node)) bytes += wal_record_bytes(w.query);
  return bytes;
}

}  // namespace sea::recovery
