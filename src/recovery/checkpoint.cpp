#include "recovery/checkpoint.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "fault/outage.h"
#include "recovery/frame.h"

namespace sea::recovery {

// Completeness guard: CheckpointStoreStats is 10 trivially-copyable
// 8-byte fields; ModelReplicaSet::sync_metrics mirrors them into
// storage.* counters. Adding a field changes the size and fails this
// assert until it is covered.
static_assert(sizeof(CheckpointStoreStats) == 10 * 8,
              "CheckpointStoreStats gained/lost a field: update "
              "ModelReplicaSet::sync_metrics and this guard");

void CheckpointStore::set_checkpoint_retention(std::size_t epochs) {
  if (epochs == 0)
    throw std::invalid_argument(
        "CheckpointStore: checkpoint retention must be >= 1");
  retention_ = epochs;
}

CheckpointStore::StoredFrame CheckpointStore::make_frame(
    NodeId node, std::string payload, std::uint64_t version, bool tainted) {
  StoredFrame f;
  f.version = version;
  f.tainted = tainted;
  f.bytes = encode_frame(payload);
  if (faults_) {
    const WriteFault fate = faults_->on_durable_write(node, f.bytes.size());
    if (fate.stall_multiplier > 1.0) ++stats_.stalled_writes;
    if (fate.lost) {
      // The flush never reached the medium: no bytes, no trace — readers
      // see only the version gap it leaves behind.
      f.bytes.clear();
      f.lost = true;
      f.corrupted = true;
      ++stats_.lost_flushes;
    } else if (fate.torn) {
      f.bytes.resize(std::min(fate.keep_bytes, f.bytes.size()));
      f.corrupted = true;
      ++stats_.torn_writes;
    } else if (fate.flipped && fate.flip_offset < f.bytes.size()) {
      f.bytes[fate.flip_offset] = static_cast<char>(
          static_cast<unsigned char>(f.bytes[fate.flip_offset]) ^
          fate.flip_mask);
      f.corrupted = true;
      ++stats_.bit_flips;
    }
  }
  ++stats_.frames_written;
  stats_.frame_bytes_written += f.bytes.size();
  return f;
}

void CheckpointStore::put_checkpoint(NodeId node, CheckpointRecord record,
                                     bool tainted) {
  NodeState& st = nodes_[node];
  const std::uint64_t version = record.version;
  st.checkpoints.push_back(make_frame(
      node,
      encode_checkpoint_payload(version, record.taken_at_ms, record.blob),
      version, tainted));
  while (st.checkpoints.size() > retention_)
    st.checkpoints.erase(st.checkpoints.begin());
  ++stats_.checkpoints_taken;
  // Deferred truncation: drop only the WAL prefix covered by the *oldest
  // retained* epoch, so a fallback load always finds a contiguous log
  // from its version (eager truncation would leave an undetectable hole
  // between epochs).
  const std::uint64_t covered = st.checkpoints.front().version;
  const auto keep = std::find_if(
      st.wal.begin(), st.wal.end(),
      [covered](const StoredFrame& w) { return w.version > covered; });
  stats_.wal_truncated += static_cast<std::uint64_t>(keep - st.wal.begin());
  st.wal.erase(st.wal.begin(), keep);
}

void CheckpointStore::append_wal(NodeId node, WalRecord record) {
  nodes_[node].wal.push_back(
      make_frame(node,
                 encode_wal_payload(record.version, record.query,
                                    record.answer),
                 record.version, false));
  ++stats_.wal_appends;
}

std::optional<CheckpointRecord> CheckpointStore::checkpoint(
    NodeId node) const {
  const auto it = nodes_.find(node);
  if (it == nodes_.end() || it->second.checkpoints.empty())
    return std::nullopt;
  const StoredFrame& f = it->second.checkpoints.back();
  const FrameView v = decode_frame(f.bytes, 0, /*verify=*/true);
  if (v.status != FrameStatus::kOk)
    throw CorruptedStateError(
        "CheckpointStore: node " + std::to_string(node) +
        " newest checkpoint frame failed verification (" +
        to_string(v.status) + ")");
  CheckpointPayload p = decode_checkpoint_payload(v.payload);
  if (!p.ok)
    throw CorruptedStateError(
        "CheckpointStore: node " + std::to_string(node) +
        " newest checkpoint payload is undecodable");
  return CheckpointRecord{std::move(p.blob), p.version, p.taken_at_ms};
}

std::vector<WalRecord> CheckpointStore::wal(NodeId node) const {
  std::vector<WalRecord> out;
  const auto it = nodes_.find(node);
  if (it == nodes_.end()) return out;
  for (std::size_t i = 0; i < it->second.wal.size(); ++i) {
    const StoredFrame& f = it->second.wal[i];
    if (f.bytes.empty()) continue;  // a lost flush leaves no frame at all
    const FrameView v = decode_frame(f.bytes, 0, /*verify=*/true);
    if (v.status != FrameStatus::kOk)
      throw CorruptedStateError(
          "CheckpointStore: node " + std::to_string(node) + " WAL frame " +
          std::to_string(i) + " failed verification (" +
          to_string(v.status) + ")");
    WalPayload p = decode_wal_payload(v.payload);
    if (!p.ok)
      throw CorruptedStateError(
          "CheckpointStore: node " + std::to_string(node) + " WAL frame " +
          std::to_string(i) + " payload is undecodable");
    out.push_back(WalRecord{p.version, std::move(p.query), p.answer});
  }
  return out;
}

std::uint64_t CheckpointStore::wal_bytes(NodeId node) const {
  const auto it = nodes_.find(node);
  if (it == nodes_.end()) return 0;
  std::uint64_t bytes = 0;
  for (const StoredFrame& f : it->second.wal) bytes += f.bytes.size();
  return bytes;
}

CheckpointLoad CheckpointStore::load_checkpoint(NodeId node,
                                                bool verify) const {
  CheckpointLoad out;
  const auto it = nodes_.find(node);
  if (it == nodes_.end()) return out;
  const auto& epochs = it->second.checkpoints;
  for (auto e = epochs.rbegin(); e != epochs.rend(); ++e) {
    const FrameView v = decode_frame(e->bytes, 0, verify);
    if (v.status == FrameStatus::kOk) {
      CheckpointPayload p = decode_checkpoint_payload(v.payload);
      if (p.ok) {
        out.loaded = true;
        out.blob = std::move(p.blob);
        out.version = p.version;
        out.taken_at_ms = p.taken_at_ms;
        out.tainted = e->tainted || e->corrupted;
        return out;
      }
    }
    // Rejected — by CRC (verify) or structure (any loader trips on a torn
    // or garbled frame loudly). Fall back to the previous retained epoch.
    ++out.corrupt_detected;
    out.fell_back = true;
  }
  return out;
}

WalReplay CheckpointStore::replay_wal(NodeId node,
                                      std::uint64_t after_version,
                                      bool verify) const {
  WalReplay out;
  const auto it = nodes_.find(node);
  if (it == nodes_.end()) return out;
  std::uint64_t expect = after_version;  // last version accounted for
  for (const StoredFrame& f : it->second.wal) {
    if (f.bytes.empty()) continue;  // lost flush: nothing on the medium
    ++out.frames_total;
    const FrameView v = decode_frame(f.bytes, 0, verify);
    if (v.status != FrameStatus::kOk) {
      // Structural damage stops any reader; kBadChecksum stops only the
      // verified one (unchecked walks never see that status). Either way
      // the walk truncates here — nothing past a derailed frame is
      // reachable in a real log.
      ++out.corrupt_detected;
      out.truncated = true;
      return out;
    }
    WalPayload p = decode_wal_payload(v.payload);
    if (!p.ok) {
      ++out.corrupt_detected;
      out.truncated = true;
      return out;
    }
    if (p.version <= after_version) {
      // Covered by the loaded snapshot. A corrupted frame whose flipped
      // version field ducked it *under* the snapshot horizon silently
      // drops an update (omnisciently: a gap).
      if (f.corrupted) out.silent_gap = true;
      continue;
    }
    if (p.version != expect + 1) {
      if (verify) {
        // Version discontinuity: the only durable trace of a lost flush
        // (or a flipped version field). Truncate — anti-entropy refills
        // the tail from the committed history.
        ++out.corrupt_detected;
        out.truncated = true;
        return out;
      }
      out.silent_gap = true;
    }
    expect = std::max(expect, p.version);
    out.record_tainted.push_back(f.corrupted);
    out.records.push_back(WalRecord{p.version, std::move(p.query), p.answer});
  }
  return out;
}

NodeIntegrityReport CheckpointStore::verify_node(NodeId node) const {
  NodeIntegrityReport rep;
  const auto it = nodes_.find(node);
  if (it == nodes_.end()) return rep;
  for (const StoredFrame& f : it->second.checkpoints) {
    ++rep.frames;
    const FrameView v = decode_frame(f.bytes, 0, /*verify=*/true);
    if (v.status != FrameStatus::kOk ||
        !decode_checkpoint_payload(v.payload).ok)
      ++rep.checkpoint_corrupt;
  }
  for (const StoredFrame& f : it->second.wal) {
    if (f.bytes.empty()) continue;  // lost: detectable only by replay gaps
    ++rep.frames;
    const FrameView v = decode_frame(f.bytes, 0, /*verify=*/true);
    if (v.status != FrameStatus::kOk || !decode_wal_payload(v.payload).ok)
      ++rep.wal_corrupt;
  }
  return rep;
}

void CheckpointStore::reset_node(NodeId node) {
  const auto it = nodes_.find(node);
  if (it == nodes_.end()) return;
  nodes_.erase(it);
  ++stats_.nodes_reset;
}

std::size_t CheckpointStore::retained_checkpoints(NodeId node) const {
  const auto it = nodes_.find(node);
  return it == nodes_.end() ? 0 : it->second.checkpoints.size();
}

}  // namespace sea::recovery
