// Merkle-style digest trees over serialized agent state, for the scrubber
// (replica.h).
//
// A replica's full state is its DatalessAgent::serialize stream. Scrubbing
// digests that stream in fixed-size pages (FNV-1a 64 per page — the
// leaves), then folds the leaves pairwise into a single root. Replicas at
// the same committed version are byte-identical when healthy (every
// replica is a pure function of the observation sequence), so root
// disagreement IS divergence; the per-page leaves localize *where* two
// states differ, which prices the modelled repair at pages-differing
// rather than whole-state when callers want it.
//
// Pure functions of the bytes: no RNG, no clock — digests are bit-equal
// at any SEA_THREADS setting.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

namespace sea::recovery {

struct DigestTree {
  std::uint64_t root = 0;
  std::vector<std::uint64_t> pages;  ///< FNV-1a 64 per fixed-size page
  std::size_t state_bytes = 0;

  bool operator==(const DigestTree& other) const noexcept {
    return root == other.root && pages == other.pages &&
           state_bytes == other.state_bytes;
  }
};

/// FNV-1a 64-bit over `bytes`.
std::uint64_t fnv1a64(std::string_view bytes) noexcept;

/// Digests `state` in pages of `page_bytes` (>= 1; the last page may be
/// short) and folds the page hashes pairwise into the root.
DigestTree digest_state(std::string_view state, std::size_t page_bytes);

/// Number of leaf positions where the two trees differ (counting length
/// mismatch tails). 0 iff the trees are equal page-for-page.
std::size_t digest_diff_pages(const DigestTree& a, const DigestTree& b) noexcept;

}  // namespace sea::recovery
