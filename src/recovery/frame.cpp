#include "recovery/frame.h"

#include <array>
#include <cstring>

namespace sea::recovery {

namespace {

std::array<std::uint32_t, 256> make_crc_table() noexcept {
  std::array<std::uint32_t, 256> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    t[i] = c;
  }
  return t;
}

std::uint32_t crc32_feed(std::uint32_t state, std::string_view bytes) noexcept {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  for (const char ch : bytes) {
    const auto b = static_cast<unsigned char>(ch);
    state = table[(state ^ b) & 0xFFu] ^ (state >> 8);
  }
  return state;
}

// Little-endian primitive writers/readers: explicit byte layout, never a
// struct memcpy, so frames are host-independent and flipped bytes decode
// to wrong values instead of UB.
void put_u32(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xFF));
  out.push_back(static_cast<char>((v >> 8) & 0xFF));
  out.push_back(static_cast<char>((v >> 16) & 0xFF));
  out.push_back(static_cast<char>((v >> 24) & 0xFF));
}

void put_u64(std::string& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v & 0xFFFFFFFFu));
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
}

void put_f64(std::string& out, double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(out, bits);
}

std::uint32_t read_u32(const char* p) noexcept {
  const auto b = [p](int i) {
    return static_cast<std::uint32_t>(static_cast<unsigned char>(p[i]));
  };
  return b(0) | (b(1) << 8) | (b(2) << 16) | (b(3) << 24);
}

/// Bounds-checked sequential reader; any overrun latches fail.
struct Reader {
  std::string_view buf;
  std::size_t pos = 0;
  bool fail = false;

  bool need(std::size_t n) noexcept {
    if (fail || buf.size() - pos < n) {
      fail = true;
      return false;
    }
    return true;
  }
  std::uint32_t u32() noexcept {
    if (!need(4)) return 0;
    const std::uint32_t v = read_u32(buf.data() + pos);
    pos += 4;
    return v;
  }
  std::uint64_t u64() noexcept {
    const std::uint64_t lo = u32();
    const std::uint64_t hi = u32();
    return lo | (hi << 32);
  }
  double f64() noexcept {
    const std::uint64_t bits = u64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  bool done() const noexcept { return !fail && pos == buf.size(); }
};

/// Embedded counts (columns, dimensions) above this are structural
/// garbage: no real query carries them, and honoring one would let a
/// flipped count drive allocation.
constexpr std::uint32_t kMaxCount = 1u << 16;

void put_point(std::string& out, const Point& p) {
  put_u32(out, static_cast<std::uint32_t>(p.size()));
  for (const double v : p) put_f64(out, v);
}

bool read_point(Reader& r, Point& out) {
  const std::uint32_t n = r.u32();
  if (r.fail || n > kMaxCount || !r.need(8 * n)) return false;
  out.resize(n);
  for (auto& v : out) v = r.f64();
  return !r.fail;
}

}  // namespace

std::uint32_t crc32(std::string_view bytes) noexcept {
  return crc32_feed(0xFFFFFFFFu, bytes) ^ 0xFFFFFFFFu;
}

std::uint32_t crc32(std::string_view first, std::string_view second) noexcept {
  return crc32_feed(crc32_feed(0xFFFFFFFFu, first), second) ^ 0xFFFFFFFFu;
}

const char* to_string(FrameStatus s) noexcept {
  switch (s) {
    case FrameStatus::kOk:
      return "ok";
    case FrameStatus::kTornTail:
      return "torn_tail";
    case FrameStatus::kBadMagic:
      return "bad_magic";
    case FrameStatus::kBadLength:
      return "bad_length";
    case FrameStatus::kBadChecksum:
      return "bad_checksum";
  }
  return "unknown";
}

std::string encode_frame(std::string_view payload) {
  std::string prefix;
  prefix.reserve(8);
  put_u32(prefix, kFrameMagic);
  put_u32(prefix, static_cast<std::uint32_t>(payload.size()));
  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size());
  out += prefix;
  put_u32(out, crc32(prefix, payload));
  out.append(payload.data(), payload.size());
  return out;
}

FrameView decode_frame(std::string_view log, std::size_t offset,
                       bool verify) noexcept {
  FrameView v;
  if (offset > log.size() || log.size() - offset < kFrameHeaderBytes)
    return v;  // kTornTail
  const char* p = log.data() + offset;
  const std::uint32_t magic = read_u32(p);
  const std::uint32_t len = read_u32(p + 4);
  const std::uint32_t crc = read_u32(p + 8);
  if (magic != kFrameMagic) {
    v.status = FrameStatus::kBadMagic;
    return v;
  }
  if (len > kMaxFramePayloadBytes) {
    v.status = FrameStatus::kBadLength;
    return v;
  }
  if (log.size() - offset - kFrameHeaderBytes < len) return v;  // kTornTail
  const std::string_view payload =
      log.substr(offset + kFrameHeaderBytes, len);
  if (verify && crc != crc32(log.substr(offset, 8), payload)) {
    v.status = FrameStatus::kBadChecksum;
    return v;
  }
  v.status = FrameStatus::kOk;
  v.payload = payload;
  v.consumed = kFrameHeaderBytes + len;
  return v;
}

std::string encode_wal_payload(std::uint64_t version,
                               const AnalyticalQuery& query, double answer) {
  std::string out;
  put_u64(out, version);
  put_f64(out, answer);
  out.push_back(static_cast<char>(query.selection));
  out.push_back(static_cast<char>(query.analytic));
  put_u32(out, static_cast<std::uint32_t>(query.subspace_cols.size()));
  for (const std::size_t c : query.subspace_cols)
    put_u32(out, static_cast<std::uint32_t>(c));
  put_point(out, query.range.lo);
  put_point(out, query.range.hi);
  put_point(out, query.ball.center);
  put_f64(out, query.ball.radius);
  put_point(out, query.knn_point);
  put_u32(out, static_cast<std::uint32_t>(query.knn_k));
  put_u32(out, static_cast<std::uint32_t>(query.target_col));
  put_u32(out, static_cast<std::uint32_t>(query.target_col2));
  return out;
}

WalPayload decode_wal_payload(std::string_view payload) {
  WalPayload out;
  Reader r{payload};
  out.version = r.u64();
  out.answer = r.f64();
  if (!r.need(2)) return out;
  const auto sel = static_cast<unsigned char>(payload[r.pos++]);
  const auto ana = static_cast<unsigned char>(payload[r.pos++]);
  if (sel > static_cast<unsigned char>(SelectionType::kNearestNeighbors) ||
      ana > static_cast<unsigned char>(AnalyticType::kRegressionIntercept))
    return out;
  out.query.selection = static_cast<SelectionType>(sel);
  out.query.analytic = static_cast<AnalyticType>(ana);
  const std::uint32_t cols = r.u32();
  if (r.fail || cols > kMaxCount || !r.need(4 * cols)) return out;
  out.query.subspace_cols.resize(cols);
  for (auto& c : out.query.subspace_cols) c = r.u32();
  if (!read_point(r, out.query.range.lo) ||
      !read_point(r, out.query.range.hi) ||
      !read_point(r, out.query.ball.center))
    return out;
  out.query.ball.radius = r.f64();
  if (!read_point(r, out.query.knn_point)) return out;
  out.query.knn_k = r.u32();
  out.query.target_col = r.u32();
  out.query.target_col2 = r.u32();
  out.ok = r.done();  // trailing garbage is structural damage too
  return out;
}

std::string encode_checkpoint_payload(std::uint64_t version,
                                      double taken_at_ms,
                                      std::string_view blob) {
  std::string out;
  out.reserve(20 + blob.size());
  put_u64(out, version);
  put_f64(out, taken_at_ms);
  put_u32(out, static_cast<std::uint32_t>(blob.size()));
  out.append(blob.data(), blob.size());
  return out;
}

CheckpointPayload decode_checkpoint_payload(std::string_view payload) {
  CheckpointPayload out;
  Reader r{payload};
  out.version = r.u64();
  out.taken_at_ms = r.f64();
  const std::uint32_t blob_len = r.u32();
  if (r.fail || blob_len > kMaxFramePayloadBytes || !r.need(blob_len))
    return out;
  out.blob.assign(payload.data() + r.pos, blob_len);
  r.pos += blob_len;
  out.ok = r.done();
  return out;
}

}  // namespace sea::recovery
