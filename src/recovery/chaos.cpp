#include "recovery/chaos.h"

#include <algorithm>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

#include "common/rng.h"

namespace sea::recovery {

ChaosSchedule make_chaos_schedule(const ChaosConfig& config) {
  const std::size_t needed =
      config.crashes + config.flaps + config.grey_nodes;
  std::vector<NodeId> eligible;
  for (std::size_t n = 0; n < config.num_nodes; ++n) {
    const NodeId id = static_cast<NodeId>(n);
    bool prot = false;
    for (const NodeId p : config.protected_nodes) prot = prot || (p == id);
    if (!prot) eligible.push_back(id);
  }
  if (eligible.size() < needed)
    throw std::invalid_argument(
        "make_chaos_schedule: not enough non-protected nodes for the "
        "requested crashes + flaps + grey nodes");
  if (config.max_crash_down_ticks < config.min_crash_down_ticks ||
      config.max_flap_down_ticks < config.min_flap_down_ticks)
    throw std::invalid_argument(
        "make_chaos_schedule: max window below min window");
  if (config.horizon_ticks < config.max_crash_down_ticks + 2 ||
      config.horizon_ticks < config.max_flap_down_ticks + 2)
    throw std::invalid_argument(
        "make_chaos_schedule: horizon too short for the fault windows");

  Rng rng(config.seed);
  rng.shuffle(eligible);

  ChaosSchedule out;
  out.load_multiplier = config.load_multiplier;
  out.plan.seed = config.seed;
  out.plan.drop_probability = config.drop_probability;
  out.plan.spike_probability = config.spike_probability;
  out.plan.spike_multiplier = config.spike_multiplier;

  // Deal disjoint node sets off the shuffled deck, so per-node windows
  // can never overlap by construction.
  std::size_t next = 0;
  const auto draw_window = [&](std::uint64_t min_down,
                               std::uint64_t max_down) {
    const std::uint64_t down =
        min_down + static_cast<std::uint64_t>(rng.uniform_index(
                       max_down - min_down + 1));
    // Start in [1, horizon - down]: tick 0 never fires and the window
    // must close inside the horizon.
    const std::uint64_t start =
        1 + static_cast<std::uint64_t>(
                rng.uniform_index(config.horizon_ticks - down));
    return std::pair<std::uint64_t, std::uint64_t>(start, start + down);
  };
  for (std::size_t c = 0; c < config.crashes; ++c) {
    const NodeId node = eligible[next++];
    const auto [crash_at, restart_at] = draw_window(
        config.min_crash_down_ticks, config.max_crash_down_ticks);
    out.plan.node_crashes.push_back(NodeCrash{node, crash_at, restart_at});
    out.crash_nodes.push_back(node);
  }
  for (std::size_t f = 0; f < config.flaps; ++f) {
    const NodeId node = eligible[next++];
    const auto [down_at, up_at] = draw_window(config.min_flap_down_ticks,
                                              config.max_flap_down_ticks);
    out.plan.flaps.push_back(NodeFlap{node, down_at, up_at});
    out.flap_nodes.push_back(node);
  }
  for (std::size_t g = 0; g < config.grey_nodes; ++g) {
    const NodeId node = eligible[next++];
    out.plan.node_drops.push_back(
        NodeDropRate{node, config.grey_drop_probability});
    out.grey_nodes.push_back(node);
  }

  // Partition windows: validate() rejects any two cuts that overlap in
  // time, so each window is drawn inside its own equal slice of the
  // horizon — disjoint by construction, for every seed.
  if (config.partitions > 0) {
    if (config.max_partition_ticks < config.min_partition_ticks ||
        config.min_partition_ticks == 0)
      throw std::invalid_argument(
          "make_chaos_schedule: bad partition window bounds");
    const std::uint64_t segment =
        (config.horizon_ticks - 1) / config.partitions;
    if (segment <= config.max_partition_ticks)
      throw std::invalid_argument(
          "make_chaos_schedule: horizon too short for the requested "
          "partition windows (need > max_partition_ticks per window)");
    std::size_t side = config.partition_side_nodes;
    if (side == 0) side = (config.num_nodes - 1) / 2;
    if (!config.partition_zone_cut &&
        (side == 0 || side >= config.num_nodes))
      throw std::invalid_argument(
          "make_chaos_schedule: partition side must cut a proper, "
          "non-empty subset of the cluster");
    for (std::size_t p = 0; p < config.partitions; ++p) {
      const std::uint64_t duration =
          config.min_partition_ticks +
          static_cast<std::uint64_t>(rng.uniform_index(
              config.max_partition_ticks - config.min_partition_ticks + 1));
      const std::uint64_t seg_start = 1 + p * segment;
      const std::uint64_t start =
          seg_start + static_cast<std::uint64_t>(
                          rng.uniform_index(segment - duration + 1));
      NetworkPartition cut;
      cut.start_at = start;
      cut.heal_at = start + duration;
      if (config.partition_zone_cut) {
        cut.zone_cut = true;
        cut.zone = config.partition_zone;
      } else {
        // A fresh shuffle per window: the severed side varies across
        // windows and may include crash/flap/grey nodes (faults compose).
        std::vector<NodeId> deck = eligible;
        rng.shuffle(deck);
        cut.nodes.assign(deck.begin(),
                         deck.begin() + static_cast<std::ptrdiff_t>(
                                            std::min(side, deck.size())));
      }
      out.plan.partitions.push_back(std::move(cut));
    }
  }

  out.plan.validate();
  return out;
}

std::string ChaosSchedule::dump_json() const {
  std::ostringstream os;
  os << "{\"seed\":" << plan.seed
     << ",\"load_multiplier\":" << load_multiplier
     << ",\"drop_probability\":" << plan.drop_probability
     << ",\"spike_probability\":" << plan.spike_probability
     << ",\"spike_multiplier\":" << plan.spike_multiplier << ",\"crashes\":[";
  for (std::size_t i = 0; i < plan.node_crashes.size(); ++i) {
    const NodeCrash& c = plan.node_crashes[i];
    os << (i ? "," : "") << "{\"node\":" << c.node
       << ",\"crash_at\":" << c.crash_at
       << ",\"restart_at\":" << c.restart_at << "}";
  }
  os << "],\"flaps\":[";
  for (std::size_t i = 0; i < plan.flaps.size(); ++i) {
    const NodeFlap& f = plan.flaps[i];
    os << (i ? "," : "") << "{\"node\":" << f.node
       << ",\"down_at\":" << f.down_at << ",\"up_at\":" << f.up_at << "}";
  }
  os << "],\"grey\":[";
  for (std::size_t i = 0; i < plan.node_drops.size(); ++i) {
    const NodeDropRate& d = plan.node_drops[i];
    os << (i ? "," : "") << "{\"node\":" << d.node
       << ",\"drop_probability\":" << d.drop_probability << "}";
  }
  os << "],\"partitions\":[";
  for (std::size_t i = 0; i < plan.partitions.size(); ++i) {
    const NetworkPartition& p = plan.partitions[i];
    os << (i ? "," : "") << "{\"start_at\":" << p.start_at
       << ",\"heal_at\":" << p.heal_at;
    if (p.zone_cut) {
      os << ",\"zone\":" << p.zone;
    } else {
      os << ",\"nodes\":[";
      for (std::size_t n = 0; n < p.nodes.size(); ++n)
        os << (n ? "," : "") << p.nodes[n];
      os << "]";
    }
    os << "}";
  }
  os << "]}";
  return os.str();
}

std::uint64_t chaos_seed_from_env(std::uint64_t fallback) {
  const char* env = std::getenv("SEA_CHAOS_SEED");
  if (!env || !*env) return fallback;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(env, &end, 10);
  if (end == env || (end && *end != '\0')) return fallback;
  return static_cast<std::uint64_t>(v);
}

}  // namespace sea::recovery
