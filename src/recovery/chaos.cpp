#include "recovery/chaos.h"

#include <algorithm>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

#include "common/rng.h"

namespace sea::recovery {

ChaosSchedule make_chaos_schedule(const ChaosConfig& config) {
  const std::size_t needed =
      config.crashes + config.flaps + config.grey_nodes;
  std::vector<NodeId> eligible;
  for (std::size_t n = 0; n < config.num_nodes; ++n) {
    const NodeId id = static_cast<NodeId>(n);
    bool prot = false;
    for (const NodeId p : config.protected_nodes) prot = prot || (p == id);
    if (!prot) eligible.push_back(id);
  }
  if (eligible.size() < needed)
    throw std::invalid_argument(
        "make_chaos_schedule: not enough non-protected nodes for the "
        "requested crashes + flaps + grey nodes");
  if (config.max_crash_down_ticks < config.min_crash_down_ticks ||
      config.max_flap_down_ticks < config.min_flap_down_ticks)
    throw std::invalid_argument(
        "make_chaos_schedule: max window below min window");
  if (config.horizon_ticks < config.max_crash_down_ticks + 2 ||
      config.horizon_ticks < config.max_flap_down_ticks + 2)
    throw std::invalid_argument(
        "make_chaos_schedule: horizon too short for the fault windows");

  Rng rng(config.seed);
  rng.shuffle(eligible);

  ChaosSchedule out;
  out.load_multiplier = config.load_multiplier;
  out.plan.seed = config.seed;
  out.plan.drop_probability = config.drop_probability;
  out.plan.spike_probability = config.spike_probability;
  out.plan.spike_multiplier = config.spike_multiplier;

  // Deal disjoint node sets off the shuffled deck, so per-node windows
  // can never overlap by construction.
  std::size_t next = 0;
  const auto draw_window = [&](std::uint64_t min_down,
                               std::uint64_t max_down) {
    const std::uint64_t down =
        min_down + static_cast<std::uint64_t>(rng.uniform_index(
                       max_down - min_down + 1));
    // Start in [1, horizon - down]: tick 0 never fires and the window
    // must close inside the horizon.
    const std::uint64_t start =
        1 + static_cast<std::uint64_t>(
                rng.uniform_index(config.horizon_ticks - down));
    return std::pair<std::uint64_t, std::uint64_t>(start, start + down);
  };
  for (std::size_t c = 0; c < config.crashes; ++c) {
    const NodeId node = eligible[next++];
    const auto [crash_at, restart_at] = draw_window(
        config.min_crash_down_ticks, config.max_crash_down_ticks);
    out.plan.node_crashes.push_back(NodeCrash{node, crash_at, restart_at});
    out.crash_nodes.push_back(node);
  }
  for (std::size_t f = 0; f < config.flaps; ++f) {
    const NodeId node = eligible[next++];
    const auto [down_at, up_at] = draw_window(config.min_flap_down_ticks,
                                              config.max_flap_down_ticks);
    out.plan.flaps.push_back(NodeFlap{node, down_at, up_at});
    out.flap_nodes.push_back(node);
  }
  for (std::size_t g = 0; g < config.grey_nodes; ++g) {
    const NodeId node = eligible[next++];
    out.plan.node_drops.push_back(
        NodeDropRate{node, config.grey_drop_probability});
    out.grey_nodes.push_back(node);
  }

  // Partition windows: validate() rejects any two cuts that overlap in
  // time, so each window is drawn inside its own equal slice of the
  // horizon — disjoint by construction, for every seed.
  if (config.partitions > 0) {
    if (config.max_partition_ticks < config.min_partition_ticks ||
        config.min_partition_ticks == 0)
      throw std::invalid_argument(
          "make_chaos_schedule: bad partition window bounds");
    const std::uint64_t segment =
        (config.horizon_ticks - 1) / config.partitions;
    if (segment <= config.max_partition_ticks)
      throw std::invalid_argument(
          "make_chaos_schedule: horizon too short for the requested "
          "partition windows (need > max_partition_ticks per window)");
    std::size_t side = config.partition_side_nodes;
    if (side == 0) side = (config.num_nodes - 1) / 2;
    if (!config.partition_zone_cut &&
        (side == 0 || side >= config.num_nodes))
      throw std::invalid_argument(
          "make_chaos_schedule: partition side must cut a proper, "
          "non-empty subset of the cluster");
    for (std::size_t p = 0; p < config.partitions; ++p) {
      const std::uint64_t duration =
          config.min_partition_ticks +
          static_cast<std::uint64_t>(rng.uniform_index(
              config.max_partition_ticks - config.min_partition_ticks + 1));
      const std::uint64_t seg_start = 1 + p * segment;
      const std::uint64_t start =
          seg_start + static_cast<std::uint64_t>(
                          rng.uniform_index(segment - duration + 1));
      NetworkPartition cut;
      cut.start_at = start;
      cut.heal_at = start + duration;
      if (config.partition_zone_cut) {
        cut.zone_cut = true;
        cut.zone = config.partition_zone;
      } else {
        // A fresh shuffle per window: the severed side varies across
        // windows and may include crash/flap/grey nodes (faults compose).
        std::vector<NodeId> deck = eligible;
        rng.shuffle(deck);
        cut.nodes.assign(deck.begin(),
                         deck.begin() + static_cast<std::ptrdiff_t>(
                                            std::min(side, deck.size())));
      }
      out.plan.partitions.push_back(std::move(cut));
    }
  }

  // Storage faults ride on the *crash* nodes: their durable state is the
  // one that actually gets re-read (recovery replays it), so that is
  // where a lying medium can change answers.
  const bool storage_faulty = config.torn_write_probability > 0.0 ||
                              config.bit_flip_probability > 0.0 ||
                              config.lost_flush_probability > 0.0;
  if ((storage_faulty || config.storage_stalls > 0) &&
      out.crash_nodes.empty())
    throw std::invalid_argument(
        "make_chaos_schedule: storage faults require at least one crash "
        "node (only re-read durable state can surface them)");
  if (storage_faulty)
    for (const NodeId node : out.crash_nodes)
      out.plan.storage_faults.push_back(StorageFaultProfile{
          node, config.torn_write_probability, config.bit_flip_probability,
          config.lost_flush_probability});
  if (config.storage_stalls > 0) {
    if (config.max_stall_ticks < config.min_stall_ticks ||
        config.min_stall_ticks == 0)
      throw std::invalid_argument(
          "make_chaos_schedule: bad stall window bounds");
    // Disjoint horizon segments, like partitions: same-node stall windows
    // can never overlap (validate() rejects that), for every seed.
    const std::uint64_t segment =
        (config.horizon_ticks - 1) / config.storage_stalls;
    if (segment <= config.max_stall_ticks)
      throw std::invalid_argument(
          "make_chaos_schedule: horizon too short for the requested stall "
          "windows (need > max_stall_ticks per window)");
    for (std::size_t s = 0; s < config.storage_stalls; ++s) {
      const std::uint64_t duration =
          config.min_stall_ticks +
          static_cast<std::uint64_t>(rng.uniform_index(
              config.max_stall_ticks - config.min_stall_ticks + 1));
      const std::uint64_t seg_start = 1 + s * segment;
      const std::uint64_t start =
          seg_start + static_cast<std::uint64_t>(
                          rng.uniform_index(segment - duration + 1));
      const NodeId node = out.crash_nodes[rng.uniform_index(
          out.crash_nodes.size())];
      out.plan.storage_stalls.push_back(StorageStall{
          node, start, start + duration, config.stall_multiplier});
    }
  }

  // Load-spike windows: harness-side (no FaultPlan entry), but drawn from
  // the same seeded stream and serialized in the token so a replay sees
  // the identical offered-load curve. Disjoint horizon segments, like
  // partitions and stalls.
  if (config.load_spikes > 0) {
    if (config.max_spike_ticks < config.min_spike_ticks ||
        config.min_spike_ticks == 0)
      throw std::invalid_argument(
          "make_chaos_schedule: bad load-spike window bounds");
    if (config.spike_load_multiplier < 1.0)
      throw std::invalid_argument(
          "make_chaos_schedule: spike_load_multiplier must be >= 1 (a "
          "spike cannot shrink the offered load)");
    const std::uint64_t segment =
        (config.horizon_ticks - 1) / config.load_spikes;
    if (segment <= config.max_spike_ticks)
      throw std::invalid_argument(
          "make_chaos_schedule: horizon too short for the requested "
          "load-spike windows (need > max_spike_ticks per window)");
    for (std::size_t s = 0; s < config.load_spikes; ++s) {
      const std::uint64_t duration =
          config.min_spike_ticks +
          static_cast<std::uint64_t>(rng.uniform_index(
              config.max_spike_ticks - config.min_spike_ticks + 1));
      const std::uint64_t seg_start = 1 + s * segment;
      const std::uint64_t start =
          seg_start + static_cast<std::uint64_t>(
                          rng.uniform_index(segment - duration + 1));
      out.load_spikes.push_back(LoadSpikeWindow{
          start, start + duration, config.spike_load_multiplier});
    }
  }
  if (config.migration_frame_corrupt_probability < 0.0 ||
      config.migration_frame_corrupt_probability > 1.0)
    throw std::invalid_argument(
        "make_chaos_schedule: migration_frame_corrupt_probability must be "
        "a probability in [0, 1]");
  out.migration_frame_corrupt_probability =
      config.migration_frame_corrupt_probability;

  out.plan.validate();
  return out;
}

std::string ChaosSchedule::dump_json() const {
  std::ostringstream os;
  os << "{\"seed\":" << plan.seed
     << ",\"load_multiplier\":" << load_multiplier
     << ",\"drop_probability\":" << plan.drop_probability
     << ",\"spike_probability\":" << plan.spike_probability
     << ",\"spike_multiplier\":" << plan.spike_multiplier << ",\"crashes\":[";
  for (std::size_t i = 0; i < plan.node_crashes.size(); ++i) {
    const NodeCrash& c = plan.node_crashes[i];
    os << (i ? "," : "") << "{\"node\":" << c.node
       << ",\"crash_at\":" << c.crash_at
       << ",\"restart_at\":" << c.restart_at << "}";
  }
  os << "],\"flaps\":[";
  for (std::size_t i = 0; i < plan.flaps.size(); ++i) {
    const NodeFlap& f = plan.flaps[i];
    os << (i ? "," : "") << "{\"node\":" << f.node
       << ",\"down_at\":" << f.down_at << ",\"up_at\":" << f.up_at << "}";
  }
  os << "],\"grey\":[";
  for (std::size_t i = 0; i < plan.node_drops.size(); ++i) {
    const NodeDropRate& d = plan.node_drops[i];
    os << (i ? "," : "") << "{\"node\":" << d.node
       << ",\"drop_probability\":" << d.drop_probability << "}";
  }
  os << "],\"partitions\":[";
  for (std::size_t i = 0; i < plan.partitions.size(); ++i) {
    const NetworkPartition& p = plan.partitions[i];
    os << (i ? "," : "") << "{\"start_at\":" << p.start_at
       << ",\"heal_at\":" << p.heal_at;
    if (p.zone_cut) {
      os << ",\"zone\":" << p.zone;
    } else {
      os << ",\"nodes\":[";
      for (std::size_t n = 0; n < p.nodes.size(); ++n)
        os << (n ? "," : "") << p.nodes[n];
      os << "]";
    }
    os << "}";
  }
  os << "],\"storage\":[";
  for (std::size_t i = 0; i < plan.storage_faults.size(); ++i) {
    const StorageFaultProfile& s = plan.storage_faults[i];
    os << (i ? "," : "") << "{\"node\":" << s.node
       << ",\"torn\":" << s.torn_write_probability
       << ",\"flip\":" << s.bit_flip_probability
       << ",\"lost\":" << s.lost_flush_probability << "}";
  }
  os << "],\"stalls\":[";
  for (std::size_t i = 0; i < plan.storage_stalls.size(); ++i) {
    const StorageStall& s = plan.storage_stalls[i];
    os << (i ? "," : "") << "{\"node\":" << s.node
       << ",\"start_at\":" << s.start_at << ",\"end_at\":" << s.end_at
       << ",\"multiplier\":" << s.multiplier << "}";
  }
  os << "],\"load_spikes\":[";
  for (std::size_t i = 0; i < load_spikes.size(); ++i) {
    const LoadSpikeWindow& w = load_spikes[i];
    os << (i ? "," : "") << "{\"start_at\":" << w.start_at
       << ",\"end_at\":" << w.end_at << ",\"multiplier\":" << w.multiplier
       << "}";
  }
  os << "],\"migration_frame_corrupt\":" << migration_frame_corrupt_probability
     << "}";
  return os.str();
}

namespace {

/// Minimal JSON reader for the dump_json() grammar: numbers, arrays,
/// objects with unquoted-number values — no strings-as-values, bools, or
/// escapes, because the dump never emits them. Strict: anything outside
/// that grammar throws.
struct JsonValue {
  enum Kind { kNumber, kArray, kObject };
  Kind kind = kNumber;
  double num = 0.0;
  std::vector<JsonValue> arr;
  std::vector<std::pair<std::string, JsonValue>> obj;

  const JsonValue* get(const std::string& key) const {
    for (const auto& [k, v] : obj)
      if (k == key) return &v;
    return nullptr;
  }
  std::uint64_t u64() const { return static_cast<std::uint64_t>(num); }
};

struct JsonParser {
  const std::string& s;
  std::size_t i = 0;

  [[noreturn]] void fail(const std::string& why) const {
    throw std::invalid_argument("parse_chaos_token: " + why +
                                " at offset " + std::to_string(i));
  }
  void ws() {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' ||
                            s[i] == '\r'))
      ++i;
  }
  char peek() {
    ws();
    if (i >= s.size()) fail("unexpected end of token");
    return s[i];
  }
  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++i;
  }
  std::string key() {
    expect('"');
    const std::size_t begin = i;
    while (i < s.size() && s[i] != '"') ++i;
    if (i >= s.size()) fail("unterminated key");
    std::string k = s.substr(begin, i - begin);
    ++i;
    return k;
  }
  double number() {
    ws();
    const char* begin = s.c_str() + i;
    char* end = nullptr;
    const double v = std::strtod(begin, &end);
    if (end == begin) fail("expected a number");
    i += static_cast<std::size_t>(end - begin);
    return v;
  }

  JsonValue value() {
    const char c = peek();
    JsonValue v;
    if (c == '{') {
      v.kind = JsonValue::kObject;
      ++i;
      if (peek() == '}') {
        ++i;
        return v;
      }
      while (true) {
        std::string k = key();
        expect(':');
        v.obj.emplace_back(std::move(k), value());
        if (peek() == ',') {
          ++i;
          continue;
        }
        expect('}');
        break;
      }
      return v;
    }
    if (c == '[') {
      v.kind = JsonValue::kArray;
      ++i;
      if (peek() == ']') {
        ++i;
        return v;
      }
      while (true) {
        v.arr.push_back(value());
        if (peek() == ',') {
          ++i;
          continue;
        }
        expect(']');
        break;
      }
      return v;
    }
    v.num = number();
    return v;
  }
};

const JsonValue& json_need(const JsonValue& obj, const char* field) {
  const JsonValue* v = obj.get(field);
  if (!v)
    throw std::invalid_argument(
        std::string("parse_chaos_token: missing field \"") + field + "\"");
  return *v;
}

}  // namespace

ChaosSchedule parse_chaos_token(const std::string& token) {
  JsonParser p{token};
  const JsonValue root = p.value();
  p.ws();
  if (p.i != token.size()) p.fail("trailing characters after the schedule");
  if (root.kind != JsonValue::kObject)
    throw std::invalid_argument(
        "parse_chaos_token: token is not a JSON object");

  ChaosSchedule out;
  out.plan.seed = json_need(root, "seed").u64();
  out.load_multiplier = json_need(root, "load_multiplier").num;
  out.plan.drop_probability = json_need(root, "drop_probability").num;
  out.plan.spike_probability = json_need(root, "spike_probability").num;
  out.plan.spike_multiplier = json_need(root, "spike_multiplier").num;
  for (const JsonValue& c : json_need(root, "crashes").arr) {
    const NodeId node = static_cast<NodeId>(json_need(c, "node").u64());
    out.plan.node_crashes.push_back(NodeCrash{
        node, json_need(c, "crash_at").u64(),
        json_need(c, "restart_at").u64()});
    out.crash_nodes.push_back(node);
  }
  for (const JsonValue& f : json_need(root, "flaps").arr) {
    const NodeId node = static_cast<NodeId>(json_need(f, "node").u64());
    out.plan.flaps.push_back(NodeFlap{node, json_need(f, "down_at").u64(),
                                      json_need(f, "up_at").u64()});
    out.flap_nodes.push_back(node);
  }
  for (const JsonValue& g : json_need(root, "grey").arr) {
    const NodeId node = static_cast<NodeId>(json_need(g, "node").u64());
    out.plan.node_drops.push_back(
        NodeDropRate{node, json_need(g, "drop_probability").num});
    out.grey_nodes.push_back(node);
  }
  for (const JsonValue& pt : json_need(root, "partitions").arr) {
    NetworkPartition cut;
    cut.start_at = json_need(pt, "start_at").u64();
    cut.heal_at = json_need(pt, "heal_at").u64();
    if (const JsonValue* zone = pt.get("zone")) {
      cut.zone_cut = true;
      cut.zone = static_cast<std::uint32_t>(zone->u64());
    } else {
      for (const JsonValue& n : json_need(pt, "nodes").arr)
        cut.nodes.push_back(static_cast<NodeId>(n.u64()));
    }
    out.plan.partitions.push_back(std::move(cut));
  }
  // Pre-integrity tokens simply lack these sections; treat them as empty.
  if (const JsonValue* storage = root.get("storage"))
    for (const JsonValue& s : storage->arr)
      out.plan.storage_faults.push_back(StorageFaultProfile{
          static_cast<NodeId>(json_need(s, "node").u64()),
          json_need(s, "torn").num, json_need(s, "flip").num,
          json_need(s, "lost").num});
  if (const JsonValue* stalls = root.get("stalls"))
    for (const JsonValue& s : stalls->arr)
      out.plan.storage_stalls.push_back(StorageStall{
          static_cast<NodeId>(json_need(s, "node").u64()),
          json_need(s, "start_at").u64(), json_need(s, "end_at").u64(),
          json_need(s, "multiplier").num});
  // Pre-placement tokens lack the migration-era sections too.
  if (const JsonValue* spikes = root.get("load_spikes"))
    for (const JsonValue& w : spikes->arr) {
      LoadSpikeWindow win{json_need(w, "start_at").u64(),
                          json_need(w, "end_at").u64(),
                          json_need(w, "multiplier").num};
      if (win.start_at == 0 || win.end_at <= win.start_at)
        throw std::invalid_argument(
            "parse_chaos_token: load-spike window must satisfy 0 < "
            "start_at < end_at");
      if (win.multiplier < 1.0)
        throw std::invalid_argument(
            "parse_chaos_token: load-spike multiplier must be >= 1");
      out.load_spikes.push_back(win);
    }
  if (const JsonValue* corrupt = root.get("migration_frame_corrupt")) {
    if (corrupt->num < 0.0 || corrupt->num > 1.0)
      throw std::invalid_argument(
          "parse_chaos_token: migration_frame_corrupt must be a "
          "probability in [0, 1]");
    out.migration_frame_corrupt_probability = corrupt->num;
  }

  out.plan.validate();
  return out;
}

ChaosSchedule chaos_schedule_from_env(const ChaosConfig& config) {
  const char* token = std::getenv("SEA_CHAOS_TOKEN");
  // Set-but-malformed throws (inside parse): a repro run must never
  // silently test a different schedule than the one pinned.
  if (token && *token) return parse_chaos_token(token);
  return make_chaos_schedule(config);
}

std::uint64_t chaos_seed_from_env(std::uint64_t fallback) {
  const char* env = std::getenv("SEA_CHAOS_SEED");
  if (!env || !*env) return fallback;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(env, &end, 10);
  if (end == env || (end && *end != '\0')) return fallback;
  return static_cast<std::uint64_t>(v);
}

}  // namespace sea::recovery
