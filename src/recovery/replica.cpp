#include "recovery/replica.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace sea::recovery {

// Completeness guard: RecoveryStats is 23 trivially-copyable 8-byte
// fields; sync_metrics() below must mirror every one. Adding a field
// changes the size and fails this assert until it is covered.
static_assert(sizeof(RecoveryStats) == 23 * 8,
              "RecoveryStats gained/lost a field: update sync_metrics() "
              "and this guard");

ModelReplicaSet::ModelReplicaSet(ReplicaSetConfig config,
                                 DomainProvider domain_provider)
    : config_(std::move(config)),
      domain_provider_(std::move(domain_provider)) {
  if (config_.nodes.empty())
    throw std::invalid_argument("ModelReplicaSet: need at least one node");
  replicas_.reserve(config_.nodes.size());
  for (const NodeId node : config_.nodes) {
    if (find(node))
      throw std::invalid_argument(
          "ModelReplicaSet: duplicate replica node");
    replicas_.emplace_back(node,
                           DatalessAgent(config_.agent, domain_provider_));
    replicas_.back().next_checkpoint_ms = config_.checkpoint_interval_ms;
  }
  next_scrub_ms_ = config_.scrub.interval_ms;
}

ModelReplicaSet::Replica* ModelReplicaSet::find(NodeId node) {
  for (Replica& r : replicas_)
    if (r.node == node) return &r;
  return nullptr;
}

const ModelReplicaSet::Replica* ModelReplicaSet::find(NodeId node) const {
  for (const Replica& r : replicas_)
    if (r.node == node) return &r;
  return nullptr;
}

const ModelReplicaSet::Replica* ModelReplicaSet::find_peer(
    const Replica& r) const {
  for (const Replica& p : replicas_) {
    if (&p == &r) continue;
    if (p.up && !p.isolated && !p.recovering && !p.quarantined &&
        p.version == committed_version_)
      return &p;
  }
  return nullptr;
}

DatalessAgent* ModelReplicaSet::primary() {
  // Home affinity: replicas_[0] serves whenever it is up — including its
  // catch-up window, when its replayed pre-crash state is *stale* (the
  // window E17 measures). Failover to a live peer only while it is down.
  // A quarantined replica never serves: scrub proved its state diverged.
  for (Replica& r : replicas_)
    if (r.up && !r.quarantined) return &r.agent;
  return nullptr;
}

bool ModelReplicaSet::primary_stale() const {
  for (const Replica& r : replicas_)
    if (r.up && !r.quarantined) return r.version < committed_version_;
  return false;
}

void ModelReplicaSet::observe(const AnalyticalQuery& query, double truth) {
  ++committed_version_;
  history_.emplace_back(query, truth);
  for (Replica& r : replicas_) {
    // A recovering replica skips the live stream; the gap is closed by
    // its anti-entropy rounds (which also backfill its WAL). An isolated
    // replica (partitioned off) misses the stream the same way — the gap
    // it accumulates is what a post-heal lease handoff must close.
    if (!r.up || r.recovering || r.isolated) continue;
    r.agent.observe(query, truth);
    r.version = committed_version_;
    store_.append_wal(r.node, WalRecord{committed_version_, query, truth});
  }
}

void ModelReplicaSet::advance(double modelled_ms) {
  now_ms_ += std::max(modelled_ms, config_.min_query_advance_ms);
  for (Replica& r : replicas_) step_recovery(r);
  if (config_.checkpoint_interval_ms > 0.0) {
    for (Replica& r : replicas_)
      if (r.up && !r.recovering && now_ms_ >= r.next_checkpoint_ms)
        take_checkpoint(r);
  }
  if (config_.scrub.interval_ms > 0.0 && now_ms_ >= next_scrub_ms_) {
    run_scrub();
    next_scrub_ms_ = now_ms_ + config_.scrub.interval_ms;
  }
  sync_metrics();
}

ServingModelProvider::RecoveryDelta ModelReplicaSet::take_recovery_delta() {
  const RecoveryDelta d = pending_delta_;
  pending_delta_ = RecoveryDelta{};
  return d;
}

void ModelReplicaSet::on_crash(NodeId node, std::uint64_t /*tick*/) {
  Replica* r = find(node);
  if (!r || !r->up) return;
  r->up = false;
  r->recovering = false;
  r->catching_up = false;
  // State wiped: only the durable checkpoint + WAL survive. Assigning a
  // fresh agent into the same object keeps outstanding pointers valid.
  // In-memory taint dies with the memory (the durable log may re-taint an
  // unchecked reload); quarantine persists across the crash so the node
  // stays fenced until a recovery completes and counts as its repair.
  r->agent = DatalessAgent(config_.agent, domain_provider_);
  r->version = 0;
  r->tainted = false;
  ++stats_.crashes;
  if (tracer_)
    tracer_->event("model_crash", "", static_cast<std::int64_t>(node));
  sync_metrics();
}

void ModelReplicaSet::on_restart(NodeId node, std::uint64_t /*tick*/) {
  Replica* r = find(node);
  if (!r || r->up) return;
  r->up = true;
  begin_recovery(*r);
  sync_metrics();
}

void ModelReplicaSet::begin_recovery(Replica& r) {
  r.event = RecoveryEvent{};
  r.event.node = r.node;
  r.event.restart_at_ms = now_ms_;
  const bool verify = config_.verify_checksums;
  double local_ms = 0.0;
  CheckpointLoad cp = store_.load_checkpoint(r.node, verify);
  stats_.corrupt_frames_detected += cp.corrupt_detected;
  if (cp.fell_back) ++stats_.checkpoint_fallbacks;
  if (cp.loaded) {
    bool applied = false;
    try {
      std::stringstream in(cp.blob);
      r.agent = DatalessAgent::deserialize(in, domain_provider_);
      applied = true;
    } catch (const std::exception&) {
      // A flipped blob that still framed OK but no longer parses fails
      // loudly in any mode: restart from genesis and let anti-entropy
      // close the whole gap. (Only reachable with verification off — a
      // CRC-verified frame decodes byte-for-byte.)
      r.agent = DatalessAgent(config_.agent, domain_provider_);
      r.version = 0;
      ++stats_.corrupt_frames_detected;
    }
    if (applied) {
      // Clamp: an unchecked reader can load a flipped version field, but
      // no honest snapshot is ever ahead of the committed history.
      r.version = std::min(cp.version, committed_version_);
      if (cp.tainted) r.tainted = true;
      r.event.checkpoint_version = r.version;
      r.event.checkpoint_bytes = cp.blob.size();
      local_ms += config_.checkpoint_load_ms_per_kb *
                  static_cast<double>(cp.blob.size()) / 1024.0;
    }
  }
  // WAL replay: every durably logged update past the checkpoint — the
  // *entire* history when checkpointing is disabled. Verified replay
  // truncates at the first bad frame; the unchecked walk applies whatever
  // still parses (record_tainted / silent_gap are the omniscient account
  // of what it swallowed).
  WalReplay rep = store_.replay_wal(r.node, r.version, verify);
  stats_.corrupt_frames_detected += rep.corrupt_detected;
  if (rep.silent_gap) r.tainted = true;
  std::uint64_t replayed = 0;
  std::uint64_t replay_bytes = 0;
  for (std::size_t i = 0; i < rep.records.size(); ++i) {
    const WalRecord& w = rep.records[i];
    try {
      r.agent.observe(w.query, w.answer);
    } catch (const std::exception&) {
      // A flip can turn a decodable record semantically invalid (e.g. an
      // inverted range): even the checksum-oblivious reader derails on it
      // loudly at apply time. Structural damage discovered late —
      // truncate here and let anti-entropy close the rest of the gap.
      ++stats_.corrupt_frames_detected;
      break;
    }
    if (rep.record_tainted[i]) r.tainted = true;
    if (w.version > r.version)
      r.version = std::min(w.version, committed_version_);
    replay_bytes += wal_record_bytes(w.query);
    ++replayed;
  }
  if (r.tainted) ++stats_.tainted_loads;
  local_ms += config_.replay_ms_per_update * static_cast<double>(replayed);
  // The whole local stage reads the durable medium: a stalled-I/O window
  // stretches it by the node's current stall multiplier.
  local_ms *= storage_stall(r.node);
  r.event.replayed_updates = replayed;
  stats_.replayed_updates += replayed;
  pending_delta_.replayed_updates += replayed;
  if (tracer_)
    tracer_->span_event("wal_replay", local_ms,
                        r.event.checkpoint_version ? "from_checkpoint"
                                                   : "full_log",
                        replay_bytes, static_cast<std::int64_t>(r.node));
  // The local replay is a *timed* stage: until the modelled clock pays
  // for it (and for any anti-entropy rounds after it), the node stays
  // `recovering`, serving its replayed pre-crash state — the stale-serve
  // window E17 measures. Recovery stages chain off catchup_ready_ms, so
  // the recovery duration is exactly the sum of its modelled charges no
  // matter how often the serving loop polls advance().
  r.recovering = true;
  r.catching_up = true;
  r.catchup_target = r.version;  // replay stage applies nothing new
  r.catchup_ready_ms = now_ms_ + local_ms;
  step_recovery(r);  // zero-cost recoveries complete immediately
}

void ModelReplicaSet::set_isolated(NodeId node, bool isolated) {
  Replica* r = find(node);
  if (r) r->isolated = isolated;
}

bool ModelReplicaSet::isolated(NodeId node) const {
  const Replica* r = find(node);
  return r != nullptr && r->isolated;
}

bool ModelReplicaSet::request_catchup(NodeId node) {
  Replica* r = find(node);
  // A still-isolated node cannot run anti-entropy rounds either — the
  // handoff must wait for the heal (leases guarantee it does: a minority-
  // side node can never win the quorum grant that triggers this).
  if (!r || !r->up || r->isolated || r->recovering) return false;
  if (r->version >= committed_version_) return false;
  // Same staged machinery as a restart recovery, but with no local replay
  // stage: the node's memory survived, it just lags the committed log.
  r->event = RecoveryEvent{};
  r->event.node = r->node;
  r->event.restart_at_ms = now_ms_;
  r->recovering = true;
  r->catching_up = false;
  r->catchup_target = r->version;
  r->catchup_ready_ms = now_ms_;
  if (tracer_)
    tracer_->event("lease_catchup", "", static_cast<std::int64_t>(node));
  start_catchup_round(*r);
  step_recovery(*r);
  sync_metrics();
  return true;
}

void ModelReplicaSet::start_catchup_round(Replica& r) {
  // Source preference: a live caught-up peer; else the coordinator's own
  // committed log. The fallback keeps recovery live for single-replica
  // sets and when every peer is down or itself recovering.
  const Replica* peer = find_peer(r);
  const std::uint64_t gap = committed_version_ - r.version;
  ++stats_.anti_entropy_rounds;
  ++r.event.rounds;
  std::uint64_t bytes = 0;
  const char* tag = peer ? "delta" : "coordinator_log";
  if (peer && r.version == 0) {
    // Nothing local at all (no checkpoint, empty WAL): ship the peer's
    // full serialized model state instead of every historic delta.
    std::stringstream wire;
    peer->agent.serialize(wire);
    bytes = wire.str().size();
    tag = "full_state";
    r.event.full_state_transfer = true;
    ++stats_.full_state_transfers;
  } else {
    for (std::uint64_t v = r.version + 1; v <= committed_version_; ++v)
      bytes += wal_record_bytes(history_[v - 1].first);
  }
  const double ms =
      config_.transfer_base_ms +
      config_.transfer_ms_per_kb * static_cast<double>(bytes) / 1024.0 +
      config_.replay_ms_per_update * static_cast<double>(gap);
  r.catchup_target = committed_version_;
  r.catchup_ready_ms += ms;  // chained off the previous stage, not now_ms_
  r.catching_up = true;
  stats_.anti_entropy_bytes += bytes;
  r.event.transferred_bytes += bytes;
  if (tracer_)
    tracer_->span_event("anti_entropy", ms, tag, bytes,
                        static_cast<std::int64_t>(r.node));
}

void ModelReplicaSet::apply_catchup(Replica& r) {
  // Replay the fetched history slice and backfill the node's WAL with it,
  // so the durable log stays a contiguous prefix of the history (a later
  // crash replays a complete sequence, keeping recovered replicas
  // bit-identical to never-crashed ones).
  const std::uint64_t from = r.version;
  for (std::uint64_t v = from + 1; v <= r.catchup_target; ++v) {
    const auto& [query, truth] = history_[v - 1];
    r.agent.observe(query, truth);
    store_.append_wal(r.node, WalRecord{v, query, truth});
  }
  const std::uint64_t applied = r.catchup_target - from;
  stats_.anti_entropy_updates += applied;
  r.event.delta_updates += applied;
  r.version = r.catchup_target;
  r.catching_up = false;
}

void ModelReplicaSet::finish_recovery(Replica& r) {
  r.recovering = false;
  r.catching_up = false;
  if (r.quarantined) {
    // The repair rebuilt the replica from a clean peer / the committed
    // history: lift the fence and close the scrub ledger.
    r.quarantined = false;
    ++stats_.scrub_repairs;
    if (tracer_)
      tracer_->event("scrub_repaired", "", static_cast<std::int64_t>(r.node));
  }
  r.event.target_version = r.version;
  ++stats_.recoveries;
  ++pending_delta_.recoveries;
  const double rec_ms = r.event.recovery_ms();
  stats_.modelled_recovery_ms += rec_ms;
  stats_.max_recovery_ms = std::max(stats_.max_recovery_ms, rec_ms);
  events_.push_back(r.event);
  if (tracer_)
    tracer_->event("recovered", "", static_cast<std::int64_t>(r.node));
  if (m_.recovery_ms) m_.recovery_ms->observe(rec_ms);
  // Checkpoint cadence restarts relative to recovery completion.
  r.next_checkpoint_ms = std::max(now_ms_, r.event.caught_up_at_ms) +
                         config_.checkpoint_interval_ms;
}

void ModelReplicaSet::step_recovery(Replica& r) {
  if (!r.up || !r.recovering) return;
  while (r.recovering && r.catching_up && now_ms_ >= r.catchup_ready_ms) {
    apply_catchup(r);
    if (committed_version_ - r.version <= config_.cutover_updates) {
      // Final cutover: once the remaining gap is small enough, the tail
      // committed while the last stage was in flight is applied
      // synchronously — recovery terminates even under a continuous
      // observe stream.
      if (r.version < committed_version_) {
        r.catchup_target = committed_version_;
        apply_catchup(r);
      }
      r.event.caught_up_at_ms = r.catchup_ready_ms;
      finish_recovery(r);
      return;
    }
    // More was committed while this stage was in flight: go again (the
    // gap shrinks each round; the cutover bound ends the chase).
    start_catchup_round(r);
  }
}

void ModelReplicaSet::take_checkpoint(Replica& r) {
  std::stringstream wire;
  r.agent.serialize(wire);
  std::string blob = wire.str();
  // Snapshot work happens on the serving node's modelled clock; a stalled
  // I/O window stretches the durable write by its multiplier.
  const double cost =
      (config_.checkpoint_base_ms +
       config_.checkpoint_ms_per_kb * static_cast<double>(blob.size()) /
           1024.0) *
      storage_stall(r.node);
  now_ms_ += cost;
  ++stats_.checkpoints;
  stats_.checkpoint_bytes += blob.size();
  stats_.modelled_checkpoint_ms += cost;
  if (tracer_)
    tracer_->span_event("checkpoint", cost, "", blob.size(),
                        static_cast<std::int64_t>(r.node));
  store_.put_checkpoint(
      r.node, CheckpointRecord{std::move(blob), r.version, now_ms_},
      r.tainted);
  r.next_checkpoint_ms = now_ms_ + config_.checkpoint_interval_ms;
}

void ModelReplicaSet::set_storage_faults(StorageFaultModel* model) {
  storage_ = model;
  store_.attach_faults(model);
}

double ModelReplicaSet::storage_stall(NodeId node) const {
  return storage_ ? storage_->stall_multiplier(node) : 1.0;
}

void ModelReplicaSet::scrub_now() {
  run_scrub();
  if (config_.scrub.interval_ms > 0.0)
    next_scrub_ms_ = now_ms_ + config_.scrub.interval_ms;
  sync_metrics();
}

void ModelReplicaSet::run_scrub() {
  ++stats_.scrub_passes;
  double pass_ms = 0.0;
  std::uint64_t pass_bytes = 0;
  // 1) Digest every live, caught-up, unquarantined replica. Replicas at
  // the committed version are byte-identical when healthy, so a root
  // disagreement IS divergence; lagging/recovering replicas are skipped
  // (their divergence from the head is legitimate, not corruption).
  std::vector<Replica*> cands;
  std::vector<std::uint64_t> roots;
  for (Replica& r : replicas_) {
    if (!r.up || r.recovering || r.isolated || r.quarantined) continue;
    if (r.version != committed_version_) continue;
    std::stringstream wire;
    r.agent.serialize(wire);
    const std::string state = wire.str();
    pass_ms += config_.scrub.digest_base_ms +
               config_.scrub.digest_ms_per_kb *
                   static_cast<double>(state.size()) / 1024.0;
    pass_bytes += state.size();
    cands.push_back(&r);
    roots.push_back(digest_state(state, config_.scrub.page_bytes).root);
  }
  std::vector<Replica*> divergent;
  if (!cands.empty()) {
    stats_.scrub_checks += cands.size();
    // 2) Canonical root: a strict digest majority when one exists
    // (independent corruptions never collide on a root), else a referee
    // rebuild from the committed history — the ground truth every healthy
    // replica is a pure function of.
    std::uint64_t canonical = 0;
    bool have_canonical = false;
    for (std::size_t i = 0; i < roots.size() && !have_canonical; ++i) {
      std::size_t votes = 0;
      for (const std::uint64_t root : roots) votes += root == roots[i];
      if (2 * votes > roots.size()) {
        canonical = roots[i];
        have_canonical = true;
      }
    }
    if (!have_canonical) {
      ++stats_.scrub_referee_replays;
      DatalessAgent referee(config_.agent, domain_provider_);
      for (const auto& [query, truth] : history_)
        referee.observe(query, truth);
      std::stringstream wire;
      referee.serialize(wire);
      const std::string state = wire.str();
      canonical = digest_state(state, config_.scrub.page_bytes).root;
      pass_ms += config_.replay_ms_per_update *
                     static_cast<double>(committed_version_) +
                 config_.scrub.digest_base_ms +
                 config_.scrub.digest_ms_per_kb *
                     static_cast<double>(state.size()) / 1024.0;
    }
    // 3) Classify. Divergent replicas are all *flagged* before any repair
    // round starts, so a repair can never source from a peer the same
    // pass is about to condemn.
    for (std::size_t i = 0; i < cands.size(); ++i) {
      if (roots[i] == canonical) {
        ++stats_.scrub_clean;
      } else {
        ++stats_.scrub_divergent;
        divergent.push_back(cands[i]);
      }
    }
    for (Replica* r : divergent) quarantine(*r);
    // 4) Durable CRC walk for clean replicas: flipped or torn frames
    // sitting unread on the medium are rebuilt from verified-clean memory
    // *now*, not discovered at the next crash.
    for (std::size_t i = 0; i < cands.size(); ++i) {
      Replica* r = cands[i];
      if (r->quarantined) continue;  // wiped below anyway
      pass_ms += config_.scrub.digest_ms_per_kb *
                 static_cast<double>(store_.wal_bytes(r->node)) / 1024.0;
      const NodeIntegrityReport rep = store_.verify_node(r->node);
      if (rep.clean()) continue;
      stats_.corrupt_frames_detected += rep.corrupt_frames();
      ++stats_.scrub_durable_repairs;
      store_.reset_node(r->node);
      if (tracer_)
        tracer_->event("scrub_durable_repair", "",
                       static_cast<std::int64_t>(r->node));
      take_checkpoint(*r);
    }
  }
  stats_.modelled_scrub_ms += pass_ms;
  now_ms_ += pass_ms;
  if (tracer_)
    tracer_->span_event("scrub", pass_ms,
                        divergent.empty() ? "clean" : "divergent",
                        pass_bytes, -1);
  // 5) Repair: each quarantined replica rebuilds through the standard
  // anti-entropy path (full-state from a clean peer, else the committed
  // log). Rounds start after the pass cost so their clocks chain off it.
  for (Replica* r : divergent) {
    r->catchup_ready_ms = now_ms_;
    start_catchup_round(*r);
    step_recovery(*r);
  }
}

void ModelReplicaSet::quarantine(Replica& r) {
  // Wipe both the in-memory model and the durable state: scrub proved the
  // bytes wrong, and a repair seeded from them would relay the damage.
  r.quarantined = true;
  r.tainted = false;
  r.agent = DatalessAgent(config_.agent, domain_provider_);
  r.version = 0;
  store_.reset_node(r.node);
  r.recovering = true;
  r.catching_up = false;
  r.event = RecoveryEvent{};
  r.event.node = r.node;
  r.event.restart_at_ms = now_ms_;
  r.catchup_target = 0;
  r.catchup_ready_ms = now_ms_;
  if (tracer_)
    tracer_->event("quarantine", "scrub_divergent",
                   static_cast<std::int64_t>(r.node));
}

bool ModelReplicaSet::quarantined(NodeId node) const {
  const Replica* r = find(node);
  return r != nullptr && r->quarantined;
}

std::size_t ModelReplicaSet::quarantined_now() const {
  std::size_t n = 0;
  for (const Replica& r : replicas_) n += r.quarantined;
  return n;
}

bool ModelReplicaSet::replica_tainted(NodeId node) const {
  const Replica* r = find(node);
  return r != nullptr && r->tainted;
}

bool ModelReplicaSet::primary_tainted() const {
  for (const Replica& r : replicas_)
    if (r.up && !r.quarantined) return r.tainted;
  return false;
}

DigestTree ModelReplicaSet::replica_digest(NodeId node) const {
  const Replica* r = find(node);
  if (!r) return DigestTree{};
  std::stringstream wire;
  r->agent.serialize(wire);
  return digest_state(wire.str(), config_.scrub.page_bytes);
}

bool ModelReplicaSet::digests_converged() const {
  bool have = false;
  std::uint64_t root = 0;
  for (const Replica& r : replicas_) {
    if (!r.up || r.recovering || r.quarantined) continue;
    if (r.version != committed_version_) continue;
    std::stringstream wire;
    r.agent.serialize(wire);
    const std::uint64_t mine =
        digest_state(wire.str(), config_.scrub.page_bytes).root;
    if (have && mine != root) return false;
    root = mine;
    have = true;
  }
  return true;
}

void ModelReplicaSet::settle(double step_ms, std::size_t max_steps) {
  for (std::size_t i = 0; i < max_steps && any_recovering(); ++i)
    advance(step_ms);
}

bool ModelReplicaSet::replica_up(NodeId node) const {
  const Replica* r = find(node);
  return r && r->up;
}

bool ModelReplicaSet::replica_recovering(NodeId node) const {
  const Replica* r = find(node);
  return r && r->recovering;
}

bool ModelReplicaSet::any_recovering() const {
  for (const Replica& r : replicas_)
    if (r.recovering) return true;
  return false;
}

std::uint64_t ModelReplicaSet::replica_version(NodeId node) const {
  const Replica* r = find(node);
  return r ? r->version : 0;
}

void ModelReplicaSet::bind_obs(obs::Tracer* tracer,
                               obs::MetricsRegistry* metrics) {
  tracer_ = tracer;
  if (!metrics) {
    m_ = RecoveryMetrics{};
    return;
  }
  m_.crashes = &metrics->counter("recovery.crashes");
  m_.recoveries = &metrics->counter("recovery.recoveries");
  m_.replayed_updates = &metrics->counter("recovery.replayed_updates");
  m_.anti_entropy_rounds =
      &metrics->counter("recovery.anti_entropy_rounds");
  m_.anti_entropy_updates =
      &metrics->counter("recovery.anti_entropy_updates");
  m_.anti_entropy_bytes = &metrics->counter("recovery.anti_entropy_bytes");
  m_.full_state_transfers =
      &metrics->counter("recovery.full_state_transfers");
  m_.checkpoints = &metrics->counter("recovery.checkpoints");
  m_.checkpoint_bytes = &metrics->counter("recovery.checkpoint_bytes");
  m_.modelled_checkpoint_ms =
      &metrics->gauge("recovery.modelled_checkpoint_ms");
  m_.modelled_recovery_ms =
      &metrics->gauge("recovery.modelled_recovery_ms");
  m_.max_recovery_ms = &metrics->gauge("recovery.max_recovery_ms");
  m_.recovery_ms = &metrics->histogram(
      "recovery.recovery_ms", {5.0, 10.0, 25.0, 50.0, 100.0, 250.0});
  m_.corrupt_frames =
      &metrics->counter("storage.corrupt_frames_detected");
  m_.checkpoint_fallbacks =
      &metrics->counter("storage.checkpoint_fallbacks");
  m_.tainted_loads = &metrics->counter("storage.tainted_loads");
  m_.torn_writes = &metrics->counter("storage.torn_writes");
  m_.bit_flips = &metrics->counter("storage.bit_flips");
  m_.lost_flushes = &metrics->counter("storage.lost_flushes");
  m_.stalled_writes = &metrics->counter("storage.stalled_writes");
  m_.frames_written = &metrics->counter("storage.frames_written");
  m_.scrub_passes = &metrics->counter("scrub.passes");
  m_.scrub_checks = &metrics->counter("scrub.checks");
  m_.scrub_clean = &metrics->counter("scrub.clean");
  m_.scrub_divergent = &metrics->counter("scrub.divergent");
  m_.scrub_repairs = &metrics->counter("scrub.repairs");
  m_.scrub_durable_repairs = &metrics->counter("scrub.durable_repairs");
  m_.scrub_referee_replays = &metrics->counter("scrub.referee_replays");
  m_.modelled_scrub_ms = &metrics->gauge("scrub.modelled_ms");
  // Count from the moment of attachment (serving-layer contract).
  mirrored_ = stats_;
  mirrored_store_ = store_.stats();
}

void ModelReplicaSet::sync_metrics() {
  if (!m_.crashes) return;
  m_.crashes->inc(stats_.crashes - mirrored_.crashes);
  m_.recoveries->inc(stats_.recoveries - mirrored_.recoveries);
  m_.replayed_updates->inc(stats_.replayed_updates -
                           mirrored_.replayed_updates);
  m_.anti_entropy_rounds->inc(stats_.anti_entropy_rounds -
                              mirrored_.anti_entropy_rounds);
  m_.anti_entropy_updates->inc(stats_.anti_entropy_updates -
                               mirrored_.anti_entropy_updates);
  m_.anti_entropy_bytes->inc(stats_.anti_entropy_bytes -
                             mirrored_.anti_entropy_bytes);
  m_.full_state_transfers->inc(stats_.full_state_transfers -
                               mirrored_.full_state_transfers);
  m_.checkpoints->inc(stats_.checkpoints - mirrored_.checkpoints);
  m_.checkpoint_bytes->inc(stats_.checkpoint_bytes -
                           mirrored_.checkpoint_bytes);
  m_.modelled_checkpoint_ms->set(stats_.modelled_checkpoint_ms);
  m_.modelled_recovery_ms->set(stats_.modelled_recovery_ms);
  m_.max_recovery_ms->set(stats_.max_recovery_ms);
  m_.corrupt_frames->inc(stats_.corrupt_frames_detected -
                         mirrored_.corrupt_frames_detected);
  m_.checkpoint_fallbacks->inc(stats_.checkpoint_fallbacks -
                               mirrored_.checkpoint_fallbacks);
  m_.tainted_loads->inc(stats_.tainted_loads - mirrored_.tainted_loads);
  m_.scrub_passes->inc(stats_.scrub_passes - mirrored_.scrub_passes);
  m_.scrub_checks->inc(stats_.scrub_checks - mirrored_.scrub_checks);
  m_.scrub_clean->inc(stats_.scrub_clean - mirrored_.scrub_clean);
  m_.scrub_divergent->inc(stats_.scrub_divergent -
                          mirrored_.scrub_divergent);
  m_.scrub_repairs->inc(stats_.scrub_repairs - mirrored_.scrub_repairs);
  m_.scrub_durable_repairs->inc(stats_.scrub_durable_repairs -
                                mirrored_.scrub_durable_repairs);
  m_.scrub_referee_replays->inc(stats_.scrub_referee_replays -
                                mirrored_.scrub_referee_replays);
  m_.modelled_scrub_ms->set(stats_.modelled_scrub_ms);
  const CheckpointStoreStats store_now = store_.stats();
  m_.torn_writes->inc(store_now.torn_writes - mirrored_store_.torn_writes);
  m_.bit_flips->inc(store_now.bit_flips - mirrored_store_.bit_flips);
  m_.lost_flushes->inc(store_now.lost_flushes -
                       mirrored_store_.lost_flushes);
  m_.stalled_writes->inc(store_now.stalled_writes -
                         mirrored_store_.stalled_writes);
  m_.frames_written->inc(store_now.frames_written -
                         mirrored_store_.frames_written);
  mirrored_ = stats_;
  mirrored_store_ = store_now;
}

}  // namespace sea::recovery
