#include "net/network.h"

#include <stdexcept>

namespace sea {

Network Network::single_zone(std::size_t num_nodes, LinkSpec lan) {
  return Network(std::vector<std::uint32_t>(num_nodes, 0), lan,
                 /*wan=*/LinkSpec{50.0, 100.0});
}

Network::Network(std::vector<std::uint32_t> node_zone, LinkSpec lan,
                 LinkSpec wan)
    : node_zone_(std::move(node_zone)), lan_(lan), wan_(wan) {
  if (node_zone_.empty())
    throw std::invalid_argument("Network: need at least one node");
}

std::uint32_t Network::zone_of(NodeId node) const {
  if (node >= node_zone_.size()) throw std::out_of_range("Network::zone_of");
  return node_zone_[node];
}

double Network::cost_ms(NodeId from, NodeId to, std::size_t bytes) const {
  if (from >= node_zone_.size() || to >= node_zone_.size())
    throw std::out_of_range("Network::cost_ms");
  if (from == to) return 0.0;  // loopback is free
  const LinkSpec& link = same_zone(from, to) ? lan_ : wan_;
  return link.transfer_ms(bytes);
}

void Network::record(NodeId from, NodeId to, std::size_t bytes, double ms) {
  ++stats_.messages;
  stats_.bytes += bytes;
  if (same_zone(from, to)) {
    ++stats_.lan_messages;
    stats_.lan_bytes += bytes;
  } else {
    ++stats_.wan_messages;
    stats_.wan_bytes += bytes;
  }
  stats_.modelled_ms += ms;
}

double Network::send(NodeId from, NodeId to, std::size_t bytes) {
  double ms = cost_ms(from, to, bytes);
  if (from != to) {
    if (fault_) ms *= fault_->latency_multiplier(from, to);
    record(from, to, bytes, ms);
  }
  return ms;
}

SendOutcome Network::try_send(NodeId from, NodeId to, std::size_t bytes) {
  double ms = cost_ms(from, to, bytes);
  if (from == to) return {true, ms};  // loopback is free and lossless
  if (fault_) {
    ms *= fault_->latency_multiplier(from, to);
    if (fault_->should_drop(from, to)) {
      ++stats_.dropped_messages;
      stats_.dropped_bytes += bytes;
      return {false, ms};
    }
  }
  record(from, to, bytes, ms);
  return {true, ms};
}

}  // namespace sea
