// Simulated network with traffic accounting.
//
// Substitution note (DESIGN.md): we do not have a cluster or WAN; instead
// every byte that would cross the wire in the paper's envisioned BDAS is
// routed through this cost model. Computation on data is real; transfer
// times are *modelled* from configured per-link latency/bandwidth and are
// always reported separately from measured compute time. Raw byte and
// message counts — the hardware-independent quantities the paper's
// arguments rest on — are the primary outputs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace sea {

using NodeId = std::uint32_t;

/// One link class: fixed per-message latency plus bandwidth-limited
/// serialization delay.
struct LinkSpec {
  double latency_ms = 0.1;
  double bandwidth_mbps = 1000.0;  ///< megabits per second

  /// Modelled time for one message of `bytes` payload.
  double transfer_ms(std::size_t bytes) const noexcept {
    const double bits = static_cast<double>(bytes) * 8.0;
    return latency_ms + bits / (bandwidth_mbps * 1000.0);
  }
};

/// Aggregate traffic accounting, split by link class. Delivered payload
/// (messages/bytes) is tracked separately from messages lost to injected
/// faults so efficiency numbers keep meaning useful payload.
struct TrafficStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::uint64_t lan_messages = 0;
  std::uint64_t lan_bytes = 0;
  std::uint64_t wan_messages = 0;
  std::uint64_t wan_bytes = 0;
  std::uint64_t dropped_messages = 0;  ///< lost on the fallible send path
  std::uint64_t dropped_bytes = 0;
  double modelled_ms = 0.0;  ///< sum of per-message modelled transfer times

  void merge(const TrafficStats& o) noexcept {
    messages += o.messages;
    bytes += o.bytes;
    lan_messages += o.lan_messages;
    lan_bytes += o.lan_bytes;
    wan_messages += o.wan_messages;
    wan_bytes += o.wan_bytes;
    dropped_messages += o.dropped_messages;
    dropped_bytes += o.dropped_bytes;
    modelled_ms += o.modelled_ms;
  }
};

/// Hook consulted on the fallible send path (implemented by
/// sea::FaultInjector; an interface here so sea_net stays dependency-free).
class LinkFaultModel {
 public:
  virtual ~LinkFaultModel() = default;
  /// True when this message is lost in flight.
  virtual bool should_drop(NodeId from, NodeId to) = 0;
  /// Multiplier on the modelled transfer time (straggler/latency spike).
  virtual double latency_multiplier(NodeId from, NodeId to) = 0;
};

/// Outcome of one delivery attempt on the fallible path. `ms` is the
/// modelled time the attempt consumed whether or not it was delivered
/// (a lost message still costs the sender its transfer + detection time).
struct SendOutcome {
  bool delivered = true;
  double ms = 0.0;
};

/// Zoned topology: nodes in the same zone talk over the LAN link class,
/// nodes in different zones over the WAN class, and a node to itself over
/// loopback (free). A single-datacenter cluster is one zone; the
/// geo-distributed setting (paper RT5 / Fig. 3) uses one zone per site.
class Network {
 public:
  /// All nodes in a single zone (cluster setting).
  static Network single_zone(std::size_t num_nodes, LinkSpec lan = {});

  /// Explicit zone assignment per node (geo setting).
  Network(std::vector<std::uint32_t> node_zone, LinkSpec lan, LinkSpec wan);

  std::size_t num_nodes() const noexcept { return node_zone_.size(); }
  std::uint32_t zone_of(NodeId node) const;
  bool same_zone(NodeId a, NodeId b) const {
    return zone_of(a) == zone_of(b);
  }

  const LinkSpec& lan() const noexcept { return lan_; }
  const LinkSpec& wan() const noexcept { return wan_; }

  /// Modelled transfer time without recording it.
  double cost_ms(NodeId from, NodeId to, std::size_t bytes) const;

  /// Records a message and returns its modelled transfer time. Infallible:
  /// never drops, but latency spikes from an attached fault model apply.
  double send(NodeId from, NodeId to, std::size_t bytes);

  /// Fallible send: consults the attached fault model for drops and
  /// latency spikes. Retry-aware callers (CohortSession::rpc, the
  /// MapReduce shuffle) use this path; without a fault model it behaves
  /// exactly like send().
  SendOutcome try_send(NodeId from, NodeId to, std::size_t bytes);

  void set_fault_model(LinkFaultModel* model) noexcept { fault_ = model; }
  LinkFaultModel* fault_model() const noexcept { return fault_; }

  const TrafficStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = TrafficStats{}; }
  /// Restores a previously snapshotted traffic state.
  void restore_stats(const TrafficStats& s) noexcept { stats_ = s; }

 private:
  void record(NodeId from, NodeId to, std::size_t bytes, double ms);

  std::vector<std::uint32_t> node_zone_;
  LinkSpec lan_;
  LinkSpec wan_;
  LinkFaultModel* fault_ = nullptr;
  TrafficStats stats_;
};

}  // namespace sea
