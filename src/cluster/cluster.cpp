#include "cluster/cluster.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <stdexcept>

namespace sea {

Cluster::Cluster(std::size_t num_nodes, Network network, BdasCostModel cost)
    : num_nodes_(num_nodes), network_(std::move(network)), cost_(cost),
      node_down_(num_nodes, false), placement_lost_(num_nodes, false),
      breakers_(num_nodes) {
  if (num_nodes_ == 0)
    throw std::invalid_argument("Cluster: need at least one node");
  if (network_.num_nodes() < num_nodes_)
    throw std::invalid_argument("Cluster: network smaller than cluster");
}

void Cluster::set_node_down(NodeId node, bool down) {
  if (node >= num_nodes_) throw std::out_of_range("Cluster::set_node_down");
  node_down_[node] = down;
}

bool Cluster::node_is_down(NodeId node) const {
  if (node >= num_nodes_) throw std::out_of_range("Cluster::node_is_down");
  return node_down_[node];
}

std::string Cluster::down_nodes_string() const {
  std::string out;
  for (std::size_t n = 0; n < num_nodes_; ++n) {
    if (!node_down_[n]) continue;
    if (!out.empty()) out += ',';
    out += std::to_string(n);
  }
  return out.empty() ? "none" : out;
}

NodeId Cluster::serving_node(const std::string& name,
                             std::size_t shard) const {
  const auto& st = stored(name);
  if (shard >= st.partitions.size())
    throw std::out_of_range("Cluster::serving_node: shard " +
                            std::to_string(shard) + " out of range for table " +
                            name + " (" +
                            std::to_string(st.partitions.size()) + " shards)");
  const std::size_t replicas = std::max<std::size_t>(1, st.spec.replicas);
  // Lease-first routing: a valid lease names the one node allowed to serve
  // this shard (epoch fencing, src/membership). The holder must still be
  // usable — a leased-but-down node falls through to static placement
  // rather than serving nothing (the lease will expire and move).
  if (lease_router_ != nullptr) {
    const NodeId holder = lease_router_->lease_holder(name, shard);
    if (holder != ShardLeaseRouter::kNoLeaseHolder && holder < num_nodes_ &&
        !node_down_[holder] && !placement_lost_[holder] &&
        !breakers_.open_now(holder))
      return holder;
  }
  for (std::size_t r = 0; r < replicas; ++r) {
    const NodeId node = holder_of(name, shard, r);
    if (node == ShardPlacementAuthority::kNoHolder || node >= num_nodes_)
      continue;
    if (!node_down_[node] && !placement_lost_[node] &&
        !breakers_.open_now(node))
      return node;
  }
  throw ShardUnavailable(
      "Cluster::serving_node: no available replica of shard " +
      std::to_string(shard) + " of table " + name + " (replicas=" +
      std::to_string(replicas) + ", down nodes: " + down_nodes_string() + ")");
}

void Cluster::crash_node(NodeId node) {
  if (node >= num_nodes_) throw std::out_of_range("Cluster::crash_node");
  node_down_[node] = true;
  placement_lost_[node] = true;
  ++recovery_stats_.crashes;
  if (tracer_) tracer_->event("crash", "", static_cast<std::int64_t>(node));
}

bool Cluster::placement_lost(NodeId node) const {
  if (node >= num_nodes_) throw std::out_of_range("Cluster::placement_lost");
  return placement_lost_[node];
}

NodeId Cluster::holder_of(const std::string& name, std::size_t shard,
                          std::size_t r) const {
  if (placement_authority_ != nullptr)
    return placement_authority_->shard_holder(name, shard, r);
  return static_cast<NodeId>((shard + r) % num_nodes_);
}

std::uint64_t Cluster::rebuild_placement(NodeId node) {
  struct Copy {
    NodeId donor;
    std::uint64_t bytes;
  };
  // Stable table order so the send/trace sequence is deterministic
  // (tables_ is an unordered_map).
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& kv : tables_) names.push_back(kv.first);
  std::sort(names.begin(), names.end());

  // All-or-nothing: first verify every shard copy the node holds has a
  // live donor, then charge the transfers. A partial rebuild would let
  // placement route reads to shards the node does not hold yet.
  std::vector<Copy> copies;
  for (const auto& name : names) {
    const StoredTable& st = tables_.at(name);
    const std::size_t replicas = std::max<std::size_t>(1, st.spec.replicas);
    for (std::size_t shard = 0; shard < st.partitions.size(); ++shard) {
      bool holds = false;
      for (std::size_t r = 0; r < replicas && !holds; ++r)
        holds = holder_of(name, shard, r) == node;
      if (!holds) continue;
      const std::uint64_t bytes = st.partitions[shard].byte_size();
      if (bytes == 0) continue;  // empty shard: nothing to re-replicate
      NodeId donor = node;
      bool found = false;
      for (std::size_t r = 0; r < replicas && !found; ++r) {
        const NodeId holder = holder_of(name, shard, r);
        if (holder == ShardPlacementAuthority::kNoHolder ||
            holder >= num_nodes_ || holder == node || node_down_[holder] ||
            placement_lost_[holder])
          continue;
        donor = holder;
        found = true;
      }
      if (!found) return 0;  // no live donor: stay lost, retry next tick
      copies.push_back({donor, bytes});
    }
  }
  std::uint64_t total = 0;
  for (const auto& c : copies) {
    const double ms = network_.send(c.donor, node, c.bytes);
    recovery_stats_.modelled_restore_ms += ms;
    ++recovery_stats_.shards_restored;
    recovery_stats_.restore_bytes += c.bytes;
    total += c.bytes;
    if (tracer_)
      tracer_->span_event("shard_rebuild", ms, "", c.bytes,
                          static_cast<std::int64_t>(node));
    if (metrics_) {
      metrics_->counter("recovery.shard_rebuilds").inc();
      metrics_->counter("recovery.shard_rebuild_bytes").inc(c.bytes);
    }
  }
  placement_lost_[node] = false;
  return total;
}

std::uint64_t Cluster::restart_node(NodeId node) {
  if (node >= num_nodes_) throw std::out_of_range("Cluster::restart_node");
  if (!node_down_[node] && !placement_lost_[node]) return 0;  // healthy
  node_down_[node] = false;
  ++recovery_stats_.restarts;
  if (tracer_) tracer_->event("restart", "", static_cast<std::int64_t>(node));
  if (!placement_lost_[node]) return 0;
  return rebuild_placement(node);
}

std::uint64_t Cluster::restore_lost_placements() {
  std::uint64_t total = 0;
  for (std::size_t n = 0; n < num_nodes_; ++n)
    if (placement_lost_[n] && !node_down_[n])
      total += rebuild_placement(static_cast<NodeId>(n));
  return total;
}

void Cluster::load_table(const std::string& name, const Table& table,
                         PartitionSpec spec) {
  StoredTable st;
  st.spec = spec;
  st.partitions.assign(num_nodes_, Table{table.schema()});
  st.versions.assign(num_nodes_, 1);

  if (spec.scheme != Partitioning::kRoundRobin &&
      spec.partition_column >= table.num_columns())
    throw std::invalid_argument("Cluster::load_table: bad partition column");

  if (spec.scheme == Partitioning::kRangeColumn) {
    // Equi-count boundaries from the sorted partition column.
    std::vector<double> vals(table.column(spec.partition_column).begin(),
                             table.column(spec.partition_column).end());
    std::sort(vals.begin(), vals.end());
    st.range_bounds.resize(num_nodes_ + 1);
    st.range_bounds.front() = vals.empty() ? 0.0 : vals.front();
    st.range_bounds.back() =
        vals.empty() ? 0.0 : std::nextafter(vals.back(),
                                            std::numeric_limits<double>::max());
    for (std::size_t i = 1; i < num_nodes_; ++i) {
      const std::size_t pos = (i * vals.size()) / num_nodes_;
      st.range_bounds[i] = vals.empty() ? 0.0 : vals[pos];
    }
  }

  std::vector<double> row(table.num_columns());
  for (std::size_t r = 0; r < table.num_rows(); ++r) {
    for (std::size_t c = 0; c < table.num_columns(); ++c)
      row[c] = table.at(r, c);
    std::size_t node = 0;
    switch (spec.scheme) {
      case Partitioning::kRoundRobin:
        node = r % num_nodes_;
        break;
      case Partitioning::kHashColumn: {
        const double v = row[spec.partition_column];
        node = std::hash<double>{}(v) % num_nodes_;
        break;
      }
      case Partitioning::kRangeColumn: {
        const double v = row[spec.partition_column];
        const auto it = std::upper_bound(st.range_bounds.begin() + 1,
                                         st.range_bounds.end(), v);
        node = std::min<std::size_t>(
            static_cast<std::size_t>(it - st.range_bounds.begin() - 1),
            num_nodes_ - 1);
        break;
      }
    }
    st.partitions[node].append_row(row);
  }
  tables_[name] = std::move(st);
}

void Cluster::load_table_at(const std::string& name, const Table& table,
                            NodeId node) {
  if (node >= num_nodes_)
    throw std::out_of_range("Cluster::load_table_at: bad node");
  StoredTable st;
  st.spec = PartitionSpec{};
  st.partitions.assign(num_nodes_, Table{table.schema()});
  st.versions.assign(num_nodes_, 1);
  std::vector<double> row(table.num_columns());
  st.partitions[node].reserve(table.num_rows());
  for (std::size_t r = 0; r < table.num_rows(); ++r) {
    for (std::size_t c = 0; c < table.num_columns(); ++c)
      row[c] = table.at(r, c);
    st.partitions[node].append_row(row);
  }
  tables_[name] = std::move(st);
}

bool Cluster::has_table(const std::string& name) const noexcept {
  return tables_.count(name) > 0;
}

void Cluster::drop_table(const std::string& name) {
  if (tables_.erase(name) == 0)
    throw std::out_of_range("Cluster::drop_table: no table " + name);
}

const Cluster::StoredTable& Cluster::stored(const std::string& name) const {
  const auto it = tables_.find(name);
  if (it == tables_.end())
    throw std::out_of_range("Cluster: no table named " + name);
  return it->second;
}

Cluster::StoredTable& Cluster::stored(const std::string& name) {
  const auto it = tables_.find(name);
  if (it == tables_.end())
    throw std::out_of_range("Cluster: no table named " + name);
  return it->second;
}

const Table& Cluster::partition(const std::string& name, NodeId node) const {
  const auto& st = stored(name);
  if (node >= st.partitions.size())
    throw std::out_of_range(
        "Cluster::partition: node " + std::to_string(node) +
        " out of range for table " + name + " (" +
        std::to_string(st.partitions.size()) + " nodes, down nodes: " +
        down_nodes_string() + ")");
  return st.partitions[node];
}

Table& Cluster::mutable_partition(const std::string& name, NodeId node) {
  auto& st = stored(name);
  if (node >= st.partitions.size())
    throw std::out_of_range(
        "Cluster::mutable_partition: node " + std::to_string(node) +
        " out of range for table " + name + " (" +
        std::to_string(st.partitions.size()) + " nodes)");
  ++st.versions[node];
  return st.partitions[node];
}

std::size_t Cluster::table_rows(const std::string& name) const {
  const auto& st = stored(name);
  std::size_t n = 0;
  for (const auto& p : st.partitions) n += p.num_rows();
  return n;
}

std::uint64_t Cluster::partition_version(const std::string& name,
                                         NodeId node) const {
  const auto& st = stored(name);
  if (node >= st.versions.size())
    throw std::out_of_range("Cluster::partition_version: bad node");
  return st.versions[node];
}

const PartitionSpec& Cluster::partition_spec(const std::string& name) const {
  return stored(name).spec;
}

std::vector<NodeId> Cluster::nodes_for_range(const std::string& name,
                                             double lo, double hi) const {
  const auto& st = stored(name);
  std::vector<NodeId> out;
  if (st.spec.scheme == Partitioning::kRangeColumn &&
      st.range_bounds.size() == num_nodes_ + 1) {
    for (std::size_t n = 0; n < num_nodes_; ++n) {
      const double node_lo = st.range_bounds[n];
      const double node_hi = st.range_bounds[n + 1];
      if (hi >= node_lo && lo < node_hi)
        out.push_back(static_cast<NodeId>(n));
    }
  } else {
    out.reserve(num_nodes_);
    for (std::size_t n = 0; n < num_nodes_; ++n)
      out.push_back(static_cast<NodeId>(n));
  }
  return out;
}

void Cluster::account_task(NodeId node) {
  if (node >= num_nodes_) throw std::out_of_range("Cluster::account_task");
  if (node_down_[node])
    throw NodeDownError(node, "Cluster::account_task: node " +
                                  std::to_string(node) + " is down");
  ++stats_.tasks;
  ++stats_.node_touches;
  stats_.modelled_overhead_ms += cost_.task_overhead_ms();
}

void Cluster::account_scan(NodeId node, std::uint64_t rows,
                           std::uint64_t bytes) {
  if (node >= num_nodes_) throw std::out_of_range("Cluster::account_scan");
  stats_.rows_scanned += rows;
  stats_.bytes_read += bytes;
}

void Cluster::account_probe(NodeId node, std::uint64_t probes,
                            std::uint64_t rows, std::uint64_t bytes) {
  if (node >= num_nodes_) throw std::out_of_range("Cluster::account_probe");
  if (node_down_[node])
    throw NodeDownError(node, "Cluster::account_probe: node " +
                                  std::to_string(node) + " is down");
  stats_.index_probes += probes;
  stats_.rows_scanned += rows;
  stats_.bytes_read += bytes;
  stats_.modelled_overhead_ms += cost_.coordinator_rpc_ms;
}

}  // namespace sea
