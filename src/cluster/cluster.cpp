#include "cluster/cluster.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <stdexcept>

namespace sea {

Cluster::Cluster(std::size_t num_nodes, Network network, BdasCostModel cost)
    : num_nodes_(num_nodes), network_(std::move(network)), cost_(cost),
      node_down_(num_nodes, false), breakers_(num_nodes) {
  if (num_nodes_ == 0)
    throw std::invalid_argument("Cluster: need at least one node");
  if (network_.num_nodes() < num_nodes_)
    throw std::invalid_argument("Cluster: network smaller than cluster");
}

void Cluster::set_node_down(NodeId node, bool down) {
  if (node >= num_nodes_) throw std::out_of_range("Cluster::set_node_down");
  node_down_[node] = down;
}

bool Cluster::node_is_down(NodeId node) const {
  if (node >= num_nodes_) throw std::out_of_range("Cluster::node_is_down");
  return node_down_[node];
}

std::string Cluster::down_nodes_string() const {
  std::string out;
  for (std::size_t n = 0; n < num_nodes_; ++n) {
    if (!node_down_[n]) continue;
    if (!out.empty()) out += ',';
    out += std::to_string(n);
  }
  return out.empty() ? "none" : out;
}

NodeId Cluster::serving_node(const std::string& name,
                             std::size_t shard) const {
  const auto& st = stored(name);
  if (shard >= st.partitions.size())
    throw std::out_of_range("Cluster::serving_node: shard " +
                            std::to_string(shard) + " out of range for table " +
                            name + " (" +
                            std::to_string(st.partitions.size()) + " shards)");
  const std::size_t replicas = std::max<std::size_t>(1, st.spec.replicas);
  for (std::size_t r = 0; r < replicas; ++r) {
    const auto node = static_cast<NodeId>((shard + r) % num_nodes_);
    if (!node_down_[node] && !breakers_.open_now(node)) return node;
  }
  throw ShardUnavailable(
      "Cluster::serving_node: no available replica of shard " +
      std::to_string(shard) + " of table " + name + " (replicas=" +
      std::to_string(replicas) + ", down nodes: " + down_nodes_string() + ")");
}

void Cluster::load_table(const std::string& name, const Table& table,
                         PartitionSpec spec) {
  StoredTable st;
  st.spec = spec;
  st.partitions.assign(num_nodes_, Table{table.schema()});
  st.versions.assign(num_nodes_, 1);

  if (spec.scheme != Partitioning::kRoundRobin &&
      spec.partition_column >= table.num_columns())
    throw std::invalid_argument("Cluster::load_table: bad partition column");

  if (spec.scheme == Partitioning::kRangeColumn) {
    // Equi-count boundaries from the sorted partition column.
    std::vector<double> vals(table.column(spec.partition_column).begin(),
                             table.column(spec.partition_column).end());
    std::sort(vals.begin(), vals.end());
    st.range_bounds.resize(num_nodes_ + 1);
    st.range_bounds.front() = vals.empty() ? 0.0 : vals.front();
    st.range_bounds.back() =
        vals.empty() ? 0.0 : std::nextafter(vals.back(),
                                            std::numeric_limits<double>::max());
    for (std::size_t i = 1; i < num_nodes_; ++i) {
      const std::size_t pos = (i * vals.size()) / num_nodes_;
      st.range_bounds[i] = vals.empty() ? 0.0 : vals[pos];
    }
  }

  std::vector<double> row(table.num_columns());
  for (std::size_t r = 0; r < table.num_rows(); ++r) {
    for (std::size_t c = 0; c < table.num_columns(); ++c)
      row[c] = table.at(r, c);
    std::size_t node = 0;
    switch (spec.scheme) {
      case Partitioning::kRoundRobin:
        node = r % num_nodes_;
        break;
      case Partitioning::kHashColumn: {
        const double v = row[spec.partition_column];
        node = std::hash<double>{}(v) % num_nodes_;
        break;
      }
      case Partitioning::kRangeColumn: {
        const double v = row[spec.partition_column];
        const auto it = std::upper_bound(st.range_bounds.begin() + 1,
                                         st.range_bounds.end(), v);
        node = std::min<std::size_t>(
            static_cast<std::size_t>(it - st.range_bounds.begin() - 1),
            num_nodes_ - 1);
        break;
      }
    }
    st.partitions[node].append_row(row);
  }
  tables_[name] = std::move(st);
}

void Cluster::load_table_at(const std::string& name, const Table& table,
                            NodeId node) {
  if (node >= num_nodes_)
    throw std::out_of_range("Cluster::load_table_at: bad node");
  StoredTable st;
  st.spec = PartitionSpec{};
  st.partitions.assign(num_nodes_, Table{table.schema()});
  st.versions.assign(num_nodes_, 1);
  std::vector<double> row(table.num_columns());
  st.partitions[node].reserve(table.num_rows());
  for (std::size_t r = 0; r < table.num_rows(); ++r) {
    for (std::size_t c = 0; c < table.num_columns(); ++c)
      row[c] = table.at(r, c);
    st.partitions[node].append_row(row);
  }
  tables_[name] = std::move(st);
}

bool Cluster::has_table(const std::string& name) const noexcept {
  return tables_.count(name) > 0;
}

void Cluster::drop_table(const std::string& name) {
  if (tables_.erase(name) == 0)
    throw std::out_of_range("Cluster::drop_table: no table " + name);
}

const Cluster::StoredTable& Cluster::stored(const std::string& name) const {
  const auto it = tables_.find(name);
  if (it == tables_.end())
    throw std::out_of_range("Cluster: no table named " + name);
  return it->second;
}

Cluster::StoredTable& Cluster::stored(const std::string& name) {
  const auto it = tables_.find(name);
  if (it == tables_.end())
    throw std::out_of_range("Cluster: no table named " + name);
  return it->second;
}

const Table& Cluster::partition(const std::string& name, NodeId node) const {
  const auto& st = stored(name);
  if (node >= st.partitions.size())
    throw std::out_of_range(
        "Cluster::partition: node " + std::to_string(node) +
        " out of range for table " + name + " (" +
        std::to_string(st.partitions.size()) + " nodes, down nodes: " +
        down_nodes_string() + ")");
  return st.partitions[node];
}

Table& Cluster::mutable_partition(const std::string& name, NodeId node) {
  auto& st = stored(name);
  if (node >= st.partitions.size())
    throw std::out_of_range(
        "Cluster::mutable_partition: node " + std::to_string(node) +
        " out of range for table " + name + " (" +
        std::to_string(st.partitions.size()) + " nodes)");
  ++st.versions[node];
  return st.partitions[node];
}

std::size_t Cluster::table_rows(const std::string& name) const {
  const auto& st = stored(name);
  std::size_t n = 0;
  for (const auto& p : st.partitions) n += p.num_rows();
  return n;
}

std::uint64_t Cluster::partition_version(const std::string& name,
                                         NodeId node) const {
  const auto& st = stored(name);
  if (node >= st.versions.size())
    throw std::out_of_range("Cluster::partition_version: bad node");
  return st.versions[node];
}

const PartitionSpec& Cluster::partition_spec(const std::string& name) const {
  return stored(name).spec;
}

std::vector<NodeId> Cluster::nodes_for_range(const std::string& name,
                                             double lo, double hi) const {
  const auto& st = stored(name);
  std::vector<NodeId> out;
  if (st.spec.scheme == Partitioning::kRangeColumn &&
      st.range_bounds.size() == num_nodes_ + 1) {
    for (std::size_t n = 0; n < num_nodes_; ++n) {
      const double node_lo = st.range_bounds[n];
      const double node_hi = st.range_bounds[n + 1];
      if (hi >= node_lo && lo < node_hi)
        out.push_back(static_cast<NodeId>(n));
    }
  } else {
    out.reserve(num_nodes_);
    for (std::size_t n = 0; n < num_nodes_; ++n)
      out.push_back(static_cast<NodeId>(n));
  }
  return out;
}

void Cluster::account_task(NodeId node) {
  if (node >= num_nodes_) throw std::out_of_range("Cluster::account_task");
  if (node_down_[node])
    throw NodeDownError(node, "Cluster::account_task: node " +
                                  std::to_string(node) + " is down");
  ++stats_.tasks;
  ++stats_.node_touches;
  stats_.modelled_overhead_ms += cost_.task_overhead_ms();
}

void Cluster::account_scan(NodeId node, std::uint64_t rows,
                           std::uint64_t bytes) {
  if (node >= num_nodes_) throw std::out_of_range("Cluster::account_scan");
  stats_.rows_scanned += rows;
  stats_.bytes_read += bytes;
}

void Cluster::account_probe(NodeId node, std::uint64_t probes,
                            std::uint64_t rows, std::uint64_t bytes) {
  if (node >= num_nodes_) throw std::out_of_range("Cluster::account_probe");
  if (node_down_[node])
    throw NodeDownError(node, "Cluster::account_probe: node " +
                                  std::to_string(node) + " is down");
  stats_.index_probes += probes;
  stats_.rows_scanned += rows;
  stats_.bytes_read += bytes;
  stats_.modelled_overhead_ms += cost_.coordinator_rpc_ms;
}

}  // namespace sea
