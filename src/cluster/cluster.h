// Simulated Big-Data-Analytics-Stack cluster.
//
// Nodes hold *real* in-memory partitions of real data; scans and probes
// really execute. What is modelled (per DESIGN.md) is everything we lack
// hardware for: network transfer (delegated to sea::Network) and the
// per-task overhead each BDAS layer adds (paper §II.A: "each layer adding
// extra overheads at all nodes engaged in task processing").
//
// Executors (src/exec) and operators (src/ops) must route every partition
// access through the accounting calls here so that "nodes touched",
// "rows scanned" and "bytes read" — the quantities the paper's efficiency
// arguments are about — are captured faithfully.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "data/table.h"
#include "fault/breaker.h"
#include "fault/outage.h"
#include "fault/retry.h"
#include "net/network.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace sea {

class FaultInjector;  // src/fault — ticked by executors via the cluster

/// Work was issued against a node currently marked down (a transient flap
/// raced the task placement) or whose circuit breaker is open. Executors
/// catch this and re-route; it is a control-flow signal, not an outage.
class NodeDownError : public std::runtime_error {
 public:
  NodeDownError(NodeId node, const std::string& what)
      : std::runtime_error(what), node(node) {}
  NodeId node;
};

/// Legacy name for the typed outage raised when no holder of a shard is
/// reachable (see fault/outage.h).
using NoLiveReplicaError = ShardUnavailable;

/// Routing authority for epoch-fenced shard leases. Implemented by the
/// membership layer's LeaseDirectory (src/membership); the interface lives
/// here — dependency inversion, like Network's LinkFaultModel — so the
/// cluster can route reads to the current lease holder without linking the
/// membership library. When a router is attached, serving_node() consults
/// it first and falls back to static placement only when no valid lease
/// exists for the shard.
class ShardLeaseRouter {
 public:
  /// Sentinel: no valid lease for this shard right now.
  static constexpr NodeId kNoLeaseHolder = 0xffffffffu;

  virtual ~ShardLeaseRouter() = default;
  /// The node currently holding an unexpired lease on `shard` of `table`,
  /// or kNoLeaseHolder. Must be cheap and side-effect free: the cluster
  /// calls it on every placement decision.
  virtual NodeId lease_holder(const std::string& table,
                              std::size_t shard) const = 0;
};

/// Placement authority for shard replicas. Implemented by the placement
/// layer's RingPlacementAuthority (src/placement) — a consistent-hash ring
/// with per-shard migration overrides; the interface lives here (dependency
/// inversion, like ShardLeaseRouter) so the cluster can consult elastic
/// placement without linking the placement library. When an authority is
/// attached, serving_node() walks its replica order instead of the static
/// (shard + r) % N neighbors, and restart_node() rebuilds crashed nodes
/// where the ring says their shards live.
class ShardPlacementAuthority {
 public:
  /// Sentinel: no holder at this replica rank.
  static constexpr NodeId kNoHolder = 0xffffffffu;

  virtual ~ShardPlacementAuthority() = default;
  /// The r-th replica holder of `shard` of `table` (r = 0 is the primary
  /// candidate). For r < cluster size the ranks enumerate distinct nodes
  /// (a permutation prefix); kNoHolder marks exhausted ranks. Must be
  /// cheap, deterministic, and side-effect free: the cluster calls it on
  /// every placement decision.
  virtual NodeId shard_holder(const std::string& table, std::size_t shard,
                              std::size_t r) const = 0;
};

/// How a logical table is split across storage nodes.
enum class Partitioning {
  kRoundRobin,  ///< row i -> node i % N
  kHashColumn,  ///< node = hash(value of partition_column) % N
  kRangeColumn  ///< contiguous value ranges of partition_column per node
};

struct PartitionSpec {
  Partitioning scheme = Partitioning::kRoundRobin;
  std::size_t partition_column = 0;  ///< for hash/range schemes
  /// Copies of each shard, placed on consecutive nodes (1 = no replicas).
  /// Executors route around down nodes when replicas exist — the
  /// availability dimension of the paper's metric list (P4).
  std::size_t replicas = 1;
};

/// Per-task overhead model for the stack's layers (storage engine,
/// resource manager, execution engine). Applied once per (task, node).
struct BdasCostModel {
  int layers = 3;
  double layer_overhead_ms = 1.5;   ///< per layer, per task, per node
  double task_startup_ms = 4.0;     ///< scheduling/launch per task
  double coordinator_rpc_ms = 0.2;  ///< direct storage RPC (coordinator-cohort)

  double task_overhead_ms() const noexcept {
    return task_startup_ms + layers * layer_overhead_ms;
  }
};

/// Cumulative base-data access accounting.
struct AccessStats {
  std::uint64_t tasks = 0;          ///< tasks launched (per node)
  std::uint64_t node_touches = 0;   ///< node visits (incl. repeats)
  std::uint64_t rows_scanned = 0;   ///< tuples actually examined
  std::uint64_t bytes_read = 0;     ///< bytes of base data read
  std::uint64_t index_probes = 0;   ///< surgical index lookups
  double modelled_overhead_ms = 0.0;

  void merge(const AccessStats& o) noexcept {
    tasks += o.tasks;
    node_touches += o.node_touches;
    rows_scanned += o.rows_scanned;
    bytes_read += o.bytes_read;
    index_probes += o.index_probes;
    modelled_overhead_ms += o.modelled_overhead_ms;
  }
};

/// Combined access + traffic snapshot, so "oracle" executions (benchmark
/// ground-truth audits) can be fully excluded from the accounting.
/// reset_stats() clears both; restore_stats() must restore both too.
struct ClusterStatsSnapshot {
  AccessStats access;
  TrafficStats traffic;
};

/// Crash-recovery accounting: shard re-replication work done to bring
/// crashed nodes back into placement (all quantities modelled, so
/// recovery benchmarks are exactly repeatable).
struct NodeRecoveryStats {
  std::uint64_t crashes = 0;          ///< crash_node calls
  std::uint64_t restarts = 0;         ///< restart_node calls that did work
  std::uint64_t shards_restored = 0;  ///< shard copies re-replicated
  std::uint64_t restore_bytes = 0;    ///< bytes shipped to restarted nodes
  double modelled_restore_ms = 0.0;   ///< transfer time of those rebuilds
};

class Cluster {
 public:
  Cluster(std::size_t num_nodes, Network network, BdasCostModel cost = {});

  std::size_t num_nodes() const noexcept { return num_nodes_; }
  Network& network() noexcept { return network_; }
  const Network& network() const noexcept { return network_; }
  const BdasCostModel& cost_model() const noexcept { return cost_; }

  /// Partitions `table` across the nodes under `name`.
  /// Range partitioning sorts boundaries by equi-count quantiles of the
  /// partition column so partitions are balanced.
  void load_table(const std::string& name, const Table& table,
                  PartitionSpec spec = {});

  /// Places the whole table on a single node (e.g. one constituent system
  /// of a polystore); other nodes hold empty partitions.
  void load_table_at(const std::string& name, const Table& table,
                     NodeId node);

  bool has_table(const std::string& name) const noexcept;
  void drop_table(const std::string& name);

  /// The slice of `name` stored at `node`. Throws if absent.
  const Table& partition(const std::string& name, NodeId node) const;
  Table& mutable_partition(const std::string& name, NodeId node);

  /// Sum of partition rows (logical table cardinality).
  std::size_t table_rows(const std::string& name) const;

  /// Data version of a table partition; bumped by mutable access, used by
  /// the SEA agent's model-staleness logic (paper RT1.4-ii).
  std::uint64_t partition_version(const std::string& name, NodeId node) const;

  /// Partitioning scheme the table was loaded with.
  const PartitionSpec& partition_spec(const std::string& name) const;

  // --- failure injection & failover ---

  /// Marks a node as failed/recovered. Down nodes must not be probed or
  /// assigned tasks; executors route shards to replica holders instead.
  void set_node_down(NodeId node, bool down);
  bool node_is_down(NodeId node) const;

  /// The node currently serving `shard` of `name`: the primary (node id ==
  /// shard) when up, else the first available replica holder (shard + r)
  /// % N. A holder is unavailable when down, when its circuit breaker is
  /// open and still cooling, OR when its local shard copies were wiped by a
  /// crash and not yet rebuilt (placement_lost), so placement routes around
  /// grey-failing and freshly-restarted nodes alike. Throws
  /// ShardUnavailable when no available copy exists.
  NodeId serving_node(const std::string& name, std::size_t shard) const;

  // --- crash-restart (src/fault NodeCrash schedules) ---

  /// A crash is a down transition that also wipes the node's local state:
  /// until restart_node rebuilds its shard copies, placement routes around
  /// it even once it is back up.
  void crash_node(NodeId node);
  /// Brings a crashed node back up and re-replicates every shard copy it
  /// held from the first live holder; the copy bytes cross the (accounted)
  /// network and are traced as "shard_rebuild" spans. All-or-nothing: when
  /// any copy has no live donor the node stays placement-lost and the
  /// rebuild is retried by restore_lost_placements(). No-ops on a healthy
  /// node. Returns the bytes re-replicated by this call.
  std::uint64_t restart_node(NodeId node);
  /// True while the node's shard copies are wiped and not yet rebuilt.
  bool placement_lost(NodeId node) const;
  /// Retries the shard rebuild for any up-but-placement-lost node (its
  /// donors may have recovered since its restart). Called once per
  /// injector tick; cheap no-op when nothing is lost.
  std::uint64_t restore_lost_placements();
  const NodeRecoveryStats& recovery_stats() const noexcept {
    return recovery_stats_;
  }

  /// Comma-separated ids of currently-down nodes ("none" when all up);
  /// used in failure diagnostics.
  std::string down_nodes_string() const;

  // --- fault-injection & retry wiring (src/fault) ---

  /// The injector (if any) executors must tick at task/RPC boundaries so
  /// transient flap schedules progress. Set via FaultInjector::attach.
  void set_fault_injector(FaultInjector* injector) noexcept {
    fault_injector_ = injector;
  }
  FaultInjector* fault_injector() const noexcept { return fault_injector_; }

  /// Retry/backoff policy applied by CohortSession::rpc and the MapReduce
  /// engine's message delivery.
  void set_retry_policy(const RetryPolicy& policy) noexcept {
    retry_ = policy;
  }
  const RetryPolicy& retry_policy() const noexcept { return retry_; }

  /// Per-node circuit breakers (src/fault/breaker.h). Disabled by default;
  /// enable via set_breaker_config. Consulted by CohortSession::rpc and
  /// MapReduce delivery/placement; serving_node skips open breakers.
  void set_breaker_config(const BreakerConfig& config) {
    breakers_.configure(num_nodes_, config);
  }
  CircuitBreakerSet& breakers() noexcept { return breakers_; }
  const CircuitBreakerSet& breakers() const noexcept { return breakers_; }

  /// Hedged replica reads (tail-latency defense) for CohortSession::rpc.
  void set_hedge_config(const HedgeConfig& config) noexcept {
    hedge_ = config;
  }
  const HedgeConfig& hedge_config() const noexcept { return hedge_; }

  /// Attaches (or detaches, with nullptr) a shard-lease routing authority;
  /// serving_node() then prefers the lease holder over static placement.
  /// The caller owns the router and must detach before destroying it.
  void set_lease_router(ShardLeaseRouter* router) noexcept {
    lease_router_ = router;
  }
  ShardLeaseRouter* lease_router() const noexcept { return lease_router_; }

  /// Attaches (or detaches, with nullptr) an elastic placement authority;
  /// serving_node()'s static fallback walk and restart_node()'s rebuild
  /// then consult the authority's replica order instead of the static
  /// (shard + r) % N neighbors. The caller owns the authority and must
  /// detach before destroying it.
  void set_placement_authority(ShardPlacementAuthority* authority) noexcept {
    placement_authority_ = authority;
  }
  ShardPlacementAuthority* placement_authority() const noexcept {
    return placement_authority_;
  }

  // --- observability (src/obs) ---

  /// Attaches a span tracer and/or metrics registry (either may be null).
  /// Executors consult these at the same serial charge points that feed
  /// ExecReport, so traces and metric values are bit-identical across runs
  /// and SEA_THREADS settings. Attach before issuing queries; the caller
  /// owns both objects and they must outlive the attached executions.
  void set_observability(obs::Tracer* tracer,
                         obs::MetricsRegistry* metrics) noexcept {
    tracer_ = tracer;
    metrics_ = metrics;
    breakers_.bind_metrics(metrics);
  }
  obs::Tracer* tracer() const noexcept { return tracer_; }
  obs::MetricsRegistry* metrics() const noexcept { return metrics_; }

  /// For range partitioning: nodes whose range of the partition column
  /// intersects [lo, hi]. For other schemes, all nodes holding the table.
  /// Callers must only pass bounds on the table's partition column.
  std::vector<NodeId> nodes_for_range(const std::string& name, double lo,
                                      double hi) const;

  // --- accounting (executors must call these) ---

  /// Records launching one task at `node` and charges BDAS layer overheads.
  void account_task(NodeId node);
  /// Records a full or partial scan at `node`.
  void account_scan(NodeId node, std::uint64_t rows, std::uint64_t bytes);
  /// Records `probes` surgical index lookups (and the rows they touched).
  void account_probe(NodeId node, std::uint64_t probes, std::uint64_t rows,
                     std::uint64_t bytes);

  const AccessStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept {
    stats_ = AccessStats{};
    network_.reset_stats();
  }
  /// Snapshot/restore of the full accounting state — access *and* network
  /// traffic — used to keep benchmark "oracle" executions out of the
  /// accounting. (Restoring only access stats would silently leak oracle
  /// network traffic into the numbers.)
  ClusterStatsSnapshot snapshot_stats() const {
    return ClusterStatsSnapshot{stats_, network_.stats()};
  }
  void restore_stats(const ClusterStatsSnapshot& s) noexcept {
    stats_ = s.access;
    network_.restore_stats(s.traffic);
  }

 private:
  struct StoredTable {
    std::vector<Table> partitions;          // one per node
    std::vector<std::uint64_t> versions;    // one per node
    PartitionSpec spec;
    std::vector<double> range_bounds;       // for kRangeColumn: N+1 edges
  };

  const StoredTable& stored(const std::string& name) const;
  StoredTable& stored(const std::string& name);
  /// Re-replicates every shard copy `node` holds from live holders (tables
  /// in sorted-name order for deterministic traffic/trace order). Returns
  /// the bytes shipped, or 0 — leaving the node placement-lost — when any
  /// copy lacks a live donor.
  std::uint64_t rebuild_placement(NodeId node);
  /// The r-th replica holder of `shard` of `name`: the attached placement
  /// authority's answer when one is set, else the static (shard + r) % N
  /// neighbor. May return ShardPlacementAuthority::kNoHolder (callers skip
  /// that rank).
  NodeId holder_of(const std::string& name, std::size_t shard,
                   std::size_t r) const;

  std::size_t num_nodes_;
  Network network_;
  BdasCostModel cost_;
  std::unordered_map<std::string, StoredTable> tables_;
  std::vector<bool> node_down_;
  std::vector<bool> placement_lost_;
  NodeRecoveryStats recovery_stats_;
  AccessStats stats_;
  FaultInjector* fault_injector_ = nullptr;
  ShardLeaseRouter* lease_router_ = nullptr;
  ShardPlacementAuthority* placement_authority_ = nullptr;
  RetryPolicy retry_;
  CircuitBreakerSet breakers_;
  HedgeConfig hedge_;
  obs::Tracer* tracer_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
};

}  // namespace sea
