#include "ops/knn_variants.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "common/timer.h"
#include "exec/coordinator.h"
#include "index/kdtree.h"

namespace sea {

namespace {

std::vector<Point> gather_points(const Table& part,
                                 const std::vector<std::size_t>& cols) {
  std::vector<Point> pts;
  pts.reserve(part.num_rows());
  Point p;
  for (std::size_t r = 0; r < part.num_rows(); ++r) {
    part.gather(r, cols, p);
    pts.push_back(p);
  }
  return pts;
}

/// k-th smallest value of `dists` (1-based k); +inf when fewer than k.
double kth_smallest(std::vector<double>& dists, std::size_t k) {
  if (dists.size() < k) return std::numeric_limits<double>::infinity();
  std::nth_element(dists.begin(),
                   dists.begin() + static_cast<std::ptrdiff_t>(k - 1),
                   dists.end());
  return dists[k - 1];
}

std::vector<KdTree> build_trees(Cluster& cluster, const std::string& table,
                                const std::vector<std::size_t>& cols) {
  std::vector<KdTree> trees;
  trees.reserve(cluster.num_nodes());
  for (std::size_t n = 0; n < cluster.num_nodes(); ++n) {
    trees.push_back(
        build_kdtree(cluster.partition(table, static_cast<NodeId>(n)), cols));
  }
  return trees;
}

}  // namespace

RknnOutcome reverse_knn_scan(Cluster& cluster, const std::string& table,
                             const std::vector<std::size_t>& cols,
                             const Point& query, std::size_t k,
                             NodeId coordinator) {
  if (k == 0) throw std::invalid_argument("reverse_knn: k must be > 0");
  RknnOutcome out;
  ExecReport& rep = out.report;
  const std::size_t n = cluster.num_nodes();

  // Baseline: every partition's points are broadcast to every node so each
  // node can compute exact k-th-NN distances for its own tuples.
  std::vector<std::vector<Point>> all(n);
  std::uint64_t total_bytes = 0;
  for (std::size_t node = 0; node < n; ++node) {
    const Table& part = cluster.partition(table, static_cast<NodeId>(node));
    cluster.account_task(static_cast<NodeId>(node));
    rep.modelled_overhead_ms += cluster.cost_model().task_overhead_ms();
    ++rep.map_tasks;
    cluster.account_scan(static_cast<NodeId>(node), part.num_rows(),
                         part.byte_size());
    all[node] = gather_points(part, cols);
    total_bytes += all[node].size() * cols.size() * sizeof(double);
  }
  for (std::size_t from = 0; from < n; ++from) {
    for (std::size_t to = 0; to < n; ++to) {
      if (from == to) continue;
      const std::uint64_t bytes =
          all[from].size() * cols.size() * sizeof(double);
      rep.modelled_network_ms += cluster.network().send(
          static_cast<NodeId>(from), static_cast<NodeId>(to), bytes);
      rep.shuffle_bytes += bytes;
    }
  }

  for (std::size_t node = 0; node < n; ++node) {
    cluster.account_task(static_cast<NodeId>(node));
    rep.modelled_overhead_ms += cluster.cost_model().task_overhead_ms();
    ++rep.reduce_tasks;
    Timer t;
    for (std::uint32_t r = 0; r < all[node].size(); ++r) {
      const Point& p = all[node][r];
      const double dq = euclidean_distance(p, query);
      std::vector<double> dists;
      for (std::size_t other = 0; other < n; ++other) {
        for (std::uint32_t j = 0; j < all[other].size(); ++j) {
          if (other == node && j == r) continue;  // exclude self
          dists.push_back(euclidean_distance(p, all[other][j]));
        }
      }
      if (dq <= kth_smallest(dists, k))
        out.results.push_back(RknnResult{static_cast<NodeId>(node), r, dq});
    }
    const double ms = t.elapsed_ms();
    rep.reduce_compute_ms_total += ms;
    rep.reduce_compute_ms_max = std::max(rep.reduce_compute_ms_max, ms);
  }
  const std::uint64_t result_bytes = out.results.size() * 16;
  for (std::size_t node = 0; node < n; ++node)
    rep.modelled_network_ms += cluster.network().send(
        static_cast<NodeId>(node), coordinator, result_bytes / n + 8);
  rep.result_bytes += result_bytes;
  (void)total_bytes;
  return out;
}

RknnOutcome reverse_knn_indexed(Cluster& cluster, const std::string& table,
                                const std::vector<std::size_t>& cols,
                                const Point& query, std::size_t k,
                                NodeId coordinator) {
  if (k == 0) throw std::invalid_argument("reverse_knn: k must be > 0");
  RknnOutcome out;
  const std::size_t n = cluster.num_nodes();
  CohortSession session(cluster, coordinator);
  const auto trees = build_trees(cluster, table, cols);

  // Phase 1 — local filter: a tuple whose distance to q exceeds its k-th
  // *local* NN distance certainly has k closer neighbours overall, so it
  // can be rejected without leaving its node.
  struct Survivor {
    NodeId node;
    std::uint32_t row;
    Point p;
    double dq;
  };
  std::vector<Survivor> survivors;
  for (std::size_t node = 0; node < n; ++node) {
    const Table& part = cluster.partition(table, static_cast<NodeId>(node));
    session.rpc(static_cast<NodeId>(node),
                (cols.size() + 2) * sizeof(double), 16, [&] {
      KdQueryCost cost;
      Point p;
      for (std::uint32_t r = 0; r < part.num_rows(); ++r) {
        part.gather(r, cols, p);
        const double dq = euclidean_distance(p, query);
        // k+1 because the tuple itself is its own 0-distance neighbour.
        const auto local = trees[node].knn(p, k + 1, &cost);
        const double local_kth =
            local.size() > k ? local[k].second
                             : std::numeric_limits<double>::infinity();
        if (dq <= local_kth)
          survivors.push_back(
              Survivor{static_cast<NodeId>(node), r, p, dq});
      }
      cluster.account_probe(static_cast<NodeId>(node), part.num_rows(),
                            cost.points_examined,
                            cost.points_examined * cols.size() *
                                sizeof(double));
    });
  }
  out.verified_globally = survivors.size();

  // Phase 2 — global verification for the (few) survivors: batched probes
  // against every other node's tree collect k candidate distances each.
  std::vector<std::vector<double>> cand(survivors.size());
  for (std::size_t i = 0; i < survivors.size(); ++i) {
    const auto local = trees[survivors[i].node].knn(survivors[i].p, k + 1);
    for (std::size_t j = 1; j < local.size(); ++j)  // drop self (j=0)
      cand[i].push_back(local[j].second);
  }
  for (std::size_t node = 0; node < n; ++node) {
    std::vector<std::size_t> remote_idx;
    for (std::size_t i = 0; i < survivors.size(); ++i)
      if (survivors[i].node != node) remote_idx.push_back(i);
    if (remote_idx.empty() || trees[node].empty()) continue;
    session.rpc(
        static_cast<NodeId>(node),
        remote_idx.size() * cols.size() * sizeof(double),
        remote_idx.size() * k * sizeof(double), [&] {
          KdQueryCost cost;
          for (const auto i : remote_idx) {
            const auto nn = trees[node].knn(survivors[i].p, k, &cost);
            for (const auto& [id, dist] : nn) {
              (void)id;
              cand[i].push_back(dist);
            }
          }
          cluster.account_probe(static_cast<NodeId>(node), remote_idx.size(),
                                cost.points_examined,
                                cost.points_examined * cols.size() *
                                    sizeof(double));
        });
  }
  session.local([&] {
    for (std::size_t i = 0; i < survivors.size(); ++i) {
      if (survivors[i].dq <= kth_smallest(cand[i], k))
        out.results.push_back(RknnResult{survivors[i].node,
                                         survivors[i].row,
                                         survivors[i].dq});
    }
    std::sort(out.results.begin(), out.results.end(),
              [](const RknnResult& a, const RknnResult& b) {
                return a.node != b.node ? a.node < b.node : a.row < b.row;
              });
  });
  out.report = session.take_report();
  return out;
}

namespace {

/// Shared retrieval core: probe the given nodes' trees, merge to global k.
KnnRetrieval retrieve_from_nodes(Cluster& cluster, const std::string& table,
                                 const std::vector<std::size_t>& cols,
                                 const Point& query, std::size_t k,
                                 const std::vector<std::size_t>& nodes,
                                 NodeId coordinator) {
  KnnRetrieval out;
  CohortSession session(cluster, coordinator);
  const auto trees = build_trees(cluster, table, cols);
  std::vector<RknnResult> merged;
  for (const auto node : nodes) {
    if (trees[node].empty()) continue;
    ++out.nodes_probed;
    session.rpc(static_cast<NodeId>(node),
                (cols.size() + 2) * sizeof(double), k * 16, [&] {
      KdQueryCost cost;
      const auto nn = trees[node].knn(query, k, &cost);
      for (const auto& [row, dist] : nn)
        merged.push_back(RknnResult{static_cast<NodeId>(node),
                                    static_cast<std::uint32_t>(row), dist});
      cluster.account_probe(static_cast<NodeId>(node), 1,
                            cost.points_examined,
                            cost.points_examined * cols.size() *
                                sizeof(double));
    });
  }
  session.local([&] {
    std::sort(merged.begin(), merged.end(),
              [](const RknnResult& a, const RknnResult& b) {
                return a.distance_to_query < b.distance_to_query;
              });
    if (merged.size() > k) merged.resize(k);
    out.neighbors = std::move(merged);
  });
  out.report = session.take_report();
  return out;
}

}  // namespace

KnnRetrieval knn_retrieve_exact(Cluster& cluster, const std::string& table,
                                const std::vector<std::size_t>& cols,
                                const Point& query, std::size_t k,
                                NodeId coordinator) {
  if (k == 0) throw std::invalid_argument("knn_retrieve: k must be > 0");
  std::vector<std::size_t> nodes(cluster.num_nodes());
  for (std::size_t n = 0; n < nodes.size(); ++n) nodes[n] = n;
  return retrieve_from_nodes(cluster, table, cols, query, k, nodes,
                             coordinator);
}

KnnRetrieval knn_retrieve_approx(Cluster& cluster, const std::string& table,
                                 const std::vector<std::size_t>& cols,
                                 const Point& query, std::size_t k,
                                 std::size_t nodes_to_probe,
                                 NodeId coordinator) {
  if (k == 0) throw std::invalid_argument("knn_retrieve: k must be > 0");
  if (nodes_to_probe == 0)
    throw std::invalid_argument("knn_retrieve_approx: need >= 1 node");
  // Rank nodes by the distance from the query to their partition's
  // bounding box (coordinator-side metadata, no data touched).
  std::vector<std::pair<double, std::size_t>> ranked;
  for (std::size_t n = 0; n < cluster.num_nodes(); ++n) {
    const Table& part = cluster.partition(table, static_cast<NodeId>(n));
    if (part.num_rows() == 0) continue;
    const Rect bounds = table_bounds(part, cols);
    ranked.emplace_back(bounds.min_squared_distance(query), n);
  }
  std::sort(ranked.begin(), ranked.end());
  std::vector<std::size_t> nodes;
  for (std::size_t i = 0; i < std::min(nodes_to_probe, ranked.size()); ++i)
    nodes.push_back(ranked[i].second);
  return retrieve_from_nodes(cluster, table, cols, query, k, nodes,
                             coordinator);
}

double knn_recall(const KnnRetrieval& truth, const KnnRetrieval& approx) {
  if (truth.neighbors.empty()) return 1.0;
  std::size_t hit = 0;
  for (const auto& t : truth.neighbors) {
    for (const auto& a : approx.neighbors) {
      if (a.node == t.node && a.row == t.row) {
        ++hit;
        break;
      }
    }
  }
  return static_cast<double>(hit) /
         static_cast<double>(truth.neighbors.size());
}

KnnJoinOutcome knn_join_broadcast(Cluster& cluster, const std::string& table_a,
                                  const std::vector<std::size_t>& cols_a,
                                  const std::string& table_b,
                                  const std::vector<std::size_t>& cols_b,
                                  std::size_t k, NodeId coordinator) {
  if (k == 0) throw std::invalid_argument("knn_join: k must be > 0");
  if (cols_a.size() != cols_b.size())
    throw std::invalid_argument("knn_join: dims mismatch");
  KnnJoinOutcome out;
  ExecReport& rep = out.report;
  const std::size_t n = cluster.num_nodes();

  // All of B to every node.
  std::vector<Point> all_b;
  std::uint64_t b_bytes = 0;
  for (std::size_t node = 0; node < n; ++node) {
    const Table& bp = cluster.partition(table_b, static_cast<NodeId>(node));
    cluster.account_task(static_cast<NodeId>(node));
    rep.modelled_overhead_ms += cluster.cost_model().task_overhead_ms();
    ++rep.map_tasks;
    cluster.account_scan(static_cast<NodeId>(node), bp.num_rows(),
                         bp.byte_size());
    auto pts = gather_points(bp, cols_b);
    b_bytes += pts.size() * cols_b.size() * sizeof(double);
    all_b.insert(all_b.end(), pts.begin(), pts.end());
  }
  for (std::size_t node = 0; node < n; ++node) {
    const double ms = cluster.network().send(coordinator,
                                             static_cast<NodeId>(node),
                                             b_bytes);
    rep.modelled_network_ms += ms;
    rep.modelled_network_ms_critical =
        std::max(rep.modelled_network_ms_critical, ms);
    rep.shuffle_bytes += b_bytes;
  }

  double dist_sum = 0.0;
  for (std::size_t node = 0; node < n; ++node) {
    const Table& ap = cluster.partition(table_a, static_cast<NodeId>(node));
    cluster.account_task(static_cast<NodeId>(node));
    rep.modelled_overhead_ms += cluster.cost_model().task_overhead_ms();
    ++rep.map_tasks;
    Timer t;
    Point a;
    std::vector<double> dists;
    for (std::size_t r = 0; r < ap.num_rows(); ++r) {
      ap.gather(r, cols_a, a);
      dists.clear();
      dists.reserve(all_b.size());
      for (const auto& b : all_b)
        dists.push_back(euclidean_distance(a, b));
      const std::size_t take = std::min(k, dists.size());
      std::partial_sort(dists.begin(),
                        dists.begin() + static_cast<std::ptrdiff_t>(take),
                        dists.end());
      for (std::size_t i = 0; i < take; ++i) dist_sum += dists[i];
      out.pairs += take;
    }
    const double ms = t.elapsed_ms();
    rep.map_compute_ms_total += ms;
    rep.map_compute_ms_max = std::max(rep.map_compute_ms_max, ms);
    cluster.account_scan(static_cast<NodeId>(node), ap.num_rows(),
                         ap.byte_size());
  }
  out.mean_knn_distance =
      out.pairs ? dist_sum / static_cast<double>(out.pairs) : 0.0;
  return out;
}

KnnJoinOutcome knn_join_indexed(Cluster& cluster, const std::string& table_a,
                                const std::vector<std::size_t>& cols_a,
                                const std::string& table_b,
                                const std::vector<std::size_t>& cols_b,
                                std::size_t k, NodeId coordinator) {
  if (k == 0) throw std::invalid_argument("knn_join: k must be > 0");
  if (cols_a.size() != cols_b.size())
    throw std::invalid_argument("knn_join: dims mismatch");
  KnnJoinOutcome out;
  const std::size_t n = cluster.num_nodes();
  CohortSession session(cluster, coordinator);
  const auto trees = build_trees(cluster, table_b, cols_b);

  double dist_sum = 0.0;
  for (std::size_t anode = 0; anode < n; ++anode) {
    const Table& ap = cluster.partition(table_a, static_cast<NodeId>(anode));
    if (ap.num_rows() == 0) continue;
    const auto a_pts = gather_points(ap, cols_a);
    // Per A-node candidate lists across all B trees, batched per B node.
    std::vector<std::vector<double>> cand(a_pts.size());
    for (std::size_t bnode = 0; bnode < n; ++bnode) {
      if (trees[bnode].empty()) continue;
      session.rpc(
          static_cast<NodeId>(bnode),
          a_pts.size() * cols_a.size() * sizeof(double),
          a_pts.size() * k * sizeof(double), [&] {
            KdQueryCost cost;
            for (std::size_t i = 0; i < a_pts.size(); ++i) {
              const auto nn = trees[bnode].knn(a_pts[i], k, &cost);
              for (const auto& [id, dist] : nn) {
                (void)id;
                cand[i].push_back(dist);
              }
            }
            cluster.account_probe(static_cast<NodeId>(bnode), a_pts.size(),
                                  cost.points_examined,
                                  cost.points_examined * cols_b.size() *
                                      sizeof(double));
          });
    }
    session.local([&] {
      for (auto& c : cand) {
        const std::size_t take = std::min(k, c.size());
        std::partial_sort(c.begin(),
                          c.begin() + static_cast<std::ptrdiff_t>(take),
                          c.end());
        for (std::size_t i = 0; i < take; ++i) dist_sum += c[i];
        out.pairs += take;
      }
    });
  }
  out.mean_knn_distance =
      out.pairs ? dist_sum / static_cast<double>(out.pairs) : 0.0;
  out.report = session.take_report();
  return out;
}

}  // namespace sea
