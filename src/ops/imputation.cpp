#include "ops/imputation.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <span>
#include <stdexcept>

#include "common/timer.h"
#include "exec/coordinator.h"
#include "index/kdtree.h"

namespace sea {

namespace {

struct Candidate {
  double dist = 0.0;
  double value = 0.0;
};

double weighted_mean(std::vector<Candidate>& cands, std::size_t k) {
  const std::size_t take = std::min(k, cands.size());
  if (take == 0) return 0.0;
  std::partial_sort(cands.begin(),
                    cands.begin() + static_cast<std::ptrdiff_t>(take),
                    cands.end(), [](const Candidate& a, const Candidate& b) {
                      return a.dist < b.dist;
                    });
  double wsum = 0.0, vsum = 0.0;
  for (std::size_t i = 0; i < take; ++i) {
    const double w = 1.0 / (1e-9 + cands[i].dist);
    wsum += w;
    vsum += w * cands[i].value;
  }
  return vsum / wsum;
}

struct MissingRow {
  NodeId node;
  std::uint32_t row;
  Point features;
};

std::vector<MissingRow> find_missing(Cluster& cluster,
                                     const ImputationSpec& spec) {
  std::vector<MissingRow> missing;
  const std::size_t d = spec.feature_cols.size();
  Point p(d);
  for (std::size_t n = 0; n < cluster.num_nodes(); ++n) {
    const Table& part = cluster.partition(spec.table,
                                          static_cast<NodeId>(n));
    const auto target = part.column(spec.target_col);
    // Feature columns as spans: the NaN filter streams target_col and only
    // the (rare) missing rows touch the feature columns.
    std::vector<std::span<const double>> fcols;
    fcols.reserve(d);
    for (const auto c : spec.feature_cols) fcols.push_back(part.column(c));
    for (std::size_t r = 0; r < part.num_rows(); ++r) {
      if (!std::isnan(target[r])) continue;
      for (std::size_t i = 0; i < d; ++i) p[i] = fcols[i][r];
      missing.push_back(MissingRow{static_cast<NodeId>(n),
                                   static_cast<std::uint32_t>(r), p});
    }
  }
  return missing;
}

}  // namespace

ImputationOutcome impute_mapreduce(Cluster& cluster,
                                   const ImputationSpec& spec,
                                   NodeId coordinator) {
  ImputationOutcome out;
  ExecReport& rep = out.report;
  const std::size_t n = cluster.num_nodes();
  const std::size_t d = spec.feature_cols.size();
  if (d == 0) throw std::invalid_argument("impute: no feature columns");

  // Discovery pass: every node scans for NaNs (accounted).
  for (std::size_t node = 0; node < n; ++node) {
    const Table& part = cluster.partition(spec.table,
                                          static_cast<NodeId>(node));
    cluster.account_task(static_cast<NodeId>(node));
    rep.modelled_overhead_ms += cluster.cost_model().task_overhead_ms();
    ++rep.map_tasks;
    cluster.account_scan(static_cast<NodeId>(node), part.num_rows(),
                         part.num_rows() * sizeof(double));
  }
  const auto missing = find_missing(cluster, spec);

  // Broadcast phase: every incomplete row's features travel to every node.
  const std::size_t bcast_bytes = missing.size() * (d + 2) * sizeof(double);
  for (std::size_t node = 0; node < n; ++node) {
    const double ms =
        cluster.network().send(coordinator, static_cast<NodeId>(node),
                               bcast_bytes);
    rep.modelled_network_ms += ms;
    rep.modelled_network_ms_critical =
        std::max(rep.modelled_network_ms_critical, ms);
    rep.shuffle_bytes += bcast_bytes;
  }

  // Scan phase: every node scans all its complete rows against all
  // incomplete rows, producing local candidate lists (the MapReduce-style
  // all-pairs cost the paper calls a "performance disaster").
  std::vector<std::vector<Candidate>> cands(missing.size());
  for (std::size_t node = 0; node < n; ++node) {
    const Table& part = cluster.partition(spec.table,
                                          static_cast<NodeId>(node));
    cluster.account_task(static_cast<NodeId>(node));
    rep.modelled_overhead_ms += cluster.cost_model().task_overhead_ms();
    ++rep.map_tasks;
    Timer t;
    const auto target = part.column(spec.target_col);
    std::vector<std::span<const double>> fcols;
    fcols.reserve(d);
    for (const auto c : spec.feature_cols) fcols.push_back(part.column(c));
    Point p(d);
    for (std::size_t r = 0; r < part.num_rows(); ++r) {
      if (std::isnan(target[r])) continue;
      for (std::size_t i = 0; i < d; ++i) p[i] = fcols[i][r];
      for (std::size_t m = 0; m < missing.size(); ++m) {
        const double dist = euclidean_distance(p, missing[m].features);
        auto& list = cands[m];
        if (list.size() < spec.k) {
          list.push_back(Candidate{dist, target[r]});
        } else {
          // Replace the current worst when better.
          std::size_t worst = 0;
          for (std::size_t i = 1; i < list.size(); ++i)
            if (list[i].dist > list[worst].dist) worst = i;
          if (dist < list[worst].dist) list[worst] = Candidate{dist, target[r]};
        }
      }
    }
    const double ms = t.elapsed_ms();
    rep.map_compute_ms_total += ms;
    rep.map_compute_ms_max = std::max(rep.map_compute_ms_max, ms);
    cluster.account_scan(static_cast<NodeId>(node), part.num_rows(),
                         part.byte_size());
    // Candidate shuffle back to the coordinator/reducer.
    const std::uint64_t cand_bytes =
        missing.size() * spec.k * sizeof(Candidate);
    rep.modelled_network_ms += cluster.network().send(
        static_cast<NodeId>(node), coordinator, cand_bytes);
    rep.shuffle_bytes += cand_bytes;
  }

  // Reduce: merge candidates per missing row.
  cluster.account_task(coordinator);
  rep.modelled_overhead_ms += cluster.cost_model().task_overhead_ms();
  ++rep.reduce_tasks;
  Timer t;
  out.values.reserve(missing.size());
  for (std::size_t m = 0; m < missing.size(); ++m) {
    out.values.push_back(ImputedValue{missing[m].node, missing[m].row,
                                      weighted_mean(cands[m], spec.k)});
  }
  rep.reduce_compute_ms_total = rep.reduce_compute_ms_max = t.elapsed_ms();
  return out;
}

ImputationOutcome impute_indexed(Cluster& cluster, const ImputationSpec& spec,
                                 NodeId coordinator) {
  ImputationOutcome out;
  const std::size_t n = cluster.num_nodes();
  const std::size_t d = spec.feature_cols.size();
  if (d == 0) throw std::invalid_argument("impute: no feature columns");
  CohortSession session(cluster, coordinator);

  // Discovery: nodes report their incomplete rows (features only).
  const auto missing = find_missing(cluster, spec);
  for (std::size_t node = 0; node < n; ++node) {
    const Table& part = cluster.partition(spec.table,
                                          static_cast<NodeId>(node));
    std::size_t node_missing = 0;
    for (const auto& m : missing)
      if (m.node == node) ++node_missing;
    session.rpc(static_cast<NodeId>(node), 16,
                node_missing * (d + 2) * sizeof(double), [&] {
                  cluster.account_probe(static_cast<NodeId>(node), 1,
                                        node_missing,
                                        node_missing * sizeof(double));
                  (void)part;
                });
  }

  // Per-node k-d trees over complete rows. Index construction is one-time
  // storage-node maintenance (amortized across queries, like the persistent
  // indexes of [33]), so it is deliberately outside the measured session.
  std::vector<KdTree> trees;
  std::vector<std::vector<double>> targets(n);
  trees.reserve(n);
  for (std::size_t node = 0; node < n; ++node) {
    const Table& part = cluster.partition(spec.table,
                                          static_cast<NodeId>(node));
    const auto target = part.column(spec.target_col);
    std::vector<std::span<const double>> fcols;
    fcols.reserve(d);
    for (const auto c : spec.feature_cols) fcols.push_back(part.column(c));
    std::vector<Point> pts;
    Point p(d);
    for (std::size_t r = 0; r < part.num_rows(); ++r) {
      if (std::isnan(target[r])) continue;
      for (std::size_t i = 0; i < d; ++i) p[i] = fcols[i][r];
      pts.push_back(p);
      targets[node].push_back(target[r]);
    }
    trees.emplace_back(std::move(pts));
  }

  // Surgical batched probes: one RPC per node carries every missing row's
  // features; the node answers its local top-k per row from the k-d tree.
  // Only 2k doubles per (row, node) travel back — never raw partitions.
  std::vector<std::vector<Candidate>> cands(missing.size());
  for (std::size_t node = 0; node < n; ++node) {
    if (trees[node].empty()) continue;
    const std::size_t req = missing.size() * (d + 1) * sizeof(double);
    const std::size_t resp = missing.size() * spec.k * sizeof(Candidate);
    session.rpc(static_cast<NodeId>(node), req, resp, [&] {
      KdQueryCost cost;
      for (std::size_t m = 0; m < missing.size(); ++m) {
        auto nn = trees[node].knn(missing[m].features, spec.k, &cost);
        for (const auto& [id, dist] : nn)
          cands[m].push_back(Candidate{dist, targets[node][id]});
      }
      cluster.account_probe(static_cast<NodeId>(node), missing.size(),
                            cost.points_examined,
                            cost.points_examined * d * sizeof(double));
    });
  }
  out.values.reserve(missing.size());
  for (std::size_t m = 0; m < missing.size(); ++m)
    out.values.push_back(ImputedValue{missing[m].node, missing[m].row,
                                      weighted_mean(cands[m], spec.k)});
  out.report = session.take_report();
  return out;
}

void apply_imputation(Cluster& cluster, const ImputationSpec& spec,
                      const ImputationOutcome& outcome) {
  for (const auto& v : outcome.values) {
    Table& part = cluster.mutable_partition(spec.table, v.node);
    part.set(v.row, spec.target_col, v.value);
  }
}

}  // namespace sea
