#include "ops/spatial.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "common/timer.h"
#include "index/kdtree.h"

namespace sea {

namespace {

std::vector<Point> gather_points(const Table& part,
                                 const std::vector<std::size_t>& cols) {
  std::vector<Point> pts;
  pts.reserve(part.num_rows());
  Point p;
  for (std::size_t r = 0; r < part.num_rows(); ++r) {
    part.gather(r, cols, p);
    pts.push_back(p);
  }
  return pts;
}

void validate(const SpatialJoinSpec& spec) {
  if (spec.cols_a.empty() || spec.cols_a.size() != spec.cols_b.size())
    throw std::invalid_argument("spatial_join: column arity mismatch");
  if (spec.eps <= 0.0)
    throw std::invalid_argument("spatial_join: eps must be > 0");
}

}  // namespace

SpatialJoinOutcome spatial_join_broadcast(Cluster& cluster,
                                          const SpatialJoinSpec& spec,
                                          NodeId coordinator) {
  validate(spec);
  SpatialJoinOutcome out;
  ExecReport& rep = out.report;
  const std::size_t n = cluster.num_nodes();
  const std::size_t d = spec.cols_a.size();
  const double eps2 = spec.eps * spec.eps;

  // Gather all of B at the coordinator, then broadcast to every node.
  std::vector<Point> all_b;
  std::uint64_t b_bytes = 0;
  for (std::size_t node = 0; node < n; ++node) {
    const Table& bp = cluster.partition(spec.table_b,
                                        static_cast<NodeId>(node));
    cluster.account_task(static_cast<NodeId>(node));
    rep.modelled_overhead_ms += cluster.cost_model().task_overhead_ms();
    ++rep.map_tasks;
    cluster.account_scan(static_cast<NodeId>(node), bp.num_rows(),
                         bp.byte_size());
    auto pts = gather_points(bp, spec.cols_b);
    b_bytes += pts.size() * d * sizeof(double);
    rep.modelled_network_ms += cluster.network().send(
        static_cast<NodeId>(node), coordinator,
        pts.size() * d * sizeof(double));
    all_b.insert(all_b.end(), pts.begin(), pts.end());
  }
  rep.shuffle_bytes += b_bytes;
  for (std::size_t node = 0; node < n; ++node) {
    const double ms = cluster.network().send(
        coordinator, static_cast<NodeId>(node), b_bytes);
    rep.modelled_network_ms += ms;
    rep.modelled_network_ms_critical =
        std::max(rep.modelled_network_ms_critical, ms);
    rep.shuffle_bytes += b_bytes;
  }

  // Each node nested-loops its A partition against the whole of B.
  for (std::size_t node = 0; node < n; ++node) {
    const Table& ap = cluster.partition(spec.table_a,
                                        static_cast<NodeId>(node));
    cluster.account_task(static_cast<NodeId>(node));
    rep.modelled_overhead_ms += cluster.cost_model().task_overhead_ms();
    ++rep.map_tasks;
    Timer t;
    Point a;
    for (std::size_t r = 0; r < ap.num_rows(); ++r) {
      ap.gather(r, spec.cols_a, a);
      for (const auto& b : all_b) {
        const double d2 = squared_distance(a, b);
        if (d2 <= eps2) {
          ++out.pairs;
          if (out.sample.size() < spec.sample_pairs)
            out.sample.push_back(SpatialPair{a, b, std::sqrt(d2)});
        }
      }
    }
    const double ms = t.elapsed_ms();
    rep.map_compute_ms_total += ms;
    rep.map_compute_ms_max = std::max(rep.map_compute_ms_max, ms);
    cluster.account_scan(static_cast<NodeId>(node), ap.num_rows(),
                         ap.byte_size());
  }
  // Pair counts return to the coordinator.
  for (std::size_t node = 0; node < n; ++node)
    rep.modelled_network_ms += cluster.network().send(
        static_cast<NodeId>(node), coordinator, 8);
  rep.result_bytes += 8 * n;
  return out;
}

SpatialJoinOutcome spatial_join_partitioned(Cluster& cluster,
                                            const SpatialJoinSpec& spec,
                                            NodeId coordinator) {
  validate(spec);
  SpatialJoinOutcome out;
  ExecReport& rep = out.report;
  const std::size_t n = cluster.num_nodes();
  const std::size_t d = spec.cols_a.size();
  const double eps2 = spec.eps * spec.eps;

  // Domain of dimension 0 across both tables (metadata pass).
  double lo = std::numeric_limits<double>::infinity();
  double hi = -lo;
  for (std::size_t node = 0; node < n; ++node) {
    for (const auto* tn : {&spec.table_a, &spec.table_b}) {
      const Table& part = cluster.partition(*tn, static_cast<NodeId>(node));
      const std::size_t col =
          tn == &spec.table_a ? spec.cols_a[0] : spec.cols_b[0];
      for (const double v : part.column(col)) {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
    }
  }
  if (!(hi > lo)) hi = lo + 1.0;
  const double slice_w = (hi - lo) / static_cast<double>(n);
  const auto slice_of = [&](double v) {
    const auto s = static_cast<std::int64_t>((v - lo) / slice_w);
    return static_cast<std::size_t>(
        std::clamp<std::int64_t>(s, 0, static_cast<std::int64_t>(n) - 1));
  };

  // One shuffle co-partitions A (once) and B (with eps-margin replication).
  std::vector<std::vector<Point>> a_slices(n), b_slices(n);
  for (std::size_t node = 0; node < n; ++node) {
    std::vector<std::uint64_t> batch(n, 0);
    for (const auto* tn : {&spec.table_a, &spec.table_b}) {
      const bool is_a = tn == &spec.table_a;
      const Table& part = cluster.partition(*tn, static_cast<NodeId>(node));
      cluster.account_task(static_cast<NodeId>(node));
      rep.modelled_overhead_ms += cluster.cost_model().task_overhead_ms();
      ++rep.map_tasks;
      cluster.account_scan(static_cast<NodeId>(node), part.num_rows(),
                           part.byte_size());
      const auto& cols = is_a ? spec.cols_a : spec.cols_b;
      Point p;
      for (std::size_t r = 0; r < part.num_rows(); ++r) {
        part.gather(r, cols, p);
        const std::size_t s = slice_of(p[0]);
        if (is_a) {
          a_slices[s].push_back(p);
          batch[s] += d * sizeof(double);
        } else {
          b_slices[s].push_back(p);
          batch[s] += d * sizeof(double);
          // Replicate into neighbours when within eps of a boundary.
          if (s > 0 && p[0] - (lo + static_cast<double>(s) * slice_w) <=
                           spec.eps) {
            b_slices[s - 1].push_back(p);
            batch[s - 1] += d * sizeof(double);
          }
          if (s + 1 < n &&
              (lo + static_cast<double>(s + 1) * slice_w) - p[0] <=
                  spec.eps) {
            b_slices[s + 1].push_back(p);
            batch[s + 1] += d * sizeof(double);
          }
        }
      }
    }
    std::vector<double> inbound(n, 0.0);
    for (std::size_t s = 0; s < n; ++s) {
      if (batch[s] == 0) continue;
      const double ms = cluster.network().send(static_cast<NodeId>(node),
                                               static_cast<NodeId>(s),
                                               batch[s]);
      rep.modelled_network_ms += ms;
      inbound[s] += ms;
      rep.shuffle_bytes += batch[s];
    }
    for (const double ms : inbound)
      rep.modelled_network_ms_critical =
          std::max(rep.modelled_network_ms_critical, ms);
  }

  // Local indexed joins: per-slice k-d tree over B, radius probes from A.
  for (std::size_t s = 0; s < n; ++s) {
    if (a_slices[s].empty() || b_slices[s].empty()) continue;
    cluster.account_task(static_cast<NodeId>(s));
    rep.modelled_overhead_ms += cluster.cost_model().task_overhead_ms();
    ++rep.reduce_tasks;
    Timer t;
    KdTree tree(b_slices[s]);
    KdQueryCost cost;
    for (const auto& a : a_slices[s]) {
      Ball ball{a, spec.eps};
      const auto hits = tree.radius_query(ball, &cost);
      out.pairs += hits.size();
      if (out.sample.size() < spec.sample_pairs) {
        for (const auto h : hits) {
          if (out.sample.size() >= spec.sample_pairs) break;
          const Point& b = b_slices[s][h];
          const double dist = std::sqrt(squared_distance(a, b));
          if (dist * dist <= eps2)
            out.sample.push_back(SpatialPair{a, b, dist});
        }
      }
    }
    const double ms = t.elapsed_ms();
    rep.reduce_compute_ms_total += ms;
    rep.reduce_compute_ms_max = std::max(rep.reduce_compute_ms_max, ms);
    cluster.account_probe(static_cast<NodeId>(s), a_slices[s].size(),
                          cost.points_examined,
                          cost.points_examined * d * sizeof(double));
    rep.modelled_network_ms +=
        cluster.network().send(static_cast<NodeId>(s), coordinator, 8);
    rep.result_bytes += 8;
  }
  return out;
}

}  // namespace sea
