// kNN variants (paper RT2.1: "kNN query processing and its variants, such
// as Reverse kNN, kNN joins, all-pair and approximate kNN").
//
// reverse_knn_*: all tuples p for which the query point q is among p's own
// k nearest neighbours (the "who considers q a neighbour" operator).
//  * reverse_knn_scan — baseline: the query point is broadcast, every node
//    materializes all pairwise distances (O(n^2) work across the cluster).
//  * reverse_knn_indexed — surgical: each tuple first gets a cheap local
//    upper bound on its k-th-NN distance from its own node's k-d tree;
//    only tuples whose distance to q beats that bound are verified
//    globally. Most tuples never leave their node.
//
// knn_join_*: for every tuple of A, its k nearest tuples of B.
//  * knn_join_broadcast — baseline: B is broadcast to every node holding A.
//  * knn_join_indexed — per-node k-d trees over B answer batched probes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "data/point.h"
#include "exec/exec_report.h"

namespace sea {

struct RknnResult {
  NodeId node = 0;
  std::uint32_t row = 0;
  double distance_to_query = 0.0;

  friend bool operator==(const RknnResult&, const RknnResult&) = default;
};

struct RknnOutcome {
  std::vector<RknnResult> results;  ///< node-major, row-ascending
  ExecReport report;
  std::uint64_t verified_globally = 0;  ///< tuples needing cross-node checks
};

RknnOutcome reverse_knn_scan(Cluster& cluster, const std::string& table,
                             const std::vector<std::size_t>& cols,
                             const Point& query, std::size_t k,
                             NodeId coordinator = 0);

RknnOutcome reverse_knn_indexed(Cluster& cluster, const std::string& table,
                                const std::vector<std::size_t>& cols,
                                const Point& query, std::size_t k,
                                NodeId coordinator = 0);

/// kNN retrieval (tuple identities, not aggregates).
struct KnnRetrieval {
  std::vector<RknnResult> neighbors;  ///< ascending by distance
  ExecReport report;
  std::size_t nodes_probed = 0;
};

/// Exact kNN: every node's k-d tree contributes its local top-k; the
/// coordinator merges.
KnnRetrieval knn_retrieve_exact(Cluster& cluster, const std::string& table,
                                const std::vector<std::size_t>& cols,
                                const Point& query, std::size_t k,
                                NodeId coordinator = 0);

/// Approximate kNN (RT2.1 "approximate kNN"): probe only the
/// `nodes_to_probe` nodes whose partition bounding box lies nearest the
/// query. Recall depends on data placement: near-perfect under
/// locality-aware (range) partitioning, ~probed/total under round-robin —
/// the data-placement lever the paper lists among its system techniques.
KnnRetrieval knn_retrieve_approx(Cluster& cluster, const std::string& table,
                                 const std::vector<std::size_t>& cols,
                                 const Point& query, std::size_t k,
                                 std::size_t nodes_to_probe,
                                 NodeId coordinator = 0);

/// Fraction of `truth`'s neighbours present in `approx` (by identity).
double knn_recall(const KnnRetrieval& truth, const KnnRetrieval& approx);

struct KnnJoinOutcome {
  std::uint64_t pairs = 0;        ///< |A| x min(k, |B|)
  double mean_knn_distance = 0.0; ///< mean distance over all joined pairs
  ExecReport report;
};

KnnJoinOutcome knn_join_broadcast(Cluster& cluster, const std::string& table_a,
                                  const std::vector<std::size_t>& cols_a,
                                  const std::string& table_b,
                                  const std::vector<std::size_t>& cols_b,
                                  std::size_t k, NodeId coordinator = 0);

KnnJoinOutcome knn_join_indexed(Cluster& cluster, const std::string& table_a,
                                const std::vector<std::size_t>& cols_a,
                                const std::string& table_b,
                                const std::vector<std::size_t>& cols_b,
                                std::size_t k, NodeId coordinator = 0);

}  // namespace sea
