#include "ops/adhoc_ml.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/timer.h"
#include "exec/coordinator.h"
#include "index/kdtree.h"
#include "ml/kmeans.h"
#include "ml/linear.h"

namespace sea {

namespace {

bool rect_equal(const Rect& a, const Rect& b) {
  return a.lo == b.lo && a.hi == b.hi;
}

/// True when inner lies fully within outer.
bool rect_contains_rect(const Rect& outer, const Rect& inner) {
  if (outer.dims() != inner.dims()) return false;
  for (std::size_t i = 0; i < outer.dims(); ++i)
    if (inner.lo[i] < outer.lo[i] || inner.hi[i] > outer.hi[i]) return false;
  return true;
}

}  // namespace

AdhocMlEngine::AdhocMlEngine(Cluster& cluster, std::string table,
                             std::vector<std::size_t> feature_cols,
                             std::size_t cache_capacity, NodeId coordinator)
    : cluster_(cluster),
      table_(std::move(table)),
      feature_cols_(std::move(feature_cols)),
      cache_capacity_(cache_capacity == 0 ? 1 : cache_capacity),
      coordinator_(coordinator) {
  if (!cluster_.has_table(table_))
    throw std::invalid_argument("AdhocMlEngine: unknown table " + table_);
  if (feature_cols_.empty())
    throw std::invalid_argument("AdhocMlEngine: no feature columns");
}

const AdhocMlEngine::CachedTuples& AdhocMlEngine::fetch(
    const Rect& subspace, std::size_t target_col, bool use_index,
    ExecReport& report, bool* exact_hit, bool* superset_hit) {
  if (subspace.dims() != feature_cols_.size())
    throw std::invalid_argument("AdhocMlEngine: subspace dims mismatch");
  *exact_hit = false;
  *superset_hit = false;

  // 1) Exact cached subspace (and compatible target column).
  for (auto it = tuple_cache_.begin(); it != tuple_cache_.end(); ++it) {
    const bool target_ok =
        target_col == SIZE_MAX || it->target_col == target_col;
    if (target_ok && rect_equal(it->subspace, subspace)) {
      *exact_hit = true;
      tuple_cache_.splice(tuple_cache_.begin(), tuple_cache_, it);
      return tuple_cache_.front();
    }
  }

  // 2) A cached superset: filter its tuples locally — no cluster access.
  for (auto it = tuple_cache_.begin(); it != tuple_cache_.end(); ++it) {
    const bool target_ok =
        target_col == SIZE_MAX || it->target_col == target_col;
    if (!target_ok || !rect_contains_rect(it->subspace, subspace)) continue;
    *superset_hit = true;
    CachedTuples derived;
    derived.subspace = subspace;
    derived.target_col = it->target_col;
    for (std::size_t i = 0; i < it->features.size(); ++i) {
      if (subspace.contains(it->features[i])) {
        derived.features.push_back(it->features[i]);
        if (!it->targets.empty()) derived.targets.push_back(it->targets[i]);
      }
    }
    tuple_cache_.push_front(std::move(derived));
    while (tuple_cache_.size() > cache_capacity_) tuple_cache_.pop_back();
    return tuple_cache_.front();
  }

  // 3) Miss: retrieve qualifying tuples from the cluster.
  CachedTuples fresh;
  fresh.subspace = subspace;
  fresh.target_col = target_col;
  CohortSession session(cluster_, coordinator_);
  const std::size_t d = feature_cols_.size();
  for (std::size_t node = 0; node < cluster_.num_nodes(); ++node) {
    const Table& part = cluster_.partition(table_,
                                           static_cast<NodeId>(node));
    if (part.num_rows() == 0) continue;
    std::vector<std::uint64_t> rows;
    if (use_index) {
      // Surgical path: a per-call k-d probe (trees are rebuilt here for
      // simplicity; persistent node trees would amortize as elsewhere).
      KdTree tree = build_kdtree(part, feature_cols_);
      session.rpc(static_cast<NodeId>(node), (2 * d + 2) * sizeof(double), 8,
                  [&] {
                    KdQueryCost cost;
                    rows = tree.range_query(subspace, &cost);
                    cluster_.account_probe(static_cast<NodeId>(node), 1,
                                           cost.points_examined,
                                           cost.points_examined * d *
                                               sizeof(double));
                  });
    } else {
      // Baseline: full scan through the stack.
      cluster_.account_task(static_cast<NodeId>(node));
      report.modelled_overhead_ms +=
          cluster_.cost_model().task_overhead_ms();
      ++report.map_tasks;
      cluster_.account_scan(static_cast<NodeId>(node), part.num_rows(),
                            part.byte_size());
      Point p;
      for (std::uint64_t r = 0; r < part.num_rows(); ++r) {
        part.gather(static_cast<std::size_t>(r), feature_cols_, p);
        if (subspace.contains(p)) rows.push_back(r);
      }
    }
    // Qualifying tuples travel to the coordinator either way.
    const std::size_t tuple_bytes =
        (d + (target_col == SIZE_MAX ? 0 : 1)) * sizeof(double);
    const std::uint64_t bytes = rows.size() * tuple_bytes;
    if (use_index) {
      session.extra_response(static_cast<NodeId>(node), bytes);
    } else {
      report.modelled_network_ms += cluster_.network().send(
          static_cast<NodeId>(node), coordinator_, bytes);
      report.shuffle_bytes += bytes;
    }
    Point p;
    for (const auto r : rows) {
      part.gather(static_cast<std::size_t>(r), feature_cols_, p);
      fresh.features.push_back(p);
      if (target_col != SIZE_MAX)
        fresh.targets.push_back(
            part.at(static_cast<std::size_t>(r), target_col));
    }
  }
  if (use_index) report.merge(session.take_report());

  tuple_cache_.push_front(std::move(fresh));
  while (tuple_cache_.size() > cache_capacity_) tuple_cache_.pop_back();
  return tuple_cache_.front();
}

AdhocClusterResult AdhocMlEngine::kmeans(const Rect& subspace, std::size_t k,
                                         bool use_index) {
  if (k == 0) throw std::invalid_argument("AdhocMlEngine::kmeans: k");
  AdhocClusterResult out;
  ++stats_.tasks;
  bool exact = false, super = false;
  const CachedTuples& tuples =
      fetch(subspace, SIZE_MAX, use_index, out.report, &exact, &super);
  out.cache_hit = exact;
  out.answered_from_superset = super;
  if (exact)
    ++stats_.exact_hits;
  else if (super)
    ++stats_.superset_hits;
  else
    ++stats_.misses;

  out.rows = tuples.features.size();
  if (tuples.features.empty()) return out;
  Timer t;
  KMeans km(k, 1234);
  out.inertia = km.fit(tuples.features);
  out.centroids = km.centers();
  out.report.coordinator_compute_ms += t.elapsed_ms();
  return out;
}

AdhocRegressionResult AdhocMlEngine::regression(const Rect& subspace,
                                                std::size_t target_col,
                                                bool use_index) {
  AdhocRegressionResult out;
  ++stats_.tasks;
  bool exact = false, super = false;
  const CachedTuples& tuples =
      fetch(subspace, target_col, use_index, out.report, &exact, &super);
  out.cache_hit = exact || super;
  if (exact)
    ++stats_.exact_hits;
  else if (super)
    ++stats_.superset_hits;
  else
    ++stats_.misses;

  out.rows = tuples.features.size();
  if (tuples.features.size() < feature_cols_.size() + 2) return out;
  Timer t;
  LinearModel m;
  m.fit(tuples.features, tuples.targets);
  out.weights = m.weights();
  out.intercept = m.intercept();
  out.r_squared = m.r_squared();
  out.report.coordinator_compute_ms += t.elapsed_ms();
  return out;
}

std::size_t AdhocMlEngine::cache_bytes() const noexcept {
  std::size_t total = 0;
  for (const auto& e : tuple_cache_) {
    total += e.features.size() * feature_cols_.size() * sizeof(double);
    total += e.targets.size() * sizeof(double);
  }
  return total;
}

}  // namespace sea
