// Ad hoc ML tasks over analyst-defined subspaces (paper RT2.2).
//
// "analysts are to define (using selection operators...) subspaces of
// interest and ask for the data items within these subspaces to be
// clustered, classified, or to perform regressions ... performing these
// tasks efficiently and scalably on arbitrarily defined, ad hoc subspaces
// is an open problem. This thread will develop semantic caches and indexes
// to dramatically expedite such operations."
//
// AdhocMlEngine supports k-means clustering and linear regression over a
// hyper-rectangle subspace, with:
//  * surgical retrieval — per-node k-d trees fetch only qualifying tuples
//    (vs the full-scan MapReduce-style baseline, selectable per call);
//  * a semantic result cache — re-issued (task, subspace, params) tuples
//    are free, and a *contained* clustering request can be answered from a
//    cached superset's tuples without touching the cluster again.
#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "data/point.h"
#include "exec/exec_report.h"

namespace sea {

struct AdhocClusterResult {
  std::vector<Point> centroids;
  double inertia = 0.0;
  std::size_t rows = 0;
  bool cache_hit = false;
  bool answered_from_superset = false;
  ExecReport report;
};

struct AdhocRegressionResult {
  std::vector<double> weights;
  double intercept = 0.0;
  double r_squared = 0.0;
  std::size_t rows = 0;
  bool cache_hit = false;
  ExecReport report;
};

struct AdhocMlStats {
  std::uint64_t tasks = 0;
  std::uint64_t exact_hits = 0;
  std::uint64_t superset_hits = 0;
  std::uint64_t misses = 0;
};

class AdhocMlEngine {
 public:
  AdhocMlEngine(Cluster& cluster, std::string table,
                std::vector<std::size_t> feature_cols,
                std::size_t cache_capacity = 32, NodeId coordinator = 0);

  /// k-means over the tuples inside `subspace` (feature columns).
  AdhocClusterResult kmeans(const Rect& subspace, std::size_t k,
                            bool use_index = true);

  /// OLS regression target_col ~ feature_cols over the subspace tuples.
  AdhocRegressionResult regression(const Rect& subspace,
                                   std::size_t target_col,
                                   bool use_index = true);

  const AdhocMlStats& stats() const noexcept { return stats_; }
  std::size_t cache_bytes() const noexcept;

 private:
  struct CachedTuples {
    Rect subspace;
    std::vector<Point> features;      ///< qualifying tuples, feature cols
    std::vector<double> targets;      ///< target values (regression only)
    std::size_t target_col = SIZE_MAX;
  };

  /// Fetches qualifying tuples; consults the tuple cache first (exact or
  /// containing subspace), else retrieves from the cluster and caches.
  const CachedTuples& fetch(const Rect& subspace, std::size_t target_col,
                            bool use_index, ExecReport& report,
                            bool* exact_hit, bool* superset_hit);

  Cluster& cluster_;
  std::string table_;
  std::vector<std::size_t> feature_cols_;
  std::size_t cache_capacity_;
  NodeId coordinator_;
  std::list<CachedTuples> tuple_cache_;  ///< front = most recent
  AdhocMlStats stats_;
};

}  // namespace sea
