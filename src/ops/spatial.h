// Distributed spatial analytics operators (paper RT2.1: "spatial joins,
// spatial (multi-dimensional) range queries").
//
// spatial_join_* counts (and samples) all pairs (a in A, b in B) with
// euclidean distance <= eps:
//  * spatial_join_broadcast — BDAS-style baseline: the whole of B is
//    broadcast to every node, which then scans its A partition against all
//    of B. Network cost ~ |B| x nodes; compute ~ |A| x |B|.
//  * spatial_join_partitioned — the "right way" (cf. Simba [32], which the
//    paper cites as state of the art to beat): one accounted shuffle
//    co-partitions A and B into slices along dimension 0 (B replicated
//    into eps-boundary margins), then per-node k-d trees answer radius
//    probes locally. Network ~ |A| + |B|; compute ~ |A| log |B|.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "data/point.h"
#include "exec/exec_report.h"

namespace sea {

struct SpatialJoinSpec {
  std::string table_a;
  std::string table_b;
  std::vector<std::size_t> cols_a;  ///< point coordinates in A
  std::vector<std::size_t> cols_b;  ///< point coordinates in B (same dims)
  double eps = 0.05;
  /// Keep at most this many example pairs in the outcome (0 = none).
  std::size_t sample_pairs = 16;
};

struct SpatialPair {
  Point a;
  Point b;
  double distance = 0.0;
};

struct SpatialJoinOutcome {
  std::uint64_t pairs = 0;
  std::vector<SpatialPair> sample;
  ExecReport report;
};

SpatialJoinOutcome spatial_join_broadcast(Cluster& cluster,
                                          const SpatialJoinSpec& spec,
                                          NodeId coordinator = 0);

SpatialJoinOutcome spatial_join_partitioned(Cluster& cluster,
                                            const SpatialJoinSpec& spec,
                                            NodeId coordinator = 0);

}  // namespace sea
