// Distributed rank-join (top-k join), after the paper's [30] and §IV P3.
//
// Given two relations R and S partitioned across the cluster, each with
// (key, score, payload) columns, return the k join results with the
// highest combined score score_R + score_S.
//
// Two implementations whose cost gap is the E3 experiment:
//  * rank_join_mapreduce — the state-of-the-art-as-critiqued baseline:
//    both relations are fully scanned and shuffled by join key, reducers
//    materialize per-key score products and local top-k, the coordinator
//    merges. Cost grows with |R| + |S| regardless of k.
//  * rank_join_surgical — coordinator-cohort with per-node ScoreIndexes
//    and Bloom filters: sorted access pulls R tuples in global descending
//    score order; random access probes only the S nodes whose Bloom filter
//    may contain the key; a threshold-algorithm bound stops as soon as the
//    k-th best result beats any undiscovered combination. Cost grows with
//    the (typically tiny) prefix of R actually consumed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "exec/exec_report.h"

namespace sea {

struct RankJoinSpec {
  std::string table_r;
  std::string table_s;
  std::size_t key_col = 0;
  std::size_t score_col = 1;
  std::size_t payload_col = 2;
  std::size_t k = 10;
  /// Surgical: tuples pulled per sorted-access RPC.
  std::size_t batch_size = 32;
  /// Surgical: per-node Bloom filter false-positive rate.
  double bloom_fpr = 0.01;
  /// Surgical: serve random access from LearnedScoreIndex (RMI last-mile)
  /// instead of ScoreIndex's hash map. Same results tuple for tuple — the
  /// differential suite drives both paths against each other — at a
  /// fraction of the index memory.
  bool use_learned_index = false;
};

struct JoinResult {
  std::uint64_t key = 0;
  double r_score = 0.0;
  double s_score = 0.0;
  double combined = 0.0;

  friend bool operator==(const JoinResult&, const JoinResult&) = default;
};

struct RankJoinOutcome {
  std::vector<JoinResult> topk;  ///< descending by combined score
  ExecReport report;
  std::uint64_t r_tuples_consumed = 0;  ///< sorted-access depth (surgical)
  std::uint64_t s_probes = 0;           ///< random-access probes (surgical)
};

RankJoinOutcome rank_join_mapreduce(Cluster& cluster, const RankJoinSpec& spec,
                                    NodeId coordinator = 0);

RankJoinOutcome rank_join_surgical(Cluster& cluster, const RankJoinSpec& spec,
                                   NodeId coordinator = 0);

/// Per-(cluster,table) cache of ScoreIndexes so repeated surgical joins
/// amortize index builds, mirroring persistent indexes at storage nodes.
/// Exposed for tests; rank_join_surgical uses it internally.
void invalidate_rank_join_indexes();

}  // namespace sea
