// Scalable kNN-based missing-value imputation (paper [36], §IV P3).
//
// Rows whose `target_col` is NaN are imputed with the distance-weighted
// mean of their k nearest complete rows in feature space. Two distributed
// implementations whose cost gap is the E11 experiment:
//  * impute_mapreduce — the BDAS-style baseline: every incomplete row is
//    broadcast to every node, every node scans its complete rows for local
//    candidates, candidates shuffle to reducers. Cost ~ |missing| x |data|.
//  * impute_indexed — coordinator-cohort: per-node k-d trees over complete
//    rows answer surgical kNN probes; only k candidates per (row, node)
//    travel.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "exec/exec_report.h"

namespace sea {

struct ImputationSpec {
  std::string table;
  std::size_t target_col = 0;
  std::vector<std::size_t> feature_cols;
  std::size_t k = 5;
};

struct ImputedValue {
  NodeId node = 0;
  std::uint32_t row = 0;
  double value = 0.0;
};

struct ImputationOutcome {
  std::vector<ImputedValue> values;  ///< node-major, row-ascending order
  ExecReport report;
};

ImputationOutcome impute_mapreduce(Cluster& cluster,
                                   const ImputationSpec& spec,
                                   NodeId coordinator = 0);

ImputationOutcome impute_indexed(Cluster& cluster, const ImputationSpec& spec,
                                 NodeId coordinator = 0);

/// Applies imputed values back into the stored partitions (bumps partition
/// versions, so agents learn the data changed).
void apply_imputation(Cluster& cluster, const ImputationSpec& spec,
                      const ImputationOutcome& outcome);

}  // namespace sea
