#include "ops/rank_join.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <queue>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "common/timer.h"
#include "exec/coordinator.h"
#include "index/bloom.h"
#include "index/learned.h"
#include "index/score_index.h"

namespace sea {

namespace {

constexpr std::size_t kTupleWireBytes = 24;  // key + score + payload

struct TaggedTuple {
  std::uint64_t key;
  double score;
  bool from_r;
};

/// Min-heap based top-k accumulator over combined scores.
class TopK {
 public:
  explicit TopK(std::size_t k) : k_(k) {}

  void offer(const JoinResult& r) {
    if (heap_.size() < k_) {
      heap_.push(r);
    } else if (r.combined > heap_.top().combined) {
      heap_.pop();
      heap_.push(r);
    }
  }

  double kth_best() const noexcept {
    return heap_.size() < k_ ? -std::numeric_limits<double>::infinity()
                             : heap_.top().combined;
  }

  bool full() const noexcept { return heap_.size() >= k_; }

  std::vector<JoinResult> take_sorted() {
    std::vector<JoinResult> out;
    out.reserve(heap_.size());
    while (!heap_.empty()) {
      out.push_back(heap_.top());
      heap_.pop();
    }
    std::reverse(out.begin(), out.end());
    return out;
  }

 private:
  struct Cmp {
    bool operator()(const JoinResult& a, const JoinResult& b) const noexcept {
      return a.combined > b.combined;  // min-heap on combined
    }
  };
  std::size_t k_;
  std::priority_queue<JoinResult, std::vector<JoinResult>, Cmp> heap_;
};

/// Node-resident index state for the surgical algorithm, cached per
/// (cluster, table) so repeated joins amortize builds like persistent
/// storage-node indexes would.
struct SurgicalIndexes {
  // Exactly one of the two index families is populated, per the spec's
  // use_learned_index flag (the cache key includes it, so both variants
  // can coexist for the same tables — the differential tests rely on it).
  std::vector<ScoreIndex> r_index;             // per node
  std::vector<ScoreIndex> s_index;             // per node
  std::vector<LearnedScoreIndex> r_learned;    // per node
  std::vector<LearnedScoreIndex> s_learned;    // per node
  std::vector<BloomFilter> s_blooms;    // per node, over S keys
  double s_max_score = 0.0;
  double build_ms = 0.0;
  /// Bloom filters and top scores ship to the coordinator once per index
  /// lifetime (like any persistent metadata), not once per join.
  bool bootstrap_accounted = false;
};

std::unordered_map<std::string, SurgicalIndexes>& index_cache() {
  static std::unordered_map<std::string, SurgicalIndexes> cache;
  return cache;
}

std::string cache_key(const Cluster& cluster, const RankJoinSpec& spec) {
  return std::to_string(reinterpret_cast<std::uintptr_t>(&cluster)) + "/" +
         spec.table_r + "/" + spec.table_s + "/" +
         std::to_string(spec.key_col) + "," + std::to_string(spec.score_col) +
         (spec.use_learned_index ? "/learned" : "/exact");
}

SurgicalIndexes& surgical_indexes(Cluster& cluster,
                                  const RankJoinSpec& spec) {
  const std::string key = cache_key(cluster, spec);
  auto& cache = index_cache();
  const auto it = cache.find(key);
  if (it != cache.end()) return it->second;

  Timer t;
  SurgicalIndexes idx;
  const std::size_t n = cluster.num_nodes();
  idx.r_index.reserve(n);
  idx.s_index.reserve(n);
  idx.s_blooms.reserve(n);
  idx.s_max_score = -std::numeric_limits<double>::infinity();
  for (std::size_t node = 0; node < n; ++node) {
    const Table& rp = cluster.partition(spec.table_r,
                                        static_cast<NodeId>(node));
    const Table& sp = cluster.partition(spec.table_s,
                                        static_cast<NodeId>(node));
    if (spec.use_learned_index) {
      idx.r_learned.emplace_back(rp, spec.key_col, spec.score_col,
                                 spec.payload_col);
      idx.s_learned.emplace_back(sp, spec.key_col, spec.score_col,
                                 spec.payload_col);
    } else {
      idx.r_index.emplace_back(rp, spec.key_col, spec.score_col,
                               spec.payload_col);
      idx.s_index.emplace_back(sp, spec.key_col, spec.score_col,
                               spec.payload_col);
    }
    BloomFilter bloom(std::max<std::size_t>(1, sp.num_rows()),
                      spec.bloom_fpr);
    const auto keys = sp.column(spec.key_col);
    for (const double kv : keys)
      bloom.insert(static_cast<std::uint64_t>(std::llround(kv)));
    idx.s_blooms.push_back(std::move(bloom));
    const double top =
        spec.use_learned_index
            ? (idx.s_learned.back().empty()
                   ? -std::numeric_limits<double>::infinity()
                   : idx.s_learned.back().by_rank(0).score)
            : (idx.s_index.back().empty()
                   ? -std::numeric_limits<double>::infinity()
                   : idx.s_index.back().by_rank(0).score);
    idx.s_max_score = std::max(idx.s_max_score, top);
  }
  idx.build_ms = t.elapsed_ms();
  return cache.emplace(key, std::move(idx)).first->second;
}

}  // namespace

void invalidate_rank_join_indexes() { index_cache().clear(); }

RankJoinOutcome rank_join_mapreduce(Cluster& cluster,
                                    const RankJoinSpec& spec,
                                    NodeId coordinator) {
  RankJoinOutcome out;
  ExecReport& rep = out.report;
  const std::size_t n = cluster.num_nodes();

  // --- map phase: full scans of both relations, shuffle by join key ---
  std::vector<std::unordered_map<std::uint64_t, std::vector<TaggedTuple>>>
      buckets(n);
  for (const std::string* table : {&spec.table_r, &spec.table_s}) {
    const bool from_r = table == &spec.table_r;
    for (std::size_t node = 0; node < n; ++node) {
      const Table& part = cluster.partition(*table,
                                            static_cast<NodeId>(node));
      cluster.account_task(static_cast<NodeId>(node));
      rep.modelled_overhead_ms += cluster.cost_model().task_overhead_ms();
      ++rep.map_tasks;
      Timer t;
      std::vector<std::uint64_t> batch_bytes(n, 0);
      const auto keys = part.column(spec.key_col);
      const auto scores = part.column(spec.score_col);
      for (std::size_t r = 0; r < part.num_rows(); ++r) {
        const auto key =
            static_cast<std::uint64_t>(std::llround(keys[r]));
        const std::size_t reducer = key % n;
        buckets[reducer][key].push_back(TaggedTuple{key, scores[r], from_r});
        batch_bytes[reducer] += kTupleWireBytes;
      }
      const double ms = t.elapsed_ms();
      rep.map_compute_ms_total += ms;
      rep.map_compute_ms_max = std::max(rep.map_compute_ms_max, ms);
      cluster.account_scan(static_cast<NodeId>(node), part.num_rows(),
                           part.byte_size());
      std::vector<double> inbound(n, 0.0);
      for (std::size_t reducer = 0; reducer < n; ++reducer) {
        if (batch_bytes[reducer] == 0) continue;
        const double net =
            cluster.network().send(static_cast<NodeId>(node),
                                   static_cast<NodeId>(reducer),
                                   batch_bytes[reducer]);
        rep.modelled_network_ms += net;
        inbound[reducer] += net;
        rep.shuffle_bytes += batch_bytes[reducer];
      }
      for (const double ms_in : inbound)
        rep.modelled_network_ms_critical =
            std::max(rep.modelled_network_ms_critical, ms_in);
    }
  }

  // --- reduce phase: per-key score products, reducer-local top-k ---
  TopK global(spec.k);
  for (std::size_t reducer = 0; reducer < n; ++reducer) {
    if (buckets[reducer].empty()) continue;
    cluster.account_task(static_cast<NodeId>(reducer));
    rep.modelled_overhead_ms += cluster.cost_model().task_overhead_ms();
    ++rep.reduce_tasks;
    Timer t;
    TopK local(spec.k);
    for (const auto& [key, tuples] : buckets[reducer]) {
      for (const auto& a : tuples) {
        if (!a.from_r) continue;
        for (const auto& b : tuples) {
          if (b.from_r) continue;
          local.offer(JoinResult{key, a.score, b.score, a.score + b.score});
        }
      }
    }
    auto local_top = local.take_sorted();
    const double ms = t.elapsed_ms();
    rep.reduce_compute_ms_total += ms;
    rep.reduce_compute_ms_max = std::max(rep.reduce_compute_ms_max, ms);
    const std::uint64_t bytes =
        local_top.size() * sizeof(JoinResult);
    rep.modelled_network_ms += cluster.network().send(
        static_cast<NodeId>(reducer), coordinator, bytes);
    rep.result_bytes += bytes;
    for (const auto& r : local_top) global.offer(r);
  }
  out.topk = global.take_sorted();
  return out;
}

RankJoinOutcome rank_join_surgical(Cluster& cluster, const RankJoinSpec& spec,
                                   NodeId coordinator) {
  RankJoinOutcome out;
  auto& idx = surgical_indexes(cluster, spec);
  const std::size_t n = cluster.num_nodes();
  CohortSession session(cluster, coordinator);

  // Family-agnostic accessors: the exact and the learned score index share
  // an identical rank order and identical per-key rank runs (the learned
  // one is exact by construction), so the join below is oblivious to which
  // family serves it.
  const bool learned = spec.use_learned_index;
  const auto r_size = [&](std::size_t node) {
    return learned ? idx.r_learned[node].size() : idx.r_index[node].size();
  };
  const auto r_at =
      [&](std::size_t node, std::size_t rank) -> const ScoredTuple& {
    return learned ? idx.r_learned[node].by_rank(rank)
                   : idx.r_index[node].by_rank(rank);
  };
  const auto s_ranks = [&](std::size_t node, std::uint64_t key) {
    return learned ? idx.s_learned[node].ranks_for_key(key)
                   : idx.s_index[node].ranks_for_key(key);
  };
  const auto s_at =
      [&](std::size_t node, std::size_t rank) -> const ScoredTuple& {
    return learned ? idx.s_learned[node].by_rank(rank)
                   : idx.s_index[node].by_rank(rank);
  };

  // Bootstrap: every node ships its Bloom filter and top scores, once per
  // index lifetime (amortized across joins like the indexes themselves).
  if (!idx.bootstrap_accounted) {
    for (std::size_t node = 0; node < n; ++node) {
      session.rpc(static_cast<NodeId>(node), 16,
                  idx.s_blooms[node].byte_size() + 16, [] {});
    }
    idx.bootstrap_accounted = true;
  }

  // Per-node sorted-access cursors into R; `next_score` peeks are part of
  // each batch response.
  std::vector<std::size_t> cursor(n, 0);
  std::vector<double> next_score(n);
  for (std::size_t node = 0; node < n; ++node)
    next_score[node] = r_size(node) == 0
                           ? -std::numeric_limits<double>::infinity()
                           : r_at(node, 0).score;

  TopK topk(spec.k);

  const auto best_frontier = [&]() -> std::size_t {
    std::size_t best = n;
    double best_score = -std::numeric_limits<double>::infinity();
    for (std::size_t node = 0; node < n; ++node) {
      if (cursor[node] < r_size(node) && next_score[node] > best_score) {
        best_score = next_score[node];
        best = node;
      }
    }
    return best;
  };

  for (;;) {
    const std::size_t node = best_frontier();
    if (node == n) break;  // R exhausted everywhere
    // Threshold bound: no undiscovered result can beat kth_best once the
    // best remaining R score plus the global S maximum falls below it.
    if (topk.full() &&
        next_score[node] + idx.s_max_score <= topk.kth_best())
      break;

    // Sorted-access batch pull from this node.
    const std::size_t take =
        std::min(spec.batch_size, r_size(node) - cursor[node]);
    std::vector<ScoredTuple> batch = session.rpc(
        static_cast<NodeId>(node), 16, take * kTupleWireBytes + 8, [&] {
          std::vector<ScoredTuple> b;
          b.reserve(take);
          for (std::size_t i = 0; i < take; ++i)
            b.push_back(r_at(node, cursor[node] + i));
          cluster.account_probe(static_cast<NodeId>(node), 1, take,
                                take * kTupleWireBytes);
          return b;
        });
    cursor[node] += take;
    next_score[node] = cursor[node] < r_size(node)
                           ? r_at(node, cursor[node]).score
                           : -std::numeric_limits<double>::infinity();
    out.r_tuples_consumed += take;

    // Random access, batched per node ([30]): group this batch's keys by
    // the S nodes whose Bloom filter may hold them, with a per-key score
    // threshold — S matches scoring below (kth_best - best_r_for_key)
    // cannot enter the top-k, so they never leave the node. One RPC per
    // (batch, node) amortizes round-trip latency.
    std::unordered_map<std::uint64_t, double> key_best_r;
    for (const auto& rt : batch) {
      if (topk.full() && rt.score + idx.s_max_score <= topk.kth_best())
        continue;
      const auto it = key_best_r.find(rt.key);
      if (it == key_best_r.end() || rt.score > it->second)
        key_best_r[rt.key] = rt.score;
    }
    for (std::size_t snode = 0; snode < n && !key_best_r.empty(); ++snode) {
      std::vector<std::pair<std::uint64_t, double>> probe_keys;
      for (const auto& [key, best_r] : key_best_r) {
        if (idx.s_blooms[snode].may_contain(key))
          probe_keys.emplace_back(
              key, topk.full()
                       ? topk.kth_best() - best_r
                       : -std::numeric_limits<double>::infinity());
      }
      if (probe_keys.empty()) continue;
      out.s_probes += probe_keys.size();
      // (key, s_score) matches above the per-key threshold.
      auto matches = session.rpc(
          static_cast<NodeId>(snode), probe_keys.size() * 16 + 8, 8, [&] {
            std::vector<std::pair<std::uint64_t, double>> found;
            std::uint64_t touched = 0;
            for (const auto& [key, threshold] : probe_keys) {
              const auto ranks = s_ranks(snode, key);
              // Ascending rank positions = descending scores: stop at the
              // first below-threshold score.
              for (const auto rank : ranks) {
                const double sc = s_at(snode, rank).score;
                if (sc <= threshold) break;
                found.emplace_back(key, sc);
                ++touched;
              }
            }
            cluster.account_probe(static_cast<NodeId>(snode),
                                  probe_keys.size(), touched + 1,
                                  (touched + 1) * kTupleWireBytes);
            return found;
          });
      // The 8-byte response covered the header; account the variable-
      // length match list now that its size is known.
      session.extra_response(static_cast<NodeId>(snode),
                             matches.size() * 16);
      for (const auto& [key, s_score] : matches) {
        // All R tuples of this batch with that key join against the match.
        for (const auto& rt : batch) {
          if (rt.key != key) continue;
          topk.offer(
              JoinResult{key, rt.score, s_score, rt.score + s_score});
        }
      }
    }
  }
  out.topk = topk.take_sorted();
  out.report = session.take_report();
  return out;
}

}  // namespace sea
