#include "geo/polystore.h"

#include <sstream>
#include <stdexcept>

namespace sea {

namespace {
constexpr const char* kStoreA = "store_a";
constexpr const char* kStoreB = "store_b";
}  // namespace

const char* to_string(FederationStrategy s) noexcept {
  switch (s) {
    case FederationStrategy::kMigrateData:
      return "migrate_data";
    case FederationStrategy::kMigrateAggregates:
      return "migrate_aggregates";
    case FederationStrategy::kMigrateModels:
      return "migrate_models";
  }
  return "?";
}

Polystore::Polystore(PolystoreConfig config, const Table& store_a,
                     const Table& store_b)
    : config_(config) {
  Network net({0, 1}, /*lan=*/LinkSpec{0.1, 10000.0}, config_.wan);
  cluster_ = std::make_unique<Cluster>(2, std::move(net), config_.bdas);
  cluster_->load_table_at(kStoreA, store_a, 0);
  cluster_->load_table_at(kStoreB, store_b, 1);
  exec_a_ = std::make_unique<ExactExecutor>(*cluster_, kStoreA, /*coord=*/0);
  exec_b_ = std::make_unique<ExactExecutor>(*cluster_, kStoreB, /*coord=*/1);
  remote_agent_.emplace(config_.agent,
                        [this](const std::vector<std::size_t>& cols) {
                          return exec_b_->domain(cols);
                        });
}

double Polystore::remote_truth(const AnalyticalQuery& q) {
  return exec_b_->execute(q, ExecParadigm::kCoordinatorIndexed).answer;
}

void Polystore::train_remote_model(const AnalyticalQuery& q,
                                   double truth) {
  remote_agent_->observe(q, truth);
}

std::size_t Polystore::sync_model() {
  // The model crosses the inter-system link as its real serialized bytes
  // and is reconstructed on the other side (paper RT1.5 option (ii)).
  std::stringstream wire;
  remote_agent_->serialize(wire);
  const std::string blob = wire.str();
  cluster_->network().send(1, 0, blob.size());
  std::stringstream in(blob);
  synced_agent_ = DatalessAgent::deserialize(
      in, [this](const std::vector<std::size_t>& cols) {
        return exec_b_->domain(cols);
      });
  return blob.size();
}

FederatedAnswer Polystore::query(const AnalyticalQuery& q,
                                 FederationStrategy strategy) {
  q.validate();
  FederatedAnswer out;
  const TrafficStats before = cluster_->network().stats();

  // Local (store A) exact contribution is common to all strategies.
  const ExactResult local = exec_a_->execute(q, ExecParadigm::kCoordinatorIndexed);

  switch (strategy) {
    case FederationStrategy::kMigrateData: {
      // Remote store finds its qualifying tuples and ships them raw.
      const ExactResult remote =
          exec_b_->execute(q, ExecParadigm::kCoordinatorIndexed);
      const Table& bpart = cluster_->partition(kStoreB, 1);
      const std::size_t tuple_bytes =
          bpart.num_rows() ? bpart.row_bytes() : 0;
      cluster_->network().send(1, 0,
                               remote.qualifying_tuples * tuple_bytes);
      AggregateState merged = local.state;
      merged.merge(remote.state);
      out.value = merged.finalize(q.analytic);
      break;
    }
    case FederationStrategy::kMigrateAggregates: {
      const ExactResult remote =
          exec_b_->execute(q, ExecParadigm::kCoordinatorIndexed);
      cluster_->network().send(1, 0, AggregateState::kWireBytes);
      AggregateState merged = local.state;
      merged.merge(remote.state);
      out.value = merged.finalize(q.analytic);
      break;
    }
    case FederationStrategy::kMigrateModels: {
      if (!synced_agent_)
        throw std::logic_error(
            "Polystore: kMigrateModels requires sync_model() first");
      out.approximate = true;
      switch (q.analytic) {
        case AnalyticType::kCount:
        case AnalyticType::kSum: {
          const auto pred = synced_agent_->maybe_predict(q);
          if (!pred)
            throw std::logic_error("Polystore: remote model cold for query");
          out.value = local.answer + std::max(0.0, pred->value);
          break;
        }
        case AnalyticType::kAvg: {
          // Combine via predicted remote count and avg.
          AnalyticalQuery count_q = q;
          count_q.analytic = AnalyticType::kCount;
          const auto pred_avg = synced_agent_->maybe_predict(q);
          const auto pred_cnt = synced_agent_->maybe_predict(count_q);
          if (!pred_avg || !pred_cnt)
            throw std::logic_error("Polystore: remote model cold for query");
          const double rc = std::max(0.0, pred_cnt->value);
          const double lc = static_cast<double>(local.state.count);
          const double denom = lc + rc;
          out.value = denom > 0.0
                          ? (local.state.sum_t + pred_avg->value * rc) / denom
                          : 0.0;
          break;
        }
        default:
          throw std::invalid_argument(
              "Polystore: kMigrateModels supports count/sum/avg only");
      }
      break;
    }
  }

  const TrafficStats after = cluster_->network().stats();
  out.inter_system_bytes = after.wan_bytes - before.wan_bytes;
  out.inter_system_ms = after.modelled_ms - before.modelled_ms;
  return out;
}

}  // namespace sea
