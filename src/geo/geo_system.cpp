#include "geo/geo_system.h"

#include <algorithm>

#include <limits>
#include <sstream>
#include <stdexcept>

#include "fault/outage.h"

namespace sea {

namespace {
constexpr const char* kTable = "geo_data";
constexpr std::size_t kAnswerWireBytes = 16;
}  // namespace

// Completeness guard: GeoStats is 14 uint64 counters; sync_metrics() below
// must mirror every one. Adding a field changes the size and fails this
// assert until sync_metrics() covers the new field.
static_assert(sizeof(GeoStats) == 14 * 8,
              "GeoStats gained/lost a field: update sync_metrics() and "
              "this guard");

const char* to_string(EdgeMode m) noexcept {
  switch (m) {
    case EdgeMode::kForwardAll:
      return "forward_all";
    case EdgeMode::kEdgeLearning:
      return "edge_learning";
    case EdgeMode::kCoreTrainedSync:
      return "core_trained_sync";
    case EdgeMode::kEdgePeerRouting:
      return "edge_peer_routing";
  }
  return "?";
}

GeoSystem::GeoSystem(GeoConfig config, const Table& data)
    : config_(config) {
  if (config_.num_cores == 0 || config_.num_edges == 0)
    throw std::invalid_argument("GeoSystem: need cores and edges");
  // Zone 0 = the core datacenter; each edge sits in its own zone.
  std::vector<std::uint32_t> zones(config_.num_cores, 0);
  for (std::size_t e = 0; e < config_.num_edges; ++e)
    zones.push_back(static_cast<std::uint32_t>(1 + e));
  Network net(std::move(zones), config_.lan, config_.wan);
  cluster_ = std::make_unique<Cluster>(config_.num_cores, std::move(net),
                                       config_.bdas);
  cluster_->load_table(kTable, data, PartitionSpec{});
  exec_ = std::make_unique<ExactExecutor>(*cluster_, kTable, /*coord=*/0);

  const auto domain_provider = [this](const std::vector<std::size_t>& cols) {
    return exec_->domain(cols);
  };
  edge_agents_.reserve(config_.num_edges);
  for (std::size_t e = 0; e < config_.num_edges; ++e)
    edge_agents_.emplace_back(config_.agent, domain_provider);
  if (config_.mode == EdgeMode::kCoreTrainedSync)
    core_agent_.emplace(config_.agent, domain_provider);
  edge_seen_.assign(config_.num_edges, 0);
  edge_model_version_.assign(config_.num_edges, 0);
  registry_.resize(config_.num_edges);
  wan_breakers_.configure(config_.num_edges, config_.wan_breaker);
}

void GeoSystem::set_observability(obs::Tracer* tracer,
                                  obs::MetricsRegistry* metrics) {
  cluster_->set_observability(tracer, metrics);
  if (!metrics) {
    m_ = GeoMetrics{};
    return;
  }
  m_.queries = &metrics->counter("geo.queries");
  m_.served_at_edge = &metrics->counter("geo.served_at_edge");
  m_.served_by_peer = &metrics->counter("geo.served_by_peer");
  m_.peer_attempts = &metrics->counter("geo.peer_attempts");
  m_.forwarded = &metrics->counter("geo.forwarded");
  m_.syncs = &metrics->counter("geo.syncs");
  m_.sync_bytes = &metrics->counter("geo.sync_bytes");
  m_.registry_bytes = &metrics->counter("geo.registry_bytes");
  m_.degraded_at_edge = &metrics->counter("geo.degraded_at_edge");
  m_.unanswered = &metrics->counter("geo.unanswered");
  m_.heal_resyncs = &metrics->counter("geo.heal_resyncs");
  m_.wan_breaker_fast_fails =
      &metrics->counter("geo.wan_breaker_fast_fails");
  m_.stale_model_serves = &metrics->counter("geo.stale_model_serves");
  m_.edge_crash_resyncs = &metrics->counter("geo.edge_crash_resyncs");
  m_.wan_ms = &metrics->histogram(
      "geo.wan_ms", {50.0, 100.0, 200.0, 400.0, 800.0, 1600.0});
  // Count from the moment of attachment (same contract as the serving
  // layer's serve.* counters).
  mirrored_ = stats_;
}

void GeoSystem::sync_metrics() {
  if (!m_.queries) return;
  m_.queries->inc(stats_.queries - mirrored_.queries);
  m_.served_at_edge->inc(stats_.served_at_edge - mirrored_.served_at_edge);
  m_.served_by_peer->inc(stats_.served_by_peer - mirrored_.served_by_peer);
  m_.peer_attempts->inc(stats_.peer_attempts - mirrored_.peer_attempts);
  m_.forwarded->inc(stats_.forwarded - mirrored_.forwarded);
  m_.syncs->inc(stats_.syncs - mirrored_.syncs);
  m_.sync_bytes->inc(stats_.sync_bytes - mirrored_.sync_bytes);
  m_.registry_bytes->inc(stats_.registry_bytes - mirrored_.registry_bytes);
  m_.degraded_at_edge->inc(stats_.degraded_at_edge -
                           mirrored_.degraded_at_edge);
  m_.unanswered->inc(stats_.unanswered - mirrored_.unanswered);
  m_.heal_resyncs->inc(stats_.heal_resyncs - mirrored_.heal_resyncs);
  m_.wan_breaker_fast_fails->inc(stats_.wan_breaker_fast_fails -
                                 mirrored_.wan_breaker_fast_fails);
  m_.stale_model_serves->inc(stats_.stale_model_serves -
                             mirrored_.stale_model_serves);
  m_.edge_crash_resyncs->inc(stats_.edge_crash_resyncs -
                             mirrored_.edge_crash_resyncs);
  mirrored_ = stats_;
}

void GeoSystem::note_edge_model_answer(std::size_t edge, GeoAnswer& out) {
  if (config_.mode != EdgeMode::kCoreTrainedSync) return;
  if (edge_model_version_[edge] >= core_model_version_) return;
  out.stale_model = true;
  ++stats_.stale_model_serves;
}

void GeoSystem::maybe_refresh_registry() {
  if (config_.mode != EdgeMode::kEdgePeerRouting) return;
  ++since_registry_;
  if (since_registry_ < config_.registry_interval && stats_.queries > 1)
    return;
  if (wan_partitioned_) return;  // centroids cannot cross a severed WAN
  refresh_registry_now();
}

void GeoSystem::refresh_registry_now() {
  since_registry_ = 0;
  // Each edge publishes its quanta centroids per signature; the registry
  // is broadcast to all other edges (the RT5.2 "model state sharing").
  for (std::size_t e = 0; e < config_.num_edges; ++e) {
    registry_[e].clear();
    std::size_t bytes = 0;
    for (const auto& sig : known_signatures_) {
      // Only servable (warm) quanta are worth advertising: cold quanta
      // would attract detours their owner declines anyway.
      auto centers = edge_agents_[e].quanta_centers(
          sig, config_.agent.min_samples_to_predict);
      bytes += centers.size() *
               (centers.empty() ? 0 : centers[0].size()) * sizeof(double);
      registry_[e][sig] = std::move(centers);
    }
    // Publish to every other edge (edge zones differ => WAN).
    for (std::size_t other = 0; other < config_.num_edges; ++other) {
      if (other == e) continue;
      const double ms = cluster_->network().send(edge_node(e),
                                                 edge_node(other), bytes + 16);
      if (obs::Tracer* tr = tracer())
        tr->span_event("registry_publish", ms, "", bytes + 16,
                       static_cast<std::int64_t>(edge_node(other)));
      stats_.registry_bytes += bytes + 16;
    }
  }
}

std::size_t GeoSystem::route_peer(std::size_t edge,
                                  const AnalyticalQuery& query) {
  const std::string sig = query.signature();
  const Point pos = edge_agents_[edge].query_position(query);
  // The local agent already declined; a peer is only worth a WAN detour if
  // its model state covers the query region *substantially better* than
  // our own — otherwise it will almost surely decline too.
  double own_d = std::numeric_limits<double>::infinity();
  for (const auto& c : edge_agents_[edge].quanta_centers(sig)) {
    if (c.size() == pos.size())
      own_d = std::min(own_d, euclidean_distance(pos, c));
  }
  std::size_t best = SIZE_MAX;
  double best_d = config_.peer_route_distance;
  for (std::size_t e = 0; e < config_.num_edges; ++e) {
    if (e == edge) continue;
    const auto it = registry_[e].find(sig);
    if (it == registry_[e].end()) continue;
    for (const auto& c : it->second) {
      if (c.size() != pos.size()) continue;
      const double d = euclidean_distance(pos, c);
      if (d < best_d && d < 0.5 * own_d) {
        best_d = d;
        best = e;
      }
    }
  }
  return best;
}

double GeoSystem::oracle(const AnalyticalQuery& query) {
  // Snapshot-and-restore so audits do not pollute the traffic accounting.
  const ClusterStatsSnapshot saved = cluster_->snapshot_stats();
  const double answer =
      exec_->execute(query, config_.core_paradigm).answer;
  cluster_->restore_stats(saved);
  return answer;
}

void GeoSystem::set_wan_partitioned(bool partitioned) {
  if (partitioned == wan_partitioned_) return;
  wan_partitioned_ = partitioned;
  if (partitioned) return;
  // Heal: edges missed model/registry updates while cut off — ship the
  // current state immediately rather than waiting for the next interval.
  if (config_.mode == EdgeMode::kCoreTrainedSync) {
    ++stats_.heal_resyncs;
    sync_now();
  } else if (config_.mode == EdgeMode::kEdgePeerRouting) {
    ++stats_.heal_resyncs;
    refresh_registry_now();
  }
}

void GeoSystem::maybe_sync() {
  if (config_.mode != EdgeMode::kCoreTrainedSync) return;
  ++forwarded_since_sync_;
  if (forwarded_since_sync_ < config_.sync_interval) return;
  sync_now();
}

void GeoSystem::sync_now() {
  forwarded_since_sync_ = 0;
  ++stats_.syncs;
  // Serialize once: the wire bytes are the real serialized size, and the
  // shipped snapshot is reconstructed at each edge from those bytes.
  // Every ship — interval syncs and heal resyncs alike — bumps the edge's
  // model version to the core's, so post-heal edge answers are no longer
  // reported stale (they really do carry the current model).
  std::stringstream wire;
  core_agent_->serialize(wire);
  const std::string blob = wire.str();
  for (std::size_t e = 0; e < config_.num_edges; ++e)
    ship_model_to_edge(e, blob, "");
}

void GeoSystem::ship_model_to_edge(std::size_t edge, const std::string& blob,
                                   const char* tag) {
  // Model state crosses the WAN — this is the entire data movement of
  // the sync, versus shipping base data in a traditional design.
  const double ms =
      cluster_->network().send(0, edge_node(edge), blob.size());
  if (obs::Tracer* tr = tracer())
    tr->span_event("model_sync", ms, tag, blob.size(),
                   static_cast<std::int64_t>(edge_node(edge)));
  stats_.sync_bytes += blob.size();
  const auto domain_provider = [this](const std::vector<std::size_t>& cols) {
    return exec_->domain(cols);
  };
  std::stringstream in(blob);
  edge_agents_[edge] = DatalessAgent::deserialize(in, domain_provider);
  edge_model_version_[edge] = core_model_version_;
}

void GeoSystem::crash_edge(std::size_t edge) {
  if (edge >= config_.num_edges)
    throw std::out_of_range("GeoSystem::crash_edge: bad edge");
  // The edge's in-memory state is wiped (crash semantics match the fault
  // layer's NodeCrash): model, learned quanta, and its version claim.
  const auto domain_provider = [this](const std::vector<std::size_t>& cols) {
    return exec_->domain(cols);
  };
  edge_agents_[edge] = DatalessAgent(config_.agent, domain_provider);
  edge_model_version_[edge] = 0;
  if (obs::Tracer* tr = tracer())
    tr->event("edge_crash", "", static_cast<std::int64_t>(edge_node(edge)));
}

void GeoSystem::restart_edge(std::size_t edge) {
  if (edge >= config_.num_edges)
    throw std::out_of_range("GeoSystem::restart_edge: bad edge");
  if (wan_partitioned_) return;  // the heal's full resync covers it
  if (config_.mode == EdgeMode::kCoreTrainedSync) {
    ++stats_.edge_crash_resyncs;
    std::stringstream wire;
    core_agent_->serialize(wire);
    ship_model_to_edge(edge, wire.str(), "crash_resync");
  } else if (config_.mode == EdgeMode::kEdgePeerRouting) {
    // Nothing to ship (edges learn locally), but the restarted edge's
    // empty registry entry must not keep attracting peer detours.
    ++stats_.edge_crash_resyncs;
    refresh_registry_now();
  }
  sync_metrics();
}

GeoAnswer GeoSystem::submit(std::size_t edge, const AnalyticalQuery& query) {
  if (edge >= config_.num_edges)
    throw std::out_of_range("GeoSystem::submit: bad edge");
  obs::SpanScope root(tracer(), "geo_submit", static_cast<std::int64_t>(edge));
  const GeoAnswer out = submit_impl(edge, query);
  root.set_tag(!out.answered        ? "unanswered"
               : out.served_by_peer ? "peer"
               : out.degraded       ? "degraded"
               : out.served_at_edge ? "edge"
                                    : "forwarded");
  if (m_.wan_ms && out.wan_ms > 0.0) m_.wan_ms->observe(out.wan_ms);
  sync_metrics();
  return out;
}

GeoAnswer GeoSystem::submit_impl(std::size_t edge,
                                 const AnalyticalQuery& query) {
  GeoAnswer out;
  ++stats_.queries;
  ++edge_seen_[edge];
  {
    const std::string sig = query.signature();
    if (std::find(known_signatures_.begin(), known_signatures_.end(), sig) ==
        known_signatures_.end())
      known_signatures_.push_back(sig);
  }
  maybe_refresh_registry();

  const bool bootstrapped = edge_seen_[edge] > config_.edge_bootstrap;
  if (config_.mode != EdgeMode::kForwardAll && bootstrapped) {
    if (auto pred = edge_agents_[edge].try_predict(query)) {
      out.value = pred->value;
      out.served_at_edge = true;
      out.expected_abs_error = pred->expected_abs_error;
      note_edge_model_answer(edge, out);
      ++stats_.served_at_edge;
      return out;
    }
    // Local miss: try the best-covering peer edge before the core
    // (RT5.4 analytical query routing; edge <-> edge is WAN).
    if (config_.mode == EdgeMode::kEdgePeerRouting && !wan_partitioned_) {
      const std::size_t peer = route_peer(edge, query);
      if (peer != SIZE_MAX) {
        ++stats_.peer_attempts;
        const NodeId en = edge_node(edge);
        const NodeId pn = edge_node(peer);
        const double to_peer_ms =
            cluster_->network().send(en, pn, query_wire_bytes(query));
        out.wan_ms += to_peer_ms;
        if (obs::Tracer* tr = tracer())
          tr->span_event("wan_hop", to_peer_ms, "peer_query",
                         query_wire_bytes(query),
                         static_cast<std::int64_t>(pn));
        auto pred = edge_agents_[peer].try_predict(query);
        const double from_peer_ms =
            cluster_->network().send(pn, en, kAnswerWireBytes);
        out.wan_ms += from_peer_ms;
        if (obs::Tracer* tr = tracer())
          tr->span_event("wan_hop", from_peer_ms, "peer_answer",
                         kAnswerWireBytes, static_cast<std::int64_t>(en));
        if (pred) {
          out.value = pred->value;
          out.served_by_peer = true;
          out.expected_abs_error = pred->expected_abs_error;
          ++stats_.served_by_peer;
          return out;
        }
        // Peer declined too: the failed detour's WAN cost stays charged.
      }
    }
  }

  // Partition: the core is unreachable, so the edge serves its best local
  // model answer (confidence gate bypassed) or the query goes unanswered.
  if (wan_partitioned_) {
    if (auto pred = edge_agents_[edge].maybe_predict(query)) {
      out.value = pred->value;
      out.served_at_edge = true;
      out.degraded = true;
      out.expected_abs_error = pred->expected_abs_error;
      note_edge_model_answer(edge, out);
      ++stats_.degraded_at_edge;
    } else {
      out.answered = false;
      ++stats_.unanswered;
    }
    return out;
  }

  // The local fallback shared by every "core unreachable" case: WAN
  // partitioned, core-side outage, or this edge's WAN breaker open.
  const auto serve_degraded = [&]() {
    if (auto pred = edge_agents_[edge].maybe_predict(query)) {
      out.value = pred->value;
      out.served_at_edge = true;
      out.degraded = true;
      out.expected_abs_error = pred->expected_abs_error;
      note_edge_model_answer(edge, out);
      ++stats_.degraded_at_edge;
    } else {
      out.answered = false;
      ++stats_.unanswered;
    }
  };

  // WAN breaker: after consecutive core-side outages this edge stops
  // paying for doomed round trips until the modelled cooldown elapses.
  const NodeId breaker_key = static_cast<NodeId>(edge);
  if (!wan_breakers_.allow(breaker_key)) {
    ++stats_.wan_breaker_fast_fails;
    if (obs::Tracer* tr = tracer())
      tr->event("breaker_open", "wan", static_cast<std::int64_t>(edge));
    serve_degraded();
    return out;
  }

  // Forward to the core over the WAN; execute exactly; answer returns.
  const NodeId en = edge_node(edge);
  const double fwd_ms =
      cluster_->network().send(en, 0, query_wire_bytes(query));
  out.wan_ms += fwd_ms;
  wan_breakers_.advance(fwd_ms);
  if (obs::Tracer* tr = tracer())
    tr->span_event("wan_hop", fwd_ms, "forward", query_wire_bytes(query),
                   static_cast<std::int64_t>(en));
  ExactResult exact;
  try {
    exact = exec_->execute(query, config_.core_paradigm);
  } catch (const OutageError&) {
    // Core-side outage (replicas down, retries exhausted, deadline blown):
    // fall back to the edge model exactly as if the WAN were partitioned.
    wan_breakers_.record_failure(breaker_key);
    serve_degraded();
    return out;
  }
  wan_breakers_.record_success(breaker_key);
  const double back_ms = cluster_->network().send(0, en, kAnswerWireBytes);
  out.wan_ms += back_ms;
  wan_breakers_.advance(back_ms);
  if (obs::Tracer* tr = tracer())
    tr->span_event("wan_hop", back_ms, "answer", kAnswerWireBytes,
                   static_cast<std::int64_t>(en));
  out.value = exact.answer;
  ++stats_.forwarded;

  switch (config_.mode) {
    case EdgeMode::kForwardAll:
      break;
    case EdgeMode::kEdgeLearning:
    case EdgeMode::kEdgePeerRouting:
      edge_agents_[edge].observe(query, exact.answer);
      break;
    case EdgeMode::kCoreTrainedSync:
      core_agent_->observe(query, exact.answer);
      // Every absorbed truth advances the core's model version; edges
      // only catch up when a ship sets their version to the core's.
      ++core_model_version_;
      maybe_sync();
      break;
  }
  return out;
}

std::size_t GeoSystem::edge_agent_bytes() const {
  std::size_t total = 0;
  for (const auto& a : edge_agents_) total += a.byte_size();
  return total;
}

}  // namespace sea
