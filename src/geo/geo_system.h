// Global-scale geo-distributed SEA (paper RT5, Fig. 3).
//
// Topology: `num_cores` core storage nodes share one datacenter zone and
// hold the base data; `num_edges` edge nodes sit in their own zones, so
// every edge <-> core message crosses the (accounted) WAN.
//
// Three operating modes, compared in experiment E7:
//  * kForwardAll   — no edge intelligence: every analytical query crosses
//    the WAN to the core, executes exactly, and the answer crosses back.
//  * kEdgeLearning — each edge runs its own DatalessAgent trained on the
//    answers to its forwarded queries; once confident it filters queries
//    from the WAN entirely (RT5.1/RT5.3: models at the edge, base data
//    accessed only when expected local error is high).
//  * kCoreTrainedSync — distributed model building (RT5.2): the core
//    trains one agent on the union of all edges' training queries (their
//    subspaces overlap) and periodically ships the model state to every
//    edge; edges then answer even subspaces they never queried themselves.
//    Model bytes, not data bytes, cross the WAN.
//
// Partition tolerance (RT5.3): `set_wan_partitioned(true)` severs every
// edge from the core (and from its peers). Edges with warm local models
// keep answering — flagged `degraded` since the confidence gate is
// bypassed and no audits can run — and a heal triggers an immediate
// model resync / registry refresh so edges catch up on what they missed.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/cluster.h"
#include "fault/breaker.h"
#include "sea/agent.h"
#include "sea/exact.h"

namespace sea {

enum class EdgeMode {
  kForwardAll,
  kEdgeLearning,
  kCoreTrainedSync,
  /// kEdgeLearning plus edge collaboration (RT5.1/RT5.4): on a local miss
  /// the edge consults a registry of peer model state (periodically
  /// synced quanta centroids) and routes the query to the best-covering
  /// peer edge before falling back to the core.
  kEdgePeerRouting,
};

const char* to_string(EdgeMode m) noexcept;

struct GeoConfig {
  std::size_t num_cores = 4;
  std::size_t num_edges = 8;
  LinkSpec lan{0.1, 10000.0};   ///< intra-datacenter
  LinkSpec wan{80.0, 100.0};    ///< edge <-> core
  BdasCostModel bdas;
  AgentConfig agent;
  EdgeMode mode = EdgeMode::kEdgeLearning;
  ExecParadigm core_paradigm = ExecParadigm::kCoordinatorIndexed;
  /// kCoreTrainedSync: ship the core agent to all edges every N forwarded
  /// queries.
  std::size_t sync_interval = 64;
  /// Edge agents bootstrap: always forward the first N queries they see.
  std::size_t edge_bootstrap = 30;
  /// kEdgePeerRouting: refresh the peer model-state registry every N
  /// queries (centroid lists cross the WAN).
  std::size_t registry_interval = 200;
  /// kEdgePeerRouting: only route to a peer whose nearest quantum centre
  /// is within this normalized distance of the query.
  double peer_route_distance = 0.08;
  /// Per-edge circuit breaker on the edge->core WAN path: after
  /// `failure_threshold` consecutive core-side outages the edge stops
  /// forwarding (serving degraded locally instead) until the modelled
  /// cooldown elapses — a flaky core stops costing every edge query a
  /// doomed WAN round trip. Disabled by default.
  BreakerConfig wan_breaker;
};

struct GeoAnswer {
  double value = 0.0;
  /// False only when the WAN is partitioned AND the edge has no usable
  /// model — the one case a geo query goes unanswered.
  bool answered = true;
  bool served_at_edge = false;
  bool served_by_peer = false;
  /// Served from the edge model during a WAN partition, bypassing the
  /// confidence gate (value is best-effort; no audit possible).
  bool degraded = false;
  /// kCoreTrainedSync only: the answering edge's model version predates
  /// the core's current version (the core learned updates this edge has
  /// not yet been shipped — e.g. during a partition or after a crash).
  bool stale_model = false;
  double expected_abs_error = 0.0;
  /// Modelled WAN time this query incurred (0 when served at the edge).
  double wan_ms = 0.0;
};

struct GeoStats {
  std::uint64_t queries = 0;
  std::uint64_t served_at_edge = 0;
  std::uint64_t served_by_peer = 0;
  std::uint64_t peer_attempts = 0;
  std::uint64_t forwarded = 0;
  std::uint64_t syncs = 0;
  std::uint64_t sync_bytes = 0;
  std::uint64_t registry_bytes = 0;
  std::uint64_t degraded_at_edge = 0;  ///< answered locally during partition
  std::uint64_t unanswered = 0;        ///< partition + no local model
  std::uint64_t heal_resyncs = 0;      ///< syncs/refreshes forced by a heal
  std::uint64_t wan_breaker_fast_fails = 0;  ///< forwards skipped: breaker open
  std::uint64_t stale_model_serves = 0;  ///< edge answers from an old version
  std::uint64_t edge_crash_resyncs = 0;  ///< resyncs forced by an edge crash
};

class GeoSystem {
 public:
  /// Loads `data` partitioned across the core nodes.
  GeoSystem(GeoConfig config, const Table& data);

  /// A query arriving at edge `edge` (0-based).
  GeoAnswer submit(std::size_t edge, const AnalyticalQuery& query);

  /// Sever (true) or heal (false) all WAN links: edges cannot reach the
  /// core or each other. Healing triggers an immediate model resync
  /// (kCoreTrainedSync) / registry refresh (kEdgePeerRouting) so edges
  /// recover the state they missed.
  void set_wan_partitioned(bool partitioned);
  bool wan_partitioned() const noexcept { return wan_partitioned_; }

  /// Crash of edge node `edge`: its in-memory model (and learned state)
  /// is wiped. The edge keeps receiving queries — they forward, or go
  /// unanswered during a partition — until restart_edge() resyncs it.
  void crash_edge(std::size_t edge);
  /// Restart after crash_edge: kCoreTrainedSync ships the current core
  /// model to just this edge (kEdgePeerRouting refreshes the registry),
  /// counted in stats().edge_crash_resyncs. During a WAN partition the
  /// resync cannot run; the heal's full resync covers it instead.
  void restart_edge(std::size_t edge);

  /// Model-version bookkeeping (kCoreTrainedSync): the core version
  /// increments per absorbed ground truth; an edge's version is set to
  /// the core's at every model ship. An edge serving with an older
  /// version is *stale* (GeoAnswer::stale_model).
  std::uint64_t core_model_version() const noexcept {
    return core_model_version_;
  }
  std::uint64_t edge_model_version(std::size_t edge) const {
    return edge_model_version_.at(edge);
  }

  /// Ground truth with NO cost accounting (for benchmark accuracy audits).
  double oracle(const AnalyticalQuery& query);

  /// Attaches a tracer/metrics registry (either may be null) to the whole
  /// geo system: the internal core cluster (so exact executions trace as
  /// children of the "geo_submit" root span) plus the geo.* metric series.
  /// Caller owns both; they must outlive the system's use of them.
  void set_observability(obs::Tracer* tracer, obs::MetricsRegistry* metrics);

  /// Attaches (or detaches, with nullptr) a shard-lease routing authority
  /// to the internal core cluster (Cluster::set_lease_router): exact
  /// executions then route to current lease holders instead of static
  /// placement. Caller owns the router; it must outlive use.
  void set_lease_router(ShardLeaseRouter* router) noexcept {
    cluster_->set_lease_router(router);
  }

  const GeoStats& stats() const noexcept { return stats_; }
  /// WAN/LAN traffic counters (from the shared network).
  const TrafficStats& traffic() const noexcept {
    return cluster_->network().stats();
  }
  const Cluster& cluster() const noexcept { return *cluster_; }
  std::size_t edge_agent_bytes() const;

 private:
  NodeId edge_node(std::size_t edge) const {
    return static_cast<NodeId>(config_.num_cores + edge);
  }
  std::size_t query_wire_bytes(const AnalyticalQuery& q) const {
    return (2 * q.subspace_cols.size() + 6) * sizeof(double);
  }
  void maybe_sync();
  void sync_now();
  /// Ships `blob` (the serialized core agent) to one edge: WAN send +
  /// span + sync_bytes accounting, reconstructs the edge agent, and bumps
  /// its model version to the core's. `tag` must be a string literal.
  void ship_model_to_edge(std::size_t edge, const std::string& blob,
                          const char* tag);
  /// Flags (and counts) a stale edge-model answer; no-op outside
  /// kCoreTrainedSync, where versions are not tracked.
  void note_edge_model_answer(std::size_t edge, GeoAnswer& out);
  void maybe_refresh_registry();
  void refresh_registry_now();
  /// Best peer (!= edge) for the query under the current registry;
  /// SIZE_MAX when none is close enough.
  std::size_t route_peer(std::size_t edge, const AnalyticalQuery& query);

  obs::Tracer* tracer() const noexcept { return cluster_->tracer(); }
  /// submit() minus the root span / outcome tag / metrics sync, which the
  /// public wrapper applies uniformly across all exit paths.
  GeoAnswer submit_impl(std::size_t edge, const AnalyticalQuery& query);
  /// Mirrors the GeoStats deltas since the last call into geo.* counters.
  void sync_metrics();

  GeoConfig config_;
  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<ExactExecutor> exec_;
  /// Edge-resident agents (kEdgeLearning: trained locally;
  /// kCoreTrainedSync: replaced wholesale by shipped core snapshots).
  std::vector<DatalessAgent> edge_agents_;
  std::optional<DatalessAgent> core_agent_;  ///< kCoreTrainedSync only
  /// kCoreTrainedSync version clocks (see core_model_version()).
  std::uint64_t core_model_version_ = 0;
  std::vector<std::uint64_t> edge_model_version_;
  std::vector<std::size_t> edge_seen_;       ///< queries per edge
  std::size_t forwarded_since_sync_ = 0;
  /// kEdgePeerRouting: registry snapshot — per edge, per signature, the
  /// quanta centroids it had at the last refresh (RT5.2 model state).
  std::vector<std::unordered_map<std::string, std::vector<Point>>>
      registry_;
  std::vector<std::string> known_signatures_;
  std::size_t since_registry_ = 0;
  bool wan_partitioned_ = false;
  /// One breaker per *edge*, guarding that edge's WAN path to the core
  /// (cooldown clock advanced by the modelled WAN time this edge spends).
  CircuitBreakerSet wan_breakers_;
  GeoStats stats_;
  /// geo.* metric handles (all null until set_observability attaches a
  /// registry); mirrored_ is stats_ as of the last sync_metrics().
  struct GeoMetrics {
    obs::Counter* queries = nullptr;
    obs::Counter* served_at_edge = nullptr;
    obs::Counter* served_by_peer = nullptr;
    obs::Counter* peer_attempts = nullptr;
    obs::Counter* forwarded = nullptr;
    obs::Counter* syncs = nullptr;
    obs::Counter* sync_bytes = nullptr;
    obs::Counter* registry_bytes = nullptr;
    obs::Counter* degraded_at_edge = nullptr;
    obs::Counter* unanswered = nullptr;
    obs::Counter* heal_resyncs = nullptr;
    obs::Counter* wan_breaker_fast_fails = nullptr;
    obs::Counter* stale_model_serves = nullptr;
    obs::Counter* edge_crash_resyncs = nullptr;
    obs::Histogram* wan_ms = nullptr;
  };
  GeoMetrics m_;
  GeoStats mirrored_;
};

}  // namespace sea
