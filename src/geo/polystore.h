// Multi-system (polystore) analytics (paper RT1.5, experiment E10).
//
// Two constituent systems hold different slices of the data (different
// zones, so inter-system traffic is WAN-accounted). A federated analytical
// query needs contributions from both. Three strategies, exactly the
// paper's framing:
//  * kMigrateData       — the status quo it criticizes: ship the remote
//    store's raw tuples over, then compute locally. Cost ~ |remote data|
//    per query (we ship only subspace-relevant tuples, which is already
//    generous to the baseline).
//  * kMigrateAggregates — paper option (i): the remote store runs the
//    operator locally and ships only its 48-byte aggregate state.
//  * kMigrateModels     — paper option (ii): the remote store trains a
//    DatalessAgent on its local data and ships the *model* once; all
//    subsequent federated queries combine the local exact contribution
//    with the model's predicted remote contribution, at zero per-query
//    inter-system traffic.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "cluster/cluster.h"
#include "sea/agent.h"
#include "sea/exact.h"

namespace sea {

enum class FederationStrategy {
  kMigrateData,
  kMigrateAggregates,
  kMigrateModels
};

const char* to_string(FederationStrategy s) noexcept;

struct PolystoreConfig {
  LinkSpec wan{60.0, 200.0};
  BdasCostModel bdas;
  AgentConfig agent;
  /// Training queries executed at the remote store to fit its agent
  /// before the model can be shipped.
  std::size_t model_training_queries = 400;
};

struct FederatedAnswer {
  double value = 0.0;
  bool approximate = false;
  std::uint64_t inter_system_bytes = 0;
  double inter_system_ms = 0.0;
};

class Polystore {
 public:
  /// Store A (node 0) is where queries arrive; store B (node 1) is remote.
  Polystore(PolystoreConfig config, const Table& store_a, const Table& store_b);

  /// Count/sum/avg federated query over the union of both stores.
  /// kMigrateModels requires train_remote_model() + sync_model() first.
  FederatedAnswer query(const AnalyticalQuery& q, FederationStrategy strategy);

  /// Trains the remote agent with `n` local queries drawn by the caller;
  /// each call executes exactly at store B (no inter-system traffic).
  void train_remote_model(const AnalyticalQuery& q, double remote_truth);
  double remote_truth(const AnalyticalQuery& q);

  /// Ships the remote agent to store A; returns shipped bytes.
  std::size_t sync_model();

  bool model_synced() const noexcept { return synced_agent_.has_value(); }
  const TrafficStats& traffic() const noexcept {
    return cluster_->network().stats();
  }

 private:
  PolystoreConfig config_;
  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<ExactExecutor> exec_a_;
  std::unique_ptr<ExactExecutor> exec_b_;
  std::optional<DatalessAgent> remote_agent_;  ///< lives at store B
  std::optional<DatalessAgent> synced_agent_;  ///< shipped copy at store A
};

}  // namespace sea
