// k-nearest-neighbour regressor / classifier over stored examples.
//
// Serves two roles from the paper: the cold-start answer-space model for
// quanta with too few (query, answer) pairs to fit a linear model (RT1.3),
// and the "ad hoc ML task" operators of RT2.2 (kNN regression and kNN
// classification over analyst-defined subspaces).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "data/point.h"

namespace sea {

class KnnRegressor {
 public:
  explicit KnnRegressor(std::size_t k = 5) : k_(k) {}

  void add(Point x, double y);
  void clear() noexcept;

  std::size_t size() const noexcept { return xs_.size(); }
  std::size_t k() const noexcept { return k_; }

  /// Distance-weighted mean of the k nearest stored targets.
  /// Throws std::logic_error when no examples are stored.
  double predict(std::span<const double> x) const;

  std::size_t byte_size() const noexcept {
    return xs_.empty() ? 0
                       : xs_.size() * (xs_[0].size() + 1) * sizeof(double);
  }

 private:
  std::size_t k_;
  std::vector<Point> xs_;
  std::vector<double> ys_;
};

class KnnClassifier {
 public:
  explicit KnnClassifier(std::size_t k = 5) : k_(k) {}

  void add(Point x, int label);
  std::size_t size() const noexcept { return xs_.size(); }

  /// Majority label among the k nearest (ties -> smallest label).
  int predict(std::span<const double> x) const;

 private:
  std::size_t k_;
  std::vector<Point> xs_;
  std::vector<int> labels_;
};

}  // namespace sea
