#include "ml/knn_model.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

namespace sea {

namespace {

/// Indices of the k nearest stored points to x, with squared distances.
std::vector<std::pair<double, std::size_t>> nearest(
    const std::vector<Point>& xs, std::span<const double> x, std::size_t k) {
  std::vector<std::pair<double, std::size_t>> d;
  d.reserve(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i)
    d.emplace_back(squared_distance(x, xs[i]), i);
  const std::size_t take = std::min(k, d.size());
  std::partial_sort(d.begin(), d.begin() + static_cast<std::ptrdiff_t>(take),
                    d.end());
  d.resize(take);
  return d;
}

}  // namespace

void KnnRegressor::add(Point x, double y) {
  if (!xs_.empty() && x.size() != xs_[0].size())
    throw std::invalid_argument("KnnRegressor::add: dims");
  xs_.push_back(std::move(x));
  ys_.push_back(y);
}

void KnnRegressor::clear() noexcept {
  xs_.clear();
  ys_.clear();
}

double KnnRegressor::predict(std::span<const double> x) const {
  if (xs_.empty()) throw std::logic_error("KnnRegressor::predict: empty");
  const auto nn = nearest(xs_, x, k_);
  double weight_sum = 0.0, value_sum = 0.0;
  for (const auto& [d2, i] : nn) {
    const double w = 1.0 / (1e-9 + std::sqrt(d2));
    weight_sum += w;
    value_sum += w * ys_[i];
  }
  return value_sum / weight_sum;
}

void KnnClassifier::add(Point x, int label) {
  if (!xs_.empty() && x.size() != xs_[0].size())
    throw std::invalid_argument("KnnClassifier::add: dims");
  xs_.push_back(std::move(x));
  labels_.push_back(label);
}

int KnnClassifier::predict(std::span<const double> x) const {
  if (xs_.empty()) throw std::logic_error("KnnClassifier::predict: empty");
  const auto nn = nearest(xs_, x, k_);
  std::map<int, std::size_t> votes;
  for (const auto& [d2, i] : nn) {
    (void)d2;
    ++votes[labels_[i]];
  }
  int best_label = votes.begin()->first;
  std::size_t best_votes = 0;
  for (const auto& [label, v] : votes) {
    if (v > best_votes) {
      best_votes = v;
      best_label = label;
    }
  }
  return best_label;
}

}  // namespace sea
