// Gradient-boosted regression trees (squared loss), after Friedman [41]
// and in the spirit of XGBoost [42] which the paper names as the ensemble
// alternative for inference-model selection (RT3.3). Shallow trees +
// shrinkage; greedy variance-reduction splits.
//
// Used (a) as a per-quantum answer-space model alternative and (b) as the
// learned cost model inside the optimizer (RT3 / G6).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace sea {

class Rng;

struct GbmParams {
  std::size_t num_trees = 100;
  std::size_t max_depth = 3;
  std::size_t min_leaf = 4;       ///< minimum samples per leaf
  double learning_rate = 0.1;
  std::size_t max_thresholds = 32;  ///< candidate split points per feature
  /// Fraction of rows each tree trains on (stochastic gradient boosting,
  /// Friedman 2002). 1.0 disables subsampling; values < 1.0 require an Rng
  /// passed to fit(). The caller owns the stream, so fits are reproducible
  /// regardless of which thread runs them.
  double subsample = 1.0;
};

class GbmRegressor {
 public:
  explicit GbmRegressor(GbmParams params = {}) : params_(params) {}

  /// Fits y ~ X from scratch (drops any previous ensemble). `rng` drives
  /// per-tree row subsampling when params.subsample < 1.0; ignored (and may
  /// be null) otherwise.
  void fit(std::span<const std::vector<double>> x, std::span<const double> y,
           Rng* rng = nullptr);

  bool fitted() const noexcept { return fitted_; }
  double predict(std::span<const double> x) const;

  std::size_t num_trees() const noexcept { return trees_.size(); }
  const GbmParams& params() const noexcept { return params_; }

  /// Serialized size for model-shipping accounting.
  std::size_t byte_size() const noexcept;

 private:
  struct Node {
    std::int32_t left = -1;   ///< -1 => leaf
    std::int32_t right = -1;
    std::uint32_t feature = 0;
    double threshold = 0.0;
    double value = 0.0;  ///< leaf prediction
  };
  using Tree = std::vector<Node>;

  std::int32_t build_node(Tree& tree, std::vector<std::size_t>& idx,
                          std::size_t begin, std::size_t end,
                          std::span<const std::vector<double>> x,
                          const std::vector<double>& residual,
                          std::size_t depth);
  static double tree_predict(const Tree& tree, std::span<const double> x);

  GbmParams params_;
  std::vector<Tree> trees_;
  double base_ = 0.0;
  bool fitted_ = false;
};

}  // namespace sea
