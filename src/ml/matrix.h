// Minimal dense linear algebra: just enough for ridge-regression normal
// equations (symmetric positive-definite solves via Cholesky).
#pragma once

#include <cstddef>
#include <stdexcept>
#include <vector>

namespace sea {

/// Row-major dense matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }

  double& operator()(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }

 private:
  std::size_t rows_ = 0, cols_ = 0;
  std::vector<double> data_;
};

/// Solves A x = b for symmetric positive-definite A via Cholesky.
/// Throws std::runtime_error when A is not positive definite.
std::vector<double> cholesky_solve(const Matrix& a,
                                   const std::vector<double>& b);

}  // namespace sea
