#include "ml/gbm.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>

#include "common/rng.h"

namespace sea {

void GbmRegressor::fit(std::span<const std::vector<double>> x,
                       std::span<const double> y, Rng* rng) {
  if (x.empty() || x.size() != y.size())
    throw std::invalid_argument("GbmRegressor::fit: bad shapes");
  const std::size_t d = x[0].size();
  for (const auto& row : x)
    if (row.size() != d)
      throw std::invalid_argument("GbmRegressor::fit: ragged features");

  trees_.clear();
  base_ = 0.0;
  for (const double v : y) base_ += v;
  base_ /= static_cast<double>(y.size());
  fitted_ = true;

  const std::size_t rows = y.size();
  const bool subsampling =
      rng != nullptr && params_.subsample < 1.0 && rows > 2;
  const std::size_t take =
      subsampling ? std::max<std::size_t>(
                        2, static_cast<std::size_t>(std::llround(
                               params_.subsample * static_cast<double>(rows))))
                  : rows;

  std::vector<double> residual(rows);
  std::vector<double> current(rows, base_);
  std::vector<std::size_t> idx(rows);
  for (std::size_t m = 0; m < params_.num_trees; ++m) {
    double max_abs_res = 0.0;
    for (std::size_t i = 0; i < rows; ++i) {
      residual[i] = y[i] - current[i];
      max_abs_res = std::max(max_abs_res, std::abs(residual[i]));
    }
    if (max_abs_res < 1e-12) break;  // already perfect
    idx.resize(rows);
    for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
    if (subsampling) {
      // Partial Fisher-Yates: the first `take` entries are a uniform sample
      // without replacement, fully determined by the caller's stream.
      for (std::size_t i = 0; i < take; ++i)
        std::swap(idx[i], idx[i + rng->uniform_index(rows - i)]);
      idx.resize(take);
    }
    Tree tree;
    build_node(tree, idx, 0, idx.size(), x, residual, 0);
    for (std::size_t i = 0; i < rows; ++i)
      current[i] += params_.learning_rate * tree_predict(tree, x[i]);
    trees_.push_back(std::move(tree));
  }
}

std::int32_t GbmRegressor::build_node(Tree& tree, std::vector<std::size_t>& idx,
                                      std::size_t begin, std::size_t end,
                                      std::span<const std::vector<double>> x,
                                      const std::vector<double>& residual,
                                      std::size_t depth) {
  const std::size_t n = end - begin;
  double sum = 0.0, sum_sq = 0.0;
  for (std::size_t i = begin; i < end; ++i) {
    sum += residual[idx[i]];
    sum_sq += residual[idx[i]] * residual[idx[i]];
  }
  const double mean = sum / static_cast<double>(n);

  Node node;
  node.value = mean;
  const auto self = static_cast<std::int32_t>(tree.size());
  tree.push_back(node);

  if (depth >= params_.max_depth || n < 2 * params_.min_leaf) return self;

  const double parent_sse = sum_sq - sum * sum / static_cast<double>(n);
  if (parent_sse < 1e-12) return self;

  // Greedy best split: for each feature, try up to max_thresholds
  // quantile-spaced thresholds.
  const std::size_t d = x[0].size();
  double best_gain = 1e-12;
  std::size_t best_feature = 0;
  double best_threshold = 0.0;
  std::vector<double> vals(n);
  for (std::size_t f = 0; f < d; ++f) {
    for (std::size_t i = 0; i < n; ++i) vals[i] = x[idx[begin + i]][f];
    std::sort(vals.begin(), vals.end());
    if (vals.front() == vals.back()) continue;
    const std::size_t steps = std::min(params_.max_thresholds, n - 1);
    for (std::size_t s = 1; s <= steps; ++s) {
      const std::size_t pos = s * (n - 1) / (steps + 1);
      const double thr = vals[pos];
      // Evaluate split x[f] <= thr.
      double lsum = 0.0, lsq = 0.0;
      std::size_t ln = 0;
      for (std::size_t i = begin; i < end; ++i) {
        if (x[idx[i]][f] <= thr) {
          lsum += residual[idx[i]];
          lsq += residual[idx[i]] * residual[idx[i]];
          ++ln;
        }
      }
      const std::size_t rn = n - ln;
      if (ln < params_.min_leaf || rn < params_.min_leaf) continue;
      const double rsum = sum - lsum;
      const double rsq = sum_sq - lsq;
      const double lsse = lsq - lsum * lsum / static_cast<double>(ln);
      const double rsse = rsq - rsum * rsum / static_cast<double>(rn);
      const double gain = parent_sse - lsse - rsse;
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = f;
        best_threshold = thr;
      }
    }
  }
  if (best_gain <= 1e-12) return self;

  // Partition idx in place.
  const auto mid_it = std::partition(
      idx.begin() + static_cast<std::ptrdiff_t>(begin),
      idx.begin() + static_cast<std::ptrdiff_t>(end),
      [&](std::size_t i) { return x[i][best_feature] <= best_threshold; });
  const auto mid =
      static_cast<std::size_t>(mid_it - idx.begin());
  if (mid == begin || mid == end) return self;  // degenerate partition

  tree[static_cast<std::size_t>(self)].feature =
      static_cast<std::uint32_t>(best_feature);
  tree[static_cast<std::size_t>(self)].threshold = best_threshold;
  const std::int32_t left = build_node(tree, idx, begin, mid, x, residual,
                                       depth + 1);
  const std::int32_t right = build_node(tree, idx, mid, end, x, residual,
                                        depth + 1);
  tree[static_cast<std::size_t>(self)].left = left;
  tree[static_cast<std::size_t>(self)].right = right;
  return self;
}

double GbmRegressor::tree_predict(const Tree& tree,
                                  std::span<const double> x) {
  std::size_t node = 0;
  for (;;) {
    const Node& n = tree[node];
    if (n.left < 0) return n.value;
    node = static_cast<std::size_t>(x[n.feature] <= n.threshold ? n.left
                                                                : n.right);
  }
}

double GbmRegressor::predict(std::span<const double> x) const {
  if (!fitted_) throw std::logic_error("GbmRegressor::predict before fit");
  double v = base_;
  for (const auto& tree : trees_)
    v += params_.learning_rate * tree_predict(tree, x);
  return v;
}

std::size_t GbmRegressor::byte_size() const noexcept {
  std::size_t nodes = 0;
  for (const auto& t : trees_) nodes += t.size();
  return sizeof(double) + nodes * sizeof(Node);
}

}  // namespace sea
