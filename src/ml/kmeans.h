// Vector quantization for the query space (paper RT1.1).
//
// Two quantizers:
//  * KMeans — batch Lloyd with k-means++ seeding, for offline training and
//    for ablations over the number of quanta.
//  * OnlineQuantizer — a growing, adapting codebook: queries are absorbed
//    into the nearest quantum when close enough, otherwise a new quantum is
//    created (up to a cap); centroids track their members with a decaying
//    learning rate, and stale quanta can be purged when analyst interests
//    drift (RT1.4-i).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"
#include "data/point.h"

namespace sea {

class KMeans {
 public:
  KMeans(std::size_t k, std::uint64_t seed = 7);

  /// Lloyd iterations with k-means++ seeding. Returns final inertia
  /// (sum of squared distances to assigned centres).
  double fit(std::span<const Point> points, std::size_t max_iters = 50);

  bool fitted() const noexcept { return !centers_.empty(); }
  std::size_t k() const noexcept { return centers_.size(); }
  const std::vector<Point>& centers() const noexcept { return centers_; }

  /// Index of the nearest centre.
  std::size_t assign(std::span<const double> p) const;

 private:
  std::size_t requested_k_;
  Rng rng_;
  std::vector<Point> centers_;
};

struct Quantum {
  Point center;
  std::uint64_t population = 0;   ///< queries absorbed
  std::uint64_t last_used = 0;    ///< logical timestamp of last assignment
  double mean_sq_distance = 0.0;  ///< running mean of member distance^2
};

class OnlineQuantizer {
 public:
  /// `create_distance`: a query farther than this (Euclidean) from every
  /// existing centre spawns a new quantum, capacity permitting.
  OnlineQuantizer(std::size_t max_quanta, double create_distance,
                  double learning_rate = 0.15);

  /// Absorbs a query point; returns its quantum id (possibly new).
  std::size_t observe(std::span<const double> p);

  /// Nearest quantum without modifying the codebook; SIZE_MAX when empty.
  std::size_t assign(std::span<const double> p) const;

  /// Distance from p to its nearest centre; +inf when empty.
  double nearest_distance(std::span<const double> p) const;

  std::size_t size() const noexcept { return quanta_.size(); }
  std::size_t max_quanta() const noexcept { return max_quanta_; }
  const Quantum& quantum(std::size_t id) const;
  std::uint64_t clock() const noexcept { return clock_; }

  /// Removes quanta not used in the last `max_idle` observations; returns
  /// ids removed (ids of survivors are compacted — callers must remap).
  /// `remap[old_id] == new_id` or SIZE_MAX when purged.
  std::vector<std::size_t> purge_stale(std::uint64_t max_idle,
                                       std::vector<std::size_t>* remap);

  /// Restores codebook state from shipped parts (deserialization).
  void restore(std::vector<Quantum> quanta, std::uint64_t clock) {
    quanta_ = std::move(quanta);
    clock_ = clock;
  }

 private:
  std::size_t max_quanta_;
  double create_distance_;
  double lr_;
  std::uint64_t clock_ = 0;
  std::vector<Quantum> quanta_;
};

}  // namespace sea
