#include "ml/drift.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sea {

PageHinkleyDetector::PageHinkleyDetector(double delta, double lambda,
                                         double alpha)
    : delta_(delta), lambda_(lambda), alpha_(alpha) {
  if (lambda <= 0.0)
    throw std::invalid_argument("PageHinkleyDetector: lambda must be > 0");
}

bool PageHinkleyDetector::add(double value) {
  ++n_;
  // Exponentially-faded running mean.
  mean_ = n_ == 1 ? value : alpha_ * mean_ + (1.0 - alpha_) * value;
  cumulative_ += value - mean_ - delta_;
  min_cumulative_ = std::min(min_cumulative_, cumulative_);
  if (cumulative_ - min_cumulative_ > lambda_) {
    ++alarms_;
    const std::uint64_t alarms = alarms_;
    reset();
    alarms_ = alarms;
    return true;
  }
  return false;
}

void PageHinkleyDetector::reset() noexcept {
  mean_ = 0.0;
  cumulative_ = 0.0;
  min_cumulative_ = 0.0;
  n_ = 0;
}

AdwinLiteDetector::AdwinLiteDetector(std::size_t window, double confidence)
    : capacity_(window), confidence_(confidence) {
  if (window < 8)
    throw std::invalid_argument("AdwinLiteDetector: window must be >= 8");
  if (confidence <= 0.0 || confidence >= 1.0)
    throw std::invalid_argument("AdwinLiteDetector: confidence in (0,1)");
}

bool AdwinLiteDetector::add(double value) {
  buf_.push_back(value);
  if (buf_.size() > capacity_) buf_.erase(buf_.begin());
  if (buf_.size() < 8) return false;

  const std::size_t half = buf_.size() / 2;
  double older = 0.0, recent = 0.0;
  for (std::size_t i = 0; i < half; ++i) older += buf_[i];
  for (std::size_t i = half; i < buf_.size(); ++i) recent += buf_[i];
  older /= static_cast<double>(half);
  recent /= static_cast<double>(buf_.size() - half);

  // Value range for the Hoeffding bound, taken from the *older* half only:
  // using the full window would let the shift itself inflate the bound and
  // mask the very change we are trying to detect.
  const auto [mn, mx] =
      std::minmax_element(buf_.begin(),
                          buf_.begin() + static_cast<std::ptrdiff_t>(half));
  const double range = std::max(1e-12, *mx - *mn);
  const double n0 = static_cast<double>(half);
  const double n1 = static_cast<double>(buf_.size() - half);
  const double m = 1.0 / (1.0 / n0 + 1.0 / n1);
  const double eps =
      range * std::sqrt(std::log(2.0 / confidence_) / (2.0 * m));
  if (recent - older > eps) {
    ++alarms_;
    // Keep only the recent half: the new concept.
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(half));
    return true;
  }
  return false;
}

}  // namespace sea
