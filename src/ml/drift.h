// Concept-drift detection on residual/error streams (paper RT1.4).
//
// PageHinkleyDetector — classic Page-Hinkley test for mean increase; cheap
// constant state, used per-quantum by the agent to notice that its model's
// absolute errors started growing (query-pattern drift or stale data).
//
// AdwinLiteDetector — windowed two-halves mean comparison (a simplified
// ADWIN): keeps a bounded ring of recent values and alarms when the recent
// half's mean *exceeds* the older half's by more than an adaptive
// Hoeffding-style bound. One-sided by design: the agent feeds absolute
// residuals, and only error increases call for retraining (an error
// decrease just means the model got better).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace sea {

class PageHinkleyDetector {
 public:
  /// `delta`: tolerated drift magnitude; `lambda`: alarm threshold.
  explicit PageHinkleyDetector(double delta = 0.005, double lambda = 50.0,
                               double alpha = 0.999);

  /// Feeds one value; returns true when drift is detected (detector resets).
  bool add(double value);

  std::uint64_t samples() const noexcept { return n_; }
  std::uint64_t alarms() const noexcept { return alarms_; }
  void reset() noexcept;

 private:
  double delta_;
  double lambda_;
  double alpha_;
  double mean_ = 0.0;
  double cumulative_ = 0.0;
  double min_cumulative_ = 0.0;
  std::uint64_t n_ = 0;
  std::uint64_t alarms_ = 0;
};

class AdwinLiteDetector {
 public:
  explicit AdwinLiteDetector(std::size_t window = 64, double confidence = 0.01);

  /// Feeds one value; true when the recent half's mean exceeds the older
  /// half's beyond the Hoeffding bound (window then shrinks to the recent
  /// half).
  bool add(double value);

  std::size_t window_size() const noexcept { return buf_.size(); }
  std::uint64_t alarms() const noexcept { return alarms_; }

 private:
  std::size_t capacity_;
  double confidence_;
  std::vector<double> buf_;  ///< chronological
  std::uint64_t alarms_ = 0;
};

}  // namespace sea
