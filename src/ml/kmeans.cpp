#include "ml/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace sea {

KMeans::KMeans(std::size_t k, std::uint64_t seed) : requested_k_(k), rng_(seed) {
  if (k == 0) throw std::invalid_argument("KMeans: k must be > 0");
}

double KMeans::fit(std::span<const Point> points, std::size_t max_iters) {
  if (points.empty()) throw std::invalid_argument("KMeans::fit: no points");
  const std::size_t k = std::min(requested_k_, points.size());
  const std::size_t d = points[0].size();
  for (const auto& p : points)
    if (p.size() != d) throw std::invalid_argument("KMeans::fit: ragged");

  // k-means++ seeding.
  centers_.clear();
  centers_.push_back(points[rng_.uniform_index(points.size())]);
  std::vector<double> d2(points.size(),
                         std::numeric_limits<double>::infinity());
  while (centers_.size() < k) {
    double total = 0.0;
    for (std::size_t i = 0; i < points.size(); ++i) {
      d2[i] = std::min(d2[i], squared_distance(points[i], centers_.back()));
      total += d2[i];
    }
    if (total <= 0.0) break;  // all points coincide with centres
    double target = rng_.uniform() * total;
    std::size_t chosen = points.size() - 1;
    for (std::size_t i = 0; i < points.size(); ++i) {
      target -= d2[i];
      if (target <= 0.0) {
        chosen = i;
        break;
      }
    }
    centers_.push_back(points[chosen]);
  }

  // Lloyd iterations.
  std::vector<std::size_t> owner(points.size(), 0);
  double inertia = 0.0;
  for (std::size_t iter = 0; iter < max_iters; ++iter) {
    bool changed = false;
    inertia = 0.0;
    for (std::size_t i = 0; i < points.size(); ++i) {
      const std::size_t a = assign(points[i]);
      inertia += squared_distance(points[i], centers_[a]);
      if (a != owner[i]) {
        owner[i] = a;
        changed = true;
      }
    }
    if (!changed && iter > 0) break;
    std::vector<Point> sums(centers_.size(), Point(d, 0.0));
    std::vector<std::size_t> counts(centers_.size(), 0);
    for (std::size_t i = 0; i < points.size(); ++i) {
      for (std::size_t j = 0; j < d; ++j) sums[owner[i]][j] += points[i][j];
      ++counts[owner[i]];
    }
    for (std::size_t c = 0; c < centers_.size(); ++c) {
      if (counts[c] == 0) continue;  // keep empty centres where they are
      for (std::size_t j = 0; j < d; ++j)
        centers_[c][j] = sums[c][j] / static_cast<double>(counts[c]);
    }
  }
  return inertia;
}

std::size_t KMeans::assign(std::span<const double> p) const {
  if (centers_.empty()) throw std::logic_error("KMeans::assign before fit");
  std::size_t best = 0;
  double best_d2 = std::numeric_limits<double>::infinity();
  for (std::size_t c = 0; c < centers_.size(); ++c) {
    const double d2 = squared_distance(p, centers_[c]);
    if (d2 < best_d2) {
      best_d2 = d2;
      best = c;
    }
  }
  return best;
}

OnlineQuantizer::OnlineQuantizer(std::size_t max_quanta,
                                 double create_distance, double learning_rate)
    : max_quanta_(max_quanta),
      create_distance_(create_distance),
      lr_(learning_rate) {
  if (max_quanta_ == 0)
    throw std::invalid_argument("OnlineQuantizer: max_quanta must be > 0");
  if (create_distance_ <= 0.0)
    throw std::invalid_argument("OnlineQuantizer: create_distance must be > 0");
}

std::size_t OnlineQuantizer::observe(std::span<const double> p) {
  ++clock_;
  std::size_t best = assign(p);
  double best_dist = best == SIZE_MAX
                         ? std::numeric_limits<double>::infinity()
                         : euclidean_distance(p, quanta_[best].center);
  if ((best == SIZE_MAX || best_dist > create_distance_) &&
      quanta_.size() < max_quanta_) {
    Quantum q;
    q.center.assign(p.begin(), p.end());
    q.population = 1;
    q.last_used = clock_;
    quanta_.push_back(std::move(q));
    return quanta_.size() - 1;
  }
  // Absorb into nearest: move centroid toward the query with a per-quantum
  // decaying rate so early members shape the quantum, later ones refine it.
  Quantum& q = quanta_[best];
  ++q.population;
  q.last_used = clock_;
  const double rate = lr_ / (1.0 + 0.02 * static_cast<double>(q.population));
  for (std::size_t j = 0; j < q.center.size(); ++j)
    q.center[j] += rate * (p[j] - q.center[j]);
  const double d2 = squared_distance(p, q.center);
  q.mean_sq_distance +=
      (d2 - q.mean_sq_distance) / static_cast<double>(q.population);
  return best;
}

std::size_t OnlineQuantizer::assign(std::span<const double> p) const {
  if (quanta_.empty()) return SIZE_MAX;
  std::size_t best = 0;
  double best_d2 = std::numeric_limits<double>::infinity();
  for (std::size_t c = 0; c < quanta_.size(); ++c) {
    const double d2 = squared_distance(p, quanta_[c].center);
    if (d2 < best_d2) {
      best_d2 = d2;
      best = c;
    }
  }
  return best;
}

double OnlineQuantizer::nearest_distance(std::span<const double> p) const {
  const std::size_t a = assign(p);
  if (a == SIZE_MAX) return std::numeric_limits<double>::infinity();
  return euclidean_distance(p, quanta_[a].center);
}

const Quantum& OnlineQuantizer::quantum(std::size_t id) const {
  if (id >= quanta_.size()) throw std::out_of_range("OnlineQuantizer::quantum");
  return quanta_[id];
}

std::vector<std::size_t> OnlineQuantizer::purge_stale(
    std::uint64_t max_idle, std::vector<std::size_t>* remap) {
  std::vector<std::size_t> removed;
  std::vector<Quantum> kept;
  if (remap) remap->assign(quanta_.size(), SIZE_MAX);
  for (std::size_t i = 0; i < quanta_.size(); ++i) {
    const bool stale = clock_ > quanta_[i].last_used &&
                       clock_ - quanta_[i].last_used > max_idle;
    if (stale) {
      removed.push_back(i);
    } else {
      if (remap) (*remap)[i] = kept.size();
      kept.push_back(std::move(quanta_[i]));
    }
  }
  quanta_ = std::move(kept);
  return removed;
}

}  // namespace sea
