#include "ml/linear.h"

#include <cmath>
#include <cstdint>
#include <stdexcept>

namespace sea {

std::vector<double> cholesky_solve(const Matrix& a,
                                   const std::vector<double>& b) {
  const std::size_t n = a.rows();
  if (a.cols() != n || b.size() != n)
    throw std::invalid_argument("cholesky_solve: shape mismatch");
  // Decompose A = L L^T.
  Matrix l(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double sum = a(i, j);
      for (std::size_t k = 0; k < j; ++k) sum -= l(i, k) * l(j, k);
      if (i == j) {
        if (sum <= 0.0)
          throw std::runtime_error("cholesky_solve: not positive definite");
        l(i, i) = std::sqrt(sum);
      } else {
        l(i, j) = sum / l(j, j);
      }
    }
  }
  // Forward substitution L z = b.
  std::vector<double> z(n);
  for (std::size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (std::size_t k = 0; k < i; ++k) sum -= l(i, k) * z[k];
    z[i] = sum / l(i, i);
  }
  // Back substitution L^T x = z.
  std::vector<double> x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double sum = z[ii];
    for (std::size_t k = ii + 1; k < n; ++k) sum -= l(k, ii) * x[k];
    x[ii] = sum / l(ii, ii);
  }
  return x;
}

void LinearModel::fit(std::span<const std::vector<double>> x,
                      std::span<const double> y, double lambda) {
  if (x.empty() || x.size() != y.size())
    throw std::invalid_argument("LinearModel::fit: bad shapes");
  const std::size_t n = x.size();
  const std::size_t d = x[0].size();
  for (const auto& row : x)
    if (row.size() != d)
      throw std::invalid_argument("LinearModel::fit: ragged features");
  // Transpose once and run the columnar fit (bit-identical, see header).
  std::vector<double> cols(n * d);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t i = 0; i < d; ++i) cols[i * n + r] = x[r][i];
  fit_columns(cols, n, d, y, lambda);
}

void LinearModel::fit_columns(std::span<const double> x_cols, std::size_t rows,
                              std::size_t dims, std::span<const double> y,
                              double lambda) {
  if (rows == 0 || y.size() != rows || x_cols.size() != rows * dims)
    throw std::invalid_argument("LinearModel::fit_columns: bad shapes");
  if (lambda < 0.0)
    throw std::invalid_argument("LinearModel::fit_columns: negative lambda");
  const std::size_t n = rows;
  const std::size_t d = dims;

  // Augmented design [X | 1]; regularize only the first d coefficients.
  // Each entry is a contiguous dot product accumulated over rows in index
  // order — the same per-entry addition order as a row-at-a-time fit.
  const std::size_t m = d + 1;
  Matrix ata(m, m);
  std::vector<double> atb(m, 0.0);
  const auto col = [&](std::size_t i) { return x_cols.data() + i * n; };
  for (std::size_t i = 0; i < m; ++i) {
    const double* ci = i < d ? col(i) : nullptr;
    double b = 0.0;
    for (std::size_t r = 0; r < n; ++r) b += (ci ? ci[r] : 1.0) * y[r];
    atb[i] = b;
    for (std::size_t j = i; j < m; ++j) {
      const double* cj = j < d ? col(j) : nullptr;
      double s = 0.0;
      for (std::size_t r = 0; r < n; ++r)
        s += (ci ? ci[r] : 1.0) * (cj ? cj[r] : 1.0);
      ata(i, j) = s;
    }
  }
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < i; ++j) ata(i, j) = ata(j, i);

  // Solve with escalating jitter: perfectly collinear designs (constant
  // features, duplicated rows) can defeat a fixed ridge numerically, and
  // the agent must never crash on a degenerate quantum. The jitter scales
  // with the matrix's own magnitude.
  double trace = 0.0;
  for (std::size_t i = 0; i < m; ++i) trace += ata(i, i);
  const double scale = std::max(1e-12, trace / static_cast<double>(m));
  double ridge = std::max(lambda, 1e-10);
  std::vector<double> sol;
  for (int attempt = 0;; ++attempt) {
    Matrix reg = ata;
    for (std::size_t i = 0; i < d; ++i) reg(i, i) += ridge;
    reg(d, d) += ridge * 1e-2 + 1e-12;
    try {
      sol = cholesky_solve(reg, atb);
      break;
    } catch (const std::runtime_error&) {
      if (attempt >= 4) {
        // Constant fallback: predict the mean (always well-defined).
        weights_.assign(d, 0.0);
        intercept_ = 0.0;
        for (const double v : y) intercept_ += v;
        intercept_ /= static_cast<double>(n);
        sol.clear();
        break;
      }
      ridge = std::max(ridge * 1000.0, scale * 1e-8);
    }
  }
  if (!sol.empty()) {
    weights_.assign(sol.begin(),
                    sol.begin() + static_cast<std::ptrdiff_t>(d));
    intercept_ = sol[d];
  }

  // In-sample R^2. The per-row prediction accumulates weights in feature
  // order, matching predict() on a materialized row exactly.
  double mean_y = 0.0;
  for (const double v : y) mean_y += v;
  mean_y /= static_cast<double>(n);
  double ss_res = 0.0, ss_tot = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    double pred = intercept_;
    for (std::size_t i = 0; i < d; ++i) pred += weights_[i] * col(i)[r];
    const double e = y[r] - pred;
    ss_res += e * e;
    const double t = y[r] - mean_y;
    ss_tot += t * t;
  }
  r_squared_ = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : (ss_res == 0.0 ? 1.0 : 0.0);
}

double LinearModel::predict(std::span<const double> x) const {
  if (!fitted()) throw std::logic_error("LinearModel::predict before fit");
  if (x.size() != weights_.size())
    throw std::invalid_argument("LinearModel::predict: dims");
  double v = intercept_;
  for (std::size_t i = 0; i < weights_.size(); ++i) v += weights_[i] * x[i];
  return v;
}

SgdLinearModel::SgdLinearModel(std::size_t dims, double learning_rate,
                               double l2)
    : weights_(dims, 0.0), lr_(learning_rate), l2_(l2) {
  if (dims == 0)
    throw std::invalid_argument("SgdLinearModel: dims must be > 0");
}

void SgdLinearModel::update(std::span<const double> x, double y) {
  if (x.size() != weights_.size())
    throw std::invalid_argument("SgdLinearModel::update: dims");
  const double err = predict(x) - y;
  // Decaying step size keeps the model stable over long streams.
  const double step =
      lr_ / (1.0 + 1e-3 * static_cast<double>(updates_));
  for (std::size_t i = 0; i < weights_.size(); ++i)
    weights_[i] -= step * (err * x[i] + l2_ * weights_[i]);
  intercept_ -= step * err;
  ++updates_;
}

double SgdLinearModel::predict(std::span<const double> x) const {
  if (x.size() != weights_.size())
    throw std::invalid_argument("SgdLinearModel::predict: dims");
  double v = intercept_;
  for (std::size_t i = 0; i < weights_.size(); ++i) v += weights_[i] * x[i];
  return v;
}

}  // namespace sea
