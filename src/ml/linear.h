// Linear regression models.
//
// These are the answer-space models of the paper's RT1.2: per query-space
// quantum, the agent fits a (ridge-regularized) linear map from query
// geometry features to the analytical answer. Also reused for the paper's
// regression-query analytics ([28], [29]) and as explanation models (RT4.2).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "ml/matrix.h"

namespace sea {

/// Ridge-regularized ordinary least squares, fit in closed form via the
/// normal equations. An intercept term is always included (unregularized).
class LinearModel {
 public:
  LinearModel() = default;

  /// Fits y ~ X. X is n rows of d features. lambda >= 0 is the L2 penalty.
  /// Throws std::invalid_argument on shape mismatch or empty input.
  /// Delegates to fit_columns (transposing once); both entry points produce
  /// bit-identical models on the same data.
  void fit(std::span<const std::vector<double>> x, std::span<const double> y,
           double lambda = 1e-6);

  /// Columnar fit: x_cols is `dims` feature columns of length `rows`, laid
  /// out column-major (column i spans x_cols[i*rows .. (i+1)*rows)). The
  /// normal equations accumulate each X^T X / X^T y entry over rows in
  /// index order — the same per-entry addition order as the row-major fit —
  /// so the fitted model is bit-identical to fit() on the same data, while
  /// every inner loop runs over contiguous memory.
  void fit_columns(std::span<const double> x_cols, std::size_t rows,
                   std::size_t dims, std::span<const double> y,
                   double lambda = 1e-6);

  bool fitted() const noexcept { return !weights_.empty(); }
  std::size_t dims() const noexcept { return weights_.size(); }

  double predict(std::span<const double> x) const;

  const std::vector<double>& weights() const noexcept { return weights_; }
  double intercept() const noexcept { return intercept_; }

  /// In-sample R^2 of the last fit (1 = perfect, <= 1, can be negative).
  double r_squared() const noexcept { return r_squared_; }

  /// Serialized size for model-shipping accounting (geo experiments).
  std::size_t byte_size() const noexcept {
    return (weights_.size() + 2) * sizeof(double);
  }

  /// Reconstructs a fitted model from shipped parts (deserialization).
  static LinearModel from_parts(std::vector<double> weights, double intercept,
                                double r_squared) {
    LinearModel m;
    m.weights_ = std::move(weights);
    m.intercept_ = intercept;
    m.r_squared_ = r_squared;
    return m;
  }

 private:
  std::vector<double> weights_;
  double intercept_ = 0.0;
  double r_squared_ = 0.0;
};

/// Online linear model trained by averaged SGD; used where the agent must
/// learn incrementally from the (query, answer) stream without refits.
class SgdLinearModel {
 public:
  explicit SgdLinearModel(std::size_t dims, double learning_rate = 0.05,
                          double l2 = 1e-6);

  void update(std::span<const double> x, double y);
  double predict(std::span<const double> x) const;

  std::size_t dims() const noexcept { return weights_.size(); }
  std::uint64_t updates() const noexcept { return updates_; }

 private:
  std::vector<double> weights_;
  double intercept_ = 0.0;
  double lr_;
  double l2_;
  std::uint64_t updates_ = 0;
};

}  // namespace sea
