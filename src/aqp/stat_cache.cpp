#include "aqp/stat_cache.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "data/table.h"

namespace sea {

GridStatCache::GridStatCache(Cluster& cluster, std::string base_table,
                             std::vector<std::size_t> subspace_cols,
                             std::size_t target_col, std::size_t target_col2,
                             std::size_t cells_per_dim)
    : cluster_(cluster),
      base_table_(std::move(base_table)),
      subspace_cols_(std::move(subspace_cols)),
      target_col_(target_col),
      target_col2_(target_col2),
      cells_per_dim_(cells_per_dim) {
  if (!cluster_.has_table(base_table_))
    throw std::invalid_argument("GridStatCache: unknown table " + base_table_);
  if (subspace_cols_.empty())
    throw std::invalid_argument("GridStatCache: no subspace columns");
  if (cells_per_dim_ == 0)
    throw std::invalid_argument("GridStatCache: cells_per_dim must be > 0");
  double total = 1.0;
  for (std::size_t i = 0; i < subspace_cols_.size(); ++i) {
    total *= static_cast<double>(cells_per_dim_);
    if (total > 5e7)
      throw std::invalid_argument(
          "GridStatCache: cell count explodes (the Data-Canopy storage "
          "problem, see E12); reduce cells_per_dim");
  }
}

std::size_t GridStatCache::cell_coord(double v, std::size_t dim) const
    noexcept {
  const double lo = domain_.lo[dim];
  const double hi = domain_.hi[dim];
  const double width = (hi - lo) / static_cast<double>(cells_per_dim_);
  if (width <= 0.0) return 0;
  const auto c = static_cast<std::int64_t>(std::floor((v - lo) / width));
  return static_cast<std::size_t>(std::clamp<std::int64_t>(
      c, 0, static_cast<std::int64_t>(cells_per_dim_) - 1));
}

std::size_t GridStatCache::flatten(
    const std::vector<std::size_t>& coords) const noexcept {
  std::size_t idx = 0;
  for (const std::size_t c : coords) idx = idx * cells_per_dim_ + c;
  return idx;
}

ExecReport GridStatCache::build() {
  ExecReport report;
  // Domain = union of partition bounds (cheap metadata pass).
  bool first = true;
  for (std::size_t n = 0; n < cluster_.num_nodes(); ++n) {
    const Table& part = cluster_.partition(base_table_,
                                           static_cast<NodeId>(n));
    if (part.num_rows() == 0) continue;
    const Rect b = table_bounds(part, subspace_cols_);
    if (first) {
      domain_ = b;
      first = false;
    } else {
      for (std::size_t i = 0; i < subspace_cols_.size(); ++i) {
        domain_.lo[i] = std::min(domain_.lo[i], b.lo[i]);
        domain_.hi[i] = std::max(domain_.hi[i], b.hi[i]);
      }
    }
  }
  if (first) throw std::logic_error("GridStatCache::build: empty table");
  // Pad the upper edge so max values land inside the last cell.
  for (std::size_t i = 0; i < subspace_cols_.size(); ++i)
    domain_.hi[i] = std::nextafter(domain_.hi[i],
                                   std::numeric_limits<double>::max());

  std::size_t n_cells = 1;
  for (std::size_t i = 0; i < subspace_cols_.size(); ++i)
    n_cells *= cells_per_dim_;
  cells_.assign(n_cells, AggregateState{});

  // Full accounted scan of every partition; cell states stream to the
  // coordinator (their size is the cache's storage cost).
  std::vector<std::size_t> coords(subspace_cols_.size());
  for (std::size_t n = 0; n < cluster_.num_nodes(); ++n) {
    const Table& part = cluster_.partition(base_table_,
                                           static_cast<NodeId>(n));
    cluster_.account_task(static_cast<NodeId>(n));
    report.modelled_overhead_ms += cluster_.cost_model().task_overhead_ms();
    ++report.map_tasks;
    cluster_.account_scan(static_cast<NodeId>(n), part.num_rows(),
                          part.byte_size());
    // Column spans instead of a gathered Point per row: one indexed load
    // per (row, column), same cell assignment and add order as before.
    std::vector<std::span<const double>> sub_cols;
    sub_cols.reserve(subspace_cols_.size());
    for (const auto c : subspace_cols_) sub_cols.push_back(part.column(c));
    const auto t_col = part.column(target_col_);
    const auto u_col = part.column(target_col2_);
    for (std::size_t r = 0; r < part.num_rows(); ++r) {
      for (std::size_t i = 0; i < sub_cols.size(); ++i)
        coords[i] = cell_coord(sub_cols[i][r], i);
      cells_[flatten(coords)].add(t_col[r], u_col[r]);
    }
    const double net = cluster_.network().send(
        static_cast<NodeId>(n), 0, byte_size() / cluster_.num_nodes());
    report.modelled_network_ms += net;
    report.shuffle_bytes += byte_size() / cluster_.num_nodes();
  }
  built_ = true;
  return report;
}

std::optional<double> GridStatCache::answer(
    const AnalyticalQuery& query) const {
  if (!built_) throw std::logic_error("GridStatCache::answer before build");
  query.validate();
  if (query.selection != SelectionType::kRange) return std::nullopt;
  if (query.subspace_cols != subspace_cols_) return std::nullopt;
  if (needs_target(query.analytic) && query.target_col != target_col_)
    return std::nullopt;
  if (needs_second_target(query.analytic) &&
      query.target_col2 != target_col2_)
    return std::nullopt;

  const std::size_t d = subspace_cols_.size();
  std::vector<std::size_t> lo(d), hi(d);
  for (std::size_t i = 0; i < d; ++i) {
    lo[i] = cell_coord(query.range.lo[i], i);
    hi[i] = cell_coord(query.range.hi[i], i);
  }

  AggregateState total;
  std::vector<std::size_t> coord = lo;
  for (;;) {
    // Volume fraction of this cell covered by the query rectangle.
    double frac = 1.0;
    for (std::size_t i = 0; i < d; ++i) {
      const double width =
          (domain_.hi[i] - domain_.lo[i]) / static_cast<double>(cells_per_dim_);
      const double clo = domain_.lo[i] + static_cast<double>(coord[i]) * width;
      const double chi = clo + width;
      const double overlap = std::max(
          0.0, std::min(query.range.hi[i], chi) -
                   std::max(query.range.lo[i], clo));
      frac *= overlap / width;
    }
    if (frac > 0.0) {
      const AggregateState& cell = cells_[flatten(coord)];
      AggregateState scaled;
      // Pro-rate boundary cells by covered volume (uniformity per cell).
      scaled.count = static_cast<std::uint64_t>(
          std::llround(static_cast<double>(cell.count) * frac));
      scaled.sum_t = cell.sum_t * frac;
      scaled.sum_tt = cell.sum_tt * frac;
      scaled.sum_u = cell.sum_u * frac;
      scaled.sum_uu = cell.sum_uu * frac;
      scaled.sum_tu = cell.sum_tu * frac;
      total.merge(scaled);
    }
    // Odometer over [lo, hi].
    std::size_t i = 0;
    for (; i < d; ++i) {
      if (coord[i] < hi[i]) {
        ++coord[i];
        for (std::size_t j = 0; j < i; ++j) coord[j] = lo[j];
        break;
      }
    }
    if (i == d) break;
  }
  return total.finalize(query.analytic);
}

}  // namespace sea
