#include "aqp/sampling.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <vector>

#include "common/rng.h"
#include "data/columnar.h"
#include "exec/mapreduce.h"

namespace sea {

namespace {

/// Weighted aggregate over sampled rows (weights = inverse inclusion
/// probability, i.e. Horvitz-Thompson estimators).
struct WeightedAgg {
  double n = 0.0;       ///< sum of weights (estimated population)
  double raw_n = 0.0;   ///< sampled rows
  double var_n = 0.0;   ///< sum w*(w-1): Poisson variance proxy for count
  double sum_t = 0.0, sum_tt = 0.0;
  double sum_u = 0.0, sum_uu = 0.0, sum_tu = 0.0;

  void add(double w, double t, double u) noexcept {
    n += w;
    raw_n += 1.0;
    var_n += w * (w - 1.0);
    sum_t += w * t;
    sum_tt += w * t * t;
    sum_u += w * u;
    sum_uu += w * u * u;
    sum_tu += w * t * u;
  }

  void merge(const WeightedAgg& o) noexcept {
    n += o.n;
    raw_n += o.raw_n;
    var_n += o.var_n;
    sum_t += o.sum_t;
    sum_tt += o.sum_tt;
    sum_u += o.sum_u;
    sum_uu += o.sum_uu;
    sum_tu += o.sum_tu;
  }

  double finalize(AnalyticType type) const noexcept {
    switch (type) {
      case AnalyticType::kCount:
        return n;
      case AnalyticType::kSum:
        return sum_t;
      case AnalyticType::kAvg:
        return n > 0.0 ? sum_t / n : 0.0;
      case AnalyticType::kVariance: {
        if (n < 2.0) return 0.0;
        const double var = (sum_tt - sum_t * sum_t / n) / (n - 1.0);
        return var > 0.0 ? var : 0.0;
      }
      case AnalyticType::kCorrelation: {
        if (n < 2.0) return 0.0;
        const double cov = sum_tu - sum_t * sum_u / n;
        const double vt = sum_tt - sum_t * sum_t / n;
        const double vu = sum_uu - sum_u * sum_u / n;
        const double denom = std::sqrt(vt * vu);
        return denom > 0.0 ? cov / denom : 0.0;
      }
      case AnalyticType::kRegressionSlope: {
        if (n < 2.0) return 0.0;
        const double cov = sum_tu - sum_t * sum_u / n;
        const double vt = sum_tt - sum_t * sum_t / n;
        return vt > 0.0 ? cov / vt : 0.0;
      }
      case AnalyticType::kRegressionIntercept: {
        if (n < 2.0) return 0.0;
        const double cov = sum_tu - sum_t * sum_u / n;
        const double vt = sum_tt - sum_t * sum_t / n;
        const double slope = vt > 0.0 ? cov / vt : 0.0;
        return sum_u / n - slope * sum_t / n;
      }
    }
    return 0.0;
  }

  double ci_halfwidth(AnalyticType type) const noexcept {
    // Crude CLT-style 95% intervals; enough for the bench comparisons.
    switch (type) {
      case AnalyticType::kCount:
        return 1.96 * std::sqrt(std::max(0.0, var_n));
      case AnalyticType::kSum: {
        if (raw_n < 2.0 || n <= 0.0) return 0.0;
        const double mean = sum_t / n;
        const double var =
            std::max(0.0, sum_tt / n - mean * mean);
        return 1.96 * std::sqrt(var / raw_n) * n +
               1.96 * std::sqrt(std::max(0.0, var_n)) * std::abs(mean);
      }
      case AnalyticType::kAvg: {
        if (raw_n < 2.0 || n <= 0.0) return 0.0;
        const double mean = sum_t / n;
        const double var = std::max(0.0, sum_tt / n - mean * mean);
        return 1.96 * std::sqrt(var / raw_n);
      }
      default:
        return 0.0;  // dependence statistics: no closed form provided
    }
  }
};

}  // namespace

namespace {
/// Distinct engines over the same base table must not collide on the
/// materialized sample's name.
std::atomic<std::uint64_t> g_sample_id{0};
}  // namespace

SamplingEngine::SamplingEngine(Cluster& cluster, std::string base_table,
                               SamplingConfig config)
    : cluster_(cluster),
      base_table_(std::move(base_table)),
      sample_table_(base_table_ + "__sample" +
                    std::to_string(g_sample_id.fetch_add(1))),
      config_(config) {
  if (!cluster_.has_table(base_table_))
    throw std::invalid_argument("SamplingEngine: unknown table " +
                                base_table_);
  if (config_.sample_rate <= 0.0 || config_.sample_rate > 1.0)
    throw std::invalid_argument("SamplingEngine: sample_rate in (0,1]");
}

ExecReport SamplingEngine::build() {
  ExecReport total_report;

  // Stratified sampling needs per-stratum counts first: one accounted pass.
  std::vector<double> stratum_rate;
  double col_lo = 0.0, col_hi = 1.0;
  if (config_.strategy == SamplingStrategy::kStratified) {
    MapReduceJob<std::size_t, std::uint64_t, std::uint64_t> count_job;
    // First sub-pass (cheap, merged into the same job): global min/max of
    // the stratification column is required to bin. We fold min/max into
    // per-node scans at the coordinator by scanning bounds locally.
    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
    for (std::size_t n = 0; n < cluster_.num_nodes(); ++n) {
      const Table& part = cluster_.partition(base_table_,
                                             static_cast<NodeId>(n));
      cluster_.account_task(static_cast<NodeId>(n));
      cluster_.account_scan(static_cast<NodeId>(n), part.num_rows(),
                            part.num_rows() * sizeof(double));
      const auto col = part.column(config_.stratify_col);
      for (const double v : col) {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
    }
    if (!(hi > lo)) hi = lo + 1.0;
    col_lo = lo;
    col_hi = hi;
    const std::size_t strata = std::max<std::size_t>(1, config_.strata);
    count_job.map = [this, lo, hi, strata](NodeId, const Table& part,
                                           Emitter<std::size_t,
                                                   std::uint64_t>& out) {
      std::vector<std::uint64_t> counts(strata, 0);
      const auto col = part.column(config_.stratify_col);
      for (const double v : col) {
        auto b = static_cast<std::size_t>((v - lo) / (hi - lo) *
                                          static_cast<double>(strata));
        b = std::min(b, strata - 1);
        ++counts[b];
      }
      for (std::size_t s = 0; s < strata; ++s)
        if (counts[s]) out.emit(s, counts[s]);
    };
    count_job.reduce = [](const std::size_t&, std::vector<std::uint64_t>& v) {
      std::uint64_t sum = 0;
      for (const auto c : v) sum += c;
      return sum;
    };
    auto counted = run_map_reduce(cluster_, base_table_, count_job);
    total_report.merge(counted.report);
    stratum_rate.assign(strata, config_.sample_rate);
    for (const auto& [s, cnt] : counted.results) {
      const double need =
          static_cast<double>(config_.min_per_stratum) /
          std::max<double>(1.0, static_cast<double>(cnt));
      stratum_rate[s] = std::min(1.0, std::max(config_.sample_rate, need));
    }
  }

  // Sampling pass: each node scans its partition, keeps rows per the rate,
  // and the kept rows travel (accounted) to form the sample table.
  const Table& part0 = cluster_.partition(base_table_, 0);
  const std::size_t base_cols = part0.num_columns();
  weight_col_ = base_cols;

  MapReduceJob<int, std::vector<double>, int> job;
  job.kv_bytes = (base_cols + 1) * sizeof(double);
  job.result_bytes = 8;
  const std::size_t strata = std::max<std::size_t>(1, config_.strata);
  const auto cfg = config_;
  const double lo = col_lo, hi = col_hi;
  std::vector<std::vector<double>> sampled_rows;
  job.map = [&, cfg](NodeId node, const Table& part,
                     Emitter<int, std::vector<double>>& out) {
    Rng rng(cfg.seed ^ (0x9e3779b9ULL * (node + 1)));
    std::vector<double> row(base_cols + 1);
    for (std::size_t r = 0; r < part.num_rows(); ++r) {
      double rate = cfg.sample_rate;
      if (cfg.strategy == SamplingStrategy::kStratified) {
        const double v = part.at(r, cfg.stratify_col);
        auto b = static_cast<std::size_t>((v - lo) / (hi - lo) *
                                          static_cast<double>(strata));
        b = std::min(b, strata - 1);
        rate = stratum_rate[b];
      }
      if (!rng.bernoulli(rate)) continue;
      for (std::size_t c = 0; c < base_cols; ++c) row[c] = part.at(r, c);
      row[base_cols] = 1.0 / rate;
      out.emit(0, row);
    }
  };
  job.reduce = [&sampled_rows](const int&,
                               std::vector<std::vector<double>>& rows) {
    for (auto& r : rows) sampled_rows.push_back(std::move(r));
    return 0;
  };
  auto mr = run_map_reduce(cluster_, base_table_, job);
  total_report.merge(mr.report);

  std::vector<std::string> names = part0.schema().names();
  names.push_back("__weight");
  Table sample{Schema(names)};
  sample.reserve(sampled_rows.size());
  for (const auto& r : sampled_rows) sample.append_row(r);
  sample_rows_ = sample.num_rows();
  sample_bytes_ = sample.byte_size();
  cluster_.load_table(sample_table_, sample, PartitionSpec{});
  built_ = true;
  return total_report;
}

AqpAnswer SamplingEngine::answer(const AnalyticalQuery& query) {
  AqpAnswer out;
  if (!built_) throw std::logic_error("SamplingEngine::answer before build");
  query.validate();
  if (query.selection == SelectionType::kNearestNeighbors) {
    out.supported = false;  // sample-kNN returns the wrong neighbourhood
    return out;
  }
  out.supported = true;

  const std::size_t wcol = weight_col_;
  MapReduceJob<int, WeightedAgg, WeightedAgg> job;
  job.kv_bytes = sizeof(WeightedAgg);
  job.result_bytes = sizeof(WeightedAgg);
  job.map = [&query, wcol](NodeId, const Table& part,
                           Emitter<int, WeightedAgg>& out_) {
    // Columnar selection (ascending row ids, same per-row arithmetic as
    // the old gathered-Point scan), then span reads of the weight/target
    // columns in selection order — byte-identical accumulation.
    std::vector<std::uint32_t> sel;
    if (query.selection == SelectionType::kRange)
      select_range(part, query.subspace_cols, query.range, sel);
    else
      select_ball(part, query.subspace_cols, query.ball, sel);
    const auto w_col = part.column(wcol);
    const std::span<const double> t_col = needs_target(query.analytic)
                                              ? part.column(query.target_col)
                                              : std::span<const double>();
    const std::span<const double> u_col =
        needs_second_target(query.analytic) ? part.column(query.target_col2)
                                            : std::span<const double>();
    WeightedAgg agg;
    for (const std::uint32_t r : sel)
      agg.add(w_col[r], t_col.empty() ? 0.0 : t_col[r],
              u_col.empty() ? 0.0 : u_col[r]);
    out_.emit(0, agg);
  };
  job.reduce = [](const int&, std::vector<WeightedAgg>& states) {
    WeightedAgg total;
    for (const auto& s : states) total.merge(s);
    return total;
  };
  auto mr = run_map_reduce(cluster_, sample_table_, job);
  WeightedAgg total;
  for (auto& [k, agg] : mr.results) {
    (void)k;
    total.merge(agg);
  }
  out.value = total.finalize(query.analytic);
  out.ci_halfwidth = total.ci_halfwidth(query.analytic);
  out.report = mr.report;
  return out;
}

}  // namespace sea
