// Sampling-based approximate query processing baseline (BlinkDB-like,
// paper §II critique of [17]).
//
// Faithful to the paper's architectural critique, the sample is *itself a
// distributed table in the BDAS*: building it scans the base table through
// the stack, and answering a query runs a (smaller) MapReduce over the
// sample partitions — so the baseline pays stack overheads per query, just
// as BlinkDB pays Hive/HDFS costs. Uniform and stratified variants;
// stratified guarantees a minimum expected take per stratum of a chosen
// column (BlinkDB's answer to rare subgroups).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "cluster/cluster.h"
#include "exec/exec_report.h"
#include "sea/query.h"

namespace sea {

enum class SamplingStrategy { kUniform, kStratified };

struct SamplingConfig {
  SamplingStrategy strategy = SamplingStrategy::kUniform;
  double sample_rate = 0.01;
  /// Stratified: stratify on this column, binned into `strata` buckets,
  /// with at least `min_per_stratum` expected rows kept per stratum.
  std::size_t stratify_col = 0;
  std::size_t strata = 32;
  std::size_t min_per_stratum = 64;
  std::uint64_t seed = 1234;
};

struct AqpAnswer {
  bool supported = false;
  double value = 0.0;
  /// Approximate 95% CI half-width (CLT-based); 0 when not estimable.
  double ci_halfwidth = 0.0;
  ExecReport report;
};

class SamplingEngine {
 public:
  SamplingEngine(Cluster& cluster, std::string base_table,
                 SamplingConfig config = {});

  /// Scans the base table (accounted) and materializes the sample as a
  /// distributed table `<base>__sample`. Must be called before answer().
  /// Returns the build-time execution report.
  ExecReport build();

  /// Sample-based estimate. All selection types except kNN are supported
  /// (kNN over a sample returns the wrong neighbourhood by construction).
  AqpAnswer answer(const AnalyticalQuery& query);

  std::size_t sample_rows() const noexcept { return sample_rows_; }
  std::size_t sample_bytes() const noexcept { return sample_bytes_; }
  const std::string& sample_table() const noexcept { return sample_table_; }

 private:
  Cluster& cluster_;
  std::string base_table_;
  std::string sample_table_;
  SamplingConfig config_;
  bool built_ = false;
  std::size_t sample_rows_ = 0;
  std::size_t sample_bytes_ = 0;
  std::size_t weight_col_ = 0;  ///< index of the per-row weight column
};

}  // namespace sea
