// Grid statistics cache — a Data-Canopy-style baseline (paper §II, [20]).
//
// Data Canopy caches composable basic aggregates over fixed-size chunks so
// repeated statistics never re-touch base data. Our multi-dimensional
// analogue partitions the queried subspace into a uniform grid of cells,
// each holding a mergeable AggregateState for a fixed (target, target2)
// pair. Range queries are answered by composing fully-covered cells
// exactly and pro-rating boundary cells by volume overlap.
//
// The two drawbacks the paper calls out are directly measurable here:
// storage grows as cells_per_dim^d (E12), and only the prebuilt
// (columns, targets) combination benefits — anything else misses.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "exec/exec_report.h"
#include "sea/aggregate.h"
#include "sea/query.h"

namespace sea {

class GridStatCache {
 public:
  /// Caches statistics of `target_col`/`target_col2` over the subspace of
  /// `subspace_cols`, with cells_per_dim cells along each dimension.
  GridStatCache(Cluster& cluster, std::string base_table,
                std::vector<std::size_t> subspace_cols,
                std::size_t target_col, std::size_t target_col2,
                std::size_t cells_per_dim);

  /// One accounted full pass over the base table fills the cells.
  /// Returns the build execution report.
  ExecReport build();

  /// Answers range queries whose columns/targets match the build
  /// configuration; nullopt otherwise (caller falls back to exact).
  std::optional<double> answer(const AnalyticalQuery& query) const;

  std::size_t byte_size() const noexcept {
    return cells_.size() * sizeof(AggregateState);
  }
  std::size_t num_cells() const noexcept { return cells_.size(); }
  bool built() const noexcept { return built_; }

 private:
  std::size_t cell_coord(double v, std::size_t dim) const noexcept;
  std::size_t flatten(const std::vector<std::size_t>& coords) const noexcept;

  Cluster& cluster_;
  std::string base_table_;
  std::vector<std::size_t> subspace_cols_;
  std::size_t target_col_;
  std::size_t target_col2_;
  std::size_t cells_per_dim_;
  Rect domain_;
  std::vector<AggregateState> cells_;
  bool built_ = false;
};

}  // namespace sea
