#include "graph/matcher.h"

#include <algorithm>
#include <stdexcept>

namespace sea {

namespace {

/// Pattern vertex visit order: BFS from vertex 0 so every vertex after the
/// first has at least one already-mapped neighbour (connected patterns).
std::vector<std::uint32_t> pattern_order(const Graph& pattern) {
  const std::size_t n = pattern.num_vertices();
  std::vector<std::uint32_t> order;
  std::vector<bool> seen(n, false);
  order.reserve(n);
  order.push_back(0);
  seen[0] = true;
  for (std::size_t head = 0; head < order.size(); ++head) {
    for (const auto w : pattern.neighbors(order[head])) {
      if (!seen[w]) {
        seen[w] = true;
        order.push_back(w);
      }
    }
  }
  if (order.size() != n)
    throw std::invalid_argument("matcher: pattern must be connected");
  return order;
}

struct SearchContext {
  const Graph& data;
  const Graph& pattern;
  const MatchOptions& options;
  MatchStats* stats;
  std::vector<std::uint32_t> order;
  std::vector<std::int64_t> mapping;       // pattern -> data (-1 unset)
  std::vector<bool> used;                  // data vertex already mapped
  std::vector<bool> allowed;               // candidate restriction
  bool restrict_candidates = false;
  std::vector<std::vector<std::uint32_t>>* out = nullptr;
  bool aborted = false;

  bool limits_hit() const noexcept {
    if (options.max_matches && stats &&
        stats->matches_found >= options.max_matches)
      return true;
    if (options.max_states && stats &&
        stats->states_explored >= options.max_states)
      return true;
    return false;
  }
};

void backtrack(SearchContext& ctx, std::size_t depth) {
  if (ctx.aborted) return;
  // Skip pattern vertices that were pre-seeded by a partial embedding.
  while (depth < ctx.order.size() && ctx.mapping[ctx.order[depth]] >= 0)
    ++depth;
  if (ctx.stats) ++ctx.stats->states_explored;
  if (ctx.options.max_states && ctx.stats &&
      ctx.stats->states_explored > ctx.options.max_states) {
    ctx.aborted = true;
    return;
  }
  if (depth == ctx.order.size()) {
    if (ctx.stats) ++ctx.stats->matches_found;
    if (ctx.out) {
      std::vector<std::uint32_t> emb(ctx.mapping.size());
      for (std::size_t i = 0; i < ctx.mapping.size(); ++i)
        emb[i] = static_cast<std::uint32_t>(ctx.mapping[i]);
      ctx.out->push_back(std::move(emb));
    }
    if (ctx.options.max_matches && ctx.stats &&
        ctx.stats->matches_found >= ctx.options.max_matches)
      ctx.aborted = true;
    return;
  }

  const std::uint32_t pv = ctx.order[depth];
  // Candidate generation: neighbours of an already-mapped pattern
  // neighbour (exists for depth > 0 thanks to BFS order), else all
  // vertices.
  std::int64_t anchor_data = -1;
  for (const auto pn : ctx.pattern.neighbors(pv)) {
    if (ctx.mapping[pn] >= 0) {
      anchor_data = ctx.mapping[pn];
      break;
    }
  }

  const auto try_candidate = [&](std::uint32_t dv) {
    if (ctx.aborted) return;
    if (ctx.used[dv]) return;
    if (ctx.restrict_candidates && !ctx.allowed[dv]) return;
    if (ctx.data.label(dv) != ctx.pattern.label(pv)) return;
    if (ctx.data.degree(dv) < ctx.pattern.degree(pv)) return;
    // All mapped pattern neighbours must be data neighbours of dv.
    for (const auto pn : ctx.pattern.neighbors(pv)) {
      if (ctx.mapping[pn] < 0) continue;
      if (!ctx.data.has_edge(dv,
                             static_cast<std::uint32_t>(ctx.mapping[pn])))
        return;
    }
    ctx.mapping[pv] = dv;
    ctx.used[dv] = true;
    backtrack(ctx, depth + 1);
    ctx.mapping[pv] = -1;
    ctx.used[dv] = false;
  };

  if (anchor_data >= 0) {
    for (const auto dv :
         ctx.data.neighbors(static_cast<std::uint32_t>(anchor_data)))
      try_candidate(dv);
  } else if (ctx.restrict_candidates) {
    for (const auto dv : ctx.options.candidate_vertices) try_candidate(dv);
  } else {
    for (std::uint32_t dv = 0; dv < ctx.data.num_vertices(); ++dv)
      try_candidate(dv);
  }
}

}  // namespace

std::vector<std::vector<std::uint32_t>> find_subgraph_matches(
    const Graph& data, const Graph& pattern, const MatchOptions& options,
    MatchStats* stats) {
  std::vector<std::vector<std::uint32_t>> out;
  if (pattern.num_vertices() == 0 ||
      pattern.num_vertices() > data.num_vertices())
    return out;
  MatchStats local_stats;
  SearchContext ctx{data,
                    pattern,
                    options,
                    stats ? stats : &local_stats,
                    pattern_order(pattern),
                    std::vector<std::int64_t>(pattern.num_vertices(), -1),
                    std::vector<bool>(data.num_vertices(), false),
                    std::vector<bool>(data.num_vertices(), false),
                    false,
                    &out,
                    false};
  if (!options.candidate_vertices.empty()) {
    ctx.restrict_candidates = true;
    for (const auto v : options.candidate_vertices) {
      if (v < data.num_vertices()) ctx.allowed[v] = true;
    }
  }
  backtrack(ctx, 0);
  return out;
}

std::vector<std::vector<std::uint32_t>> extend_partial_embeddings(
    const Graph& data, const Graph& pattern,
    const std::vector<EmbeddingSeed>& seeds, const MatchOptions& options,
    MatchStats* stats) {
  std::vector<std::vector<std::uint32_t>> out;
  if (pattern.num_vertices() == 0) return out;
  MatchStats local_stats;
  MatchStats* st = stats ? stats : &local_stats;
  const auto order = pattern_order(pattern);

  for (const auto& seed : seeds) {
    SearchContext ctx{data,
                      pattern,
                      options,
                      st,
                      order,
                      std::vector<std::int64_t>(pattern.num_vertices(), -1),
                      std::vector<bool>(data.num_vertices(), false),
                      std::vector<bool>(data.num_vertices(), false),
                      false,
                      &out,
                      false};
    // Install and validate the seed.
    bool ok = true;
    for (const auto& [pv, dv] : seed) {
      if (pv >= pattern.num_vertices() || dv >= data.num_vertices() ||
          ctx.used[dv] || data.label(dv) != pattern.label(pv) ||
          data.degree(dv) < pattern.degree(pv)) {
        ok = false;
        break;
      }
      ctx.mapping[pv] = dv;
      ctx.used[dv] = true;
    }
    if (ok) {
      // Pattern edges among seeded vertices must exist in the data.
      for (const auto& [pv, dv] : seed) {
        for (const auto pn : pattern.neighbors(pv)) {
          if (ctx.mapping[pn] < 0) continue;
          if (!data.has_edge(dv,
                             static_cast<std::uint32_t>(ctx.mapping[pn]))) {
            ok = false;
            break;
          }
        }
        if (!ok) break;
      }
    }
    if (!ok) continue;
    backtrack(ctx, 0);
    if (options.max_matches && st->matches_found >= options.max_matches)
      break;
  }
  return out;
}

bool is_subgraph_isomorphic(const Graph& data, const Graph& pattern,
                            MatchStats* stats) {
  MatchOptions opts;
  opts.max_matches = 1;
  return !find_subgraph_matches(data, pattern, opts, stats).empty();
}

bool graphs_isomorphic(const Graph& a, const Graph& b) {
  if (a.num_vertices() != b.num_vertices() || a.num_edges() != b.num_edges())
    return false;
  if (a.sorted_labels() != b.sorted_labels()) return false;
  if (a.num_vertices() == 0) return true;
  // With equal vertex and edge counts, a (non-induced) embedding of a in b
  // must use every b vertex and cover every b edge, i.e. be an isomorphism.
  return is_subgraph_isomorphic(b, a);
}

}  // namespace sea
