// VF2-style subgraph isomorphism: find embeddings of a connected pattern
// in a data graph with label/degree pruning and backtracking. Supports
// restricting the search to a candidate vertex set, which is how the
// semantic cache turns a "subsumption hit" into a much smaller search
// (paper [34], [35]).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/graph.h"

namespace sea {

struct MatchStats {
  std::uint64_t states_explored = 0;  ///< backtracking nodes visited
  std::uint64_t matches_found = 0;
};

struct MatchOptions {
  /// Stop after this many embeddings (0 = unlimited).
  std::size_t max_matches = 0;
  /// When non-empty, data-graph vertices outside this set are ignored.
  std::vector<std::uint32_t> candidate_vertices;
  /// Hard cap on explored states (guards pathological patterns; 0 = none).
  std::uint64_t max_states = 0;
};

/// Each embedding maps pattern vertex i -> embedding[i] (data vertex).
/// Embeddings are injective and label/edge preserving (subgraph
/// isomorphism in the non-induced sense: pattern edges must exist, extra
/// data edges are allowed).
std::vector<std::vector<std::uint32_t>> find_subgraph_matches(
    const Graph& data, const Graph& pattern, const MatchOptions& options = {},
    MatchStats* stats = nullptr);

/// True when at least one embedding exists.
bool is_subgraph_isomorphic(const Graph& data, const Graph& pattern,
                            MatchStats* stats = nullptr);

/// A partial embedding seed: (pattern vertex, data vertex) pairs.
using EmbeddingSeed = std::vector<std::pair<std::uint32_t, std::uint32_t>>;

/// Extends each seed to all full embeddings of `pattern` in `data`.
/// Used by the semantic cache: when a cached sub-pattern Qc embeds into a
/// new pattern Q via mapping m, every data embedding e of Qc yields the
/// seed {(m(u), e(u))}, and every Q-embedding extends exactly one such
/// seed — so the union over seeds is complete and duplicate-free.
/// Seeds that are internally inconsistent (labels, injectivity, missing
/// edges among seeded vertices) are skipped.
std::vector<std::vector<std::uint32_t>> extend_partial_embeddings(
    const Graph& data, const Graph& pattern,
    const std::vector<EmbeddingSeed>& seeds, const MatchOptions& options = {},
    MatchStats* stats = nullptr);

/// True when the two graphs are isomorphic (equal sizes + embeddings both
/// ways is overkill; equal sizes + one embedding suffices for non-induced
/// semantics on equal vertex/edge counts).
bool graphs_isomorphic(const Graph& a, const Graph& b);

}  // namespace sea
