// Undirected vertex-labelled graph store plus generators, the substrate
// for the subgraph-matching analytics of paper §IV P3 ([34], [35], [37],
// [38]) reproduced in experiment E5.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace sea {

class Graph {
 public:
  Graph() = default;

  std::uint32_t add_vertex(int label);
  /// Adds an undirected edge; self-loops and duplicates are rejected.
  void add_edge(std::uint32_t u, std::uint32_t v);
  bool has_edge(std::uint32_t u, std::uint32_t v) const;

  std::size_t num_vertices() const noexcept { return labels_.size(); }
  std::size_t num_edges() const noexcept { return num_edges_; }

  int label(std::uint32_t v) const;
  const std::vector<std::uint32_t>& neighbors(std::uint32_t v) const;
  std::size_t degree(std::uint32_t v) const { return neighbors(v).size(); }

  /// Multiset of labels, sorted — cheap iso-filter for the query cache.
  std::vector<int> sorted_labels() const;

  std::size_t byte_size() const noexcept {
    return labels_.size() * sizeof(int) +
           2 * num_edges_ * sizeof(std::uint32_t);
  }

 private:
  std::vector<int> labels_;
  std::vector<std::vector<std::uint32_t>> adj_;
  std::size_t num_edges_ = 0;
};

/// Erdos-Renyi-style random graph with `num_labels` uniform vertex labels
/// and expected average degree `avg_degree`, plus a spanning chain so the
/// graph is connected.
Graph make_random_graph(std::size_t vertices, double avg_degree,
                        int num_labels, std::uint64_t seed);

/// Extracts a connected induced-subgraph pattern of `size` vertices by
/// random BFS from a random seed vertex. Returned pattern vertex 0 is the
/// seed. Throws when the graph is smaller than `size`.
Graph extract_pattern(const Graph& g, std::size_t size, Rng& rng);

}  // namespace sea
