// Subgraph-query semantic cache (GraphCache-like, paper [34], [35]).
//
// Caches (pattern, embeddings) pairs for a fixed data graph and exploits
// two kinds of semantic hits when a new pattern arrives:
//  * exact hit — an isomorphic pattern is cached: return its embeddings
//    without touching the matcher at all;
//  * subsumption hit — a cached pattern is a subgraph of the new one:
//    every embedding of the new pattern must stay within a small
//    neighbourhood of the cached pattern's match support, so the matcher
//    runs on a drastically reduced candidate set.
// Misses run the full matcher and populate the cache (LRU eviction).
#pragma once

#include <cstdint>
#include <list>
#include <vector>

#include "graph/graph.h"
#include "graph/matcher.h"

namespace sea {

struct CacheQueryResult {
  std::vector<std::vector<std::uint32_t>> embeddings;
  enum class Kind { kExactHit, kSubsumptionHit, kMiss } kind = Kind::kMiss;
  MatchStats match_stats;  ///< zero states on an exact hit
};

struct CacheStats {
  std::uint64_t queries = 0;
  std::uint64_t exact_hits = 0;
  std::uint64_t subsumption_hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
};

class SubgraphQueryCache {
 public:
  /// Caches results against `data`; keeps at most `capacity` entries.
  SubgraphQueryCache(const Graph& data, std::size_t capacity = 64,
                     std::size_t max_matches_per_query = 1000);

  /// Answers `pattern` using the cache when possible.
  CacheQueryResult query(const Graph& pattern);

  const CacheStats& stats() const noexcept { return stats_; }
  std::size_t size() const noexcept { return entries_.size(); }
  std::size_t byte_size() const noexcept;

 private:
  struct Entry {
    Graph pattern;
    std::vector<int> label_multiset;
    std::vector<std::vector<std::uint32_t>> embeddings;
    std::vector<std::uint32_t> support;  ///< distinct data vertices in matches
    /// False when the embedding list was truncated at max_matches; such an
    /// entry's support is incomplete and must not drive subsumption.
    bool complete = true;
  };

  const Graph& data_;
  std::size_t capacity_;
  std::size_t max_matches_;
  std::list<Entry> entries_;  ///< front = most recently used
  CacheStats stats_;
};

}  // namespace sea
