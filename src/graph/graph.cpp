#include "graph/graph.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

namespace sea {

std::uint32_t Graph::add_vertex(int label) {
  labels_.push_back(label);
  adj_.emplace_back();
  return static_cast<std::uint32_t>(labels_.size() - 1);
}

void Graph::add_edge(std::uint32_t u, std::uint32_t v) {
  if (u >= labels_.size() || v >= labels_.size())
    throw std::out_of_range("Graph::add_edge: bad vertex");
  if (u == v) throw std::invalid_argument("Graph::add_edge: self-loop");
  if (has_edge(u, v))
    throw std::invalid_argument("Graph::add_edge: duplicate edge");
  adj_[u].push_back(v);
  adj_[v].push_back(u);
  ++num_edges_;
}

bool Graph::has_edge(std::uint32_t u, std::uint32_t v) const {
  if (u >= labels_.size() || v >= labels_.size()) return false;
  const auto& smaller = adj_[u].size() <= adj_[v].size() ? adj_[u] : adj_[v];
  const std::uint32_t other = adj_[u].size() <= adj_[v].size() ? v : u;
  return std::find(smaller.begin(), smaller.end(), other) != smaller.end();
}

int Graph::label(std::uint32_t v) const {
  if (v >= labels_.size()) throw std::out_of_range("Graph::label");
  return labels_[v];
}

const std::vector<std::uint32_t>& Graph::neighbors(std::uint32_t v) const {
  if (v >= adj_.size()) throw std::out_of_range("Graph::neighbors");
  return adj_[v];
}

std::vector<int> Graph::sorted_labels() const {
  std::vector<int> out = labels_;
  std::sort(out.begin(), out.end());
  return out;
}

Graph make_random_graph(std::size_t vertices, double avg_degree,
                        int num_labels, std::uint64_t seed) {
  if (vertices == 0)
    throw std::invalid_argument("make_random_graph: need vertices");
  if (num_labels <= 0)
    throw std::invalid_argument("make_random_graph: need labels");
  Rng rng(seed);
  Graph g;
  for (std::size_t v = 0; v < vertices; ++v)
    g.add_vertex(static_cast<int>(rng.uniform_index(
        static_cast<std::uint64_t>(num_labels))));
  // Spanning chain for connectivity.
  for (std::size_t v = 1; v < vertices; ++v)
    g.add_edge(static_cast<std::uint32_t>(v - 1),
               static_cast<std::uint32_t>(v));
  // Random extra edges to reach the target average degree.
  const auto target_edges = static_cast<std::size_t>(
      avg_degree * static_cast<double>(vertices) / 2.0);
  std::size_t attempts = 0;
  while (g.num_edges() < target_edges && attempts < target_edges * 20) {
    ++attempts;
    const auto u =
        static_cast<std::uint32_t>(rng.uniform_index(vertices));
    const auto v =
        static_cast<std::uint32_t>(rng.uniform_index(vertices));
    if (u == v || g.has_edge(u, v)) continue;
    g.add_edge(u, v);
  }
  return g;
}

Graph extract_pattern(const Graph& g, std::size_t size, Rng& rng) {
  if (size == 0 || size > g.num_vertices())
    throw std::invalid_argument("extract_pattern: bad size");
  // Random BFS-ish growth.
  std::vector<std::uint32_t> chosen;
  std::vector<std::uint32_t> frontier;
  std::vector<bool> in_chosen(g.num_vertices(), false);
  const auto seed_v =
      static_cast<std::uint32_t>(rng.uniform_index(g.num_vertices()));
  chosen.push_back(seed_v);
  in_chosen[seed_v] = true;
  frontier.insert(frontier.end(), g.neighbors(seed_v).begin(),
                  g.neighbors(seed_v).end());
  while (chosen.size() < size && !frontier.empty()) {
    const auto pick = rng.uniform_index(frontier.size());
    const std::uint32_t v = frontier[pick];
    frontier.erase(frontier.begin() + static_cast<std::ptrdiff_t>(pick));
    if (in_chosen[v]) continue;
    chosen.push_back(v);
    in_chosen[v] = true;
    for (const auto w : g.neighbors(v))
      if (!in_chosen[w]) frontier.push_back(w);
  }
  if (chosen.size() < size)
    throw std::runtime_error("extract_pattern: component too small");

  Graph pattern;
  std::unordered_map<std::uint32_t, std::uint32_t> remap;
  for (const auto v : chosen) remap[v] = pattern.add_vertex(g.label(v));
  for (std::size_t i = 0; i < chosen.size(); ++i) {
    for (std::size_t j = i + 1; j < chosen.size(); ++j) {
      if (g.has_edge(chosen[i], chosen[j]))
        pattern.add_edge(remap[chosen[i]], remap[chosen[j]]);
    }
  }
  return pattern;
}

}  // namespace sea
