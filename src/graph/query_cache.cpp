#include "graph/query_cache.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

namespace sea {

SubgraphQueryCache::SubgraphQueryCache(const Graph& data, std::size_t capacity,
                                       std::size_t max_matches_per_query)
    : data_(data), capacity_(capacity), max_matches_(max_matches_per_query) {
  if (capacity_ == 0)
    throw std::invalid_argument("SubgraphQueryCache: capacity must be > 0");
}

CacheQueryResult SubgraphQueryCache::query(const Graph& pattern) {
  CacheQueryResult result;
  ++stats_.queries;
  const auto labels = pattern.sorted_labels();

  // 1) Exact hit: a cached isomorphic pattern.
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->pattern.num_vertices() != pattern.num_vertices() ||
        it->pattern.num_edges() != pattern.num_edges() ||
        it->label_multiset != labels)
      continue;
    if (graphs_isomorphic(it->pattern, pattern)) {
      ++stats_.exact_hits;
      result.kind = CacheQueryResult::Kind::kExactHit;
      result.embeddings = it->embeddings;
      entries_.splice(entries_.begin(), entries_, it);  // LRU bump
      return result;
    }
  }

  // 2) Subsumption hit: the largest cached pattern that embeds in the new
  //    one restricts the search space the most. Keep the pattern-level
  //    embedding m: cached-pattern vertex -> new-pattern vertex.
  const Entry* best = nullptr;
  std::vector<std::uint32_t> best_m;
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->pattern.num_vertices() > pattern.num_vertices() ||
        it->pattern.num_edges() > pattern.num_edges())
      continue;
    if (it->support.empty()) continue;  // cached pattern had no matches
    if (!it->complete) continue;  // truncated support is unsound to reuse
    // Label multiset containment is a cheap necessary condition.
    if (!std::includes(labels.begin(), labels.end(),
                       it->label_multiset.begin(), it->label_multiset.end()))
      continue;
    if (best && it->pattern.num_vertices() <= best->pattern.num_vertices())
      continue;
    MatchStats iso_stats;
    MatchOptions iso_opts;
    iso_opts.max_matches = 1;
    auto pattern_embeddings =
        find_subgraph_matches(pattern, it->pattern, iso_opts, &iso_stats);
    if (!pattern_embeddings.empty()) {
      best = &*it;
      best_m = std::move(pattern_embeddings.front());
    }
  }

  MatchOptions opts;
  opts.max_matches = max_matches_;
  if (best) {
    // Every embedding of the new pattern restricts (through m) to exactly
    // one cached embedding, so extending the cached embeddings is both
    // complete and duplicate-free — the GraphCache-style reuse.
    std::vector<EmbeddingSeed> seeds;
    seeds.reserve(best->embeddings.size());
    for (const auto& e : best->embeddings) {
      EmbeddingSeed seed;
      seed.reserve(e.size());
      for (std::uint32_t u = 0; u < e.size(); ++u)
        seed.emplace_back(best_m[u], e[u]);
      seeds.push_back(std::move(seed));
    }
    ++stats_.subsumption_hits;
    result.kind = CacheQueryResult::Kind::kSubsumptionHit;
    result.embeddings = extend_partial_embeddings(data_, pattern, seeds,
                                                  opts, &result.match_stats);
  } else {
    ++stats_.misses;
    result.kind = CacheQueryResult::Kind::kMiss;
    result.embeddings =
        find_subgraph_matches(data_, pattern, opts, &result.match_stats);
  }

  // Populate cache.
  Entry e;
  e.pattern = pattern;
  e.label_multiset = labels;
  e.embeddings = result.embeddings;
  std::unordered_set<std::uint32_t> support;
  for (const auto& emb : result.embeddings)
    for (const auto v : emb) support.insert(v);
  e.support.assign(support.begin(), support.end());
  std::sort(e.support.begin(), e.support.end());
  e.complete = result.embeddings.size() < max_matches_;
  entries_.push_front(std::move(e));
  while (entries_.size() > capacity_) {
    entries_.pop_back();
    ++stats_.evictions;
  }
  return result;
}

std::size_t SubgraphQueryCache::byte_size() const noexcept {
  std::size_t total = 0;
  for (const auto& e : entries_) {
    total += e.pattern.byte_size();
    total += e.label_multiset.size() * sizeof(int);
    for (const auto& emb : e.embeddings)
      total += emb.size() * sizeof(std::uint32_t);
    total += e.support.size() * sizeof(std::uint32_t);
  }
  return total;
}

}  // namespace sea
