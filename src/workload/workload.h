// Analyst workload generation.
//
// Substitution note (DESIGN.md): we have no real analyst populations, so we
// synthesize the workload property the data-less paradigm depends on
// (paper §IV P2, citing [17]-[20], [25]): queries define *overlapping* data
// subspaces concentrated around a few interest hotspots. Hotspots are a
// mixture over the domain; each query draws a hotspot, jitters the centre,
// and draws a subspace extent. Hotspots can *drift* over time to exercise
// model maintenance (RT1.4-i / E8).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "data/table.h"
#include "sea/query.h"

namespace sea {

struct WorkloadConfig {
  SelectionType selection = SelectionType::kRange;
  AnalyticType analytic = AnalyticType::kCount;
  std::vector<std::size_t> subspace_cols;
  std::size_t target_col = 0;
  std::size_t target_col2 = 0;

  std::size_t num_hotspots = 4;
  /// Std-dev of query centres around their hotspot, as a fraction of the
  /// domain width. Small spread = strongly overlapping subspaces.
  double hotspot_spread = 0.04;
  /// Zipf skew over hotspot popularity (0 = uniform).
  double hotspot_skew = 0.8;

  /// Relative extent ranges (fractions of domain width).
  double min_width = 0.05, max_width = 0.25;    ///< range queries
  double min_radius = 0.03, max_radius = 0.12;  ///< radius queries
  std::size_t min_k = 8, max_k = 128;           ///< kNN queries

  /// When non-empty, hotspots are drawn from these anchor points instead
  /// of uniformly — models analysts exploring where the data actually
  /// lives (pass e.g. random data rows projected to the subspace columns).
  std::vector<Point> hotspot_anchors;

  std::uint64_t seed = 42;
};

/// Draws `n` random rows of `table`, projected to `cols`, for use as
/// workload hotspot anchors.
std::vector<Point> sample_anchor_points(const Table& table,
                                        const std::vector<std::size_t>& cols,
                                        std::size_t n, std::uint64_t seed);

class QueryWorkload {
 public:
  QueryWorkload(WorkloadConfig config, Rect domain);

  /// Draws the next query.
  AnalyticalQuery next();

  /// Moves every hotspot by a random offset of magnitude `fraction` of the
  /// domain width — models analyst interest drift (RT1.4-i).
  void drift_hotspots(double fraction);

  /// Replaces all hotspots with fresh random positions (abrupt drift).
  void reset_hotspots();

  const std::vector<Point>& hotspots() const noexcept { return hotspots_; }
  const Rect& domain() const noexcept { return domain_; }

 private:
  Point draw_center();

  WorkloadConfig config_;
  Rect domain_;
  Rng rng_;
  std::vector<Point> hotspots_;
  ZipfDistribution hotspot_pick_;
};

}  // namespace sea
