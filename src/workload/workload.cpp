#include "workload/workload.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sea {

std::vector<Point> sample_anchor_points(const Table& table,
                                        const std::vector<std::size_t>& cols,
                                        std::size_t n, std::uint64_t seed) {
  if (table.num_rows() == 0)
    throw std::invalid_argument("sample_anchor_points: empty table");
  Rng rng(seed);
  std::vector<Point> anchors;
  anchors.reserve(n);
  Point p;
  for (std::size_t i = 0; i < n; ++i) {
    table.gather(rng.uniform_index(table.num_rows()), cols, p);
    anchors.push_back(p);
  }
  return anchors;
}

QueryWorkload::QueryWorkload(WorkloadConfig config, Rect domain)
    : config_(std::move(config)),
      domain_(std::move(domain)),
      rng_(config_.seed),
      hotspot_pick_(std::max<std::size_t>(1, config_.num_hotspots),
                    config_.hotspot_skew) {
  if (config_.subspace_cols.empty())
    throw std::invalid_argument("QueryWorkload: no subspace columns");
  if (domain_.dims() != config_.subspace_cols.size())
    throw std::invalid_argument("QueryWorkload: domain dims mismatch");
  if (config_.num_hotspots == 0)
    throw std::invalid_argument("QueryWorkload: need at least one hotspot");
  reset_hotspots();
}

void QueryWorkload::reset_hotspots() {
  hotspots_.clear();
  hotspots_.reserve(config_.num_hotspots);
  const std::size_t d = domain_.dims();
  for (std::size_t h = 0; h < config_.num_hotspots; ++h) {
    if (!config_.hotspot_anchors.empty()) {
      const auto& anchor = config_.hotspot_anchors[rng_.uniform_index(
          config_.hotspot_anchors.size())];
      if (anchor.size() != d)
        throw std::invalid_argument("QueryWorkload: anchor dims mismatch");
      hotspots_.push_back(anchor);
      continue;
    }
    Point c(d);
    for (std::size_t i = 0; i < d; ++i) {
      const double w = domain_.hi[i] - domain_.lo[i];
      // Keep hotspots away from the border so subspaces stay mostly inside.
      c[i] = rng_.uniform(domain_.lo[i] + 0.15 * w, domain_.hi[i] - 0.15 * w);
    }
    hotspots_.push_back(std::move(c));
  }
}

void QueryWorkload::drift_hotspots(double fraction) {
  const std::size_t d = domain_.dims();
  for (auto& h : hotspots_) {
    for (std::size_t i = 0; i < d; ++i) {
      const double w = domain_.hi[i] - domain_.lo[i];
      h[i] = std::clamp(h[i] + rng_.uniform(-1.0, 1.0) * fraction * w,
                        domain_.lo[i] + 0.05 * w, domain_.hi[i] - 0.05 * w);
    }
  }
}

Point QueryWorkload::draw_center() {
  const std::size_t h = hotspot_pick_(rng_);
  const std::size_t d = domain_.dims();
  Point c(d);
  for (std::size_t i = 0; i < d; ++i) {
    const double w = domain_.hi[i] - domain_.lo[i];
    c[i] = std::clamp(
        rng_.normal(hotspots_[h][i], config_.hotspot_spread * w),
        domain_.lo[i], domain_.hi[i]);
  }
  return c;
}

AnalyticalQuery QueryWorkload::next() {
  AnalyticalQuery q;
  q.selection = config_.selection;
  q.analytic = config_.analytic;
  q.subspace_cols = config_.subspace_cols;
  q.target_col = config_.target_col;
  q.target_col2 = config_.target_col2;

  const Point center = draw_center();
  const std::size_t d = domain_.dims();
  switch (config_.selection) {
    case SelectionType::kRange: {
      q.range.lo.resize(d);
      q.range.hi.resize(d);
      for (std::size_t i = 0; i < d; ++i) {
        const double w = domain_.hi[i] - domain_.lo[i];
        const double width =
            rng_.uniform(config_.min_width, config_.max_width) * w;
        q.range.lo[i] = center[i] - width / 2.0;
        q.range.hi[i] = center[i] + width / 2.0;
      }
      break;
    }
    case SelectionType::kRadius: {
      double mean_w = 0.0;
      for (std::size_t i = 0; i < d; ++i)
        mean_w += domain_.hi[i] - domain_.lo[i];
      mean_w /= static_cast<double>(d);
      q.ball.center = center;
      q.ball.radius =
          rng_.uniform(config_.min_radius, config_.max_radius) * mean_w;
      break;
    }
    case SelectionType::kNearestNeighbors: {
      q.knn_point = center;
      q.knn_k = static_cast<std::size_t>(rng_.uniform_int(
          static_cast<std::int64_t>(config_.min_k),
          static_cast<std::int64_t>(config_.max_k)));
      break;
    }
  }
  return q;
}

}  // namespace sea
