// SWIM-style gossip failure detection on the modelled logical clock.
//
// A partition makes "down" and "unreachable" observably different: a node
// on the far side of a cut is perfectly healthy, yet every probe to it
// fails. The seed's executors only ever consulted the cluster's ground
// truth (node_is_down), which no real deployment has — this subsystem
// gives every node its *own* view of every other node, maintained the way
// real clusters maintain it: periodic probes, indirect probes through
// peers, suspicion with a timeout before declaring death, incarnation
// numbers so a falsely-accused node can refute, and piggybacked gossip
// dissemination. All probe traffic crosses the accounted Network through
// the fallible send path, so partitions (FaultPlan::partitions), drops,
// and flaps shape the views exactly as they shape query traffic.
//
// Determinism: advance_to() runs every due probe round serially in
// (tick, observer) order, and relay/gossip peer selection draws from the
// detector's own seeded Rng — never the injector's — so attaching a
// detector perturbs no existing drop/spike/backoff sequence, and the full
// suspect/confirm/refute event stream is a pure function of
// (seed, fault plan, config) at any SEA_THREADS setting.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/cluster.h"
#include "common/rng.h"
#include "net/network.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace sea {

/// One observer's belief about one subject. kSuspect is the SWIM limbo:
/// probes failed, but the subject gets suspicion_timeout_ticks to refute
/// (via a higher incarnation) before the observer confirms it dead.
enum class MemberState : std::uint8_t { kAlive = 0, kSuspect = 1, kDead = 2 };

struct GossipConfig {
  /// Every node probes one peer each probe period (ticks of the fault
  /// injector's logical clock).
  std::uint64_t probe_period_ticks = 4;
  /// Ticks a suspicion stands before the observer confirms death. The
  /// liveness/accuracy dial: shorter confirms (and hands leases over)
  /// faster but false-positives more under drop storms.
  std::uint64_t suspicion_timeout_ticks = 24;
  /// Relays asked to probe on the observer's behalf when the direct probe
  /// fails (SWIM's k indirect probes).
  std::size_t indirect_probes = 2;
  /// Peers each new suspicion/confirmation/refutation is gossiped to.
  std::size_t gossip_fanout = 3;
  /// Wire size of one probe/ack/gossip message.
  std::size_t message_bytes = 64;
  /// Seed of the detector's private Rng (peer selection only).
  std::uint64_t seed = 0x5ea5e11ULL;
};

struct GossipStats {
  std::uint64_t probes = 0;           ///< direct probe attempts
  std::uint64_t probe_failures = 0;   ///< direct probes with no ack
  std::uint64_t indirect_probes = 0;  ///< relay probe attempts
  std::uint64_t suspicions = 0;       ///< alive -> suspect transitions
  std::uint64_t confirms = 0;         ///< suspect -> dead transitions
  std::uint64_t refutations = 0;      ///< suspect/dead -> alive transitions
  std::uint64_t gossip_messages = 0;  ///< dissemination messages sent
};

/// The failure detector. One instance models the detector state of *all*
/// nodes (per-observer views), driven to a tick with advance_to(). Views
/// feed lease-candidate selection (src/membership/lease.h) and the
/// partition-serving simulation; they never override lease safety, which
/// rests on quorum grants and TTL expiry alone.
class GossipMembership {
 public:
  GossipMembership(Cluster& cluster, GossipConfig config = {});

  /// Runs every probe round due in (last_advanced, tick] — serially, in
  /// (tick, observer) order. Call after FaultInjector::tick with the
  /// injector's clock so views chase the fault schedule.
  void advance_to(std::uint64_t tick);

  /// `observer`'s current belief about `subject` (self is always alive).
  MemberState view(NodeId observer, NodeId subject) const;
  /// Convenience: view() != kDead — the predicate routing/lease code uses
  /// (suspects are still routable; only confirmed-dead nodes are not).
  bool alive_in_view(NodeId observer, NodeId subject) const {
    return view(observer, subject) != MemberState::kDead;
  }
  /// `subject`'s own incarnation number (bumped on each refutation).
  std::uint64_t incarnation(NodeId subject) const {
    return incarnation_.at(subject);
  }

  const GossipStats& stats() const noexcept { return stats_; }
  const GossipConfig& config() const noexcept { return config_; }

  /// Attaches a tracer / metrics registry (either may be null; caller owns
  /// both). membership.* counters track stats() from attachment; suspect /
  /// confirm / refute transitions emit trace events.
  void bind_obs(obs::Tracer* tracer, obs::MetricsRegistry* metrics);

 private:
  struct View {
    MemberState state = MemberState::kAlive;
    std::uint64_t incarnation = 0;   ///< subject incarnation last heard
    std::uint64_t suspected_at = 0;  ///< tick the suspicion started
  };

  View& view_of(NodeId observer, NodeId subject) {
    return views_[observer * num_nodes_ + subject];
  }
  const View& view_of(NodeId observer, NodeId subject) const {
    return views_[observer * num_nodes_ + subject];
  }

  /// One message leg through the fallible network; false when dropped (a
  /// partition cut, a random drop) or the destination is down.
  bool leg(NodeId from, NodeId to);

  void probe_round(std::uint64_t tick);
  void expire_suspicions(std::uint64_t tick);
  /// Direct probe + up to k indirect probes; true when any path acked.
  bool probe(NodeId observer, NodeId target);
  /// Observer marks subject alive at `inc` (refuting any suspicion) and
  /// gossips the refutation when it was a transition.
  void mark_alive(NodeId observer, NodeId subject, std::uint64_t inc,
                  std::uint64_t tick);
  void mark_suspect(NodeId observer, NodeId subject, std::uint64_t tick);
  void mark_dead(NodeId observer, NodeId subject, std::uint64_t tick);
  /// Piggybacked dissemination: sends the (subject, state, incarnation)
  /// update from `from` to gossip_fanout live-view peers; delivered
  /// recipients adopt it under SWIM's rules (higher incarnation wins;
  /// dead overrides alive/suspect at the same incarnation).
  void gossip(NodeId from, NodeId subject, MemberState state,
              std::uint64_t inc, std::uint64_t tick);
  void adopt(NodeId observer, NodeId subject, MemberState state,
             std::uint64_t inc, std::uint64_t tick);

  Cluster& cluster_;
  GossipConfig config_;
  std::size_t num_nodes_;
  std::vector<View> views_;                 ///< num_nodes^2, row = observer
  std::vector<std::uint64_t> incarnation_;  ///< per subject, self-owned
  Rng rng_;
  std::uint64_t last_advanced_ = 0;
  GossipStats stats_;

  obs::Tracer* tracer_ = nullptr;
  struct Metrics {
    obs::Counter* probes = nullptr;
    obs::Counter* probe_failures = nullptr;
    obs::Counter* indirect_probes = nullptr;
    obs::Counter* suspicions = nullptr;
    obs::Counter* confirms = nullptr;
    obs::Counter* refutations = nullptr;
    obs::Counter* gossip_messages = nullptr;
  };
  Metrics m_;
};

}  // namespace sea
