#include "membership/lease.h"

#include <algorithm>
#include <functional>
#include <stdexcept>

#include "fault/outage.h"

namespace sea {

LeaseDirectory::LeaseDirectory(Cluster& cluster, GossipMembership& membership,
                               std::string table, std::size_t num_shards,
                               LeaseConfig config)
    : cluster_(cluster),
      membership_(membership),
      table_(std::move(table)),
      config_(config),
      leases_(num_shards),
      last_renewed_(num_shards, 0),
      preferred_(num_shards, kNoLeaseHolder),
      active_(num_shards, true) {
  if (num_shards == 0)
    throw std::invalid_argument("LeaseDirectory: num_shards must be > 0");
  if (config_.renew_period_ticks == 0 ||
      config_.renew_period_ticks >= config_.lease_ttl_ticks)
    throw std::invalid_argument(
        "LeaseDirectory: renew_period_ticks must be in (0, lease_ttl_ticks) "
        "or a healthy holder would expire between renewals");
  const std::size_t q = config_.effective_quorum(cluster_.num_nodes());
  if (q == 0 || q > cluster_.num_nodes())
    throw std::invalid_argument(
        "LeaseDirectory: quorum of " + std::to_string(q) +
        " is unsatisfiable on " + std::to_string(cluster_.num_nodes()) +
        " nodes");
}

void LeaseDirectory::bind_obs(obs::Tracer* tracer,
                              obs::MetricsRegistry* metrics) {
  tracer_ = tracer;
  m_ = Metrics{};
  if (!metrics) return;
  m_.grants = &metrics->counter("lease.grants");
  m_.renewals = &metrics->counter("lease.renewals");
  m_.renewal_failures = &metrics->counter("lease.renewal_failures");
  m_.grant_failures = &metrics->counter("lease.grant_failures");
  m_.expiries = &metrics->counter("lease.expiries");
  m_.transfers = &metrics->counter("lease.transfers");
  m_.deferrals = &metrics->counter("lease.deferrals");
  m_.fenced_checks = &metrics->counter("lease.fenced_checks");
  m_.handoffs = &metrics->counter("lease.handoffs");
  m_.handoff_failures = &metrics->counter("lease.handoff_failures");
}

void LeaseDirectory::add_transfer_listener(LeaseTransferListener* listener) {
  if (listener) listeners_.push_back(listener);
}

void LeaseDirectory::remove_transfer_listener(
    LeaseTransferListener* listener) {
  listeners_.erase(
      std::remove(listeners_.begin(), listeners_.end(), listener),
      listeners_.end());
}

bool LeaseDirectory::node_usable(NodeId node) const {
  // Cluster state first (down / placement-lost), then the external veto:
  // a scrub-quarantined node is alive and reachable but must not hold a
  // lease while its state is known-corrupt.
  return !cluster_.node_is_down(node) && !cluster_.placement_lost(node) &&
         (eligibility_ == nullptr || eligibility_->lease_eligible(node));
}

NodeId LeaseDirectory::lease_holder(const std::string& table,
                                    std::size_t shard) const {
  if (table != table_ || shard >= leases_.size()) return kNoLeaseHolder;
  if (!active_[shard]) return kNoLeaseHolder;
  const ShardLease& l = leases_[shard];
  return l.valid_at(now_) ? l.holder : kNoLeaseHolder;
}

void LeaseDirectory::check_serve(const std::string& table, std::size_t shard,
                                 NodeId node, std::uint64_t tick) const {
  if (table != table_) return;  // not under this directory's authority
  const ShardLease& l = leases_.at(shard);
  if (active_[shard] && l.valid_at(tick) && l.holder == node) return;
  ++stats_.fenced_checks;
  if (m_.fenced_checks) m_.fenced_checks->inc();
  if (tracer_)
    tracer_->event("lease", "fenced", static_cast<std::int64_t>(node));
  throw StaleEpoch(
      "LeaseDirectory::check_serve: node " + std::to_string(node) +
      " may not serve shard " + std::to_string(shard) + " of " + table_ +
      " at tick " + std::to_string(tick) + " (current epoch " +
      std::to_string(l.epoch) + " held by " +
      (l.valid_at(tick) ? std::to_string(l.holder) : std::string("nobody")) +
      ")");
}

bool LeaseDirectory::quorum_round(NodeId initiator) {
  const std::size_t need = config_.effective_quorum(cluster_.num_nodes());
  std::size_t acks = 1;  // the initiator's own vote
  if (acks >= need) return true;
  // Request + ack legs to every other node in node order, stopping at
  // quorum. Both legs cross the fallible network: an active partition cut
  // deterministically denies every cross-cut ack, so the minority side can
  // never reach quorum.
  for (NodeId n = 0; n < cluster_.num_nodes(); ++n) {
    if (n == initiator) continue;
    const SendOutcome req =
        cluster_.network().try_send(initiator, n, config_.message_bytes);
    if (!req.delivered || cluster_.node_is_down(n)) continue;
    const SendOutcome ack =
        cluster_.network().try_send(n, initiator, config_.message_bytes);
    if (!ack.delivered) continue;
    if (++acks >= need) return true;
  }
  return false;
}

void LeaseDirectory::try_renew(std::size_t shard, std::uint64_t tick) {
  ShardLease& l = leases_[shard];
  if (!node_usable(l.holder)) return;  // a dead holder just runs out
  if (quorum_round(l.holder)) {
    l.expires_at = tick + config_.lease_ttl_ticks;
    last_renewed_[shard] = tick;
    ++stats_.renewals;
    if (m_.renewals) m_.renewals->inc();
  } else {
    // Quorum denied (partitioned holder, drop storm): the lease keeps
    // ticking toward expiry — and the holder knows exactly when that is.
    ++stats_.renewal_failures;
    if (m_.renewal_failures) m_.renewal_failures->inc();
  }
}

void LeaseDirectory::try_grant(std::size_t shard, std::uint64_t tick) {
  ShardLease& l = leases_[shard];
  const NodeId prev_holder = l.holder;
  const bool had_holder = l.epoch != 0;
  // Candidates in replica-placement order, like static failover: the
  // attached placement authority's ring order when the cluster has one,
  // else the static (shard + r) % N walk. A migration-installed preferred
  // holder goes first (deduplicated from the rest of the walk).
  const ShardPlacementAuthority* authority = cluster_.placement_authority();
  const NodeId preferred = preferred_[shard];
  std::vector<NodeId> order;
  order.reserve(cluster_.num_nodes() + 1);
  if (preferred != kNoLeaseHolder && preferred < cluster_.num_nodes())
    order.push_back(preferred);
  for (std::size_t r = 0; r < cluster_.num_nodes(); ++r) {
    const NodeId cand =
        authority != nullptr
            ? authority->shard_holder(table_, shard, r)
            : static_cast<NodeId>((shard + r) % cluster_.num_nodes());
    if (cand == ShardPlacementAuthority::kNoHolder ||
        cand >= cluster_.num_nodes() || cand == preferred)
      continue;
    order.push_back(cand);
  }
  for (const NodeId cand : order) {
    if (!node_usable(cand)) continue;
    // Liveness deferral (never a safety rule): while this candidate's own
    // membership view still believes the previous holder alive, it waits —
    // the suspicion timeout, not the first missed probe, gates takeover.
    // The previous holder itself never defers (self-renewal-after-expiry),
    // and neither does a migration-preferred candidate: the preference is
    // only ever installed by a consented migration, and the TTL-expiry
    // rule still gates this grant, so skipping the wait costs no safety.
    if (had_holder && cand != prev_holder && cand != preferred &&
        membership_.alive_in_view(cand, prev_holder)) {
      ++stats_.deferrals;
      if (m_.deferrals) m_.deferrals->inc();
      continue;
    }
    if (!quorum_round(cand)) {
      ++stats_.grant_failures;
      if (m_.grant_failures) m_.grant_failures->inc();
      continue;
    }
    ++l.epoch;
    l.holder = cand;
    l.granted_at = tick;
    l.expires_at = tick + config_.lease_ttl_ticks;
    last_renewed_[shard] = tick;
    ++stats_.grants;
    if (m_.grants) m_.grants->inc();
    const bool moved = cand != prev_holder;
    if (had_holder && moved) {
      ++stats_.transfers;
      if (m_.transfers) m_.transfers->inc();
    }
    if (tracer_)
      tracer_->span_event("lease_transfer", 0.0, moved ? "moved" : "regrant",
                          config_.message_bytes,
                          static_cast<std::int64_t>(cand));
    if (moved)
      for (auto* listener : listeners_)
        listener->on_lease_transfer(table_, shard, cand, prev_holder, l.epoch,
                                    tick);
    return;
  }
}

void LeaseDirectory::advance_to(std::uint64_t tick) {
  for (std::uint64_t t = last_advanced_ + 1; t <= tick; ++t) {
    now_ = t;
    for (std::size_t shard = 0; shard < leases_.size(); ++shard) {
      ShardLease& l = leases_[shard];
      if (l.valid_at(t)) {
        // An inactive (merged-away) shard gets no renewals: its lease just
        // runs out, and nothing regrants it below.
        if (active_[shard] &&
            t >= last_renewed_[shard] + config_.renew_period_ticks)
          try_renew(shard, t);
        continue;
      }
      if (l.epoch != 0 && t == l.expires_at) {
        ++stats_.expiries;
        if (m_.expiries) m_.expiries->inc();
        if (tracer_)
          tracer_->event("lease", "expired",
                         static_cast<std::int64_t>(l.holder));
      }
      if (active_[shard]) try_grant(shard, t);
    }
  }
  last_advanced_ = std::max(last_advanced_, tick);
  now_ = std::max(now_, tick);
}

bool LeaseDirectory::handoff(std::size_t shard, NodeId target,
                             std::uint64_t tick) {
  ShardLease& l = leases_.at(shard);
  const auto refuse = [this]() {
    ++stats_.handoff_failures;
    if (m_.handoff_failures) m_.handoff_failures->inc();
    return false;
  };
  if (!active_[shard] || !l.valid_at(tick) || l.holder == target ||
      target >= cluster_.num_nodes() || !node_usable(target))
    return refuse();
  // The transfer is still a quorum decision, initiated by the target: a
  // destination on the minority side of a partition cannot take the lease.
  if (!quorum_round(target)) return refuse();
  const NodeId prev_holder = l.holder;
  ++l.epoch;
  l.holder = target;
  l.granted_at = tick;
  l.expires_at = tick + config_.lease_ttl_ticks;
  last_renewed_[shard] = tick;
  ++stats_.handoffs;
  if (m_.handoffs) m_.handoffs->inc();
  if (tracer_)
    tracer_->span_event("lease_transfer", 0.0, "handoff",
                        config_.message_bytes,
                        static_cast<std::int64_t>(target));
  for (auto* listener : listeners_)
    listener->on_lease_transfer(table_, shard, target, prev_holder, l.epoch,
                                tick);
  return true;
}

void LeaseDirectory::set_preferred_holder(std::size_t shard, NodeId node) {
  if (shard >= preferred_.size())
    throw std::out_of_range("LeaseDirectory::set_preferred_holder");
  preferred_[shard] = node;
}

NodeId LeaseDirectory::preferred_holder(std::size_t shard) const {
  if (shard >= preferred_.size())
    throw std::out_of_range("LeaseDirectory::preferred_holder");
  return preferred_[shard];
}

void LeaseDirectory::set_shard_active(std::size_t shard, bool active) {
  if (shard >= active_.size())
    throw std::out_of_range("LeaseDirectory::set_shard_active");
  active_[shard] = active;
}

bool LeaseDirectory::shard_active(std::size_t shard) const {
  if (shard >= active_.size())
    throw std::out_of_range("LeaseDirectory::shard_active");
  return active_[shard];
}

std::size_t LeaseFence::shard_of(const AnalyticalQuery& query) const {
  // Stable query-family -> home-shard mapping: the same signature the
  // agent's model registry keys on.
  return std::hash<std::string>{}(query.signature()) %
         directory_.num_shards();
}

void LeaseFence::check(const AnalyticalQuery& query) const {
  directory_.check_serve(directory_.table(), shard_of(query), local_node_,
                         directory_.now());
}

}  // namespace sea
