#include "membership/swim.h"

#include <stdexcept>

namespace sea {

GossipMembership::GossipMembership(Cluster& cluster, GossipConfig config)
    : cluster_(cluster),
      config_(config),
      num_nodes_(cluster.num_nodes()),
      views_(num_nodes_ * num_nodes_),
      incarnation_(num_nodes_, 0),
      rng_(config.seed) {
  if (config_.probe_period_ticks == 0)
    throw std::invalid_argument(
        "GossipMembership: probe_period_ticks must be > 0");
  if (config_.suspicion_timeout_ticks == 0)
    throw std::invalid_argument(
        "GossipMembership: suspicion_timeout_ticks must be > 0");
}

void GossipMembership::bind_obs(obs::Tracer* tracer,
                                obs::MetricsRegistry* metrics) {
  tracer_ = tracer;
  m_ = Metrics{};
  if (!metrics) return;
  m_.probes = &metrics->counter("membership.probes");
  m_.probe_failures = &metrics->counter("membership.probe_failures");
  m_.indirect_probes = &metrics->counter("membership.indirect_probes");
  m_.suspicions = &metrics->counter("membership.suspicions");
  m_.confirms = &metrics->counter("membership.confirms");
  m_.refutations = &metrics->counter("membership.refutations");
  m_.gossip_messages = &metrics->counter("membership.gossip_messages");
}

MemberState GossipMembership::view(NodeId observer, NodeId subject) const {
  if (observer == subject) return MemberState::kAlive;
  return view_of(observer, subject).state;
}

void GossipMembership::advance_to(std::uint64_t tick) {
  for (std::uint64_t t = last_advanced_ + 1; t <= tick; ++t) {
    if (t % config_.probe_period_ticks == 0) probe_round(t);
    expire_suspicions(t);
  }
  last_advanced_ = std::max(last_advanced_, tick);
}

bool GossipMembership::leg(NodeId from, NodeId to) {
  const SendOutcome sent =
      cluster_.network().try_send(from, to, config_.message_bytes);
  return sent.delivered && !cluster_.node_is_down(to);
}

void GossipMembership::probe_round(std::uint64_t tick) {
  if (num_nodes_ < 2) return;
  const std::uint64_t round = tick / config_.probe_period_ticks;
  for (NodeId observer = 0; observer < num_nodes_; ++observer) {
    // A down node runs no detector (its views freeze until it returns).
    if (cluster_.node_is_down(observer)) continue;
    // Deterministic rotation over the other members — every peer is
    // probed once per (num_nodes - 1) rounds, the SWIM round-robin that
    // bounds detection time without randomness.
    const NodeId target = static_cast<NodeId>(
        (observer + 1 + round % (num_nodes_ - 1)) % num_nodes_);
    if (target == observer) continue;  // unreachable; defensive
    if (probe(observer, target)) {
      mark_alive(observer, target, incarnation_[target], tick);
    } else {
      mark_suspect(observer, target, tick);
    }
  }
}

bool GossipMembership::probe(NodeId observer, NodeId target) {
  ++stats_.probes;
  if (m_.probes) m_.probes->inc();
  if (leg(observer, target) && leg(target, observer)) return true;
  ++stats_.probe_failures;
  if (m_.probe_failures) m_.probe_failures->inc();
  // Indirect probes: ask k relays (peers the observer believes alive) to
  // ping the target on its behalf — SWIM's defense against a lossy or cut
  // observer->target link that the relay's links may not share.
  std::vector<NodeId> relays;
  relays.reserve(num_nodes_);
  for (NodeId n = 0; n < num_nodes_; ++n)
    if (n != observer && n != target && alive_in_view(observer, n))
      relays.push_back(n);
  rng_.shuffle(relays);
  const std::size_t k = std::min(config_.indirect_probes, relays.size());
  for (std::size_t i = 0; i < k; ++i) {
    const NodeId relay = relays[i];
    ++stats_.indirect_probes;
    if (m_.indirect_probes) m_.indirect_probes->inc();
    if (leg(observer, relay) && leg(relay, target) && leg(target, relay) &&
        leg(relay, observer))
      return true;
  }
  return false;
}

void GossipMembership::mark_alive(NodeId observer, NodeId subject,
                                  std::uint64_t inc, std::uint64_t tick) {
  View& v = view_of(observer, subject);
  if (v.state == MemberState::kAlive) {
    v.incarnation = std::max(v.incarnation, inc);
    return;
  }
  // The subject answered a probe while this observer held it suspect or
  // dead: the subject refutes by bumping its own incarnation, which
  // dominates the suspicion in every view the refutation reaches.
  const std::uint64_t refuted_inc = ++incarnation_[subject];
  v.state = MemberState::kAlive;
  v.incarnation = refuted_inc;
  v.suspected_at = 0;
  ++stats_.refutations;
  if (m_.refutations) m_.refutations->inc();
  if (tracer_)
    tracer_->event("membership", "refute", static_cast<std::int64_t>(subject));
  gossip(observer, subject, MemberState::kAlive, refuted_inc, tick);
}

void GossipMembership::mark_suspect(NodeId observer, NodeId subject,
                                    std::uint64_t tick) {
  View& v = view_of(observer, subject);
  if (v.state != MemberState::kAlive) return;  // already suspect or dead
  v.state = MemberState::kSuspect;
  v.suspected_at = tick;
  ++stats_.suspicions;
  if (m_.suspicions) m_.suspicions->inc();
  if (tracer_)
    tracer_->event("membership", "suspect", static_cast<std::int64_t>(subject));
  gossip(observer, subject, MemberState::kSuspect, v.incarnation, tick);
}

void GossipMembership::mark_dead(NodeId observer, NodeId subject,
                                 std::uint64_t tick) {
  View& v = view_of(observer, subject);
  if (v.state == MemberState::kDead) return;
  v.state = MemberState::kDead;
  ++stats_.confirms;
  if (m_.confirms) m_.confirms->inc();
  if (tracer_)
    tracer_->event("membership", "confirm", static_cast<std::int64_t>(subject));
  gossip(observer, subject, MemberState::kDead, v.incarnation, tick);
}

void GossipMembership::expire_suspicions(std::uint64_t tick) {
  for (NodeId observer = 0; observer < num_nodes_; ++observer) {
    if (cluster_.node_is_down(observer)) continue;
    for (NodeId subject = 0; subject < num_nodes_; ++subject) {
      if (subject == observer) continue;
      const View& v = view_of(observer, subject);
      if (v.state == MemberState::kSuspect &&
          tick - v.suspected_at >= config_.suspicion_timeout_ticks)
        mark_dead(observer, subject, tick);
    }
  }
}

void GossipMembership::gossip(NodeId from, NodeId subject, MemberState state,
                              std::uint64_t inc, std::uint64_t tick) {
  // Peers may include the subject itself: gossip reaching the accused is
  // what lets it refute a false suspicion (adopt()'s self branch).
  std::vector<NodeId> peers;
  peers.reserve(num_nodes_);
  for (NodeId n = 0; n < num_nodes_; ++n)
    if (n != from && alive_in_view(from, n)) peers.push_back(n);
  rng_.shuffle(peers);
  const std::size_t fanout = std::min(config_.gossip_fanout, peers.size());
  for (std::size_t i = 0; i < fanout; ++i) {
    ++stats_.gossip_messages;
    if (m_.gossip_messages) m_.gossip_messages->inc();
    // Dissemination rides the fallible network too: updates do not cross
    // an active partition cut.
    if (leg(from, peers[i])) adopt(peers[i], subject, state, inc, tick);
  }
}

void GossipMembership::adopt(NodeId observer, NodeId subject,
                             MemberState state, std::uint64_t inc,
                             std::uint64_t tick) {
  if (observer == subject) {
    // Gossip about oneself: a suspicion/death claim is refuted by bumping
    // the own incarnation and gossiping alive (SWIM's self-defense).
    if (state != MemberState::kAlive)
      gossip(observer, subject, MemberState::kAlive, ++incarnation_[subject],
             tick);
    return;
  }
  View& v = view_of(observer, subject);
  // SWIM precedence: a higher incarnation always wins; at the same
  // incarnation, dead overrides suspect overrides alive (dead is sticky —
  // only a higher incarnation resurrects).
  if (inc < v.incarnation) return;
  if (inc == v.incarnation &&
      static_cast<std::uint8_t>(state) <= static_cast<std::uint8_t>(v.state))
    return;
  const MemberState before = v.state;
  v.state = state;
  v.incarnation = inc;
  if (state == MemberState::kSuspect && before == MemberState::kAlive) {
    v.suspected_at = tick;
    ++stats_.suspicions;
    if (m_.suspicions) m_.suspicions->inc();
  } else if (state == MemberState::kDead && before != MemberState::kDead) {
    ++stats_.confirms;
    if (m_.confirms) m_.confirms->inc();
  } else if (state == MemberState::kAlive && before != MemberState::kAlive) {
    v.suspected_at = 0;
    ++stats_.refutations;
    if (m_.refutations) m_.refutations->inc();
  }
}

}  // namespace sea
