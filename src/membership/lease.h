// Epoch-fenced shard leases: split-brain-safe serving authority.
//
// Failure detection (swim.h) is only ever a *hint* — a partitioned node
// looks exactly like a dead one. What makes serving safe is the lease
// protocol layered here:
//
//  - Exactly one node holds the serving lease for a shard at a time, for a
//    bounded TTL on the shared logical clock, under a monotonically
//    increasing *epoch* number.
//  - A lease is granted or renewed only with acknowledgements from a
//    quorum of nodes, collected over the fallible network: the minority
//    side of a partition can neither renew nor grant.
//  - A new epoch is granted only after the previous lease's TTL has
//    expired on the shared clock. The clock has zero modelled skew, so the
//    old holder *knows* its lease is gone before the new holder can exist:
//    two holders of the same shard never overlap in time, and two holders
//    under the same epoch never exist at all — split-brain is impossible
//    by construction, not by luck.
//  - Every serve under a lease states its epoch; check_serve() rejects a
//    stale epoch with the typed StaleEpoch outage (fault/outage.h), which
//    the serving layer degrades to a model-backed read-only answer.
//
// Membership views gate *liveness* only: a candidate defers takeover while
// its own view still believes the previous holder alive (suspicion must
// run its timeout first), which keeps lease transfers from flapping — but
// no view ever shortcuts the TTL-expiry safety rule.
//
// The directory implements cluster.h's ShardLeaseRouter, so an attached
// Cluster routes serving_node() through the lease table; LeaseFence
// implements sea/served.h's EpochFence so ServedAnalytics fences its exact
// path. Lease transfers notify LeaseTransferListeners — src/recovery
// bridges them into anti-entropy catch-up for the new holder.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "membership/swim.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sea/query.h"
#include "sea/served.h"

namespace sea {

struct LeaseConfig {
  /// Lease lifetime in logical ticks; the availability/safety dial. The
  /// minority side serves (then self-fences) for at most this long after
  /// a cut; the majority side cannot take over sooner.
  std::uint64_t lease_ttl_ticks = 32;
  /// Holders attempt renewal this often; must be < lease_ttl_ticks so a
  /// healthy holder never expires.
  std::uint64_t renew_period_ticks = 8;
  /// Acks (including the candidate's own) required to grant or renew.
  /// 0 = majority (num_nodes / 2 + 1) — the only partition-safe setting
  /// for symmetric deployments; explicit values are for tests.
  std::size_t quorum = 0;
  /// Wire size of one grant/renew request or ack message.
  std::size_t message_bytes = 96;

  std::size_t effective_quorum(std::size_t num_nodes) const noexcept {
    return quorum != 0 ? quorum : num_nodes / 2 + 1;
  }
};

/// One shard's authoritative lease record.
struct ShardLease {
  NodeId holder = ShardLeaseRouter::kNoLeaseHolder;
  std::uint64_t epoch = 0;       ///< 0 = never granted
  std::uint64_t granted_at = 0;
  std::uint64_t expires_at = 0;  ///< half-open: valid for [granted_at, expires_at)

  bool valid_at(std::uint64_t tick) const noexcept {
    return epoch != 0 && tick < expires_at;
  }
};

/// Observer of lease transfers (epoch changes that move the holder).
/// Called synchronously on the serial advance_to path, in registration
/// order. src/recovery's LeaseCatchupBridge forwards these into
/// ModelReplicaSet::request_catchup so the new holder catches up on the
/// committed history it may have missed.
class LeaseTransferListener {
 public:
  virtual ~LeaseTransferListener() = default;
  virtual void on_lease_transfer(const std::string& table, std::size_t shard,
                                 NodeId new_holder, NodeId old_holder,
                                 std::uint64_t epoch, std::uint64_t tick) = 0;
};

/// External veto on a node's fitness to hold (or keep) a lease, beyond
/// what the cluster's own crash/partition state says. src/recovery's
/// QuarantineLeaseGate implements this so a replica quarantined mid-repair
/// by the integrity scrubber can neither win a grant nor renew: fencing is
/// how "never serve known-corrupt state" is enforced on the lease path
/// too, not just at the serving-model lookup.
class LeaseEligibility {
 public:
  virtual ~LeaseEligibility() = default;
  /// True while `node` may hold a lease.
  virtual bool lease_eligible(NodeId node) const = 0;
};

struct LeaseStats {
  std::uint64_t grants = 0;          ///< new epochs granted
  std::uint64_t renewals = 0;        ///< successful holder renewals
  std::uint64_t renewal_failures = 0;///< renew rounds that missed quorum
  std::uint64_t grant_failures = 0;  ///< grant rounds that missed quorum
  std::uint64_t expiries = 0;        ///< leases that ran out un-renewed
  std::uint64_t transfers = 0;       ///< grants that moved the holder
  std::uint64_t deferrals = 0;       ///< takeovers deferred on an alive view
  std::uint64_t fenced_checks = 0;   ///< check_serve rejections (StaleEpoch)
  std::uint64_t handoffs = 0;        ///< consented epoch-bump transfers
  std::uint64_t handoff_failures = 0;///< handoff attempts that were refused
};

/// The lease directory for the shards of one logical table. Logically this
/// is a replicated state machine over all nodes; what the simulation makes
/// explicit is its *communication*: every grant/renew round really crosses
/// the fallible network, so partitions deny quorum exactly where they
/// would in a real deployment. advance_to() is driven serially with the
/// fault injector's clock.
class LeaseDirectory final : public ShardLeaseRouter {
 public:
  LeaseDirectory(Cluster& cluster, GossipMembership& membership,
                 std::string table, std::size_t num_shards,
                 LeaseConfig config = {});

  /// Drives grant/renew rounds for every tick in (last_advanced, tick],
  /// shard-major within each tick. Call after FaultInjector::tick and
  /// GossipMembership::advance_to.
  void advance_to(std::uint64_t tick);

  // ShardLeaseRouter — consulted by Cluster::serving_node.
  NodeId lease_holder(const std::string& table,
                      std::size_t shard) const override;

  /// The fencing check: `node` may serve `shard` at `tick` only while it
  /// holds the current, unexpired lease. Throws StaleEpoch otherwise
  /// (counting the rejection); the serving layer degrades to the model.
  void check_serve(const std::string& table, std::size_t shard, NodeId node,
                   std::uint64_t tick) const;

  const ShardLease& lease(std::size_t shard) const {
    return leases_.at(shard);
  }
  std::size_t num_shards() const noexcept { return leases_.size(); }
  const std::string& table() const noexcept { return table_; }
  std::uint64_t now() const noexcept { return now_; }
  const LeaseConfig& config() const noexcept { return config_; }
  const LeaseStats& stats() const noexcept { return stats_; }

  /// Consented live transfer (migration COMMIT fast path): revokes the
  /// current holder's lease and grants `target` a fresh epoch in one serial
  /// step, without waiting for TTL expiry. This is the ONE place the
  /// TTL-expiry rule may be shortcut, and it is safe only under the
  /// caller's contract: the current holder has already been fenced (it
  /// consented and stopped serving under its cached lease) before this call
  /// — the two-phase migration protocol in src/placement guarantees exactly
  /// that ordering. The transfer still needs a quorum round initiated by
  /// `target`. Returns false (lease untouched) when the shard is inactive,
  /// there is no valid lease, `target` already holds it or is unusable
  /// (down, placement-lost, vetoed by the eligibility gate), or the quorum
  /// round fails. Transfer listeners fire like any holder move.
  bool handoff(std::size_t shard, NodeId target, std::uint64_t tick);

  /// Prefers `node` as the first grant candidate for `shard` (migration
  /// slow path: when the source is unreachable, the destination wins the
  /// next natural grant after TTL expiry instead of whatever the replica
  /// order says). kNoLeaseHolder clears the preference. An unusable
  /// preferred node is simply skipped — a preference is a hint, never a
  /// safety rule.
  void set_preferred_holder(std::size_t shard, NodeId node);
  NodeId preferred_holder(std::size_t shard) const;

  /// Activates/deactivates a shard (elastic split/merge). An inactive
  /// shard gets no renewals and no grants — an existing lease just runs
  /// out — and lease_holder() reports no holder while check_serve()
  /// fences, so nobody serves a merged-away shard. Directories start with
  /// every shard active; split activates the new shard id before its first
  /// grant.
  void set_shard_active(std::size_t shard, bool active);
  bool shard_active(std::size_t shard) const;

  /// Whether `node` could hold a lease right now (cluster crash state plus
  /// the external eligibility veto). The migration coordinator consults
  /// this before targeting a node: a scrub-quarantined replica is refused
  /// here until its repair completes.
  bool node_lease_eligible(NodeId node) const { return node_usable(node); }

  void add_transfer_listener(LeaseTransferListener* listener);
  void remove_transfer_listener(LeaseTransferListener* listener);

  /// Installs (or clears, with nullptr) the external eligibility veto
  /// consulted on every grant and renewal. Caller owns the gate.
  void set_eligibility(const LeaseEligibility* gate) noexcept {
    eligibility_ = gate;
  }

  /// Attaches a tracer / metrics registry (either may be null; caller owns
  /// both). lease.* counters plus "lease_transfer" span events.
  void bind_obs(obs::Tracer* tracer, obs::MetricsRegistry* metrics);

 private:
  /// One quorum round initiated by `initiator`: request + ack legs to the
  /// other nodes in node order, stopping once quorum is reached. Every leg
  /// crosses the fallible network (partition cuts deny acks).
  bool quorum_round(NodeId initiator);
  void try_renew(std::size_t shard, std::uint64_t tick);
  void try_grant(std::size_t shard, std::uint64_t tick);
  bool node_usable(NodeId node) const;

  Cluster& cluster_;
  GossipMembership& membership_;
  std::string table_;
  LeaseConfig config_;
  std::vector<ShardLease> leases_;
  std::vector<std::uint64_t> last_renewed_;  ///< per shard
  std::vector<NodeId> preferred_;            ///< per shard; kNoLeaseHolder = none
  std::vector<bool> active_;                 ///< per shard (elastic split/merge)
  std::vector<LeaseTransferListener*> listeners_;
  const LeaseEligibility* eligibility_ = nullptr;
  std::uint64_t now_ = 0;
  std::uint64_t last_advanced_ = 0;
  // mutable: check_serve is a read-side validation on the serve path (and
  // const through the EpochFence adapter) but counts its rejections.
  mutable LeaseStats stats_;

  obs::Tracer* tracer_ = nullptr;
  struct Metrics {
    obs::Counter* grants = nullptr;
    obs::Counter* renewals = nullptr;
    obs::Counter* renewal_failures = nullptr;
    obs::Counter* grant_failures = nullptr;
    obs::Counter* expiries = nullptr;
    obs::Counter* transfers = nullptr;
    obs::Counter* deferrals = nullptr;
    obs::Counter* fenced_checks = nullptr;
    obs::Counter* handoffs = nullptr;
    obs::Counter* handoff_failures = nullptr;
  };
  Metrics m_;
};

/// EpochFence adapter for ServedAnalytics: maps each query to its home
/// shard (a stable hash of the query-family signature) and requires the
/// serving process's node to hold that shard's current lease. Attach with
/// ServedAnalytics::set_epoch_fence.
class LeaseFence final : public EpochFence {
 public:
  LeaseFence(const LeaseDirectory& directory, NodeId local_node)
      : directory_(directory), local_node_(local_node) {}

  void check(const AnalyticalQuery& query) const override;

  /// The home shard the fence checks for `query`.
  std::size_t shard_of(const AnalyticalQuery& query) const;

 private:
  const LeaseDirectory& directory_;
  NodeId local_node_;
};

}  // namespace sea
