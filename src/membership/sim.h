// Multi-site serving simulation under partitions: the E18 harness.
//
// ServedAnalytics is a single serving loop, so it cannot *exhibit* the
// failure leases exist to prevent — two processes answering as authority
// for the same shard on opposite sides of a cut. This component simulates
// exactly that: every node is an entry point, every node can serve, and
// what each node knows travels only in messages over the fallible network.
//
// Two modes, same fault schedule:
//  - leases off: nodes route by their SWIM membership views and static
//    replica placement — the entry fails over to a replica the moment its
//    view says the primary is dead. Under a partition both sides do this,
//    and both sides serve: split-brain, measured.
//  - leases on: serving requires the shard's current lease. Holders cache
//    the lease they were granted and self-fence at its TTL on the shared
//    clock; routing tables travel in (droppable) broadcast messages, so a
//    minority-side entry keeps routing to the fenced ex-holder and gets a
//    degraded model-backed answer instead of a stale authoritative one.
//
// Every query lands in exactly one outcome bucket (conserved()), and every
// authoritative serve is logged as (shard, epoch, node, tick) — the record
// the split-brain invariant (and BENCH_e18) is computed from. Everything
// runs on the serial path: byte-identical traces at any SEA_THREADS.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/cluster.h"
#include "fault/fault.h"
#include "membership/lease.h"
#include "membership/swim.h"

namespace sea {

struct PartitionSimConfig {
  /// Shards served (shard s has static primary s % num_nodes and replicas
  /// on the following `replicas - 1` nodes).
  std::size_t num_shards = 0;  ///< 0 = one per node
  std::size_t replicas = 2;
  std::size_t query_bytes = 128;
  std::size_t answer_bytes = 64;
};

/// One authoritative ("owner") serve: `node` answered for `shard` claiming
/// current authority under `epoch` (0 in the lease-less mode, which has no
/// epochs — precisely its defect).
struct OwnerServe {
  std::uint32_t shard = 0;
  NodeId node = 0;
  std::uint64_t epoch = 0;
  std::uint64_t tick = 0;
};

struct PartitionSimStats {
  std::uint64_t queries = 0;
  std::uint64_t owner_serves = 0;    ///< authoritative answers
  std::uint64_t fenced_serves = 0;   ///< StaleEpoch -> model-backed answer
  std::uint64_t degraded_serves = 0; ///< authority unreachable -> model answer
  std::uint64_t entry_down = 0;      ///< the entry node itself was down

  /// Answered-or-accounted: every query lands in exactly one bucket.
  bool conserved() const noexcept {
    return queries ==
           owner_serves + fenced_serves + degraded_serves + entry_down;
  }
};

/// Drives rounds of (fault tick, membership, leases, fan-in of queries
/// from every entry node). The caller owns all four collaborators; pass
/// `leases == nullptr` for the lease-less baseline.
class PartitionServingSim {
 public:
  PartitionServingSim(Cluster& cluster, FaultInjector& injector,
                      GossipMembership& membership, LeaseDirectory* leases,
                      PartitionSimConfig config = {});

  /// One round: advances the fault clock one tick, drives membership (and
  /// leases, when on) to it, then serves one query per entry node for the
  /// round's shard (round-robin over shards — so concurrent entries on
  /// both sides of a cut contend for the *same* shard every round,
  /// maximizing split-brain exposure).
  void step();
  void run(std::size_t rounds);

  const PartitionSimStats& stats() const noexcept { return stats_; }
  const std::vector<OwnerServe>& serve_log() const noexcept {
    return serve_log_;
  }

  /// Split-brain serves: the number of ordered serve pairs that violate
  /// single-authority. With leases, two distinct nodes owner-serving the
  /// same (shard, epoch) — the invariant the protocol makes impossible.
  /// Without leases (epoch 0 everywhere), two distinct nodes owner-serving
  /// the same shard at the same tick: simultaneous dual authority.
  std::uint64_t split_brain_serves() const;

 private:
  /// Serves one query arriving at `entry` for `shard`; updates exactly one
  /// outcome bucket.
  void serve_one(NodeId entry, std::uint32_t shard, std::uint64_t tick);
  void serve_with_lease(NodeId entry, std::uint32_t shard,
                        std::uint64_t tick);
  void serve_without_lease(NodeId entry, std::uint32_t shard,
                           std::uint64_t tick);
  bool message(NodeId from, NodeId to, std::size_t bytes);
  /// The holder `entry` believes serves `shard` (lease mode): its routing
  /// cache, updated only by delivered grant broadcasts.
  NodeId routed_holder(NodeId entry, std::uint32_t shard) const {
    return routing_[entry * num_shards_ + shard];
  }

  Cluster& cluster_;
  FaultInjector& injector_;
  GossipMembership& membership_;
  LeaseDirectory* leases_;
  PartitionSimConfig config_;
  std::size_t num_shards_;
  std::uint64_t round_ = 0;
  PartitionSimStats stats_;
  std::vector<OwnerServe> serve_log_;

  // Lease mode per-node knowledge, all updated only by delivered messages:
  // routing_[entry][shard] = holder the entry last heard of;
  // cached_* [holder][shard] = the lease the holder itself was granted
  // (its self-fencing authority: serve iff cached epoch current by TTL on
  // the shared clock).
  std::vector<NodeId> routing_;
  std::vector<std::uint64_t> cached_epoch_;
  std::vector<std::uint64_t> cached_expires_;
  /// Epochs whose grant this sim has already broadcast/caches (per shard).
  std::vector<std::uint64_t> announced_epoch_;
};

}  // namespace sea
