#include "membership/sim.h"

#include <map>
#include <stdexcept>
#include <utility>

namespace sea {

PartitionServingSim::PartitionServingSim(Cluster& cluster,
                                         FaultInjector& injector,
                                         GossipMembership& membership,
                                         LeaseDirectory* leases,
                                         PartitionSimConfig config)
    : cluster_(cluster),
      injector_(injector),
      membership_(membership),
      leases_(leases),
      config_(config),
      num_shards_(config.num_shards == 0 ? cluster.num_nodes()
                                         : config.num_shards) {
  if (leases_ && leases_->num_shards() != num_shards_)
    throw std::invalid_argument(
        "PartitionServingSim: lease directory covers " +
        std::to_string(leases_->num_shards()) + " shards, sim has " +
        std::to_string(num_shards_));
  const std::size_t n = cluster_.num_nodes();
  routing_.assign(n * num_shards_, ShardLeaseRouter::kNoLeaseHolder);
  cached_epoch_.assign(n * num_shards_, 0);
  cached_expires_.assign(n * num_shards_, 0);
  announced_epoch_.assign(num_shards_, 0);
}

bool PartitionServingSim::message(NodeId from, NodeId to, std::size_t bytes) {
  const SendOutcome sent = cluster_.network().try_send(from, to, bytes);
  return sent.delivered && !cluster_.node_is_down(to);
}

void PartitionServingSim::step() {
  injector_.tick(cluster_);
  const std::uint64_t now = injector_.now();
  membership_.advance_to(now);
  if (leases_) {
    leases_->advance_to(now);
    // Knowledge propagation, all over droppable messages. A holder learns
    // its own grants/renewals synchronously (it ran the quorum round);
    // everyone else learns the new routing only if the broadcast reaches
    // them — minority-side entries keep stale routes during a cut.
    const std::size_t n = cluster_.num_nodes();
    for (std::size_t shard = 0; shard < num_shards_; ++shard) {
      const ShardLease& l = leases_->lease(shard);
      if (l.epoch == 0) continue;
      const std::size_t holder_slot = l.holder * num_shards_ + shard;
      if (cached_epoch_[holder_slot] == l.epoch)
        cached_expires_[holder_slot] = l.expires_at;  // renewal extends TTL
      if (l.epoch <= announced_epoch_[shard]) continue;
      announced_epoch_[shard] = l.epoch;
      cached_epoch_[holder_slot] = l.epoch;
      cached_expires_[holder_slot] = l.expires_at;
      routing_[holder_slot] = l.holder;
      for (NodeId node = 0; node < n; ++node) {
        if (node == l.holder) continue;
        if (message(l.holder, node, config_.answer_bytes))
          routing_[node * num_shards_ + shard] = l.holder;
      }
    }
  }
  // Fan-in: every entry node submits a query for the same shard this
  // round, so both sides of an active cut contend for one authority.
  const auto shard = static_cast<std::uint32_t>(round_ % num_shards_);
  for (NodeId entry = 0; entry < cluster_.num_nodes(); ++entry)
    serve_one(entry, shard, now);
  ++round_;
}

void PartitionServingSim::run(std::size_t rounds) {
  for (std::size_t i = 0; i < rounds; ++i) step();
}

void PartitionServingSim::serve_one(NodeId entry, std::uint32_t shard,
                                    std::uint64_t tick) {
  ++stats_.queries;
  if (cluster_.node_is_down(entry)) {
    ++stats_.entry_down;
    return;
  }
  if (leases_)
    serve_with_lease(entry, shard, tick);
  else
    serve_without_lease(entry, shard, tick);
}

void PartitionServingSim::serve_with_lease(NodeId entry, std::uint32_t shard,
                                           std::uint64_t tick) {
  const NodeId holder = routed_holder(entry, shard);
  // No route yet, the request leg was lost/cut, or the holder host is
  // down: the entry answers from its local model, flagged degraded.
  if (holder == ShardLeaseRouter::kNoLeaseHolder ||
      (holder != entry && !message(entry, holder, config_.query_bytes)) ||
      cluster_.node_is_down(holder)) {
    ++stats_.degraded_serves;
    return;
  }
  // The holder checks its own cached lease against the shared clock — the
  // self-fencing rule. At most one node can pass this gate per shard at
  // any tick: caches are only written by the grant protocol, and a new
  // epoch is granted strictly after the old one's TTL expired.
  const std::size_t slot = holder * num_shards_ + shard;
  if (cached_epoch_[slot] == 0 || tick >= cached_expires_[slot]) {
    // Fenced ex-holder (or never-confirmed holder): model-backed
    // read-only answer in its place.
    ++stats_.fenced_serves;
    return;
  }
  serve_log_.push_back(OwnerServe{shard, holder, cached_epoch_[slot], tick});
  // The authoritative answer still has to get back to the entry.
  if (holder == entry || message(holder, entry, config_.answer_bytes))
    ++stats_.owner_serves;
  else
    ++stats_.degraded_serves;
}

void PartitionServingSim::serve_without_lease(NodeId entry,
                                              std::uint32_t shard,
                                              std::uint64_t tick) {
  // Static failover by the entry's own membership view: first replica
  // holder the entry believes alive and can reach serves as authority —
  // with no fencing, which is exactly the defect being measured.
  for (std::size_t r = 0; r < config_.replicas; ++r) {
    const NodeId cand =
        static_cast<NodeId>((shard + r) % cluster_.num_nodes());
    if (!membership_.alive_in_view(entry, cand)) continue;
    if (cand != entry && !message(entry, cand, config_.query_bytes))
      continue;  // timeout: the entry fails over to the next replica
    if (cluster_.node_is_down(cand)) continue;
    serve_log_.push_back(OwnerServe{shard, cand, 0, tick});
    if (cand == entry || message(cand, entry, config_.answer_bytes))
      ++stats_.owner_serves;
    else
      ++stats_.degraded_serves;
    return;
  }
  ++stats_.degraded_serves;
}

std::uint64_t PartitionServingSim::split_brain_serves() const {
  // Leases on: key by (shard, epoch) — the invariant is that one epoch has
  // one holder, ever. Leases off (all epochs 0): key by (shard, tick) —
  // two nodes answering as authority for one shard in the same round is
  // dual authority in the flesh.
  std::map<std::pair<std::uint64_t, std::uint64_t>, NodeId> first;
  std::uint64_t violations = 0;
  for (const OwnerServe& s : serve_log_) {
    const std::uint64_t sub = leases_ ? s.epoch : s.tick;
    const std::pair<std::uint64_t, std::uint64_t> key{s.shard, sub};
    const auto [it, inserted] = first.emplace(key, s.node);
    if (!inserted && it->second != s.node) ++violations;
  }
  return violations;
}

}  // namespace sea
