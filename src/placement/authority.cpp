#include "placement/authority.h"

namespace sea::placement {

RingPlacementAuthority::RingPlacementAuthority(std::size_t num_nodes,
                                               RingConfig config)
    : ring_(num_nodes, config) {}

const std::vector<NodeId>& RingPlacementAuthority::walk_for(
    std::uint64_t key) const {
  const auto it = walk_cache_.find(key);
  if (it != walk_cache_.end()) return it->second;
  return walk_cache_.emplace(key, ring_.walk(key)).first->second;
}

NodeId RingPlacementAuthority::shard_holder(const std::string& table,
                                            std::size_t shard,
                                            std::size_t r) const {
  const std::uint64_t key = shard_key(table, shard);
  const std::vector<NodeId>& walk = walk_for(key);
  const auto ov = overrides_.find(key);
  if (ov == overrides_.end())
    return r < walk.size() ? walk[r] : kNoHolder;
  // Pinned primary first; the rest of the ring walk follows with the
  // pinned node deduplicated, so ranks still enumerate distinct nodes.
  if (r == 0) return ov->second;
  std::size_t rank = 0;
  for (const NodeId n : walk) {
    if (n == ov->second) continue;
    if (++rank == r) return n;
  }
  return kNoHolder;
}

void RingPlacementAuthority::set_primary_override(const std::string& table,
                                                  std::size_t shard,
                                                  NodeId node) {
  overrides_[shard_key(table, shard)] = node;
}

void RingPlacementAuthority::clear_override(const std::string& table,
                                            std::size_t shard) {
  overrides_.erase(shard_key(table, shard));
}

NodeId RingPlacementAuthority::primary_override(const std::string& table,
                                                std::size_t shard) const {
  const auto it = overrides_.find(shard_key(table, shard));
  return it == overrides_.end() ? kNoHolder : it->second;
}

void RingPlacementAuthority::add_node(NodeId node) {
  ring_.add_node(node);
  walk_cache_.clear();
}

void RingPlacementAuthority::remove_node(NodeId node) {
  ring_.remove_node(node);
  walk_cache_.clear();
}

}  // namespace sea::placement
