// Crash-safe two-phase live shard migration, epoch-fenced end to end.
//
// A migration moves a shard's serving authority (and its per-quantum
// DatalessAgents — the paper's "ship the models, not the data" thesis)
// from a source to a destination while the source keeps serving:
//
//   PREPARE   The destination catches up: the source ships the shard's
//             durable state as CRC-framed records (recovery/frame.h) over
//             the fallible network, paced a few frames per tick; each
//             frame is durably written at the destination through the
//             StorageFaultModel and read-back verified — a drop stalls the
//             frame, a torn/flipped/lost write fails the CRC and aborts
//             the attempt. When replicas are attached, the destination
//             also runs ModelReplicaSet::request_catchup. The source
//             serves throughout.
//   COMMIT    The destination asks the source to fence itself (a control
//             leg over the fallible network); on delivery the source stops
//             serving under its cached lease (MigrationListener::
//             on_source_fenced), and in the same serial step the lease
//             moves via LeaseDirectory::handoff — a quorum-checked epoch
//             bump. The old epoch is dead before the new holder serves:
//             no dual-serve window exists by construction. The placement
//             override then pins the destination so serving, grants, and
//             crash rebuilds all agree. If the source is unreachable the
//             slow path applies: the destination is preferred for the
//             next natural grant after TTL expiry (safe for the same
//             reason every expiry-grant is).
//   ABORT     A destination crash, a partition outlasting the phase
//             deadline, or a corrupt frame aborts the attempt: state is
//             rolled back (preference cleared, a fenced source restored
//             via MigrationListener::on_aborted), and the migration
//             retries after a backoff on a fresh epoch, under a bounded
//             retry budget.
//
// Splits and merges ride the same machinery: a split fences the holder,
// rewrites the quantum map (ShardSpace), and activates the new shard id
// with the holder preferred; a merge ships the retiring shard's state to
// the surviving holder, fences the retiring holder, and deactivates the
// id. Everything runs serially on the modelled clock — bit-identical at
// any SEA_THREADS setting.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "common/rng.h"
#include "fault/storage.h"
#include "membership/lease.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "placement/authority.h"
#include "placement/shard_space.h"
#include "recovery/replica.h"

namespace sea::placement {

enum class MigrationKind : std::uint8_t { kMove, kSplit, kMerge };
const char* to_string(MigrationKind k) noexcept;

enum class MigrationPhase : std::uint8_t {
  kPreparing,   ///< shipping CRC frames to the destination
  kCommitting,  ///< fencing the source / moving the lease
  kBackoff,     ///< attempt aborted; waiting to retry on a fresh epoch
  kDone,        ///< committed
  kFailed,      ///< retry budget exhausted
};
const char* to_string(MigrationPhase p) noexcept;

struct MigrationConfig {
  /// Shard state shipped per migration (modelled bytes) and its framing.
  std::size_t state_bytes = 32 * 1024;
  std::size_t frame_payload_bytes = 4096;
  /// Frames shipped per tick during PREPARE (the pacing that keeps a
  /// migration from flooding the network it shares with serving).
  std::size_t frames_per_tick = 4;
  /// Wire size of fence/abort control legs.
  std::size_t control_bytes = 96;
  /// Per-attempt phase deadlines (ticks) and retry policy.
  std::uint64_t prepare_timeout_ticks = 96;
  std::uint64_t commit_timeout_ticks = 64;
  std::uint64_t retry_backoff_ticks = 16;
  std::size_t retry_budget = 4;  ///< attempts per migration
  /// In-flight migration budget (the rebalancer's throttle point).
  std::size_t max_concurrent = 2;
  /// Chaos: probability an in-flight PREPARE frame is corrupted on the
  /// wire (ChaosSchedule::migration_frame_corrupt_probability), drawn
  /// from a dedicated seeded stream.
  double frame_corrupt_probability = 0.0;
  std::uint64_t corrupt_seed = 0x519C0;
  /// The node the coordinator logic runs on (split fence legs originate
  /// here; node 0 hosts every other coordinator in the stack).
  NodeId coordinator_node = 0;
};

struct MigrationStats {
  std::uint64_t requested = 0;
  std::uint64_t refused_budget = 0;      ///< max_concurrent reached
  std::uint64_t refused_duplicate = 0;   ///< shard already migrating
  std::uint64_t refused_ineligible = 0;  ///< destination vetoed (quarantine)
  std::uint64_t refused_inactive = 0;    ///< shard inactive or unheld
  std::uint64_t started = 0;             ///< attempts begun (incl. retries)
  std::uint64_t committed = 0;
  std::uint64_t aborted = 0;             ///< attempts rolled back
  std::uint64_t retries = 0;
  std::uint64_t failed = 0;              ///< budget exhausted
  std::uint64_t frames_shipped = 0;      ///< frames durably verified at dst
  std::uint64_t frames_dropped = 0;      ///< network drops (frame resent)
  std::uint64_t frames_corrupt = 0;      ///< CRC failures (attempt aborted)
  std::uint64_t bytes_shipped = 0;
  std::uint64_t catchups_requested = 0;
  std::uint64_t fast_handoffs = 0;       ///< consented epoch-bump commits
  std::uint64_t expiry_grants = 0;       ///< slow-path commits via expiry
  std::uint64_t splits_committed = 0;
  std::uint64_t merges_committed = 0;
};

struct Migration {
  std::size_t id = 0;
  MigrationKind kind = MigrationKind::kMove;
  std::size_t shard = 0;        ///< move: the shard; split: parent; merge: retiring shard
  std::size_t counterpart = 0;  ///< split: new id (set at commit); merge: survivor
  NodeId src = 0;
  NodeId dst = 0;
  MigrationPhase phase = MigrationPhase::kBackoff;
  std::size_t attempts = 0;
  std::uint64_t requested_at = 0;
  std::uint64_t committed_at = 0;
  std::uint64_t old_epoch = 0;  ///< source's epoch when the attempt started
  std::uint64_t new_epoch = 0;  ///< destination's epoch after commit
  // In-flight attempt state.
  std::size_t frames_total = 0;
  std::size_t frames_done = 0;
  std::uint64_t attempt_bytes = 0;
  std::uint64_t phase_deadline = 0;
  std::uint64_t retry_at = 0;
  bool catchup_requested = false;
  bool source_fenced = false;  ///< fence leg delivered this attempt
};

/// Observer of migration lifecycle transitions; called synchronously on
/// the serial advance_to path, in registration order. Serving harnesses
/// implement this to keep per-node cached state honest: on_source_fenced
/// MUST make the source stop serving the shard under its cached lease
/// before the call returns (that ordering is the no-dual-serve argument);
/// on_aborted restores it; on_committed syncs participants' quantum maps.
class MigrationListener {
 public:
  virtual ~MigrationListener() = default;
  virtual void on_source_fenced(const Migration&, std::uint64_t) {}
  virtual void on_committed(const Migration&, std::uint64_t) {}
  virtual void on_aborted(const Migration&, std::uint64_t) {}
};

class MigrationCoordinator {
 public:
  /// The directory must cover space.max_shards() shards (shard ids are
  /// shared across the two). Constructor syncs the directory's per-shard
  /// activity to the space (split headroom starts inactive).
  MigrationCoordinator(Cluster& cluster, LeaseDirectory& directory,
                       RingPlacementAuthority& authority, ShardSpace& space,
                       MigrationConfig config = {});

  /// Optional: replicas catch up at PREPARE completion.
  void set_replicas(recovery::ModelReplicaSet* replicas) noexcept {
    replicas_ = replicas;
  }
  /// Optional: destination durable writes route through this model (the
  /// FaultInjector), so storage chaos can corrupt shipped frames.
  void set_storage_faults(StorageFaultModel* model) noexcept {
    storage_ = model;
  }
  void add_listener(MigrationListener* listener);
  void remove_listener(MigrationListener* listener);
  /// migration.* counters plus "shard_migrate" spans. Either may be null.
  void bind_obs(obs::Tracer* tracer, obs::MetricsRegistry* metrics);

  /// Requests moving `shard` to `dst`. Returns the migration id, or
  /// nullopt with the refusal counted: in-flight budget reached, shard
  /// already migrating, shard inactive/unheld, destination down or vetoed
  /// by the lease eligibility gate (a quarantined replica is refused here
  /// until its repair completes). Throws std::out_of_range on bad ids.
  std::optional<std::size_t> request_move(std::size_t shard, NodeId dst,
                                          std::uint64_t tick);
  /// Requests splitting `shard` (upper half of its quanta to a fresh id).
  std::optional<std::size_t> request_split(std::size_t shard,
                                           std::uint64_t tick);
  /// Requests merging `from` into `into` (and retiring `from`).
  std::optional<std::size_t> request_merge(std::size_t from, std::size_t into,
                                           std::uint64_t tick);

  /// Drives every in-flight migration for each tick in (last, tick], in
  /// migration-id order. Call after LeaseDirectory::advance_to.
  void advance_to(std::uint64_t tick);

  std::size_t in_flight() const noexcept;
  bool idle() const noexcept { return in_flight() == 0; }
  const MigrationStats& stats() const noexcept { return stats_; }
  /// Every migration ever requested, by id (in-flight and terminal).
  const std::vector<Migration>& log() const noexcept { return log_; }
  const MigrationConfig& config() const noexcept { return config_; }

 private:
  bool start_attempt(Migration& m, std::uint64_t tick);
  void step(Migration& m, std::uint64_t tick);
  void step_prepare(Migration& m, std::uint64_t tick);
  void step_commit(Migration& m, std::uint64_t tick);
  void finalize(Migration& m, std::uint64_t tick);
  void abort_attempt(Migration& m, std::uint64_t tick, const char* reason);
  bool dst_usable(const Migration& m) const;
  std::optional<std::size_t> enqueue(Migration m, std::uint64_t tick);
  std::string frame_payload(const Migration& m, std::size_t index) const;

  Cluster& cluster_;
  LeaseDirectory& directory_;
  RingPlacementAuthority& authority_;
  ShardSpace& space_;
  MigrationConfig config_;
  recovery::ModelReplicaSet* replicas_ = nullptr;
  StorageFaultModel* storage_ = nullptr;
  std::vector<MigrationListener*> listeners_;
  std::vector<Migration> log_;
  Rng corrupt_rng_;
  std::uint64_t last_advanced_ = 0;
  MigrationStats stats_;

  obs::Tracer* tracer_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
};

}  // namespace sea::placement
