// Closed-loop shard rebalancer: observe -> plan -> act, deterministically.
//
// The rebalancer is the control loop that makes placement *elastic*: it
// watches per-shard serving cost (EWMA over fixed planning periods) plus
// the pressure signals the serving layer already exports through the
// MetricsRegistry (queue backlog, breaker opens, shed queries), and turns
// them into split / move / merge requests against the migration
// coordinator — throttled by a per-window budget so a load storm cannot
// trigger a migration storm.
//
// Planning is pure arithmetic over observed state: no RNG, no wall clock,
// ties broken by lowest id. Same observations in, same plan out — the E20
// byte-identity sweep depends on it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "membership/lease.h"
#include "obs/metrics.h"
#include "placement/migration.h"
#include "placement/shard_space.h"

namespace sea::placement {

struct RebalancerConfig {
  /// Plan every `period_ticks`; at most `migrations_per_window` requests
  /// per `window_ticks` (the storm throttle).
  std::uint64_t period_ticks = 16;
  std::uint64_t window_ticks = 96;
  std::size_t migrations_per_window = 3;
  /// EWMA smoothing for per-shard serving cost per period.
  double ewma_alpha = 0.3;
  /// Pressure: plan relief when the backlog gauge exceeds this, or when
  /// breaker-open / shed counters moved since the last plan.
  double backlog_high_ms = 25.0;
  /// Imbalance: plan relief when the hottest node carries more than this
  /// multiple of the mean node load.
  double imbalance_ratio = 1.6;
  /// Split the hottest shard (rather than move it) when it alone carries
  /// more than this share of its node's load — moving a shard that *is*
  /// the hotspot just relocates the problem.
  double split_load_share = 0.55;
  /// Merge candidates: shards carrying under this share of total load,
  /// only in calm periods, never below `min_active_shards`.
  double merge_load_share = 0.02;
  std::size_t min_active_shards = 2;
  /// Registry signals consumed (names bind the control loop to obs).
  std::string backlog_gauge = "placement.backlog_ms";
  std::string breaker_counter = "breaker.opens";
  std::string shed_counter = "placement.shed";
};

struct RebalancerStats {
  std::uint64_t plans = 0;             ///< planning periods evaluated
  std::uint64_t pressure_plans = 0;    ///< periods that saw pressure/imbalance
  std::uint64_t moves_requested = 0;
  std::uint64_t splits_requested = 0;
  std::uint64_t merges_requested = 0;
  std::uint64_t requests_refused = 0;  ///< coordinator said no (budget, dup…)
  std::uint64_t window_throttled = 0;  ///< plans cut short by the window budget
};

class Rebalancer {
 public:
  Rebalancer(MigrationCoordinator& coordinator, LeaseDirectory& directory,
             ShardSpace& space, Cluster& cluster,
             RebalancerConfig config = {});

  /// Signal source for pressure counters/gauges (usually the same registry
  /// the serving loop writes). Null = load-EWMA-only planning.
  void bind_obs(obs::MetricsRegistry* metrics) noexcept { metrics_ = metrics; }

  /// Feed one served query's modelled cost for `shard` into the current
  /// observation window.
  void observe_query(std::size_t shard, double cost_ms);

  /// Drive the control loop to `tick`; plans fire on period boundaries.
  /// Call after MigrationCoordinator::advance_to each tick.
  void on_tick(std::uint64_t tick);

  const RebalancerStats& stats() const noexcept { return stats_; }
  /// Smoothed per-shard load (ms per period) after the last plan.
  double shard_load(std::size_t shard) const;
  const RebalancerConfig& config() const noexcept { return config_; }

 private:
  void plan(std::uint64_t tick);
  /// Remaining request budget in the window containing `tick`.
  std::size_t window_budget(std::uint64_t tick);
  NodeId holder_of(std::size_t shard, std::uint64_t tick) const;

  MigrationCoordinator& coordinator_;
  LeaseDirectory& directory_;
  ShardSpace& space_;
  Cluster& cluster_;
  RebalancerConfig config_;
  obs::MetricsRegistry* metrics_ = nullptr;

  std::vector<double> window_cost_;  ///< ms accumulated since last plan
  std::vector<double> ewma_;         ///< smoothed per-shard ms/period
  std::uint64_t next_plan_at_;
  std::uint64_t window_start_ = 0;
  std::size_t window_used_ = 0;
  std::uint64_t last_breaker_opens_ = 0;
  std::uint64_t last_shed_ = 0;
  RebalancerStats stats_;
};

}  // namespace sea::placement
