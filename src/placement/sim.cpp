#include "placement/sim.h"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <utility>

namespace sea::placement {

namespace {
constexpr NodeId kNone = ShardLeaseRouter::kNoLeaseHolder;
}  // namespace

ElasticServingSim::ElasticServingSim(Cluster& cluster, FaultInjector& injector,
                                     GossipMembership& membership,
                                     LeaseDirectory& directory,
                                     MigrationCoordinator& coordinator,
                                     ShardSpace& space, Rebalancer* rebalancer,
                                     const recovery::ChaosSchedule* schedule,
                                     ElasticSimConfig config)
    : cluster_(cluster),
      injector_(injector),
      membership_(membership),
      directory_(directory),
      coordinator_(coordinator),
      space_(space),
      rebalancer_(rebalancer),
      schedule_(schedule),
      config_(config),
      max_shards_(space.max_shards()),
      queries_per_tick_(config.base_queries_per_tick == 0
                            ? cluster.num_nodes()
                            : config.base_queries_per_tick),
      workload_rng_(config.workload_seed),
      quantum_dist_(space.num_quanta(), config.zipf_s) {
  if (directory_.num_shards() < max_shards_)
    throw std::invalid_argument(
        "ElasticServingSim: lease directory covers fewer shards than the "
        "space's max_shards");
  const std::size_t n = cluster_.num_nodes();
  routing_.assign(n * max_shards_, kNone);
  cached_epoch_.assign(n * max_shards_, 0);
  cached_expires_.assign(n * max_shards_, 0);
  announced_epoch_.assign(max_shards_, 0);
  node_map_.assign(n * space_.num_quanta(), 0);
  node_map_version_.assign(n, 0);
  backlog_ms_.assign(n, 0.0);
  // Everyone starts with the initial map (deployment-time knowledge).
  for (NodeId node = 0; node < n; ++node) sync_map(node);
  coordinator_.add_listener(this);
}

ElasticServingSim::~ElasticServingSim() { coordinator_.remove_listener(this); }

void ElasticServingSim::bind_obs(obs::MetricsRegistry* metrics) {
  metrics_ = metrics;
}

bool ElasticServingSim::message(NodeId from, NodeId to, std::size_t bytes) {
  const SendOutcome sent = cluster_.network().try_send(from, to, bytes);
  return sent.delivered && !cluster_.node_is_down(to);
}

void ElasticServingSim::sync_map(NodeId node) {
  const std::vector<std::uint32_t>& map = space_.map();
  std::copy(map.begin(), map.end(),
            node_map_.begin() +
                static_cast<std::ptrdiff_t>(node * space_.num_quanta()));
  node_map_version_[node] = space_.version();
}

void ElasticServingSim::announce_leases() {
  const std::size_t n = cluster_.num_nodes();
  for (std::size_t shard = 0; shard < max_shards_; ++shard) {
    if (!directory_.shard_active(shard)) continue;
    const ShardLease& l = directory_.lease(shard);
    if (l.epoch == 0) continue;
    const std::size_t holder_slot = slot(l.holder, shard);
    if (cached_epoch_[holder_slot] == l.epoch)
      cached_expires_[holder_slot] = l.expires_at;  // renewal extends TTL
    if (l.epoch <= announced_epoch_[shard]) continue;
    announced_epoch_[shard] = l.epoch;
    cached_epoch_[holder_slot] = l.epoch;
    cached_expires_[holder_slot] = l.expires_at;
    routing_[holder_slot] = l.holder;
    for (NodeId node = 0; node < n; ++node) {
      if (node == l.holder) continue;
      if (message(l.holder, node, config_.answer_bytes))
        routing_[node * max_shards_ + shard] = l.holder;
    }
  }
}

void ElasticServingSim::broadcast_maps() {
  const NodeId coord = coordinator_.config().coordinator_node;
  // The coordinator's host applies map changes as it makes them; everyone
  // else hears about a new version only if the broadcast gets through.
  sync_map(coord);
  for (NodeId node = 0; node < cluster_.num_nodes(); ++node) {
    if (node == coord || node_map_version_[node] >= space_.version()) continue;
    if (message(coord, node, config_.map_broadcast_bytes)) sync_map(node);
  }
}

void ElasticServingSim::drain_backlogs() {
  double max_backlog = 0.0;
  for (NodeId node = 0; node < cluster_.num_nodes(); ++node) {
    if (cluster_.node_is_down(node)) {
      backlog_ms_[node] = 0.0;  // a crash wipes the volatile queue
      continue;
    }
    backlog_ms_[node] =
        std::max(0.0, backlog_ms_[node] - config_.drain_ms_per_tick);
    max_backlog = std::max(max_backlog, backlog_ms_[node]);
  }
  if (metrics_) {
    const std::string& name = rebalancer_ ? rebalancer_->config().backlog_gauge
                                          : RebalancerConfig{}.backlog_gauge;
    metrics_->gauge(name).set(max_backlog);
  }
}

void ElasticServingSim::step() {
  injector_.tick(cluster_);
  const std::uint64_t now = injector_.now();
  membership_.advance_to(now);
  directory_.advance_to(now);
  coordinator_.advance_to(now);
  if (rebalancer_) rebalancer_->on_tick(now);
  announce_leases();
  broadcast_maps();
  drain_backlogs();
  const double mult = schedule_ ? schedule_->load_at(now) : 1.0;
  const auto nq = static_cast<std::size_t>(
      static_cast<double>(queries_per_tick_) * mult);
  for (std::size_t i = 0; i < nq; ++i) {
    const auto entry = static_cast<NodeId>(query_seq_ % cluster_.num_nodes());
    ++query_seq_;
    const auto quantum =
        static_cast<std::uint32_t>(quantum_dist_(workload_rng_));
    serve_one(entry, quantum, now);
  }
}

void ElasticServingSim::run(std::size_t rounds) {
  for (std::size_t i = 0; i < rounds; ++i) step();
}

void ElasticServingSim::serve_one(NodeId entry, std::uint32_t quantum,
                                  std::uint64_t tick) {
  ++stats_.queries;
  if (cluster_.node_is_down(entry)) {
    ++stats_.entry_down;
    return;
  }
  // Route on the entry's own knowledge: its quantum map, then its lease
  // routing cache — either may be stale mid-migration.
  const std::uint32_t shard =
      node_map_[entry * space_.num_quanta() + quantum];
  const NodeId holder = routing_[slot(entry, shard)];
  if (holder == kNone ||
      (holder != entry && !message(entry, holder, config_.query_bytes)) ||
      cluster_.node_is_down(holder)) {
    ++stats_.degraded_serves;
    return;
  }
  // The holder re-derives the shard from its *own* map: if a split/merge
  // moved the quantum since the entry routed, the holder refuses rather
  // than answer for a shard it no longer owns the quantum under.
  if (node_map_[holder * space_.num_quanta() + quantum] != shard) {
    ++stats_.remap_refusals;
    return;
  }
  // Self-fencing against the shared clock, exactly as in E18 — and the
  // hook the migration fence leg uses: a fenced source's cache is zeroed
  // before the epoch moves, so it lands here, never in an owner serve.
  const std::size_t hslot = slot(holder, shard);
  if (cached_epoch_[hslot] == 0 || tick >= cached_expires_[hslot]) {
    ++stats_.fenced_serves;
    return;
  }
  if (backlog_ms_[holder] > config_.shed_backlog_ms) {
    ++stats_.shed;
    if (metrics_) {
      const std::string& name = rebalancer_
                                    ? rebalancer_->config().shed_counter
                                    : RebalancerConfig{}.shed_counter;
      metrics_->counter(name).inc();
    }
    return;
  }
  serve_log_.push_back(
      ElasticServe{quantum, shard, holder, cached_epoch_[hslot], tick});
  // Omniscient audit (the sim can peek at the directory; the nodes never
  // do): serving under a superseded epoch would be a fencing hole.
  if (directory_.lease(shard).epoch > cached_epoch_[hslot])
    ++stats_.stale_epoch_serves;
  backlog_ms_[holder] += config_.query_cost_ms;
  owner_latencies_ms_.push_back(backlog_ms_[holder]);
  if (rebalancer_) rebalancer_->observe_query(shard, config_.query_cost_ms);
  if (holder == entry || message(holder, entry, config_.answer_bytes))
    ++stats_.owner_serves;
  else
    ++stats_.degraded_serves;
}

void ElasticServingSim::on_source_fenced(const Migration& m,
                                         std::uint64_t /*tick*/) {
  // The source consents by dropping its cached lease for the migrating
  // (move) or retiring (merge) shard — from here on it fences itself, and
  // only then may the coordinator move the epoch.
  cached_epoch_[slot(m.src, m.shard)] = 0;
}

void ElasticServingSim::on_committed(const Migration& m, std::uint64_t tick) {
  (void)tick;
  // Participants applied the commit in-protocol: they learn the new map
  // synchronously. Everyone else waits for the (droppable) broadcast.
  sync_map(m.src);
  sync_map(m.dst);
}

void ElasticServingSim::on_aborted(const Migration& m, std::uint64_t tick) {
  if (!m.source_fenced) return;
  // Abort control leg: the destination releases the source. If the leg is
  // lost (or the source is gone) the source stays fenced — availability
  // cost only — until a natural grant round heals it after TTL expiry.
  if (m.src != m.dst &&
      !message(m.dst, m.src, coordinator_.config().control_bytes))
    return;
  if (!directory_.shard_active(m.shard)) return;
  const ShardLease& l = directory_.lease(m.shard);
  if (l.valid_at(tick) && l.holder == m.src) {
    cached_epoch_[slot(m.src, m.shard)] = l.epoch;
    cached_expires_[slot(m.src, m.shard)] = l.expires_at;
  }
}

std::uint64_t ElasticServingSim::dual_serves() const {
  std::map<std::pair<std::uint64_t, std::uint64_t>, NodeId> first;
  std::uint64_t violations = 0;
  for (const ElasticServe& s : serve_log_) {
    const std::pair<std::uint64_t, std::uint64_t> key{s.shard, s.epoch};
    const auto [it, inserted] = first.emplace(key, s.node);
    if (!inserted && it->second != s.node) ++violations;
  }
  return violations;
}

double ElasticServingSim::p99_latency_ms() const {
  if (owner_latencies_ms_.empty()) return 0.0;
  std::vector<double> sorted = owner_latencies_ms_;
  std::sort(sorted.begin(), sorted.end());
  const auto idx = static_cast<std::size_t>(
      0.99 * static_cast<double>(sorted.size() - 1));
  return sorted[idx];
}

double ElasticServingSim::node_backlog_ms(NodeId node) const {
  if (node >= backlog_ms_.size())
    throw std::out_of_range("ElasticServingSim::node_backlog_ms: bad node");
  return backlog_ms_[node];
}

}  // namespace sea::placement
