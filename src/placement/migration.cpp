#include "placement/migration.h"

#include <algorithm>
#include <stdexcept>

#include "recovery/frame.h"

namespace sea::placement {

const char* to_string(MigrationKind k) noexcept {
  switch (k) {
    case MigrationKind::kMove: return "move";
    case MigrationKind::kSplit: return "split";
    case MigrationKind::kMerge: return "merge";
  }
  return "?";
}

const char* to_string(MigrationPhase p) noexcept {
  switch (p) {
    case MigrationPhase::kPreparing: return "preparing";
    case MigrationPhase::kCommitting: return "committing";
    case MigrationPhase::kBackoff: return "backoff";
    case MigrationPhase::kDone: return "done";
    case MigrationPhase::kFailed: return "failed";
  }
  return "?";
}

namespace {
constexpr NodeId kNone = ShardLeaseRouter::kNoLeaseHolder;
}  // namespace

MigrationCoordinator::MigrationCoordinator(Cluster& cluster,
                                           LeaseDirectory& directory,
                                           RingPlacementAuthority& authority,
                                           ShardSpace& space,
                                           MigrationConfig config)
    : cluster_(cluster),
      directory_(directory),
      authority_(authority),
      space_(space),
      config_(config),
      corrupt_rng_(config.corrupt_seed) {
  if (directory_.num_shards() < space_.max_shards())
    throw std::invalid_argument(
        "MigrationCoordinator: lease directory covers fewer shards than "
        "the space's max_shards");
  if (config_.frame_payload_bytes == 0 || config_.state_bytes == 0 ||
      config_.frames_per_tick == 0 || config_.retry_budget == 0 ||
      config_.max_concurrent == 0)
    throw std::invalid_argument(
        "MigrationCoordinator: zero-valued config knob");
  if (config_.frame_corrupt_probability < 0.0 ||
      config_.frame_corrupt_probability > 1.0)
    throw std::invalid_argument(
        "MigrationCoordinator: frame_corrupt_probability must be in [0,1]");
  // Split headroom starts inactive: lease activity mirrors the space.
  for (std::size_t s = 0; s < space_.max_shards(); ++s)
    directory_.set_shard_active(s, space_.active(s));
}

void MigrationCoordinator::add_listener(MigrationListener* listener) {
  if (listener) listeners_.push_back(listener);
}

void MigrationCoordinator::remove_listener(MigrationListener* listener) {
  listeners_.erase(
      std::remove(listeners_.begin(), listeners_.end(), listener),
      listeners_.end());
}

void MigrationCoordinator::bind_obs(obs::Tracer* tracer,
                                    obs::MetricsRegistry* metrics) {
  tracer_ = tracer;
  metrics_ = metrics;
}

std::size_t MigrationCoordinator::in_flight() const noexcept {
  std::size_t n = 0;
  for (const Migration& m : log_)
    if (m.phase != MigrationPhase::kDone && m.phase != MigrationPhase::kFailed)
      ++n;
  return n;
}

bool MigrationCoordinator::dst_usable(const Migration& m) const {
  return m.dst < cluster_.num_nodes() && directory_.node_lease_eligible(m.dst);
}

namespace {
NodeId holder_now(const LeaseDirectory& directory, std::size_t shard,
                  std::uint64_t tick) {
  if (!directory.shard_active(shard)) return kNone;
  const ShardLease& l = directory.lease(shard);
  return l.valid_at(tick) ? l.holder : kNone;
}
}  // namespace

std::optional<std::size_t> MigrationCoordinator::enqueue(Migration m,
                                                         std::uint64_t tick) {
  m.id = log_.size();
  m.requested_at = tick;
  m.phase = MigrationPhase::kBackoff;
  m.retry_at = tick;  // first attempt starts on the next advanced tick
  ++stats_.requested;
  if (metrics_) metrics_->counter("migration.requested").inc();
  log_.push_back(m);
  return m.id;
}

std::optional<std::size_t> MigrationCoordinator::request_move(
    std::size_t shard, NodeId dst, std::uint64_t tick) {
  if (shard >= space_.max_shards())
    throw std::out_of_range("MigrationCoordinator::request_move: bad shard");
  if (dst >= cluster_.num_nodes())
    throw std::out_of_range("MigrationCoordinator::request_move: bad node");
  const auto refuse = [this](std::uint64_t& bucket) {
    ++bucket;
    if (metrics_) metrics_->counter("migration.refused").inc();
    return std::nullopt;
  };
  if (in_flight() >= config_.max_concurrent)
    return refuse(stats_.refused_budget);
  for (const Migration& m : log_)
    if (m.phase != MigrationPhase::kDone &&
        m.phase != MigrationPhase::kFailed &&
        (m.shard == shard || m.counterpart == shard))
      return refuse(stats_.refused_duplicate);
  if (!directory_.shard_active(shard)) return refuse(stats_.refused_inactive);
  const NodeId holder = holder_now(directory_, shard, tick);
  if (holder == kNone) return refuse(stats_.refused_inactive);
  if (holder == dst) return refuse(stats_.refused_duplicate);
  // The eligibility gate: a destination that is down, placement-lost, or
  // vetoed (scrub-quarantined mid-repair) is refused up front — migrating
  // authority onto known-bad state is never acceptable, and the request
  // can simply be retried after the repair completes.
  if (!directory_.node_lease_eligible(dst))
    return refuse(stats_.refused_ineligible);
  Migration m;
  m.kind = MigrationKind::kMove;
  m.shard = shard;
  m.counterpart = shard;
  m.src = holder;
  m.dst = dst;
  return enqueue(m, tick);
}

std::optional<std::size_t> MigrationCoordinator::request_split(
    std::size_t shard, std::uint64_t tick) {
  if (shard >= space_.max_shards())
    throw std::out_of_range("MigrationCoordinator::request_split: bad shard");
  const auto refuse = [this](std::uint64_t& bucket) {
    ++bucket;
    if (metrics_) metrics_->counter("migration.refused").inc();
    return std::nullopt;
  };
  if (in_flight() >= config_.max_concurrent)
    return refuse(stats_.refused_budget);
  for (const Migration& m : log_)
    if (m.phase != MigrationPhase::kDone &&
        m.phase != MigrationPhase::kFailed &&
        (m.shard == shard || m.counterpart == shard))
      return refuse(stats_.refused_duplicate);
  if (!directory_.shard_active(shard) ||
      holder_now(directory_, shard, tick) == kNone ||
      space_.quanta_count(shard) < 2 ||
      space_.active_shards() >= space_.max_shards())
    return refuse(stats_.refused_inactive);
  Migration m;
  m.kind = MigrationKind::kSplit;
  m.shard = shard;
  m.counterpart = shard;  // real id assigned at commit
  return enqueue(m, tick);
}

std::optional<std::size_t> MigrationCoordinator::request_merge(
    std::size_t from, std::size_t into, std::uint64_t tick) {
  if (from >= space_.max_shards() || into >= space_.max_shards())
    throw std::out_of_range("MigrationCoordinator::request_merge: bad shard");
  const auto refuse = [this](std::uint64_t& bucket) {
    ++bucket;
    if (metrics_) metrics_->counter("migration.refused").inc();
    return std::nullopt;
  };
  if (from == into) return refuse(stats_.refused_duplicate);
  if (in_flight() >= config_.max_concurrent)
    return refuse(stats_.refused_budget);
  for (const Migration& m : log_)
    if (m.phase != MigrationPhase::kDone &&
        m.phase != MigrationPhase::kFailed &&
        (m.shard == from || m.counterpart == from || m.shard == into ||
         m.counterpart == into))
      return refuse(stats_.refused_duplicate);
  if (!directory_.shard_active(from) || !directory_.shard_active(into) ||
      holder_now(directory_, from, tick) == kNone ||
      holder_now(directory_, into, tick) == kNone)
    return refuse(stats_.refused_inactive);
  Migration m;
  m.kind = MigrationKind::kMerge;
  m.shard = from;
  m.counterpart = into;
  return enqueue(m, tick);
}

std::string MigrationCoordinator::frame_payload(const Migration& m,
                                                std::size_t index) const {
  // Deterministic filler bytes unique to (migration, frame), so a flipped
  // byte anywhere is a real content change the CRC must catch.
  std::string out;
  out.reserve(config_.frame_payload_bytes + 8);
  SplitMix64 g(0xF1A9D00DULL ^
               (m.id * 1000003ULL + index) * 0x9e3779b97f4a7c15ULL);
  while (out.size() < config_.frame_payload_bytes) {
    std::uint64_t w = g.next();
    for (int b = 0; b < 8; ++b) {
      out.push_back(static_cast<char>(w & 0xff));
      w >>= 8;
    }
  }
  out.resize(config_.frame_payload_bytes);
  return out;
}

bool MigrationCoordinator::start_attempt(Migration& m, std::uint64_t tick) {
  if (m.attempts > 0) {
    ++stats_.retries;
    if (metrics_) metrics_->counter("migration.retries").inc();
  }
  ++m.attempts;
  ++stats_.started;
  if (metrics_) metrics_->counter("migration.started").inc();
  m.frames_done = 0;
  m.attempt_bytes = 0;
  m.catchup_requested = false;
  m.source_fenced = false;
  const std::size_t frames =
      (config_.state_bytes + config_.frame_payload_bytes - 1) /
      config_.frame_payload_bytes;
  switch (m.kind) {
    case MigrationKind::kMove: {
      if (!directory_.shard_active(m.shard)) {
        abort_attempt(m, tick, "shard_inactive");
        return false;
      }
      const NodeId holder = holder_now(directory_, m.shard, tick);
      if (holder == m.dst) {
        // A previous attempt's slow path already landed the lease on the
        // destination while we backed off — go straight to finalize.
        m.phase = MigrationPhase::kCommitting;
        m.phase_deadline = tick + config_.commit_timeout_ticks;
        return true;
      }
      if (holder == kNone) {
        abort_attempt(m, tick, "unheld");
        return false;
      }
      if (!dst_usable(m)) {
        abort_attempt(m, tick, "dst_unusable");
        return false;
      }
      m.src = holder;
      m.old_epoch = directory_.lease(m.shard).epoch;
      m.frames_total = frames;
      m.phase = MigrationPhase::kPreparing;
      m.phase_deadline = tick + config_.prepare_timeout_ticks;
      return true;
    }
    case MigrationKind::kSplit: {
      const NodeId holder = holder_now(directory_, m.shard, tick);
      if (holder == kNone) {
        abort_attempt(m, tick, "unheld");
        return false;
      }
      m.src = holder;
      m.dst = holder;
      m.old_epoch = directory_.lease(m.shard).epoch;
      m.frames_total = 0;  // the holder already has the state
      m.phase = MigrationPhase::kCommitting;
      m.phase_deadline = tick + config_.commit_timeout_ticks;
      return true;
    }
    case MigrationKind::kMerge: {
      const NodeId from_holder = holder_now(directory_, m.shard, tick);
      const NodeId into_holder = holder_now(directory_, m.counterpart, tick);
      if (from_holder == kNone || into_holder == kNone) {
        abort_attempt(m, tick, "unheld");
        return false;
      }
      m.src = from_holder;
      m.dst = into_holder;
      m.old_epoch = directory_.lease(m.shard).epoch;
      m.frames_total = from_holder == into_holder ? 0 : frames;
      if (m.frames_total > 0) {
        m.phase = MigrationPhase::kPreparing;
        m.phase_deadline = tick + config_.prepare_timeout_ticks;
      } else {
        m.phase = MigrationPhase::kCommitting;
        m.phase_deadline = tick + config_.commit_timeout_ticks;
      }
      return true;
    }
  }
  return false;
}

void MigrationCoordinator::abort_attempt(Migration& m, std::uint64_t tick,
                                         const char* reason) {
  ++stats_.aborted;
  if (metrics_) metrics_->counter("migration.aborted").inc();
  if (tracer_)
    tracer_->event("migration", reason, static_cast<std::int64_t>(m.shard));
  // Roll back this attempt's routing hints; a fenced source is restored by
  // the listeners (they hold the per-node cached-lease state).
  if (m.kind == MigrationKind::kMove)
    directory_.set_preferred_holder(m.shard, kNone);
  if (m.attempts >= config_.retry_budget) {
    m.phase = MigrationPhase::kFailed;
    ++stats_.failed;
    if (metrics_) metrics_->counter("migration.failed").inc();
  } else {
    m.phase = MigrationPhase::kBackoff;
    m.retry_at = tick + config_.retry_backoff_ticks;
  }
  for (auto* listener : listeners_) listener->on_aborted(m, tick);
  m.source_fenced = false;
}

void MigrationCoordinator::finalize(Migration& m, std::uint64_t tick) {
  const std::string& table = directory_.table();
  switch (m.kind) {
    case MigrationKind::kMove:
      authority_.set_primary_override(table, m.shard, m.dst);
      directory_.set_preferred_holder(m.shard, kNone);
      m.new_epoch = directory_.lease(m.shard).epoch;
      break;
    case MigrationKind::kSplit:
      m.new_epoch = directory_.lease(m.shard).epoch;
      break;
    case MigrationKind::kMerge:
      m.new_epoch = directory_.lease(m.counterpart).epoch;
      break;
  }
  m.phase = MigrationPhase::kDone;
  m.committed_at = tick;
  ++stats_.committed;
  if (metrics_) metrics_->counter("migration.committed").inc();
  if (tracer_)
    tracer_->span_event("shard_migrate",
                        static_cast<double>(tick - m.requested_at),
                        to_string(m.kind), m.attempt_bytes,
                        static_cast<std::int64_t>(m.dst));
  for (auto* listener : listeners_) listener->on_committed(m, tick);
}

void MigrationCoordinator::step_prepare(Migration& m, std::uint64_t tick) {
  if (!dst_usable(m)) {
    abort_attempt(m, tick, "dst_lost");
    return;
  }
  if (cluster_.node_is_down(m.src)) {
    abort_attempt(m, tick, "src_down");
    return;
  }
  // The lease must stay where the plan says while we ship: a moved lease
  // means another authority took over and this plan is stale.
  if (holder_now(directory_, m.shard, tick) != m.src) {
    abort_attempt(m, tick, "src_lost_lease");
    return;
  }
  if (m.kind == MigrationKind::kMerge &&
      holder_now(directory_, m.counterpart, tick) != m.dst) {
    abort_attempt(m, tick, "dst_lost_lease");
    return;
  }
  for (std::size_t k = 0;
       k < config_.frames_per_tick && m.frames_done < m.frames_total; ++k) {
    const std::string encoded =
        recovery::encode_frame(frame_payload(m, m.frames_done));
    const SendOutcome leg =
        cluster_.network().try_send(m.src, m.dst, encoded.size());
    if (!leg.delivered) {
      // Dropped on the wire: resend the same frame next tick (pacing
      // budget for this tick is spent waiting).
      ++stats_.frames_dropped;
      if (metrics_) metrics_->counter("migration.frames_dropped").inc();
      break;
    }
    std::string durable = encoded;
    // Chaos migration-window fault: wire corruption of the frame body.
    if (config_.frame_corrupt_probability > 0.0 &&
        corrupt_rng_.bernoulli(config_.frame_corrupt_probability))
      durable[durable.size() / 2] =
          static_cast<char>(durable[durable.size() / 2] ^ 0x40);
    // The destination's durable write goes through the storage-fault
    // model, then is read-back verified: a lying medium is caught here,
    // not at serve time.
    if (storage_) {
      const WriteFault wf = storage_->on_durable_write(m.dst, durable.size());
      if (wf.lost)
        durable.clear();
      else if (wf.torn)
        durable.resize(std::min(wf.keep_bytes, durable.size()));
      else if (wf.flipped && wf.flip_offset < durable.size())
        durable[wf.flip_offset] = static_cast<char>(
            durable[wf.flip_offset] ^ wf.flip_mask);
    }
    const recovery::FrameView view = recovery::decode_frame(durable, 0, true);
    if (view.status != recovery::FrameStatus::kOk) {
      ++stats_.frames_corrupt;
      if (metrics_) metrics_->counter("migration.frames_corrupt").inc();
      abort_attempt(m, tick, "frame_corrupt");
      return;
    }
    ++m.frames_done;
    m.attempt_bytes += encoded.size();
    ++stats_.frames_shipped;
    stats_.bytes_shipped += encoded.size();
    if (metrics_) {
      metrics_->counter("migration.frames_shipped").inc();
      metrics_->counter("migration.bytes_shipped").inc(encoded.size());
    }
  }
  if (m.frames_done >= m.frames_total) {
    if (replicas_ && !m.catchup_requested) {
      m.catchup_requested = true;
      if (replicas_->request_catchup(m.dst)) {
        ++stats_.catchups_requested;
        if (metrics_) metrics_->counter("migration.catchups").inc();
      }
    }
    // Slow-path insurance, installed before COMMIT: if the source becomes
    // unreachable now, the destination still wins the post-expiry grant.
    if (m.kind == MigrationKind::kMove)
      directory_.set_preferred_holder(m.shard, m.dst);
    m.phase = MigrationPhase::kCommitting;
    m.phase_deadline = tick + config_.commit_timeout_ticks;
    return;
  }
  if (tick >= m.phase_deadline) abort_attempt(m, tick, "prepare_timeout");
}

void MigrationCoordinator::step_commit(Migration& m, std::uint64_t tick) {
  switch (m.kind) {
    case MigrationKind::kMove: {
      const NodeId holder = holder_now(directory_, m.shard, tick);
      if (holder == m.dst) {
        // Either our handoff below landed on an earlier tick, or the slow
        // path did: the preferred destination won the post-expiry grant.
        ++stats_.expiry_grants;
        if (metrics_) metrics_->counter("migration.expiry_grants").inc();
        finalize(m, tick);
        return;
      }
      if (holder != kNone && holder != m.src) {
        abort_attempt(m, tick, "holder_moved");
        return;
      }
      if (!dst_usable(m)) {
        abort_attempt(m, tick, "dst_lost");
        return;
      }
      if (holder == m.src && !cluster_.node_is_down(m.src)) {
        // Fast path: destination asks the source to fence itself. Only a
        // *delivered* consent leg may fence — an undelivered one leaves
        // the source serving and we wait (or fall to the slow path).
        const SendOutcome fence = cluster_.network().try_send(
            m.dst, m.src, config_.control_bytes);
        if (fence.delivered) {
          if (!m.source_fenced) {
            m.source_fenced = true;
            for (auto* listener : listeners_)
              listener->on_source_fenced(m, tick);
          }
          // Same serial step as the fence: the source has stopped serving
          // before the epoch moves, so no instant exists with two active
          // holders.
          if (directory_.handoff(m.shard, m.dst, tick)) {
            ++stats_.fast_handoffs;
            if (metrics_) metrics_->counter("migration.fast_handoffs").inc();
            finalize(m, tick);
            return;
          }
        }
      }
      // holder == kNone: lease expired with the destination preferred —
      // the slow path is in motion; wait for the grant.
      if (tick >= m.phase_deadline) abort_attempt(m, tick, "commit_timeout");
      return;
    }
    case MigrationKind::kSplit: {
      const NodeId holder = holder_now(directory_, m.shard, tick);
      if (holder != m.src) {
        abort_attempt(m, tick, "src_lost_lease");
        return;
      }
      // The holder must apply the new quantum map atomically with the
      // split; the control leg models the coordinator telling it to.
      bool delivered = config_.coordinator_node == m.src;
      if (!delivered)
        delivered = cluster_.network()
                        .try_send(config_.coordinator_node, m.src,
                                  config_.control_bytes)
                        .delivered;
      if (!delivered) {
        if (tick >= m.phase_deadline) abort_attempt(m, tick, "commit_timeout");
        return;
      }
      const std::optional<std::size_t> fresh = space_.split(m.shard);
      if (!fresh) {
        // Headroom raced away (another split landed first): terminal, not
        // retryable — the budget cannot restore capacity.
        m.attempts = config_.retry_budget;
        abort_attempt(m, tick, "no_headroom");
        return;
      }
      m.counterpart = *fresh;
      directory_.set_shard_active(*fresh, true);
      // The parent's holder keeps serving both halves until the new
      // shard's lease lands — it is preferred *and* pinned, so the grant
      // and placement both point at the node that already has the state.
      directory_.set_preferred_holder(*fresh, m.src);
      authority_.set_primary_override(directory_.table(), *fresh, m.src);
      ++stats_.splits_committed;
      if (metrics_) metrics_->counter("migration.splits").inc();
      finalize(m, tick);
      return;
    }
    case MigrationKind::kMerge: {
      const NodeId from_holder = holder_now(directory_, m.shard, tick);
      const NodeId into_holder = holder_now(directory_, m.counterpart, tick);
      if (from_holder != m.src || into_holder != m.dst) {
        abort_attempt(m, tick, "holder_moved");
        return;
      }
      if (m.src != m.dst) {
        const SendOutcome fence = cluster_.network().try_send(
            m.dst, m.src, config_.control_bytes);
        if (!fence.delivered) {
          if (tick >= m.phase_deadline)
            abort_attempt(m, tick, "commit_timeout");
          return;
        }
        if (!m.source_fenced) {
          m.source_fenced = true;
          for (auto* listener : listeners_) listener->on_source_fenced(m, tick);
        }
      }
      // Retire the shard in the same serial step the source consented in:
      // its lease goes inactive (check_serve fences) before any later
      // query can route to it.
      space_.merge(m.shard, m.counterpart);
      directory_.set_shard_active(m.shard, false);
      directory_.set_preferred_holder(m.shard, kNone);
      authority_.clear_override(directory_.table(), m.shard);
      ++stats_.merges_committed;
      if (metrics_) metrics_->counter("migration.merges").inc();
      finalize(m, tick);
      return;
    }
  }
}

void MigrationCoordinator::step(Migration& m, std::uint64_t tick) {
  switch (m.phase) {
    case MigrationPhase::kBackoff:
      if (tick >= m.retry_at) start_attempt(m, tick);
      return;
    case MigrationPhase::kPreparing:
      step_prepare(m, tick);
      return;
    case MigrationPhase::kCommitting:
      step_commit(m, tick);
      return;
    case MigrationPhase::kDone:
    case MigrationPhase::kFailed:
      return;
  }
}

void MigrationCoordinator::advance_to(std::uint64_t tick) {
  for (std::uint64_t t = last_advanced_ + 1; t <= tick; ++t)
    for (Migration& m : log_)
      if (m.phase != MigrationPhase::kDone &&
          m.phase != MigrationPhase::kFailed)
        step(m, t);
  last_advanced_ = std::max(last_advanced_, tick);
}

}  // namespace sea::placement
