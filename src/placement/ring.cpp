#include "placement/ring.h"

#include <algorithm>
#include <stdexcept>

#include "common/rng.h"

namespace sea::placement {

std::uint64_t fnv1a64(std::string_view bytes) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t shard_key(const std::string& table,
                        std::size_t shard) noexcept {
  // table-name bytes, a NUL separator no table name contains, then the
  // shard id in fixed-width little-endian bytes (string-formatting the
  // number would make keys 1 and 10 share a digit prefix and cluster).
  char buf[9];
  buf[0] = '\0';
  std::uint64_t s = shard;
  for (int i = 0; i < 8; ++i) {
    buf[1 + i] = static_cast<char>(s & 0xff);
    s >>= 8;
  }
  const std::uint64_t h = fnv1a64(table);
  // Continue the FNV-1a stream over the tail from the table-name hash.
  std::uint64_t out = h;
  for (const char c : buf) {
    out ^= static_cast<unsigned char>(c);
    out *= 0x100000001b3ULL;
  }
  return out;
}

HashRing::HashRing(std::size_t num_nodes, RingConfig config)
    : config_(config) {
  if (num_nodes == 0)
    throw std::invalid_argument("HashRing: need at least one member");
  if (config_.vnodes == 0)
    throw std::invalid_argument("HashRing: vnodes must be > 0");
  points_.reserve(num_nodes * config_.vnodes);
  member_.assign(num_nodes, false);
  for (std::size_t n = 0; n < num_nodes; ++n)
    add_node(static_cast<NodeId>(n));
}

void HashRing::insert_points(NodeId node) {
  // Each member's points come from its own SplitMix64 stream, so a
  // member's positions depend only on (seed, node id) — never on join
  // order or current membership.
  SplitMix64 stream(config_.seed ^
                    (0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(node) + 1)));
  for (std::size_t v = 0; v < config_.vnodes; ++v)
    points_.push_back(Point{stream.next(), node});
  std::sort(points_.begin(), points_.end(), [](const Point& a, const Point& b) {
    return a.hash != b.hash ? a.hash < b.hash : a.node < b.node;
  });
}

void HashRing::add_node(NodeId node) {
  if (node >= member_.size()) member_.resize(node + 1, false);
  if (member_[node])
    throw std::invalid_argument("HashRing::add_node: node " +
                                std::to_string(node) + " already a member");
  member_[node] = true;
  ++num_members_;
  insert_points(node);
}

void HashRing::remove_node(NodeId node) {
  if (!contains(node))
    throw std::invalid_argument("HashRing::remove_node: node " +
                                std::to_string(node) + " is not a member");
  if (num_members_ == 1)
    throw std::invalid_argument(
        "HashRing::remove_node: cannot remove the last member");
  member_[node] = false;
  --num_members_;
  points_.erase(std::remove_if(points_.begin(), points_.end(),
                               [node](const Point& p) {
                                 return p.node == node;
                               }),
                points_.end());
}

std::vector<NodeId> HashRing::walk(std::uint64_t key) const {
  std::vector<NodeId> order;
  order.reserve(num_members_);
  std::vector<bool> seen(member_.size(), false);
  const auto it = std::lower_bound(
      points_.begin(), points_.end(), key,
      [](const Point& p, std::uint64_t k) { return p.hash < k; });
  const std::size_t start = static_cast<std::size_t>(it - points_.begin());
  for (std::size_t step = 0;
       step < points_.size() && order.size() < num_members_; ++step) {
    const Point& p = points_[(start + step) % points_.size()];
    if (seen[p.node]) continue;
    seen[p.node] = true;
    order.push_back(p.node);
  }
  return order;
}

NodeId HashRing::holder(std::uint64_t key, std::size_t r) const {
  if (r >= num_members_)
    throw std::out_of_range("HashRing::holder: rank " + std::to_string(r) +
                            " on a ring of " + std::to_string(num_members_) +
                            " members");
  return walk(key)[r];
}

}  // namespace sea::placement
