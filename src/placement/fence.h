// QuantumLeaseFence: the elastic-placement EpochFence for ServedAnalytics.
//
// membership's LeaseFence maps a query family straight to a shard, which
// is only correct while the query->shard mapping is static. Under elastic
// placement the stable unit is the *quantum*: this fence hashes the query
// signature to its quantum (FNV-1a — a pinned hash, so the mapping is
// identical across standard libraries and runs), resolves the quantum
// through the live ShardSpace map, and requires this serving process's
// node to hold that shard's current lease. A query whose quantum moved in
// a split/merge is fenced the instant the map changes — before the old
// shard's lease even expires.
#pragma once

#include "membership/lease.h"
#include "placement/shard_space.h"
#include "sea/served.h"

namespace sea::placement {

class QuantumLeaseFence final : public EpochFence {
 public:
  QuantumLeaseFence(const LeaseDirectory& directory, const ShardSpace& space,
                    NodeId local_node)
      : directory_(directory), space_(space), local_node_(local_node) {}

  void check(const AnalyticalQuery& query) const override;

  /// The quantum / home shard the fence resolves for `query` (the shard
  /// is read from the live map, so it tracks splits and merges).
  std::size_t quantum_of(const AnalyticalQuery& query) const;
  std::size_t shard_of(const AnalyticalQuery& query) const;

 private:
  const LeaseDirectory& directory_;
  const ShardSpace& space_;
  NodeId local_node_;
};

}  // namespace sea::placement
