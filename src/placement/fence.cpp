#include "placement/fence.h"

#include "placement/ring.h"
#include "sea/query.h"

namespace sea::placement {

std::size_t QuantumLeaseFence::quantum_of(const AnalyticalQuery& query) const {
  return fnv1a64(query.signature()) % space_.num_quanta();
}

std::size_t QuantumLeaseFence::shard_of(const AnalyticalQuery& query) const {
  return space_.shard_of(quantum_of(query));
}

void QuantumLeaseFence::check(const AnalyticalQuery& query) const {
  directory_.check_serve(directory_.table(), shard_of(query), local_node_,
                         directory_.now());
}

}  // namespace sea::placement
