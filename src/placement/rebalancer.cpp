#include "placement/rebalancer.h"

#include <algorithm>
#include <stdexcept>

namespace sea::placement {

namespace {
constexpr NodeId kNone = ShardLeaseRouter::kNoLeaseHolder;
}  // namespace

Rebalancer::Rebalancer(MigrationCoordinator& coordinator,
                       LeaseDirectory& directory, ShardSpace& space,
                       Cluster& cluster, RebalancerConfig config)
    : coordinator_(coordinator),
      directory_(directory),
      space_(space),
      cluster_(cluster),
      config_(config),
      window_cost_(space.max_shards(), 0.0),
      ewma_(space.max_shards(), 0.0),
      next_plan_at_(config.period_ticks) {
  if (config_.period_ticks == 0 || config_.window_ticks == 0)
    throw std::invalid_argument("Rebalancer: zero period/window");
  if (config_.ewma_alpha <= 0.0 || config_.ewma_alpha > 1.0)
    throw std::invalid_argument("Rebalancer: ewma_alpha must be in (0,1]");
  if (config_.min_active_shards == 0)
    throw std::invalid_argument("Rebalancer: min_active_shards must be > 0");
}

void Rebalancer::observe_query(std::size_t shard, double cost_ms) {
  if (shard >= window_cost_.size())
    throw std::out_of_range("Rebalancer::observe_query: bad shard");
  window_cost_[shard] += cost_ms;
}

double Rebalancer::shard_load(std::size_t shard) const {
  if (shard >= ewma_.size())
    throw std::out_of_range("Rebalancer::shard_load: bad shard");
  return ewma_[shard];
}

NodeId Rebalancer::holder_of(std::size_t shard, std::uint64_t tick) const {
  if (!directory_.shard_active(shard)) return kNone;
  const ShardLease& l = directory_.lease(shard);
  if (l.valid_at(tick)) return l.holder;
  // Unheld right now (e.g. mid-regrant): fall back to where placement says
  // it lives, so load attribution doesn't flicker to "nowhere".
  const ShardPlacementAuthority* authority = cluster_.placement_authority();
  if (authority == nullptr) return kNone;
  return authority->shard_holder(directory_.table(), shard, 0);
}

std::size_t Rebalancer::window_budget(std::uint64_t tick) {
  if (tick >= window_start_ + config_.window_ticks) {
    // Window rolled; align the new window to the period grid.
    window_start_ = tick - (tick % config_.window_ticks);
    window_used_ = 0;
  }
  return config_.migrations_per_window > window_used_
             ? config_.migrations_per_window - window_used_
             : 0;
}

void Rebalancer::on_tick(std::uint64_t tick) {
  while (tick >= next_plan_at_) {
    plan(next_plan_at_);
    next_plan_at_ += config_.period_ticks;
  }
}

void Rebalancer::plan(std::uint64_t tick) {
  ++stats_.plans;
  // 1. Fold the window's observations into the smoothed per-shard load.
  for (std::size_t s = 0; s < ewma_.size(); ++s) {
    if (space_.active(s))
      ewma_[s] = config_.ewma_alpha * window_cost_[s] +
                 (1.0 - config_.ewma_alpha) * ewma_[s];
    else
      ewma_[s] = 0.0;
    window_cost_[s] = 0.0;
  }

  // 2. Attribute shard load to current holders.
  std::vector<double> node_load(cluster_.num_nodes(), 0.0);
  std::vector<NodeId> holder(space_.max_shards(), kNone);
  double total = 0.0;
  std::size_t placed_nodes = 0;
  for (std::size_t s = 0; s < space_.max_shards(); ++s) {
    if (!space_.active(s)) continue;
    holder[s] = holder_of(s, tick);
    total += ewma_[s];
    if (holder[s] != kNone && holder[s] < node_load.size())
      node_load[holder[s]] += ewma_[s];
  }
  for (std::size_t n = 0; n < node_load.size(); ++n)
    if (directory_.node_lease_eligible(static_cast<NodeId>(n))) ++placed_nodes;
  if (placed_nodes == 0) return;
  const double mean_load = total / static_cast<double>(placed_nodes);

  // 3. Pressure signals from the serving layer's registry.
  bool pressure = false;
  if (metrics_) {
    if (metrics_->gauge(config_.backlog_gauge).value() >
        config_.backlog_high_ms)
      pressure = true;
    const std::uint64_t opens =
        metrics_->counter(config_.breaker_counter).value();
    const std::uint64_t shed = metrics_->counter(config_.shed_counter).value();
    if (opens > last_breaker_opens_ || shed > last_shed_) pressure = true;
    last_breaker_opens_ = opens;
    last_shed_ = shed;
  }

  // Hottest eligible node and its load.
  NodeId hot_node = kNone;
  double hot_load = 0.0;
  for (std::size_t n = 0; n < node_load.size(); ++n) {
    if (!directory_.node_lease_eligible(static_cast<NodeId>(n))) continue;
    if (hot_node == kNone || node_load[n] > hot_load) {
      hot_node = static_cast<NodeId>(n);
      hot_load = node_load[n];
    }
  }
  const bool imbalance =
      hot_node != kNone && total > 0.0 &&
      hot_load > config_.imbalance_ratio * std::max(mean_load, 1e-9);

  std::size_t budget = window_budget(tick);
  const auto spend = [&](std::optional<std::size_t> id, std::uint64_t& ok) {
    if (id) {
      ++ok;
      ++window_used_;
      --budget;
    } else {
      ++stats_.requests_refused;
    }
  };

  if (pressure || imbalance) {
    ++stats_.pressure_plans;
    if (budget == 0) {
      ++stats_.window_throttled;
      return;
    }
    if (hot_node == kNone || hot_load <= 0.0) return;
    // Hottest shard on the hottest node (ties: lowest id).
    std::size_t hot_shard = space_.max_shards();
    for (std::size_t s = 0; s < space_.max_shards(); ++s)
      if (holder[s] == hot_node && space_.active(s) &&
          (hot_shard == space_.max_shards() || ewma_[s] > ewma_[hot_shard]))
        hot_shard = s;
    if (hot_shard == space_.max_shards()) return;
    const bool dominant = ewma_[hot_shard] > config_.split_load_share * hot_load;
    if (dominant && space_.quanta_count(hot_shard) >= 2 &&
        space_.active_shards() < space_.max_shards()) {
      // The shard *is* the hotspot: halve it in place so the next plan can
      // move one half off-node.
      spend(coordinator_.request_split(hot_shard, tick),
            stats_.splits_requested);
      return;
    }
    // Coldest eligible node that isn't the hotspot (ties: lowest id).
    NodeId cold_node = kNone;
    for (std::size_t n = 0; n < node_load.size(); ++n) {
      const auto cand = static_cast<NodeId>(n);
      if (cand == hot_node || !directory_.node_lease_eligible(cand)) continue;
      if (cold_node == kNone || node_load[n] < node_load[cold_node])
        cold_node = cand;
    }
    if (cold_node == kNone) return;
    spend(coordinator_.request_move(hot_shard, cold_node, tick),
          stats_.moves_requested);
    return;
  }

  // Calm period: fold fragmented cold shards back together. Candidates in
  // ascending load order; each merge folds the coldest into the
  // next-coldest surviving candidate.
  if (total <= 0.0) return;
  std::vector<std::size_t> cold;
  for (std::size_t s = 0; s < space_.max_shards(); ++s)
    if (space_.active(s) && ewma_[s] < config_.merge_load_share * total)
      cold.push_back(s);
  std::sort(cold.begin(), cold.end(), [&](std::size_t a, std::size_t b) {
    if (ewma_[a] != ewma_[b]) return ewma_[a] < ewma_[b];
    return a < b;
  });
  std::size_t active = space_.active_shards();
  while (cold.size() >= 2 && active > config_.min_active_shards &&
         budget > 0) {
    const std::size_t from = cold[0];
    const std::size_t into = cold[1];
    cold.erase(cold.begin());
    const std::uint64_t before = stats_.merges_requested;
    spend(coordinator_.request_merge(from, into, tick),
          stats_.merges_requested);
    if (stats_.merges_requested > before) --active;
  }
  if (cold.size() >= 2 && active > config_.min_active_shards && budget == 0)
    ++stats_.window_throttled;
}

}  // namespace sea::placement
