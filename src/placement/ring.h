// Consistent-hash ring with virtual nodes, deterministic from a seed.
//
// This is the placement substrate for elastic sharding (ROADMAP item 1,
// the paper's RT1.5/E10 thesis): shard keys and node membership both hash
// onto one 64-bit circle, each member contributing `vnodes` points so load
// spreads evenly; a shard's replica holders are the first distinct members
// met walking clockwise from its key. Adding or removing one node moves
// only the ~1/N of keys adjacent to its points — the property that makes
// elastic scale-out cheap, where static (shard + r) % N placement reshards
// everything.
//
// Everything is a pure function of (seed, member set): no OS entropy, no
// std::hash (implementation-defined), so placement is bit-identical across
// hosts, runs, and SEA_THREADS settings.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "net/network.h"

namespace sea::placement {

/// FNV-1a 64-bit over raw bytes: the stable key hash (never std::hash,
/// whose value is implementation-defined and would break cross-host
/// determinism).
std::uint64_t fnv1a64(std::string_view bytes) noexcept;

/// The stable 64-bit ring key for `shard` of `table`.
std::uint64_t shard_key(const std::string& table, std::size_t shard) noexcept;

struct RingConfig {
  /// Seed the virtual-node point positions derive from (SplitMix64
  /// streams per member).
  std::uint64_t seed = 0x51EA9;
  /// Virtual points per member; more points = smoother balance at the
  /// cost of a larger (still tiny) sorted point table.
  std::size_t vnodes = 64;
};

class HashRing {
 public:
  /// A ring with members {0, .., num_nodes - 1}.
  HashRing(std::size_t num_nodes, RingConfig config = {});

  std::size_t num_members() const noexcept { return num_members_; }
  bool contains(NodeId node) const noexcept {
    return node < member_.size() && member_[node];
  }
  const RingConfig& config() const noexcept { return config_; }

  /// Adds a member (its points land where the seed says, regardless of
  /// join order). Throws std::invalid_argument if already present.
  void add_node(NodeId node);
  /// Removes a member. Throws std::invalid_argument when absent or when it
  /// is the last member (an empty ring places nothing).
  void remove_node(NodeId node);

  /// The r-th distinct member met walking clockwise from `key` (r = 0 is
  /// the primary). For r < num_members() this enumerates a permutation of
  /// the members; beyond that it throws std::out_of_range.
  NodeId holder(std::uint64_t key, std::size_t r) const;

  /// The full clockwise permutation of members from `key` (what holder()
  /// indexes into), materialized once for callers that need every rank.
  std::vector<NodeId> walk(std::uint64_t key) const;

 private:
  struct Point {
    std::uint64_t hash;
    NodeId node;
  };

  void insert_points(NodeId node);

  std::vector<Point> points_;  ///< sorted by (hash, node)
  std::vector<bool> member_;
  std::size_t num_members_ = 0;
  RingConfig config_;
};

}  // namespace sea::placement
