// Elastic serving simulation under chaos: the E20 harness.
//
// Extends the E18 multi-site model (membership/sim.h) with everything this
// layer adds: queries hash to *quanta*, quanta map to shards through the
// ShardSpace, shards live where the ring + migration overrides say — and
// all of that is *knowledge* that travels per node in droppable messages.
// While the rebalancer splits, merges, and moves shards mid-storm, an
// entry node may route on a stale quantum map or a stale lease route; the
// receiving node re-checks against its own map (remap refusal) and its own
// cached lease TTL (self-fencing), so staleness costs availability, never
// correctness.
//
// The sim is the MigrationCoordinator's listener — the component that
// makes the fencing contract real: on_source_fenced clears the source's
// cached lease before the epoch moves (the no-dual-serve ordering),
// on_committed applies the new quantum map at the participants,
// on_aborted restores the fenced source (via a droppable control leg; an
// undelivered restore heals at natural TTL re-grant).
//
// Every query lands in exactly one outcome bucket (conserved()); every
// authoritative serve is logged with its (quantum, shard, epoch, node,
// tick) and checked omniscient-style against the directory's current
// epoch at serve time (stale_epoch_serves) and post-hoc for dual
// authority (dual_serves()). Per-node serving backlog drains at a fixed
// modelled rate; overload sheds — the pressure signal the rebalancer
// closes its loop on. Everything runs on the serial modelled clock:
// byte-identical at any SEA_THREADS.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/cluster.h"
#include "common/rng.h"
#include "fault/fault.h"
#include "membership/lease.h"
#include "membership/swim.h"
#include "obs/metrics.h"
#include "placement/migration.h"
#include "placement/rebalancer.h"
#include "placement/shard_space.h"
#include "recovery/chaos.h"

namespace sea::placement {

struct ElasticSimConfig {
  /// Queries injected per tick before the chaos load multiplier
  /// (0 = one per node). Entries round-robin; quanta are Zipf-drawn.
  std::size_t base_queries_per_tick = 0;
  double zipf_s = 1.2;
  std::uint64_t workload_seed = 0xE20;
  std::size_t query_bytes = 128;
  std::size_t answer_bytes = 64;
  std::size_t map_broadcast_bytes = 64;
  /// Modelled serving cost per query and per-node drain capacity per
  /// tick; the gap between them under a hotspot is what builds backlog.
  double query_cost_ms = 1.0;
  double drain_ms_per_tick = 4.0;
  /// A holder sheds (refuses) queries while its backlog exceeds this.
  double shed_backlog_ms = 48.0;
};

/// One authoritative serve, with the full routing provenance.
struct ElasticServe {
  std::uint32_t quantum = 0;
  std::uint32_t shard = 0;
  NodeId node = 0;
  std::uint64_t epoch = 0;
  std::uint64_t tick = 0;
};

struct ElasticSimStats {
  std::uint64_t queries = 0;
  std::uint64_t owner_serves = 0;    ///< authoritative answers
  std::uint64_t fenced_serves = 0;   ///< holder's cached lease gone/expired
  std::uint64_t degraded_serves = 0; ///< no route / dropped leg / host down
  std::uint64_t remap_refusals = 0;  ///< holder's map disagrees (mid-split/merge)
  std::uint64_t shed = 0;            ///< holder over backlog threshold
  std::uint64_t entry_down = 0;
  /// Omniscient check at serve time: owner serves under an epoch the
  /// directory had already superseded. The fencing design makes this 0.
  std::uint64_t stale_epoch_serves = 0;

  /// Answered-or-accounted: every query lands in exactly one bucket.
  bool conserved() const noexcept {
    return queries == owner_serves + fenced_serves + degraded_serves +
                          remap_refusals + shed + entry_down;
  }
};

/// Drives rounds of (fault tick, membership, leases, migrations,
/// rebalancing, knowledge propagation, workload). The caller owns every
/// collaborator; pass `rebalancer == nullptr` for the no-rebalance
/// baseline and `schedule == nullptr` for flat load.
class ElasticServingSim final : public MigrationListener {
 public:
  ElasticServingSim(Cluster& cluster, FaultInjector& injector,
                    GossipMembership& membership, LeaseDirectory& directory,
                    MigrationCoordinator& coordinator, ShardSpace& space,
                    Rebalancer* rebalancer,
                    const recovery::ChaosSchedule* schedule,
                    ElasticSimConfig config = {});
  ~ElasticServingSim() override;

  ElasticServingSim(const ElasticServingSim&) = delete;
  ElasticServingSim& operator=(const ElasticServingSim&) = delete;

  /// Backlog gauge + shed counter land here (the rebalancer's pressure
  /// signals — bind the same registry to close the loop). May be null.
  void bind_obs(obs::MetricsRegistry* metrics);

  void step();
  void run(std::size_t rounds);

  const ElasticSimStats& stats() const noexcept { return stats_; }
  const std::vector<ElasticServe>& serve_log() const noexcept {
    return serve_log_;
  }
  /// Post-hoc single-authority audit: ordered serve pairs where two
  /// distinct nodes owner-served the same (shard, epoch). Must be 0.
  std::uint64_t dual_serves() const;
  /// p99 of modelled owner-serve latency (queue delay + serve cost), ms.
  double p99_latency_ms() const;
  double node_backlog_ms(NodeId node) const;

  // MigrationListener — the fencing contract (see header comment).
  void on_source_fenced(const Migration& m, std::uint64_t tick) override;
  void on_committed(const Migration& m, std::uint64_t tick) override;
  void on_aborted(const Migration& m, std::uint64_t tick) override;

 private:
  void serve_one(NodeId entry, std::uint32_t quantum, std::uint64_t tick);
  bool message(NodeId from, NodeId to, std::size_t bytes);
  void announce_leases();
  void broadcast_maps();
  void drain_backlogs();
  void sync_map(NodeId node);
  std::size_t slot(NodeId node, std::size_t shard) const {
    return node * max_shards_ + shard;
  }

  Cluster& cluster_;
  FaultInjector& injector_;
  GossipMembership& membership_;
  LeaseDirectory& directory_;
  MigrationCoordinator& coordinator_;
  ShardSpace& space_;
  Rebalancer* rebalancer_;
  const recovery::ChaosSchedule* schedule_;
  ElasticSimConfig config_;
  std::size_t max_shards_;
  std::size_t queries_per_tick_;
  obs::MetricsRegistry* metrics_ = nullptr;

  Rng workload_rng_;
  ZipfDistribution quantum_dist_;
  std::uint64_t query_seq_ = 0;

  ElasticSimStats stats_;
  std::vector<ElasticServe> serve_log_;
  std::vector<double> owner_latencies_ms_;

  // Per-node knowledge, updated only by delivered messages (plus the
  // synchronous participant updates the migration protocol itself makes).
  std::vector<NodeId> routing_;               ///< [node][shard] believed holder
  std::vector<std::uint64_t> cached_epoch_;   ///< [node][shard] own lease
  std::vector<std::uint64_t> cached_expires_;
  std::vector<std::uint64_t> announced_epoch_;  ///< per shard
  std::vector<std::uint32_t> node_map_;       ///< [node][quantum] -> shard
  std::vector<std::uint64_t> node_map_version_;
  std::vector<double> backlog_ms_;            ///< per node
};

}  // namespace sea::placement
