// Quantum -> shard indirection for online shard split/merge.
//
// The key space is cut into a fixed number of *quanta* (the unit a query
// hashes to; in SEA terms, the per-quantum DatalessAgents). Quanta are
// grouped into dynamic *shards* — the unit of leases, placement, and
// migration. Splitting a hot shard moves the upper half of its quanta to
// a freshly activated shard id; merging folds a cold shard's quanta into a
// peer and retires the id. Because the quantum count never changes, a
// split/merge changes only this map — queries keep hashing to the same
// quantum forever, and the lease directory's shard capacity (max_shards)
// is fixed up front.
//
// The map has a monotonic version; simulations ship (map, version) copies
// to nodes over the fallible network, so stale routing is modelled exactly
// like stale lease knowledge.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace sea::placement {

class ShardSpace {
 public:
  /// Quanta 0..num_quanta-1 dealt contiguously into `initial_shards`
  /// shards; ids initial_shards..max_shards-1 start inactive (split
  /// headroom). Throws std::invalid_argument on zero counts,
  /// initial_shards > max_shards, or fewer quanta than shards.
  ShardSpace(std::size_t num_quanta, std::size_t initial_shards,
             std::size_t max_shards);

  std::size_t num_quanta() const noexcept { return quantum_shard_.size(); }
  std::size_t max_shards() const noexcept { return active_.size(); }
  std::size_t active_shards() const noexcept { return num_active_; }
  bool active(std::size_t shard) const;
  std::uint32_t shard_of(std::size_t quantum) const;
  std::size_t quanta_count(std::size_t shard) const;
  /// Monotonic map version; bumps on every split/merge. Starts at 1.
  std::uint64_t version() const noexcept { return version_; }
  /// The raw quantum -> shard map (for per-node knowledge copies).
  const std::vector<std::uint32_t>& map() const noexcept {
    return quantum_shard_;
  }

  /// Splits `shard`: the upper half of its quanta (by quantum id) move to
  /// the lowest inactive shard id, which activates. Returns the new id,
  /// or nullopt when there is no headroom (all max_shards active) or the
  /// shard has fewer than 2 quanta. Throws std::invalid_argument on an
  /// inactive shard.
  std::optional<std::size_t> split(std::size_t shard);

  /// Moves every quantum of `from` onto `into` and deactivates `from`.
  /// Throws std::invalid_argument when either shard is inactive or they
  /// are the same.
  void merge(std::size_t from, std::size_t into);

 private:
  std::vector<std::uint32_t> quantum_shard_;
  std::vector<bool> active_;
  std::vector<std::uint32_t> count_;  ///< quanta per shard
  std::size_t num_active_ = 0;
  std::uint64_t version_ = 1;
};

}  // namespace sea::placement
