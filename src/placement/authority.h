// RingPlacementAuthority: cluster.h's ShardPlacementAuthority backed by
// the consistent-hash ring, plus per-shard primary overrides.
//
// The ring answers "where should shard s live"; a committed live migration
// answers "where does shard s live *now*" — the override installed at
// COMMIT pins the destination as rank-0 holder (the rest of the walk
// continues in ring order, deduplicated), so serving, lease grants, and
// crash rebuilds all agree with the migration's outcome without mutating
// ring membership. Clearing the override returns the shard to pure ring
// placement.
//
// Permutation walks are cached per shard key and invalidated whenever ring
// membership changes — shard_holder() sits on every placement decision.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/cluster.h"
#include "placement/ring.h"

namespace sea::placement {

class RingPlacementAuthority final : public ShardPlacementAuthority {
 public:
  RingPlacementAuthority(std::size_t num_nodes, RingConfig config = {});

  // ShardPlacementAuthority — consulted by Cluster::serving_node /
  // restart_node and LeaseDirectory::try_grant.
  NodeId shard_holder(const std::string& table, std::size_t shard,
                      std::size_t r) const override;

  /// Pins `node` as the primary (rank-0) holder of `shard`; installed by
  /// the migration coordinator at COMMIT.
  void set_primary_override(const std::string& table, std::size_t shard,
                            NodeId node);
  void clear_override(const std::string& table, std::size_t shard);
  /// The pinned primary, or kNoHolder when the shard follows pure ring
  /// placement.
  NodeId primary_override(const std::string& table, std::size_t shard) const;
  std::size_t num_overrides() const noexcept { return overrides_.size(); }

  /// Ring membership (scale-out/in). Mutations invalidate the walk cache.
  void add_node(NodeId node);
  void remove_node(NodeId node);
  const HashRing& ring() const noexcept { return ring_; }

 private:
  const std::vector<NodeId>& walk_for(std::uint64_t key) const;

  HashRing ring_;
  /// Overrides keyed by the same shard key the ring is probed with, in a
  /// sorted map so iteration (tests, dumps) is deterministic.
  std::map<std::uint64_t, NodeId> overrides_;
  mutable std::unordered_map<std::uint64_t, std::vector<NodeId>> walk_cache_;
};

}  // namespace sea::placement
