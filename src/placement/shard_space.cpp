#include "placement/shard_space.h"

#include <stdexcept>
#include <string>

namespace sea::placement {

ShardSpace::ShardSpace(std::size_t num_quanta, std::size_t initial_shards,
                       std::size_t max_shards) {
  if (num_quanta == 0 || initial_shards == 0 || max_shards == 0)
    throw std::invalid_argument("ShardSpace: counts must be > 0");
  if (initial_shards > max_shards)
    throw std::invalid_argument(
        "ShardSpace: initial_shards exceeds max_shards");
  if (num_quanta < initial_shards)
    throw std::invalid_argument(
        "ShardSpace: fewer quanta than initial shards");
  quantum_shard_.resize(num_quanta);
  active_.assign(max_shards, false);
  count_.assign(max_shards, 0);
  // Contiguous equal-count deal, so initial shards are balanced.
  for (std::size_t q = 0; q < num_quanta; ++q) {
    const auto s =
        static_cast<std::uint32_t>((q * initial_shards) / num_quanta);
    quantum_shard_[q] = s;
    ++count_[s];
  }
  for (std::size_t s = 0; s < initial_shards; ++s) active_[s] = true;
  num_active_ = initial_shards;
}

bool ShardSpace::active(std::size_t shard) const {
  if (shard >= active_.size())
    throw std::out_of_range("ShardSpace::active: shard " +
                            std::to_string(shard) + " out of range");
  return active_[shard];
}

std::uint32_t ShardSpace::shard_of(std::size_t quantum) const {
  if (quantum >= quantum_shard_.size())
    throw std::out_of_range("ShardSpace::shard_of: quantum " +
                            std::to_string(quantum) + " out of range");
  return quantum_shard_[quantum];
}

std::size_t ShardSpace::quanta_count(std::size_t shard) const {
  if (shard >= count_.size())
    throw std::out_of_range("ShardSpace::quanta_count: shard " +
                            std::to_string(shard) + " out of range");
  return count_[shard];
}

std::optional<std::size_t> ShardSpace::split(std::size_t shard) {
  if (!active(shard))
    throw std::invalid_argument("ShardSpace::split: shard " +
                                std::to_string(shard) + " is inactive");
  if (count_[shard] < 2) return std::nullopt;
  std::size_t fresh = active_.size();
  for (std::size_t s = 0; s < active_.size(); ++s)
    if (!active_[s]) {
      fresh = s;
      break;
    }
  if (fresh == active_.size()) return std::nullopt;  // no headroom
  // The upper half by quantum id moves: a deterministic, order-free rule
  // (no RNG, no load estimate — the rebalancer decides *which* shard to
  // split, the space only decides *how*).
  const std::uint32_t moving = count_[shard] / 2;
  std::uint32_t kept = count_[shard] - moving;
  for (std::size_t q = 0; q < quantum_shard_.size(); ++q) {
    if (quantum_shard_[q] != shard) continue;
    if (kept > 0) {
      --kept;
      continue;
    }
    quantum_shard_[q] = static_cast<std::uint32_t>(fresh);
  }
  count_[fresh] = moving;
  count_[shard] -= moving;
  active_[fresh] = true;
  ++num_active_;
  ++version_;
  return fresh;
}

void ShardSpace::merge(std::size_t from, std::size_t into) {
  if (from == into)
    throw std::invalid_argument("ShardSpace::merge: from == into");
  if (!active(from) || !active(into))
    throw std::invalid_argument("ShardSpace::merge: both shards must be active");
  for (auto& s : quantum_shard_)
    if (s == from) s = static_cast<std::uint32_t>(into);
  count_[into] += count_[from];
  count_[from] = 0;
  active_[from] = false;
  --num_active_;
  ++version_;
}

}  // namespace sea::placement
